//! Driver-level contract of the search-trace recorder: `run_hca_traced`
//! emits a consistent record stream for every Table-1 kernel, the trace
//! round-trips through the JSONL reader, and attaching a tracer changes
//! nothing about the run's outcome.

use hca_arch::DspFabric;
use hca_core::{run_hca_obs, run_hca_traced, HcaConfig};
use hca_obs::trace::{kind, FALLBACK_TIER};
use hca_obs::{Obs, SearchTracer, TraceRecord};
use std::collections::BTreeMap;

fn traced_records(ddg: &hca_ddg::Ddg) -> (hca_core::HcaResult, Vec<TraceRecord>) {
    let fabric = DspFabric::standard(8, 8, 8);
    let tracer = SearchTracer::enabled();
    let res = run_hca_traced(
        ddg,
        &fabric,
        &HcaConfig::default(),
        &Obs::disabled(),
        &tracer,
    )
    .expect("table1 kernel clusterises");
    (res, tracer.records())
}

#[test]
fn every_table1_kernel_emits_a_consistent_trace() {
    for kernel in hca_kernels::table1_kernels() {
        let (res, records) = traced_records(&kernel.ddg);
        assert!(!records.is_empty(), "{}: empty trace", kernel.name);

        // Partition by problem id.
        let mut subs: BTreeMap<&str, Vec<&TraceRecord>> = BTreeMap::new();
        for r in &records {
            subs.entry(r.problem.as_str()).or_default().push(r);
        }

        // Exactly one run-level MII record, and it matches the MII report.
        let mii: Vec<&TraceRecord> = records.iter().filter(|r| r.kind == kind::MII).collect();
        assert_eq!(mii.len(), 1, "{}", kernel.name);
        assert_eq!(mii[0].est_mii, res.mii.final_mii, "{}", kernel.name);
        assert_eq!(mii[0].mii_rec, res.mii.final_mii_rec, "{}", kernel.name);
        assert!(!mii[0].why.is_empty(), "{}", kernel.name);

        // One `sub` record per sub-problem the driver visited.
        let sub_count = records.iter().filter(|r| r.kind == kind::SUB).count();
        assert_eq!(sub_count, res.stats.subproblems, "{}", kernel.name);

        for (problem, recs) in &subs {
            if problem.is_empty() {
                continue; // run-level records
            }
            let solved: Vec<_> = recs.iter().filter(|r| r.kind == kind::SOLVED).collect();
            let memo_hit = recs.iter().any(|r| r.kind == kind::MEMO && r.why == "hit");
            // Every visited sub-problem either rehydrates from the memo or
            // is solved exactly once by a tier or the fallback.
            assert_eq!(
                solved.len(),
                usize::from(!memo_hit),
                "{}/{problem}: solved records vs memo",
                kernel.name
            );
            for s in solved {
                // est_mii is the max of its recorded components (≥ 1 floor).
                let expect = s.mii_rec.max(s.mii_issue).max(s.mii_arc).max(1);
                assert_eq!(s.est_mii, expect, "{}/{problem}", kernel.name);
                assert!(
                    ["recurrence", "issue", "arc", "floor"].contains(&s.why.as_str()),
                    "{}/{problem}: binder {:?}",
                    kernel.name,
                    s.why
                );
                // The winning tier also appears as a successful tier record.
                assert!(
                    s.tier == FALLBACK_TIER
                        || recs
                            .iter()
                            .any(|r| r.kind == kind::TIER && r.tier == s.tier && r.ok),
                    "{}/{problem}: winner tier {} has no ok tier record",
                    kernel.name,
                    s.tier
                );
            }
            // Step records are stamped with the sub-problem scope.
            for r in recs.iter().filter(|r| r.kind == kind::STEP) {
                assert!(
                    r.tier < 5,
                    "{}/{problem}: step outside tier range",
                    kernel.name
                );
                assert!(r.beam >= 1, "{}/{problem}: empty beam", kernel.name);
            }
        }
    }
}

#[test]
fn tracer_attachment_does_not_change_the_result() {
    for kernel in hca_kernels::table1_kernels() {
        let fabric = DspFabric::standard(8, 8, 8);
        let plain = run_hca_obs(
            &kernel.ddg,
            &fabric,
            &HcaConfig::default(),
            &Obs::disabled(),
        )
        .expect("plain run");
        let (traced, _) = traced_records(&kernel.ddg);
        assert_eq!(plain.mii.final_mii, traced.mii.final_mii, "{}", kernel.name);
        assert_eq!(plain.placement, traced.placement, "{}", kernel.name);
        assert_eq!(plain.stats, traced.stats, "{}", kernel.name);
        assert_eq!(
            plain.final_program.route_nodes, traced.final_program.route_nodes,
            "{}",
            kernel.name
        );
    }
}

#[test]
fn trace_round_trips_through_jsonl() {
    let kernel = &hca_kernels::table1_kernels()[0];
    let (_, records) = traced_records(&kernel.ddg);
    let mut text = String::new();
    for r in &records {
        text.push_str(&serde_json::to_string(r).unwrap());
        text.push('\n');
    }
    let back = hca_obs::trace::read_jsonl(&text).unwrap();
    assert_eq!(back, records);
}
