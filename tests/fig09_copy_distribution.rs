//! Figure 9 — copy distribution and ILI generation: "compatibly with the
//! availability of communication wires, the Mapper uses only one line to
//! broadcast x and z, moreover it tries to use all the possible
//! communication patterns to map the remaining copies, e.g. distributing
//! a, b and c over three wires"; then "the Mapper generates also four ILI",
//! with ILI₀,₃ reporting four input lines (a | b | c | k,h) and one output
//! line (z).

use hca_repro::arch::{LevelSpec, ResourceTable};
use hca_repro::ddg::NodeId;
use hca_repro::mapper::{map_level, MapOptions};
use hca_repro::pg::{AssignedPg, Pg, PgNodeId};

/// The PG̅ of Figure 9a: x broadcast 0→{1,2}; a,b,c point-to-point 0→3;
/// k,h on one arc 1→3; z broadcast 3→{0,1}.
fn figure9_assigned() -> AssignedPg {
    let (x, a, b, c, k, h, z) = (
        NodeId(10),
        NodeId(0),
        NodeId(1),
        NodeId(2),
        NodeId(3),
        NodeId(4),
        NodeId(20),
    );
    let pg = Pg::complete(4, ResourceTable::of_cns(16));
    let mut apg = AssignedPg::new(pg);
    apg.copies.insert((PgNodeId(0), PgNodeId(1)), vec![x]);
    apg.copies.insert((PgNodeId(0), PgNodeId(2)), vec![x]);
    apg.copies.insert((PgNodeId(0), PgNodeId(3)), vec![a, b, c]);
    apg.copies.insert((PgNodeId(1), PgNodeId(3)), vec![k, h]);
    apg.copies.insert((PgNodeId(3), PgNodeId(0)), vec![z]);
    apg.copies.insert((PgNodeId(3), PgNodeId(1)), vec![z]);
    apg
}

fn spec() -> LevelSpec {
    LevelSpec {
        arity: 4,
        in_wires: 4,
        out_wires: 4,
        glue_in: 0,
        glue_out: 0,
    }
}

#[test]
fn broadcasts_use_one_line_and_p2p_copies_spread() {
    let out = map_level(
        &figure9_assigned(),
        spec(),
        MapOptions {
            balance_split: true,
        },
    )
    .unwrap();
    // x occupies exactly one wire, broadcast to clusters 1 and 2.
    let xw: Vec<_> = out
        .group
        .wires
        .iter()
        .filter(|w| w.values.contains(&NodeId(10)))
        .collect();
    assert_eq!(xw.len(), 1);
    assert_eq!(xw[0].receivers, vec![1, 2]);
    // a, b, c are distributed over three parallel wires (pressure 1 each).
    let p2p: Vec<_> = out
        .group
        .wires
        .iter()
        .filter(|w| {
            [NodeId(0), NodeId(1), NodeId(2)]
                .iter()
                .any(|v| w.values.contains(v))
        })
        .collect();
    assert_eq!(p2p.len(), 3, "a, b, c over three wires");
    assert!(p2p.iter().all(|w| w.pressure() == 1));
    // z: one broadcast line from cluster 3.
    let zw: Vec<_> = out
        .group
        .wires
        .iter()
        .filter(|w| w.values.contains(&NodeId(20)))
        .collect();
    assert_eq!(zw.len(), 1);
}

#[test]
fn ili_of_subproblem_3_matches_figure_9c() {
    let out = map_level(
        &figure9_assigned(),
        spec(),
        MapOptions {
            balance_split: true,
        },
    )
    .unwrap();
    let ili3 = &out.child_ilis[3];
    // Four input lines: a | b | c | {k, h}.
    assert_eq!(ili3.inputs.len(), 4);
    let mut sizes: Vec<usize> = ili3.inputs.iter().map(|w| w.values.len()).collect();
    sizes.sort_unstable();
    assert_eq!(sizes, vec![1, 1, 1, 2]);
    // One output line carrying z.
    assert_eq!(ili3.outputs.len(), 1);
    assert_eq!(ili3.outputs[0].values, vec![NodeId(20)]);
}
