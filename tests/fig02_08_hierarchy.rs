//! Figures 2 and 8 — the 64-cluster DSPFabric hierarchy and the paper's
//! problem decomposition: "each node of PG₀ contains 16 ALUs/AGs, each node
//! of PG₀,ᵢ contains 4 ALUs/AGs and each node of PG₀,ᵢ,ⱼ contains only one
//! ALU/AG".

use hca_repro::arch::{DspFabric, ResourceTable};
use hca_repro::hca::decompose::level_pg;
use hca_repro::pg::Ili;

#[test]
fn figure2_machine_shape() {
    let f = DspFabric::standard(8, 8, 8);
    assert_eq!(f.depth(), 3);
    assert_eq!(f.num_cns(), 64);
    // 4 cluster-sets of 16 CNs, each set 4 clusters of 4 CNs.
    assert_eq!(f.level(0).arity, 4);
    assert_eq!(f.level(1).arity, 4);
    assert_eq!(f.level(2).arity, 4);
    // CNs: two incoming wires, one outgoing (§2.2).
    assert_eq!(f.level(2).in_wires, 2);
    assert_eq!(f.level(2).out_wires, 1);
}

#[test]
fn figure8_resource_tables_per_level() {
    let f = DspFabric::standard(8, 8, 8);
    for d in 0..3 {
        let pg = level_pg(&f, d, &Ili::root());
        assert_eq!(pg.num_nodes(), 4);
        let expect = match d {
            0 => ResourceTable::of_cns(16),
            1 => ResourceTable::of_cns(4),
            _ => ResourceTable::CN,
        };
        for c in pg.cluster_ids() {
            assert_eq!(pg.node(c).rt, expect, "depth {d}");
        }
        // MUXes make every sibling potentially reachable: complete graph.
        for a in pg.cluster_ids() {
            assert_eq!(pg.potential_succs(a).len(), 3);
        }
    }
}

#[test]
fn section4_path_explosion() {
    // "Two computation nodes at different sides of level 0 MUXes are
    // potentially connected by K²M²N² parallel shortest paths."
    let f = DspFabric::standard(8, 8, 8);
    let a = f.cn_of_path(&[0, 0, 0]);
    let b = f.cn_of_path(&[1, 0, 0]);
    assert_eq!(f.parallel_shortest_paths(a, b), 8u128.pow(6));
    // Same-cluster CNs do not explode.
    let c = f.cn_of_path(&[0, 0, 1]);
    assert!(f.parallel_shortest_paths(a, c) < 8u128.pow(6));
}
