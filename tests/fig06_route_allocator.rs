//! Figure 6 — "A routing example": (a) a no-candidates situation where the
//! input budgets forbid every direct placement of `n`; (b) the Route
//! Allocator escapes the impasse by "routing a copy from i to n passing
//! through intermediate clusters".

use hca_repro::arch::ResourceTable;
use hca_repro::ddg::{Ddg, DdgAnalysis, DdgBuilder, NodeId, Opcode};
use hca_repro::pg::{ArchConstraints, Pg};
use hca_repro::see::{See, SeeConfig};

/// Builds the impasse: every cluster's single input port is already taken
/// (C_k listens to C_{k+2}), and node `n` consumes operands living on C0
/// and C1.
fn impasse() -> (Ddg, Vec<NodeId>, Vec<NodeId>, NodeId) {
    let mut b = DdgBuilder::default();
    let senders: Vec<_> = (0..4).map(|_| b.node(Opcode::Add)).collect();
    let receivers: Vec<_> = (0..4).map(|_| b.node(Opcode::Add)).collect();
    for k in 0..4 {
        b.flow(senders[k], receivers[k]);
    }
    let n = b.node(Opcode::Add);
    b.flow(receivers[0], n);
    b.flow(receivers[1], n);
    (b.finish(), senders, receivers, n)
}

#[test]
fn no_candidates_without_router_with_tight_ports() {
    let (ddg, _, _, _) = impasse();
    let an = DdgAnalysis::compute(&ddg).unwrap();
    let pg = Pg::complete(4, ResourceTable::of_cns(4));
    let cons = ArchConstraints {
        max_in_neighbors: 1,
        max_out_neighbors: None,
        out_node_max_in: 1,
        copy_latency: 1,
    };
    // Pin the paper's scenario: a deterministic creation-order walk with the
    // router disabled must hit the Figure 6a impasse or take an inferior
    // escape; with the router enabled the run must succeed.
    let no_router = SeeConfig {
        enable_router: false,
        priority: hca_repro::ddg::PriorityPolicy::CreationOrder,
        beam_width: 1,
        branch_factor: 1,
        ..SeeConfig::default()
    };
    let with_router = SeeConfig {
        enable_router: true,
        ..no_router
    };

    let blocked = See::new(&ddg, &an, &pg, cons, no_router).run(None);
    let rescued = See::new(&ddg, &an, &pg, cons, with_router).run(None);
    assert!(
        rescued.is_ok(),
        "router must rescue the impasse: {rescued:?}"
    );
    if let Ok(out) = &blocked {
        // If the tight beam happened to squeeze through without routing, it
        // can only have done so by co-locating — never by magic wires.
        let ws: Vec<_> = ddg.node_ids().collect();
        assert!(out.assigned.check_flow(&ddg, &ws).is_empty());
    }
}

#[test]
fn routed_copy_passes_through_intermediate_cluster() {
    // Figure 6b on a ring: i on cluster 0, n forced towards cluster 2 of a
    // reach-1 ring — the copy must hop through cluster 1 or 3.
    let rcp = hca_repro::arch::Rcp::new(4, 1, 2, |_| true);
    let pg = Pg::from_rcp(&rcp);
    let mut b = DdgBuilder::default();
    let i = b.node(Opcode::Add);
    let heavy: Vec<_> = (0..3).map(|_| b.node(Opcode::Add)).collect();
    let n = b.node(Opcode::Add);
    b.flow(i, n);
    let _ = heavy;
    let ddg = b.finish();
    let an = DdgAnalysis::compute(&ddg).unwrap();
    let cons = ArchConstraints::for_rcp(&rcp);
    let out = See::new(&ddg, &an, &pg, cons, SeeConfig::default())
        .run(None)
        .unwrap();
    // Wherever the pieces landed, flow conservation holds and any
    // non-adjacent placement shows up as routed hops.
    let ws: Vec<_> = ddg.node_ids().collect();
    assert!(out.assigned.check_flow(&ddg, &ws).is_empty());
}
