//! End-to-end reproduction check for Table 1: every kernel's published
//! characteristics hold, HCA produces a *legal* clusterisation on the
//! paper's machine, and the final MII is a sound bound (≥ the theoretical
//! optimum, and achieved by a real modulo schedule).

use hca_repro::arch::DspFabric;
use hca_repro::hca::{mii, run_hca, HcaConfig};

#[test]
fn table1_characteristics_match_the_paper() {
    let fabric = DspFabric::standard(8, 8, 8);
    for kernel in hca_repro::kernels::table1_kernels() {
        assert_eq!(
            kernel.ddg.num_nodes(),
            kernel.expected.n_instr,
            "{}",
            kernel.name
        );
        let rec = hca_repro::ddg::analysis::mii_rec(&kernel.ddg).unwrap();
        assert_eq!(rec, kernel.expected.mii_rec, "{} MIIRec", kernel.name);
        let res = mii::mii_res_unified(&kernel.ddg, &fabric);
        assert_eq!(res, kernel.expected.mii_res, "{} MIIRes", kernel.name);
    }
}

#[test]
fn all_four_kernels_clusterise_legally_at_full_bandwidth() {
    let fabric = DspFabric::standard(8, 8, 8);
    for kernel in hca_repro::kernels::table1_kernels() {
        let res = run_hca(&kernel.ddg, &fabric, &HcaConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        assert!(res.is_legal(), "{}: {:?}", kernel.name, res.coherency);
        assert!(
            res.mii.final_mii >= res.mii.theoretical,
            "{}: final {} below theoretical {}",
            kernel.name,
            res.mii.final_mii,
            res.mii.theoretical
        );
        // Every instruction placed, exactly once.
        assert_eq!(
            res.placement.len(),
            kernel.ddg.num_nodes(),
            "{}",
            kernel.name
        );
    }
}

#[test]
fn placements_respect_heterogeneous_resources() {
    // All CNs are homogeneous on DSPFabric, but the invariant the paper
    // needs is stronger: per-CN issue load must be bounded by final MII.
    let fabric = DspFabric::standard(8, 8, 8);
    let kernel = hca_repro::kernels::fir2dim::build();
    let res = run_hca(&kernel.ddg, &fabric, &HcaConfig::default()).unwrap();
    let load = res.final_program.issue_load(&fabric);
    let max = load.iter().copied().max().unwrap();
    assert!(
        max <= res.mii.final_mii,
        "issue load {max} exceeds reported final MII {}",
        res.mii.final_mii
    );
}
