//! Property-based tests over randomly generated loop bodies: for *any*
//! schedulable synthetic DDG, the whole pipeline must preserve its
//! invariants — legality of the clusterisation, soundness of the MII
//! bound, schedulability, and bit-exact execution.

use hca_repro::arch::DspFabric;
use hca_repro::hca::{run_hca, HcaConfig};
use hca_repro::kernels::synthetic::{generate, SyntheticSpec};
use hca_repro::sched::{modulo_schedule, KernelSchedule};
use hca_repro::sim::verify_execution;
use proptest::prelude::*;
use rand::SeedableRng;

fn spec_strategy() -> impl Strategy<Value = SyntheticSpec> {
    (
        8usize..80,
        2usize..12,
        0.0f64..0.6,
        0.0f64..0.4,
        0usize..3,
        any::<u64>(),
    )
        .prop_map(
            |(nodes, width, density, mem_ratio, accumulators, seed)| SyntheticSpec {
                nodes,
                width,
                density,
                mem_ratio,
                accumulators,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hca_is_legal_and_mii_sound_on_random_ddgs(spec in spec_strategy()) {
        let ddg = generate(&spec);
        let fabric = DspFabric::standard(8, 8, 8);
        let res = run_hca(&ddg, &fabric, &HcaConfig::default())
            .expect("synthetic DDGs always clusterise with the fallbacks");
        prop_assert!(res.is_legal(), "illegal: {:?}", res.coherency);
        prop_assert!(res.mii.final_mii >= res.mii.theoretical);
        prop_assert_eq!(res.placement.len(), ddg.num_nodes());
        // Per-CN issue load never exceeds the reported bound.
        let max_load = res.final_program.issue_load(&fabric).into_iter().max().unwrap_or(0);
        prop_assert!(max_load <= res.mii.final_mii);
    }

    #[test]
    fn scheduled_execution_matches_reference(seed in any::<u64>()) {
        let spec = SyntheticSpec {
            nodes: 40,
            width: 6,
            density: 0.3,
            mem_ratio: 0.2,
            accumulators: 2,
            seed,
        };
        let ddg = generate(&spec);
        let fabric = DspFabric::standard(8, 8, 8);
        let res = run_hca(&ddg, &fabric, &HcaConfig::default()).unwrap();
        prop_assume!(res.is_legal());
        let sched = modulo_schedule(&res.final_program, &fabric, res.mii.final_mii).unwrap();
        let folded = KernelSchedule::fold(&res.final_program, &fabric, &sched);
        let report = verify_execution(&ddg, &res.final_program, &fabric, &folded, 6)
            .expect("execution matches");
        prop_assert_eq!(report.trip, 6);
    }

    #[test]
    fn journal_roundtrip_survives_random_synthetic_ddgs(seed in any::<u64>()) {
        // The SoA state (flat arc table, contiguous load columns) must
        // unwind bit-exactly through the journal on arbitrary loop bodies,
        // not just the hand-built fixtures.
        let spec = SyntheticSpec {
            nodes: 24,
            width: 5,
            density: 0.3,
            mem_ratio: 0.2,
            accumulators: 1,
            seed,
        };
        let ddg = generate(&spec);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        hca_repro::check::journal::journal_roundtrip_check(&ddg, 4, &mut rng)
            .map_err(TestCaseError::fail)?;
    }

    #[test]
    fn mii_rec_invariant_under_node_relabelling(seed in any::<u64>()) {
        // MIIRec depends only on cycle structure: generating the same graph
        // twice must agree, and adding an isolated node never changes it.
        let spec = SyntheticSpec { nodes: 30, seed, ..SyntheticSpec::default() };
        let g1 = generate(&spec);
        let g2 = generate(&spec);
        let m1 = hca_repro::ddg::analysis::mii_rec(&g1).unwrap();
        prop_assert_eq!(m1, hca_repro::ddg::analysis::mii_rec(&g2).unwrap());
        let mut g3 = g1.clone();
        g3.add_node(hca_repro::ddg::Opcode::Const, None);
        prop_assert_eq!(m1, hca_repro::ddg::analysis::mii_rec(&g3).unwrap());
    }
}

/// The lane-batched scoring kernel against the scalar reference over 200
/// fixed synthetic seeds: for every (state, node) expansion the batched
/// kernel must accept exactly the scalar candidate set with bit-identical
/// scores — full batches, partial batches and scalar fallbacks alike —
/// and the candidate filter must produce the same survivors from either
/// push order, including under a degenerate NaN margin and under
/// non-finite weights (the `1e12` cost-clamp path).
#[test]
fn lane_batched_scorer_bit_equals_scalar_on_200_seeds() {
    use hca_repro::arch::ResourceTable;
    use hca_repro::ddg::DdgAnalysis;
    use hca_repro::pg::{ArchConstraints, Pg, PgNodeId};
    use hca_repro::see::filters::CandidateFilter;
    use hca_repro::see::{
        node_view, score_candidates_batched, score_if_assignable, CandList, CostWeights, LaneStats,
        PartialState, SeeContext, LANES,
    };

    let mut lane_total = 0usize;
    let mut tail_total = 0usize;
    for seed in 0..200u64 {
        let spec = SyntheticSpec {
            nodes: 12 + (seed % 30) as usize,
            width: 4,
            density: 0.3,
            mem_ratio: 0.2,
            accumulators: (seed % 3) as usize,
            seed,
        };
        let ddg = generate(&spec);
        let analysis = DdgAnalysis::compute(&ddg).expect("synthetic DDGs analysable");
        // 3–9 clusters: candidate lists both below and above LANES.
        let clusters = 3 + (seed % 7) as usize;
        let pg = Pg::complete(clusters, ResourceTable::of_cns(4));
        let weights = match seed % 5 {
            0 => CostWeights {
                critical: f64::INFINITY,
                ..CostWeights::default()
            },
            1 => CostWeights::copies_only(),
            _ => CostWeights::default(),
        };
        let ctx = SeeContext {
            ddg: &ddg,
            analysis: &analysis,
            pg: &pg,
            constraints: ArchConstraints {
                max_in_neighbors: 2 + (seed % 3) as u32,
                max_out_neighbors: None,
                out_node_max_in: 1,
                copy_latency: 1,
            },
            weights,
            issue_cap: (seed % 2 == 0).then_some(3),
            statics: hca_repro::see::statics::PgStatics::build(&pg),
        };
        let order: Vec<_> = ddg.node_ids().collect();
        let mut st = PartialState::initial(&ctx, &order);
        for &n in &order {
            let view = node_view(&ctx, &st, n);
            let mut scalar = CandList::new();
            for c in view.candidates() {
                if let Some(cost) = score_if_assignable(&ctx, &st, &view, n, c) {
                    scalar.push((c, cost));
                }
            }
            let mut batched = CandList::new();
            let mut stats = LaneStats::default();
            score_candidates_batched(&ctx, &st, &view, n, &mut batched, &mut stats);
            let key = |v: &CandList| {
                let mut k: Vec<(PgNodeId, u64)> =
                    v.iter().map(|&(c, x)| (c, x.to_bits())).collect();
                k.sort();
                k
            };
            assert_eq!(
                key(&scalar),
                key(&batched),
                "seed {seed}: batched diverges from scalar for {n:?}"
            );
            // Partial batches flush at their real width, so each batch
            // accounts for 1..=LANES scored lanes.
            assert!(
                stats.lanes_scored <= LANES * stats.lane_batches
                    && stats.lanes_scored >= stats.lane_batches
            );
            lane_total += stats.lanes_scored;
            tail_total += stats.scalar_tail;
            // The two paths may push in different orders; the filter's total
            // (cost, cluster) sort must erase that — even when a NaN margin
            // disables margin pruning entirely.
            let filter = CandidateFilter {
                branch_factor: 3,
                margin: if seed % 4 == 0 { f64::NAN } else { 8.0 },
            };
            let mut fs = scalar.clone();
            filter.apply(&mut fs);
            let mut fb = batched.clone();
            filter.apply(&mut fb);
            assert_eq!(
                key(&fs),
                key(&fb),
                "seed {seed}: filtered survivors diverge for {n:?}"
            );
            assert_eq!(
                fs.iter().map(|c| c.0).collect::<Vec<_>>(),
                fb.iter().map(|c| c.0).collect::<Vec<_>>(),
                "seed {seed}: filtered order diverges for {n:?}"
            );
            if let Some(&(c, _)) = fs.first() {
                st.apply_assign(&ctx, n, c);
            }
        }
    }
    // The sweep is only meaningful if it exercised both kernel paths.
    assert!(lane_total > 0, "no candidate ever scored through a lane");
    assert!(tail_total > 0, "no candidate ever took the scalar tail");
}

/// A deterministic ≥100-seed floor under the proptest exploration above:
/// the journal round-trip must hold on every one of these synthetic loop
/// bodies regardless of how the proptest config is tuned.
#[test]
fn journal_roundtrip_holds_on_100_fixed_seeds() {
    for seed in 0..100u64 {
        let spec = SyntheticSpec {
            nodes: 18,
            width: 4,
            density: 0.3,
            mem_ratio: 0.2,
            accumulators: 1,
            seed,
        };
        let ddg = generate(&spec);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        hca_repro::check::journal::journal_roundtrip_check(&ddg, 4, &mut rng)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
