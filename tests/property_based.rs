//! Property-based tests over randomly generated loop bodies: for *any*
//! schedulable synthetic DDG, the whole pipeline must preserve its
//! invariants — legality of the clusterisation, soundness of the MII
//! bound, schedulability, and bit-exact execution.

use hca_repro::arch::DspFabric;
use hca_repro::hca::{run_hca, HcaConfig};
use hca_repro::kernels::synthetic::{generate, SyntheticSpec};
use hca_repro::sched::{modulo_schedule, KernelSchedule};
use hca_repro::sim::verify_execution;
use proptest::prelude::*;
use rand::SeedableRng;

fn spec_strategy() -> impl Strategy<Value = SyntheticSpec> {
    (
        8usize..80,
        2usize..12,
        0.0f64..0.6,
        0.0f64..0.4,
        0usize..3,
        any::<u64>(),
    )
        .prop_map(
            |(nodes, width, density, mem_ratio, accumulators, seed)| SyntheticSpec {
                nodes,
                width,
                density,
                mem_ratio,
                accumulators,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hca_is_legal_and_mii_sound_on_random_ddgs(spec in spec_strategy()) {
        let ddg = generate(&spec);
        let fabric = DspFabric::standard(8, 8, 8);
        let res = run_hca(&ddg, &fabric, &HcaConfig::default())
            .expect("synthetic DDGs always clusterise with the fallbacks");
        prop_assert!(res.is_legal(), "illegal: {:?}", res.coherency);
        prop_assert!(res.mii.final_mii >= res.mii.theoretical);
        prop_assert_eq!(res.placement.len(), ddg.num_nodes());
        // Per-CN issue load never exceeds the reported bound.
        let max_load = res.final_program.issue_load(&fabric).into_iter().max().unwrap_or(0);
        prop_assert!(max_load <= res.mii.final_mii);
    }

    #[test]
    fn scheduled_execution_matches_reference(seed in any::<u64>()) {
        let spec = SyntheticSpec {
            nodes: 40,
            width: 6,
            density: 0.3,
            mem_ratio: 0.2,
            accumulators: 2,
            seed,
        };
        let ddg = generate(&spec);
        let fabric = DspFabric::standard(8, 8, 8);
        let res = run_hca(&ddg, &fabric, &HcaConfig::default()).unwrap();
        prop_assume!(res.is_legal());
        let sched = modulo_schedule(&res.final_program, &fabric, res.mii.final_mii).unwrap();
        let folded = KernelSchedule::fold(&res.final_program, &fabric, &sched);
        let report = verify_execution(&ddg, &res.final_program, &fabric, &folded, 6)
            .expect("execution matches");
        prop_assert_eq!(report.trip, 6);
    }

    #[test]
    fn journal_roundtrip_survives_random_synthetic_ddgs(seed in any::<u64>()) {
        // The SoA state (flat arc table, contiguous load columns) must
        // unwind bit-exactly through the journal on arbitrary loop bodies,
        // not just the hand-built fixtures.
        let spec = SyntheticSpec {
            nodes: 24,
            width: 5,
            density: 0.3,
            mem_ratio: 0.2,
            accumulators: 1,
            seed,
        };
        let ddg = generate(&spec);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        hca_repro::check::journal::journal_roundtrip_check(&ddg, 4, &mut rng)
            .map_err(TestCaseError::fail)?;
    }

    #[test]
    fn mii_rec_invariant_under_node_relabelling(seed in any::<u64>()) {
        // MIIRec depends only on cycle structure: generating the same graph
        // twice must agree, and adding an isolated node never changes it.
        let spec = SyntheticSpec { nodes: 30, seed, ..SyntheticSpec::default() };
        let g1 = generate(&spec);
        let g2 = generate(&spec);
        let m1 = hca_repro::ddg::analysis::mii_rec(&g1).unwrap();
        prop_assert_eq!(m1, hca_repro::ddg::analysis::mii_rec(&g2).unwrap());
        let mut g3 = g1.clone();
        g3.add_node(hca_repro::ddg::Opcode::Const, None);
        prop_assert_eq!(m1, hca_repro::ddg::analysis::mii_rec(&g3).unwrap());
    }
}

/// A deterministic ≥100-seed floor under the proptest exploration above:
/// the journal round-trip must hold on every one of these synthetic loop
/// bodies regardless of how the proptest config is tuned.
#[test]
fn journal_roundtrip_holds_on_100_fixed_seeds() {
    for seed in 0..100u64 {
        let spec = SyntheticSpec {
            nodes: 18,
            width: 4,
            density: 0.3,
            mem_ratio: 0.2,
            accumulators: 1,
            seed,
        };
        let ddg = generate(&spec);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        hca_repro::check::journal::journal_roundtrip_check(&ddg, 4, &mut rng)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
