//! The complete toolchain across crate boundaries: DDG → HCA → coherency →
//! modulo schedule → kernel-only fold → cycle-level simulation verified
//! against the sequential reference.

use hca_repro::arch::DspFabric;
use hca_repro::hca::{run_hca, HcaConfig};
use hca_repro::sched::{modulo_schedule, register_pressure, KernelSchedule};
use hca_repro::sim::verify_execution;

fn end_to_end(ddg: &hca_repro::ddg::Ddg, trip: u64) {
    let fabric = DspFabric::standard(8, 8, 8);
    let res = run_hca(ddg, &fabric, &HcaConfig::default()).expect("clusterise");
    assert!(res.is_legal(), "{:?}", res.coherency);
    let sched = modulo_schedule(&res.final_program, &fabric, res.mii.final_mii).expect("schedule");
    assert!(sched.ii >= res.mii.final_mii);
    hca_repro::sched::modsched::validate(&res.final_program, &fabric, &sched)
        .expect("schedule validates");
    let folded = KernelSchedule::fold(&res.final_program, &fabric, &sched);
    let pressure = register_pressure(&res.final_program, &fabric, &sched);
    assert_eq!(pressure.len(), fabric.num_cns());
    let report = verify_execution(ddg, &res.final_program, &fabric, &folded, trip)
        .expect("simulation matches reference");
    assert_eq!(report.trip, trip);
}

#[test]
fn fir2dim_runs_end_to_end() {
    end_to_end(&hca_repro::kernels::fir2dim::build().ddg, 12);
}

#[test]
fn idcthor_runs_end_to_end() {
    end_to_end(&hca_repro::kernels::idct::build().ddg, 8);
}

#[test]
fn mpeg2inter_runs_end_to_end() {
    end_to_end(&hca_repro::kernels::mpeg2::build().ddg, 8);
}

#[test]
fn h264deblocking_runs_end_to_end() {
    end_to_end(&hca_repro::kernels::h264::build().ddg, 4);
}

#[test]
fn dspstone_extras_run_end_to_end() {
    end_to_end(&hca_repro::kernels::dspstone::fir(8), 8);
    end_to_end(&hca_repro::kernels::dspstone::biquad(), 8);
    end_to_end(&hca_repro::kernels::dspstone::matvec_row(8), 6);
    end_to_end(&hca_repro::kernels::dspstone::dot_product(), 8);
    end_to_end(&hca_repro::kernels::dspstone::n_real_updates(4), 6);
    end_to_end(&hca_repro::kernels::dspstone::convolution(6), 6);
    end_to_end(&hca_repro::kernels::dspstone::lms(4), 6);
    end_to_end(&hca_repro::kernels::dspstone::matrix1x3(), 6);
}

#[test]
fn unrolled_kernels_run_end_to_end() {
    // Unrolling doubles the working set; the pipeline must still verify.
    let base = hca_repro::kernels::dspstone::dot_product();
    end_to_end(&hca_repro::ddg::unroll(&base, 2), 6);
    end_to_end(&hca_repro::ddg::unroll(&base, 4), 4);
}

#[test]
fn sms_schedules_also_execute_correctly() {
    // The alternative scheduler feeds the same folding and simulation path.
    let fabric = DspFabric::standard(8, 8, 8);
    for ddg in [
        hca_repro::kernels::fir2dim::build().ddg,
        hca_repro::kernels::dspstone::biquad(),
    ] {
        let res = run_hca(&ddg, &fabric, &HcaConfig::default()).unwrap();
        let sched =
            hca_repro::sched::swing_schedule(&res.final_program, &fabric, res.mii.final_mii)
                .expect("SMS schedules");
        let folded = KernelSchedule::fold(&res.final_program, &fabric, &sched);
        verify_execution(&ddg, &res.final_program, &fabric, &folded, 8)
            .expect("SMS-scheduled execution matches the reference");
    }
}

#[test]
fn reduced_machines_run_end_to_end() {
    // A two-level 16-CN machine exercises the depth-2 code paths.
    let fabric = DspFabric::two_level(4, 4, 4);
    let ddg = hca_repro::kernels::dspstone::fir(6);
    let res = run_hca(&ddg, &fabric, &HcaConfig::default()).expect("clusterise");
    assert!(res.is_legal());
    let sched = modulo_schedule(&res.final_program, &fabric, res.mii.final_mii).unwrap();
    let folded = KernelSchedule::fold(&res.final_program, &fabric, &sched);
    verify_execution(&ddg, &res.final_program, &fabric, &folded, 10).unwrap();
}
