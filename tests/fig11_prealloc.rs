//! Figure 11 — "Preallocation of communication wires from/to the outer
//! level": the glue wires mandated by the ILI are configured before copy
//! distribution and consume the receivers' input ports, "partially limiting
//! the reconfiguration space".

use hca_repro::arch::topology::WireSource;
use hca_repro::arch::{LevelSpec, ResourceTable};
use hca_repro::ddg::{DdgBuilder, Opcode};
use hca_repro::mapper::{map_level, MapOptions};
use hca_repro::pg::{AssignedPg, Ili, IliWire, Pg, PgNodeId};

#[test]
fn glue_wires_are_preallocated_and_consume_ports() {
    let mut b = DdgBuilder::default();
    let ext = b.node(Opcode::Add); // arrives on a glue-in wire
    let k = b.node(Opcode::Add); // leaves on a glue-out wire
    let u = b.op_with(Opcode::Add, &[ext]);
    let _ = (k, u);
    let ddg = b.finish();

    let mut pg = Pg::complete(2, ResourceTable::of_cns(4));
    pg.attach_ili(&Ili {
        inputs: vec![IliWire::new(vec![ext])],
        outputs: vec![IliWire::new(vec![k])],
    });
    let inp = pg.input_carrying(ext).unwrap();
    let mut apg = AssignedPg::new(pg);
    apg.assign(ext, inp);
    apg.assign(u, PgNodeId(1));
    apg.assign(k, PgNodeId(0));
    apg.derive_copies(&ddg, None);

    let spec = LevelSpec {
        arity: 2,
        in_wires: 2,
        out_wires: 2,
        glue_in: 2,
        glue_out: 2,
    };
    let out = map_level(&apg, spec, MapOptions::default()).unwrap();

    // The glue-in wire exists, sourced from the parent, landing on member 1.
    let glue_in: Vec<_> = out
        .group
        .wires
        .iter()
        .filter(|w| w.src == WireSource::Parent)
        .collect();
    assert_eq!(glue_in.len(), 1);
    assert_eq!(glue_in[0].receivers, vec![1]);
    // The glue-out wire continues to the parent from member 0.
    let glue_out: Vec<_> = out.group.wires.iter().filter(|w| w.to_parent).collect();
    assert_eq!(glue_out.len(), 1);
    assert_eq!(glue_out[0].src, WireSource::Member(0));
    assert_eq!(out.stats.glue_in_wires, 1);
}

#[test]
fn preallocated_glue_limits_the_remaining_space() {
    // Budget math: member 1 has 1 input port; the glue-in wire takes it, so
    // a sibling copy towards member 1 cannot be mapped any more.
    let mut b = DdgBuilder::default();
    let ext = b.node(Opcode::Add);
    let u = b.op_with(Opcode::Add, &[ext]); // member 1 consumes the glue
    let p = b.node(Opcode::Add); // member 0 produces…
    let q = b.op_with(Opcode::Add, &[p]); // …and member 1 would also need p
    let _ = (u, q);
    let ddg = b.finish();

    let mut pg = Pg::complete(2, ResourceTable::of_cns(4));
    pg.attach_ili(&Ili {
        inputs: vec![IliWire::new(vec![ext])],
        outputs: vec![],
    });
    let inp = pg.input_carrying(ext).unwrap();
    let mut apg = AssignedPg::new(pg);
    apg.assign(ext, inp);
    apg.assign(u, PgNodeId(1));
    apg.assign(p, PgNodeId(0));
    apg.assign(q, PgNodeId(1));
    apg.derive_copies(&ddg, None);

    let tight = LevelSpec {
        arity: 2,
        in_wires: 1,
        out_wires: 2,
        glue_in: 1,
        glue_out: 0,
    };
    let err = map_level(&apg, tight, MapOptions::default()).unwrap_err();
    assert!(err.to_string().contains("input ports"), "{err}");

    // With one more port everything fits.
    let ok = LevelSpec {
        in_wires: 2,
        ..tight
    };
    assert!(map_level(&apg, ok, MapOptions::default()).is_ok());
}
