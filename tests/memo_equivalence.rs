//! Memoization transparency: the cross-sub-problem memo cache must be
//! invisible in every observable output.
//!
//! The memo key in `hca-core/src/memo.rs` is argued sound by construction
//! (it encodes everything the solver reads, up to a renumbering the solver
//! is equivariant under). This suite is the empirical referee: across a
//! fuzzed population of random kernels, a run with the cache enabled must
//! reproduce the cache-disabled run bit-for-bit — placements, MII report,
//! search statistics, final program and legality verdict.

use hca_repro::arch::DspFabric;
use hca_repro::check::gen::random_kernel;
use hca_repro::hca::{run_hca, HcaConfig, HcaResult};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Serialises tests in this file: the thread override is process-global.
static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn run_with_memo(
    ddg: &hca_repro::ddg::Ddg,
    fabric: &DspFabric,
    memo: bool,
) -> Result<HcaResult, String> {
    let config = HcaConfig {
        memo,
        ..HcaConfig::default()
    };
    run_hca(ddg, fabric, &config).map_err(|e| e.to_string())
}

/// Compare every observable field of two runs; panic with context on any
/// divergence. Wall-clock inside `SeeStats` is excluded the same way the
/// determinism suite excludes it: `step_time_ns` lengths must match but
/// values may differ — everything else in `stats` is compared exactly.
fn assert_equivalent(name: &str, on: &HcaResult, off: &HcaResult) {
    assert_eq!(on.placement, off.placement, "{name}: placements diverge");
    assert_eq!(on.mii, off.mii, "{name}: MII reports diverge");
    assert_eq!(on.stats, off.stats, "{name}: run statistics diverge");
    assert_eq!(
        on.final_program.placement, off.final_program.placement,
        "{name}: final-program placements diverge"
    );
    assert_eq!(
        on.final_program.recv_nodes, off.final_program.recv_nodes,
        "{name}: copy (recv) primitives diverge"
    );
    assert_eq!(
        on.final_program.route_nodes, off.final_program.route_nodes,
        "{name}: route primitives diverge"
    );
    assert_eq!(
        on.is_legal(),
        off.is_legal(),
        "{name}: legality verdicts diverge"
    );
}

/// The headline gate from the issue: ≥100 fuzzed kernels, memo on vs. off,
/// bit-identical results (or the identical typed error).
#[test]
fn memo_on_off_bit_equality_under_fuzz() {
    let _g = OVERRIDE_LOCK.lock().unwrap();
    // Single-threaded runs keep each comparison reproducible; the
    // determinism suite separately pins thread-count invariance.
    hca_par::set_thread_override(Some(1));
    let fabric = DspFabric::standard(8, 8, 8);
    for seed in 0..110u64 {
        let mut rng = StdRng::seed_from_u64(0xC0FF_EE00 + seed);
        let ddg = random_kernel(&mut rng, 48);
        let name = format!("seed {seed} ({} nodes)", ddg.num_nodes());
        let on = run_with_memo(&ddg, &fabric, true);
        let off = run_with_memo(&ddg, &fabric, false);
        match (on, off) {
            (Ok(on), Ok(off)) => assert_equivalent(&name, &on, &off),
            (Err(a), Err(b)) => {
                assert_eq!(a, b, "{name}: error messages diverge");
            }
            (on, off) => panic!(
                "{name}: outcome kinds diverge (memo-on ok={}, memo-off ok={})",
                on.is_ok(),
                off.is_ok()
            ),
        }
    }
    hca_par::set_thread_override(None);
}

/// Memo transparency must also hold under the parallel driver, where hit
/// and miss counts vary with scheduling but results must not.
#[test]
fn memo_is_transparent_under_parallel_table1() {
    let _g = OVERRIDE_LOCK.lock().unwrap();
    hca_par::set_thread_override(Some(4));
    let fabric = DspFabric::standard(8, 8, 8);
    for kernel in hca_repro::kernels::table1_kernels() {
        let on = run_with_memo(&kernel.ddg, &fabric, true)
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        let off = run_with_memo(&kernel.ddg, &fabric, false)
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        assert_equivalent(kernel.name, &on, &off);
        assert!(on.is_legal(), "{}: memoized run illegal", kernel.name);
    }
    hca_par::set_thread_override(None);
}

/// Byte-budget eviction must be as invisible as the cache itself: a run
/// whose cache is squeezed hard enough to evict mid-run must still
/// reproduce the uncached run bit-for-bit — eviction may only ever cost
/// time, never change an answer.
#[test]
fn eviction_under_a_tiny_budget_never_changes_results() {
    use hca_repro::hca::{run_hca_shared, Memo};
    use hca_repro::kernels;

    let _g = OVERRIDE_LOCK.lock().unwrap();
    hca_par::set_thread_override(Some(1));
    let fabric = DspFabric::standard(8, 8, 8);
    let config = HcaConfig::default();
    let obs = hca_obs::Obs::disabled();

    // A workload big enough to fill a cache: the Table-1 kernels plus a
    // synthetic DAG, run back-to-back against one shared memo.
    let mut mix: Vec<(String, hca_repro::ddg::Ddg)> = kernels::table1_kernels()
        .into_iter()
        .map(|k| (k.name.to_string(), k.ddg))
        .collect();
    for (n, ddg) in kernels::synthetic::scaling_family(&[128], 0xB5E7) {
        mix.push((format!("synthetic{n}"), ddg));
    }

    // Pass 1: unbounded cache measures the workload's natural footprint.
    let roomy = Memo::new(Memo::DEFAULT_BUDGET);
    let reference: Vec<HcaResult> = mix
        .iter()
        .map(|(name, ddg)| {
            run_hca_shared(ddg, &fabric, &config, &obs, &roomy)
                .unwrap_or_else(|e| panic!("{name}: {e}"))
        })
        .collect();
    let footprint = roomy.approx_bytes();
    assert!(footprint > 0, "workload must populate the cache");

    // Pass 2: a quarter of the footprint forces eviction churn mid-run.
    let tiny = Memo::new(footprint / 4);
    for ((name, ddg), want) in mix.iter().zip(&reference) {
        let got = run_hca_shared(ddg, &fabric, &config, &obs, &tiny)
            .unwrap_or_else(|e| panic!("{name} (tiny budget): {e}"));
        assert_equivalent(&format!("{name} under eviction"), &got, want);
    }
    assert!(
        tiny.approx_bytes() <= tiny.budget(),
        "cache must respect its byte budget: {} > {}",
        tiny.approx_bytes(),
        tiny.budget()
    );
    assert!(
        tiny.evictions() > 0 || tiny.insertions() < roomy.insertions(),
        "a quarter-footprint budget must visibly constrain the cache \
         (evictions {} / insertions {} vs roomy {})",
        tiny.evictions(),
        tiny.insertions(),
        roomy.insertions()
    );
    hca_par::set_thread_override(None);
}
