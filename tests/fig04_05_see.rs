//! Figures 4 and 5 — the cluster-assignment framework and its bounded
//! exploration frontier: the SEE walks a priority list, evaluates candidate
//! clusters through `isAssignable` + the objective function, and the
//! candidate/node filters keep the frontier ("the grey zone") small.

use hca_repro::arch::ResourceTable;
use hca_repro::ddg::{DdgAnalysis, DdgBuilder, Opcode};
use hca_repro::pg::{ArchConstraints, Pg};
use hca_repro::see::{See, SeeConfig};

fn constraints() -> ArchConstraints {
    ArchConstraints {
        max_in_neighbors: 4,
        max_out_neighbors: None,
        out_node_max_in: 1,
        copy_latency: 1,
    }
}

/// A loop body with two independent chains and a shared producer.
fn sample() -> hca_repro::ddg::Ddg {
    let mut b = DdgBuilder::default();
    let src = b.node(Opcode::Load);
    for _ in 0..2 {
        let x = b.op_with(Opcode::Mul, &[src]);
        let y = b.op_with(Opcode::Add, &[x]);
        b.op_with(Opcode::Store, &[y]);
    }
    b.finish()
}

#[test]
fn beam_width_bounds_explored_states() {
    let ddg = sample();
    let an = DdgAnalysis::compute(&ddg).unwrap();
    let pg = Pg::complete(4, ResourceTable::of_cns(4));

    let run = |beam: usize| {
        let cfg = SeeConfig {
            beam_width: beam,
            ..SeeConfig::default()
        };
        See::new(&ddg, &an, &pg, constraints(), cfg)
            .run(None)
            .unwrap()
    };
    let narrow = run(1);
    let wide = run(16);
    // The frontier cap directly bounds the number of materialised partial
    // solutions (Figure 5's grey zone).
    assert!(narrow.stats.states_explored < wide.stats.states_explored);
    assert!(narrow.stats.states_explored <= ddg.num_nodes() * 3);
    // And a wider beam can only match or improve the objective.
    assert!(wide.cost <= narrow.cost + 1e-9);
}

#[test]
fn candidate_filter_prunes_branching() {
    let ddg = sample();
    let an = DdgAnalysis::compute(&ddg).unwrap();
    let pg = Pg::complete(4, ResourceTable::of_cns(4));
    let one = SeeConfig {
        branch_factor: 1,
        beam_width: 16,
        ..SeeConfig::default()
    };
    let three = SeeConfig {
        branch_factor: 3,
        beam_width: 16,
        ..SeeConfig::default()
    };
    let a = See::new(&ddg, &an, &pg, constraints(), one)
        .run(None)
        .unwrap();
    let b = See::new(&ddg, &an, &pg, constraints(), three)
        .run(None)
        .unwrap();
    assert!(a.stats.states_explored <= b.stats.states_explored);
}

#[test]
fn every_node_assigned_and_copies_recorded() {
    let ddg = sample();
    let an = DdgAnalysis::compute(&ddg).unwrap();
    let pg = Pg::complete(4, ResourceTable::of_cns(4));
    let out = See::new(&ddg, &an, &pg, constraints(), SeeConfig::default())
        .run(None)
        .unwrap();
    for n in ddg.node_ids() {
        assert!(out.assigned.cluster_of(n).is_some(), "{n} unassigned");
    }
    // The result is a PG̅ with cpy labels: flow conservation must hold.
    let ws: Vec<_> = ddg.node_ids().collect();
    let errs = out.assigned.check_flow(&ddg, &ws);
    assert!(errs.is_empty(), "{errs:?}");
}
