//! Figure 1 — "A 8-cluster RCP ring topology. (a) Potential connections
//! (b) A feasible topology": reconstructs the depicted machine and checks
//! that exactly the drawn class of topologies is admitted.

use hca_repro::arch::Rcp;

#[test]
fn potential_connections_match_figure_1a() {
    let rcp = Rcp::figure1();
    // Each cluster could receive a copy from 4 neighbours…
    for c in 0..8 {
        assert_eq!(rcp.potential_sources(c).len(), 4, "cluster {c}");
    }
    // …specifically the two nearest on each side of the ring.
    assert_eq!(rcp.potential_sources(3), vec![1, 2, 4, 5]);
}

#[test]
fn feasible_topology_of_figure_1b() {
    let rcp = Rcp::figure1();
    // K = 2 input ports: a nearest-neighbour double ring is feasible.
    let wires: Vec<(usize, usize)> = (0..8)
        .flat_map(|c| [((c + 7) % 8, c), ((c + 1) % 8, c)])
        .collect();
    assert!(rcp.check_topology(&wires).is_ok());
}

#[test]
fn infeasible_topologies_rejected() {
    let rcp = Rcp::figure1();
    // Exceeding the K = 2 input ports is rejected…
    let overload = [(1usize, 0usize), (2, 0), (7, 0)];
    assert!(rcp.check_topology(&overload).is_err());
    // …and so is wiring beyond the potential-connection reach.
    assert!(rcp.check_topology(&[(0, 4)]).is_err());
}
