//! Failure injection: corrupt each artefact of the pipeline and verify the
//! corresponding checker rejects it. A validator that never fires is
//! indistinguishable from no validator — these tests keep the coherency
//! checker, the schedule validator and the simulator honest.

use hca_repro::arch::DspFabric;
use hca_repro::hca::coherency::check_coherency;
use hca_repro::hca::{run_hca, HcaConfig};
use hca_repro::sched::{modsched, modulo_schedule, KernelSchedule};
use hca_repro::sim::{simulate, verify_execution};

fn clusterized() -> (hca_repro::ddg::Ddg, DspFabric, hca_repro::hca::HcaResult) {
    let ddg = hca_repro::kernels::fir2dim::build().ddg;
    let fabric = DspFabric::standard(8, 8, 8);
    let res = run_hca(&ddg, &fabric, &HcaConfig::default()).unwrap();
    assert!(res.is_legal());
    (ddg, fabric, res)
}

#[test]
fn dropping_a_wire_breaks_coherency() {
    let (ddg, fabric, mut res) = clusterized();
    // Remove every configured wire of the busiest group.
    let busiest = res
        .topology
        .iter()
        .max_by_key(|(_, g)| g.wires.len())
        .map(|(p, _)| p.clone())
        .expect("some group has wires");
    res.topology.group_mut(&busiest).wires.clear();
    let placement = res.placement.clone();
    let report = check_coherency(&fabric, &res.topology, &ddg, &|n| placement[&n]);
    assert!(!report.is_legal(), "dropped wires must be detected");
    assert!(!report.violations.is_empty());
}

#[test]
fn corrupting_a_wire_value_breaks_coherency() {
    let (ddg, fabric, mut res) = clusterized();
    // Blank the value lists of every wire in every group: structure stays,
    // content is gone.
    let groups: Vec<_> = res.topology.iter().map(|(p, _)| p.clone()).collect();
    let mut cleared = false;
    for p in groups {
        for w in &mut res.topology.group_mut(&p).wires {
            cleared |= !w.values.is_empty();
            w.values.clear();
        }
    }
    assert!(cleared, "fixture must have had copies");
    let placement = res.placement.clone();
    let report = check_coherency(&fabric, &res.topology, &ddg, &|n| placement[&n]);
    assert!(!report.is_legal());
}

#[test]
fn moving_a_node_breaks_coherency() {
    let (ddg, fabric, res) = clusterized();
    // Teleport one communicating node to the opposite corner of the machine
    // without re-routing anything.
    let placement = res.placement.clone();
    let victim = ddg
        .node_ids()
        .find(|&n| ddg.succs(n).next().is_some() && ddg.node(n).op != hca_repro::ddg::Opcode::Const)
        .unwrap();
    let far = fabric.cn_of_path(&[3, 3, 3]);
    let moved = move |n: hca_repro::ddg::NodeId| if n == victim { far } else { placement[&n] };
    let report = check_coherency(&fabric, &res.topology, &ddg, &moved);
    assert!(!report.is_legal(), "teleported node must be detected");
}

#[test]
fn schedule_validator_rejects_dependence_violation() {
    let (_, fabric, res) = clusterized();
    let mut s = modulo_schedule(&res.final_program, &fabric, res.mii.final_mii).unwrap();
    assert!(modsched::validate(&res.final_program, &fabric, &s).is_ok());
    // Find a dependent pair and swap the consumer before the producer.
    let e = res
        .final_program
        .ddg
        .edges()
        .iter()
        .find(|e| e.distance == 0 && e.latency > 0)
        .copied()
        .unwrap();
    s.time[e.dst.index()] = s.time[e.src.index()].saturating_sub(1);
    assert!(modsched::validate(&res.final_program, &fabric, &s).is_err());
}

#[test]
fn schedule_validator_rejects_issue_conflicts() {
    let (_, fabric, res) = clusterized();
    let mut s = modulo_schedule(&res.final_program, &fabric, res.mii.final_mii).unwrap();
    // Two ops of one CN forced into the same kernel slot.
    let fp = &res.final_program;
    let mut by_cn: std::collections::HashMap<_, Vec<_>> = std::collections::HashMap::new();
    for n in fp.ddg.node_ids() {
        by_cn.entry(fp.placement[n.index()]).or_default().push(n);
    }
    let pair = by_cn
        .values()
        .find(|v| v.len() >= 2)
        .expect("some CN holds two ops");
    s.time[pair[1].index()] = s.time[pair[0].index()];
    assert!(modsched::validate(&res.final_program, &fabric, &s).is_err());
}

#[test]
fn simulator_rejects_premature_issue() {
    let (ddg, fabric, res) = clusterized();
    let good = modulo_schedule(&res.final_program, &fabric, res.mii.final_mii).unwrap();
    // Build a kernel whose stage assignments lie: claim everything is
    // stage 0 so consumers issue before their producers' latency elapsed.
    let mut bad = good.clone();
    for t in bad.time.iter_mut() {
        *t %= bad.ii; // squash all stages away
    }
    // Slots collide now; nudge colliding ops onto their own slot in a wider
    // kernel so folding succeeds while the dependences stay broken.
    bad.ii = (res.final_program.ddg.num_nodes() as u32).max(bad.ii);
    let mut used: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
    for n in res.final_program.ddg.node_ids() {
        let cn = res.final_program.placement[n.index()].0;
        let mut t = bad.time[n.index()] % bad.ii;
        while !used.insert((cn, t)) {
            t = (t + 1) % bad.ii;
        }
        bad.time[n.index()] = t;
    }
    bad.stages = 1;
    let folded = KernelSchedule::fold(&res.final_program, &fabric, &bad);
    let out = simulate(&res.final_program, &fabric, &folded, 4);
    let verified = verify_execution(&ddg, &res.final_program, &fabric, &folded, 4);
    assert!(
        out.is_err() || verified.is_err(),
        "a broken schedule must not simulate cleanly"
    );
}
