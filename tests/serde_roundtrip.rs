//! Serialisation round-trips: DDGs and configured topologies survive
//! JSON encoding bit-exactly (the CLI and the experiment dumps rely on it).

use hca_repro::arch::topology::{ConfiguredWire, WireSource};
use hca_repro::arch::{DspFabric, Topology};
use hca_repro::ddg::{analysis, NodeId};

#[test]
fn ddg_roundtrips_through_json() {
    for kernel in hca_repro::kernels::table1_kernels() {
        let json = serde_json::to_string(&kernel.ddg).unwrap();
        let back: hca_repro::ddg::Ddg = serde_json::from_str(&json).unwrap();
        assert_eq!(back.num_nodes(), kernel.ddg.num_nodes(), "{}", kernel.name);
        assert_eq!(back.edges(), kernel.ddg.edges(), "{}", kernel.name);
        assert_eq!(
            analysis::mii_rec(&back).unwrap(),
            kernel.expected.mii_rec,
            "{}",
            kernel.name
        );
        // Adjacency rebuilt identically.
        for n in kernel.ddg.node_ids() {
            assert_eq!(back.out_degree(n), kernel.ddg.out_degree(n));
            assert_eq!(back.in_degree(n), kernel.ddg.in_degree(n));
            assert_eq!(back.node(n).op, kernel.ddg.node(n).op);
        }
    }
}

#[test]
fn machine_roundtrips_through_json() {
    let f = DspFabric::parse("2x4x4x4@8,6,4,2").unwrap();
    let json = serde_json::to_string(&f).unwrap();
    let back: DspFabric = serde_json::from_str(&json).unwrap();
    assert_eq!(back, f);
}

#[test]
fn topology_roundtrips_through_json() {
    let f = DspFabric::standard(8, 8, 8);
    let mut t = Topology::new();
    t.group_mut(&[0, 1]).wires.push(ConfiguredWire {
        src: WireSource::Member(2),
        receivers: vec![0, 3],
        to_parent: true,
        values: vec![NodeId(5), NodeId(9)],
    });
    t.group_mut(&[]).wires.push(ConfiguredWire {
        src: WireSource::Member(0),
        receivers: vec![1],
        to_parent: false,
        values: vec![NodeId(5)],
    });
    let json = serde_json::to_string(&t).unwrap();
    let back: Topology = serde_json::from_str(&json).unwrap();
    assert_eq!(back.num_wires(), 2);
    assert!(back.validate(&f).is_ok());
    assert_eq!(
        back.group(&[0, 1]).unwrap().wires,
        t.group(&[0, 1]).unwrap().wires
    );
}
