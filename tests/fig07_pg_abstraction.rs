//! Figure 7 — "Example of Pattern Graph": four clusters connected by
//! multiplexers are abstracted as a complete graph; the Mapper later
//! distributes the PG's copies onto the real MUX wires.

use hca_repro::arch::{LevelSpec, ResourceTable};
use hca_repro::ddg::NodeId;
use hca_repro::mapper::{map_level, MapOptions};
use hca_repro::pg::{AssignedPg, Pg, PgNodeId};

#[test]
fn mux_cluster_group_abstracts_to_complete_graph() {
    let pg = Pg::complete(4, ResourceTable::of_cns(4));
    for a in pg.cluster_ids() {
        for b in pg.cluster_ids() {
            assert_eq!(pg.is_potential(a, b), a != b);
        }
    }
}

#[test]
fn mapper_lowers_pg_copies_onto_wires() {
    // A PG̅ with copies on three arcs lowers onto ≤ capacity wires with the
    // same values, which is precisely the abstraction boundary of Figure 7.
    let pg = Pg::complete(4, ResourceTable::of_cns(4));
    let mut apg = AssignedPg::new(pg);
    apg.copies
        .insert((PgNodeId(0), PgNodeId(1)), vec![NodeId(0)]);
    apg.copies
        .insert((PgNodeId(0), PgNodeId(2)), vec![NodeId(0)]);
    apg.copies
        .insert((PgNodeId(3), PgNodeId(0)), vec![NodeId(7), NodeId(8)]);
    let spec = LevelSpec {
        arity: 4,
        in_wires: 4,
        out_wires: 4,
        glue_in: 0,
        glue_out: 0,
    };
    let out = map_level(&apg, spec, MapOptions::default()).unwrap();
    // Value 0 broadcast from member 0 — a single wire reaching 1 and 2.
    let w0: Vec<_> = out
        .group
        .wires
        .iter()
        .filter(|w| w.values.contains(&NodeId(0)))
        .collect();
    assert_eq!(w0.len(), 1);
    let mut rec = w0[0].receivers.clone();
    rec.sort_unstable();
    assert_eq!(rec, vec![1, 2]);
    // Everything the PG promised is on some wire.
    for v in [NodeId(7), NodeId(8)] {
        assert!(out.group.wires.iter().any(|w| w.values.contains(&v)));
    }
}
