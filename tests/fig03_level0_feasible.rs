//! Figure 3 — "A feasible inter-connection among cluster sets" at level 0
//! with N = 4: output wires broadcast, input wires are single-source, and
//! the N-wire budgets bound what can be configured.

use hca_repro::arch::topology::{ConfiguredWire, WireSource};
use hca_repro::arch::{DspFabric, Topology};
use hca_repro::ddg::NodeId;

fn wire(src: usize, receivers: &[usize], values: &[u32]) -> ConfiguredWire {
    ConfiguredWire {
        src: WireSource::Member(src),
        receivers: receivers.to_vec(),
        to_parent: false,
        values: values.iter().map(|&v| NodeId(v)).collect(),
    }
}

#[test]
fn figure3_style_topology_is_feasible() {
    let f = DspFabric::standard(4, 4, 4);
    let mut t = Topology::new();
    let g = t.group_mut(&[]);
    // A ring of broadcasts plus a couple of extra point-to-point wires —
    // the kind of data path the figure sketches.
    g.wires.push(wire(0, &[1, 2], &[0]));
    g.wires.push(wire(1, &[2, 3], &[1]));
    g.wires.push(wire(2, &[3], &[2]));
    g.wires.push(wire(3, &[0], &[3]));
    g.wires.push(wire(0, &[3], &[4]));
    assert!(t.validate(&f).is_ok());
}

#[test]
fn input_budget_bounds_feasibility() {
    // With N = 2, a set listening to three distinct wires is infeasible.
    let f = DspFabric::standard(2, 2, 2);
    let mut t = Topology::new();
    let g = t.group_mut(&[]);
    g.wires.push(wire(0, &[3], &[0]));
    g.wires.push(wire(1, &[3], &[1]));
    g.wires.push(wire(2, &[3], &[2]));
    let err = t.validate(&f).unwrap_err();
    assert!(err.to_string().contains("input ports"), "{err}");
}

#[test]
fn output_budget_bounds_feasibility() {
    let f = DspFabric::standard(2, 2, 2);
    let mut t = Topology::new();
    let g = t.group_mut(&[]);
    for v in 0..3u32 {
        g.wires.push(wire(0, &[(v as usize % 3) + 1], &[v]));
    }
    let err = t.validate(&f).unwrap_err();
    assert!(err.to_string().contains("output wires"), "{err}");
}
