//! Negative coherency tests for the `ValidationLevel::Strict` hard gate:
//! corrupt topologies with level-1 / level-2 MUX capacity overflows and
//! `outNode_MaxIn` fan-in violations must come back as typed errors, not
//! as a report the scheduler quietly ignores. `ValidationLevel::enforce`
//! is the exact gate `run_hca` applies, so these tests cover the
//! production rejection path with injected faults (the positive path —
//! real kernels passing under Strict — lives in `table1_end_to_end.rs`
//! and the fuzz gauntlet).

use hca_repro::arch::topology::{ConfiguredWire, WireSource};
use hca_repro::arch::{DspFabric, ResourceTable, Topology};
use hca_repro::ddg::{DdgBuilder, NodeId, Opcode};
use hca_repro::hca::coherency::check_coherency;
use hca_repro::hca::{HcaError, ValidationLevel};
use hca_repro::pg::{ArchConstraints, AssignedPg, Ili, IliWire, Pg, PgNodeId};

fn wire(src: WireSource, receivers: &[usize], to_parent: bool, values: &[u32]) -> ConfiguredWire {
    ConfiguredWire {
        src,
        receivers: receivers.to_vec(),
        to_parent,
        values: values.iter().map(|&v| NodeId(v)).collect(),
    }
}

/// Run the corrupted topology through the checker, then through every
/// validation level: Strict must reject with `HcaError::Incoherent`,
/// Report and Off must pass the report through unchanged.
fn assert_strict_rejects(fabric: &DspFabric, topo: &Topology, expect: &str) {
    let ddg = DdgBuilder::default().finish();
    let report = check_coherency(fabric, topo, &ddg, &|_| unreachable!("empty DDG"));
    assert!(!report.is_legal(), "fault not detected: {expect}");
    assert!(
        report.topology_errors.iter().any(|e| e.contains(expect)),
        "expected a `{expect}` error, got {:?}",
        report.topology_errors
    );
    match ValidationLevel::Strict.enforce(report.clone()) {
        Err(HcaError::Incoherent { report: r }) => {
            assert_eq!(r.topology_errors, report.topology_errors);
        }
        other => panic!("Strict must reject, got {other:?}"),
    }
    assert!(ValidationLevel::Report.enforce(report.clone()).is_ok());
    assert!(ValidationLevel::Off.enforce(report).is_ok());
}

#[test]
fn strict_rejects_level1_mux_input_overflow() {
    // Level-1 groups (cluster sets) of `standard(2, 2, 2)` give each member
    // M = 2 input ports; a third wire into member 0 overflows the MUX.
    let fabric = DspFabric::standard(2, 2, 2);
    let mut t = Topology::new();
    for s in 1..4usize {
        t.group_mut(&[0])
            .wires
            .push(wire(WireSource::Member(s), &[0], false, &[s as u32]));
    }
    assert_strict_rejects(&fabric, &t, "input ports");
}

#[test]
fn strict_rejects_level2_mux_input_overflow() {
    // Leaf (level-2) groups always give each CN 2 input ports, whatever the
    // N,M,K capacities are.
    let fabric = DspFabric::standard(8, 8, 8);
    let mut t = Topology::new();
    for s in 1..4usize {
        t.group_mut(&[0, 0])
            .wires
            .push(wire(WireSource::Member(s), &[0], false, &[s as u32]));
    }
    assert_strict_rejects(&fabric, &t, "input ports");
}

#[test]
fn strict_rejects_level2_glue_overflow() {
    // The crossbar admits only K wires into a leaf group; configure K + 1
    // glue-in wires.
    let fabric = DspFabric::standard(2, 2, 2);
    let mut t = Topology::new();
    for v in 0..3u32 {
        t.group_mut(&[0, 0])
            .wires
            .push(wire(WireSource::Parent, &[v as usize % 4], false, &[v]));
    }
    assert_strict_rejects(&fabric, &t, "glue-in");
}

#[test]
fn strict_rejects_output_wire_overflow() {
    // A CN owns exactly one output wire; two configured wires from the same
    // member overflow it.
    let fabric = DspFabric::standard(8, 8, 8);
    let mut t = Topology::new();
    t.group_mut(&[0, 0])
        .wires
        .push(wire(WireSource::Member(0), &[1], false, &[0]));
    t.group_mut(&[0, 0])
        .wires
        .push(wire(WireSource::Member(0), &[2], false, &[1]));
    assert_strict_rejects(&fabric, &t, "output wires");
}

#[test]
fn strict_rejects_undelivered_value() {
    // A dependence crossing clusters with no wire at all: the per-edge
    // violation list (not a topology budget) must also trip the gate.
    let fabric = DspFabric::standard(8, 8, 8);
    let mut b = DdgBuilder::default();
    let u = b.node(Opcode::Add);
    let w = b.node(Opcode::Add);
    b.flow(u, w);
    let ddg = b.finish();
    let (ca, cb) = (fabric.cn_of_path(&[0, 0, 0]), fabric.cn_of_path(&[3, 3, 3]));
    let placement = move |n: NodeId| if n == u { ca } else { cb };
    let report = check_coherency(&fabric, &Topology::new(), &ddg, &placement);
    assert_eq!(report.violations.len(), 1);
    assert!(matches!(
        ValidationLevel::Strict.enforce(report),
        Err(HcaError::Incoherent { .. })
    ));
}

#[test]
fn out_node_max_in_violation_is_detected() {
    // Two producers on different clusters feeding one output special node:
    // fan-in 2 > outNode_MaxIn = 1 (Figure 10b). This is the constraint
    // `run_hca` re-checks per sub-problem under Strict (the
    // `HcaError::Constraint` path).
    let mut b = DdgBuilder::default();
    let k = b.node(Opcode::Add);
    let h = b.node(Opcode::Add);
    let ddg = b.finish();
    let mut pg = Pg::complete(2, ResourceTable::of_cns(4));
    pg.attach_ili(&Ili {
        inputs: vec![],
        outputs: vec![IliWire::new(vec![k, h])],
    });
    let cons = ArchConstraints {
        max_in_neighbors: 4,
        max_out_neighbors: None,
        out_node_max_in: 1,
        copy_latency: 1,
    };
    let mut bad = AssignedPg::new(pg);
    bad.assign(k, PgNodeId(0));
    bad.assign(h, PgNodeId(1));
    bad.derive_copies(&ddg, None);
    let err = cons.check(&bad).unwrap_err();
    assert!(err.contains("outNode_MaxIn"), "{err}");
}

#[test]
fn table1_kernels_pass_under_strict() {
    // The positive side of the gate: every Table-1 kernel clusterises under
    // Strict with zero violations on the paper's 64-CN machine.
    let fabric = DspFabric::standard(8, 8, 8);
    for kernel in hca_repro::kernels::table1_kernels() {
        let res =
            hca_repro::hca::run_hca(&kernel.ddg, &fabric, &hca_repro::hca::HcaConfig::strict())
                .unwrap_or_else(|e| panic!("{} under Strict: {e}", kernel.name));
        assert!(res.is_legal());
        assert_eq!(res.placement.len(), kernel.ddg.num_nodes());
    }
}
