//! Thread-count invariance of the whole pipeline.
//!
//! The `hca-par` pool guarantees results are merged in input order, and the
//! driver/SEE merge logic is written so scheduling decides only *who*
//! computes, never *what* comes out. These tests pin that contract: a full
//! `table1` run with 1 worker and with 4 workers must agree on every
//! assignment, every copy primitive, the final MII, and the search
//! statistics (timing excluded — wall-clock is the one thing allowed to
//! differ).

use hca_repro::arch::DspFabric;
use hca_repro::hca::{run_hca, HcaConfig, HcaResult};
use hca_repro::see::{See, SeeConfig, SeeStats};

/// Serialises tests in this file: the thread override is process-global.
static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Run the full pipeline on every Table-1 kernel at a given pool width.
fn run_table1(threads: usize) -> Vec<(&'static str, HcaResult)> {
    hca_par::set_thread_override(Some(threads));
    let fabric = DspFabric::standard(8, 8, 8);
    let out = hca_repro::kernels::table1_kernels()
        .into_iter()
        .map(|kernel| {
            let res = run_hca(&kernel.ddg, &fabric, &HcaConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            (kernel.name, res)
        })
        .collect();
    hca_par::set_thread_override(None);
    out
}

#[test]
fn table1_pipeline_is_thread_count_invariant() {
    let _g = OVERRIDE_LOCK.lock().unwrap();
    let seq = run_table1(1);
    let par = run_table1(4);
    for ((name, a), (_, b)) in seq.iter().zip(par.iter()) {
        assert_eq!(a.placement, b.placement, "{name}: placements diverge");
        assert_eq!(a.mii, b.mii, "{name}: MII reports diverge");
        assert_eq!(a.stats, b.stats, "{name}: run statistics diverge");
        assert_eq!(
            a.final_program.placement, b.final_program.placement,
            "{name}: final-program placements diverge"
        );
        assert_eq!(
            a.final_program.recv_nodes, b.final_program.recv_nodes,
            "{name}: copy (recv) primitives diverge"
        );
        assert_eq!(
            a.final_program.route_nodes, b.final_program.route_nodes,
            "{name}: route primitives diverge"
        );
        assert!(a.is_legal(), "{name}: sequential run illegal");
        assert!(b.is_legal(), "{name}: parallel run illegal");
    }
}

/// Everything in [`SeeStats`] except per-step wall-clock must match.
fn assert_stats_match(a: &SeeStats, b: &SeeStats, name: &str) {
    assert_eq!(a.states_explored, b.states_explored, "{name}");
    assert_eq!(a.states_pruned, b.states_pruned, "{name}");
    assert_eq!(a.cand_rejected_margin, b.cand_rejected_margin, "{name}");
    assert_eq!(a.cand_rejected_branch, b.cand_rejected_branch, "{name}");
    assert_eq!(a.route_attempts, b.route_attempts, "{name}");
    assert_eq!(a.routed_nodes, b.routed_nodes, "{name}");
    assert_eq!(a.routed_hops, b.routed_hops, "{name}");
    assert_eq!(a.beam_occupancy, b.beam_occupancy, "{name}");
    assert_eq!(a.peak_frontier_bytes, b.peak_frontier_bytes, "{name}");
    assert_eq!(a.route_bfs_runs, b.route_bfs_runs, "{name}");
    assert_eq!(a.route_cache_hits, b.route_cache_hits, "{name}");
    assert_eq!(a.frontier_deduped, b.frontier_deduped, "{name}");
    assert_eq!(a.dominance_pruned, b.dominance_pruned, "{name}");
    assert_eq!(a.steps, b.steps, "{name}");
    assert_eq!(a.beam_occupancy_sum, b.beam_occupancy_sum, "{name}");
    assert_eq!(a.route_table_bytes, b.route_table_bytes, "{name}");
    assert_eq!(a.arc_table_bytes, b.arc_table_bytes, "{name}");
    assert_eq!(a.state_arena_bytes, b.state_arena_bytes, "{name}");
    assert_eq!(a.step_time_ns.len(), b.step_time_ns.len(), "{name}");
    // Lane accounting is merged in input order, so it is thread-invariant
    // like every other counter.
    assert_eq!(a.lanes_scored, b.lanes_scored, "{name}");
    assert_eq!(a.lane_batches, b.lane_batches, "{name}");
    assert_eq!(a.scalar_tail, b.scalar_tail, "{name}");
    // The scorer is mutation-free: reintroducing a per-candidate state
    // clone in the hot loop must fail here, not show up as a perf cliff.
    assert_eq!(a.state_clones, 0, "{name}: trial clones in the hot loop");
}

/// Dominance pruning is a heuristic; this is its empirical safety gate.
/// With pruning on vs. off, every Table-1 kernel must reach the identical
/// final MII, placement and program.
#[test]
fn dominance_pruning_preserves_table1_results() {
    let _g = OVERRIDE_LOCK.lock().unwrap();
    let fabric = DspFabric::standard(8, 8, 8);
    for kernel in hca_repro::kernels::table1_kernels() {
        let mut results = Vec::new();
        for dominance in [true, false] {
            let config = HcaConfig {
                see: SeeConfig {
                    dominance,
                    ..SeeConfig::default()
                },
                ..HcaConfig::default()
            };
            results.push(
                run_hca(&kernel.ddg, &fabric, &config)
                    .unwrap_or_else(|e| panic!("{}: {e}", kernel.name)),
            );
        }
        let (on, off) = (&results[0], &results[1]);
        assert_eq!(
            on.mii, off.mii,
            "{}: MII diverges under dominance",
            kernel.name
        );
        assert_eq!(
            on.placement, off.placement,
            "{}: placement diverges under dominance",
            kernel.name
        );
        assert_eq!(
            on.final_program.placement, off.final_program.placement,
            "{}: final program diverges under dominance",
            kernel.name
        );
        assert_eq!(
            on.final_program.recv_nodes, off.final_program.recv_nodes,
            "{}: copy primitives diverge under dominance",
            kernel.name
        );
    }
}

/// The lane-tuning knobs (`SeeConfig::scalar_cutoff` / `lane_width`, the
/// in-process forms of `HCA_SCALAR_CUTOFF` / `HCA_LANES`) only shift work
/// between the batched and scalar scorers — both produce bit-identical
/// scores, so any setting must reproduce the default run exactly. This is
/// also what justifies leaving both fields out of the memo cache key.
#[test]
fn lane_tuning_knobs_are_result_transparent() {
    let _g = OVERRIDE_LOCK.lock().unwrap();
    let fabric = DspFabric::standard(8, 8, 8);
    for kernel in hca_repro::kernels::table1_kernels() {
        let baseline = run_hca(&kernel.ddg, &fabric, &HcaConfig::default())
            .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
        for (cutoff, lanes) in [
            (Some(0), None),
            (Some(64), None),
            (None, Some(1)),
            (Some(1), Some(2)),
        ] {
            let config = HcaConfig {
                see: SeeConfig {
                    scalar_cutoff: cutoff,
                    lane_width: lanes,
                    ..SeeConfig::default()
                },
                ..HcaConfig::default()
            };
            let tuned = run_hca(&kernel.ddg, &fabric, &config)
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            assert_eq!(
                baseline.mii, tuned.mii,
                "{}: MII diverges under cutoff {cutoff:?} lanes {lanes:?}",
                kernel.name
            );
            assert_eq!(
                baseline.placement, tuned.placement,
                "{}: placement diverges under cutoff {cutoff:?} lanes {lanes:?}",
                kernel.name
            );
            assert_eq!(
                baseline.final_program.placement, tuned.final_program.placement,
                "{}: final program diverges under cutoff {cutoff:?} lanes {lanes:?}",
                kernel.name
            );
        }
    }
}

/// The batched scoring kernel is a pure throughput change: with batching on
/// vs. off, every Table-1 kernel must reach the identical final MII,
/// placement, program and run statistics — and at the SEE level the final
/// cost must agree *bitwise* with identical search statistics (lane
/// counters excepted: they are exactly what the toggle changes, and must be
/// all-zero when batching is off).
///
/// The toggle here is `SeeConfig::batched_scoring`, not the `HCA_NO_BATCH`
/// environment variable: mutating the process environment would race the
/// parallel test harness. CI additionally runs this whole suite under
/// `HCA_NO_BATCH=1` to cover the env escape hatch.
#[test]
fn batched_scoring_preserves_table1_results() {
    let _g = OVERRIDE_LOCK.lock().unwrap();
    use hca_repro::arch::ResourceTable;
    use hca_repro::ddg::analysis::DdgAnalysis;
    use hca_repro::pg::{ArchConstraints, Pg};

    let fabric = DspFabric::standard(8, 8, 8);
    for kernel in hca_repro::kernels::table1_kernels() {
        // Full pipeline, both toggles.
        let mut results = Vec::new();
        for batched_scoring in [true, false] {
            let config = HcaConfig {
                see: SeeConfig {
                    batched_scoring,
                    ..SeeConfig::default()
                },
                ..HcaConfig::default()
            };
            results.push(
                run_hca(&kernel.ddg, &fabric, &config)
                    .unwrap_or_else(|e| panic!("{}: {e}", kernel.name)),
            );
        }
        let (on, off) = (&results[0], &results[1]);
        assert_eq!(on.mii, off.mii, "{}: MII diverges", kernel.name);
        assert_eq!(
            on.placement, off.placement,
            "{}: placement diverges under batching",
            kernel.name
        );
        assert_eq!(on.stats, off.stats, "{}: run stats diverge", kernel.name);
        assert_eq!(
            on.final_program.placement, off.final_program.placement,
            "{}: final program diverges under batching",
            kernel.name
        );
        assert_eq!(
            on.final_program.recv_nodes, off.final_program.recv_nodes,
            "{}: copy primitives diverge under batching",
            kernel.name
        );

        // Raw SEE level: bitwise cost identity and matching search stats.
        let analysis = DdgAnalysis::compute(&kernel.ddg).unwrap();
        let pg = Pg::complete(8, ResourceTable::of_cns(8));
        let constraints = ArchConstraints {
            max_in_neighbors: 4,
            max_out_neighbors: None,
            out_node_max_in: 1,
            copy_latency: 1,
        };
        let mut outcomes = Vec::new();
        for batched_scoring in [true, false] {
            let config = SeeConfig {
                batched_scoring,
                ..SeeConfig::default()
            };
            let see = See::new(&kernel.ddg, &analysis, &pg, constraints, config);
            outcomes.push(
                see.run(None)
                    .unwrap_or_else(|e| panic!("{}: {e}", kernel.name)),
            );
        }
        let (on, off) = (&outcomes[0], &outcomes[1]);
        assert_eq!(
            on.cost.to_bits(),
            off.cost.to_bits(),
            "{}: SEE cost is not bit-identical under batching",
            kernel.name
        );
        assert_eq!(on.est_mii, off.est_mii, "{}: est MII diverges", kernel.name);
        assert_eq!(
            off.stats.lanes_scored + off.stats.lane_batches + off.stats.scalar_tail,
            0,
            "{}: lane counters must stay zero with batching off",
            kernel.name
        );
        // Under `HCA_NO_BATCH=1` (the CI escape-hatch sweep) the env
        // override forces the scalar path even with the config on, so the
        // lane ledger is legitimately empty — the bitwise assertions above
        // then pin scalar ≡ scalar, which is exactly what that sweep is for.
        if std::env::var_os("HCA_NO_BATCH").is_none() {
            assert!(
                on.stats.lanes_scored > 0,
                "{}: batching on never used a lane — the kernel is dead code here",
                kernel.name
            );
        }
        // Every other statistic matches; only the lane ledger may differ.
        let mut off_stats = off.stats.clone();
        off_stats.lanes_scored = on.stats.lanes_scored;
        off_stats.lane_batches = on.stats.lane_batches;
        off_stats.scalar_tail = on.stats.scalar_tail;
        assert_stats_match(&on.stats, &off_stats, kernel.name);
    }
}

#[test]
fn see_stats_invariant_holds_at_every_thread_count() {
    let _g = OVERRIDE_LOCK.lock().unwrap();
    use hca_repro::arch::ResourceTable;
    use hca_repro::ddg::analysis::DdgAnalysis;
    use hca_repro::pg::{ArchConstraints, Pg};

    let constraints = ArchConstraints {
        max_in_neighbors: 4,
        max_out_neighbors: None,
        out_node_max_in: 1,
        copy_latency: 1,
    };
    for kernel in hca_repro::kernels::table1_kernels() {
        let analysis = DdgAnalysis::compute(&kernel.ddg).unwrap();
        let pg = Pg::complete(8, ResourceTable::of_cns(8));
        let mut runs = Vec::new();
        for threads in [1usize, 4] {
            hca_par::set_thread_override(Some(threads));
            let see = See::new(
                &kernel.ddg,
                &analysis,
                &pg,
                constraints,
                SeeConfig::default(),
            );
            let outcome = see
                .run(None)
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            // Every scored candidate is either pruned or survives into a
            // beam — the delta-state rework must not break this accounting.
            // (`beam_occupancy_sum` is the exact running total; the vector
            // is a bounded sample of it.)
            assert_eq!(
                outcome.stats.states_explored,
                outcome.stats.states_pruned + outcome.stats.beam_occupancy_sum,
                "{} @ {threads} threads: explored != pruned + Σ occupancy",
                kernel.name
            );
            runs.push(outcome);
        }
        hca_par::set_thread_override(None);
        assert_eq!(runs[0].cost, runs[1].cost, "{}: costs diverge", kernel.name);
        assert_eq!(
            runs[0].est_mii, runs[1].est_mii,
            "{}: estimated MII diverges",
            kernel.name
        );
        assert_stats_match(&runs[0].stats, &runs[1].stats, kernel.name);
    }
}

/// A result served by the `hca serve` daemon must be bit-identical to a
/// direct `run_hca` call — cache cold *and* cache hot. The protocol digest
/// covers the sorted placement, the final program's placement, the full MII
/// report and the search statistics, so matching digests pin matching bits.
#[test]
fn served_results_match_direct_runs_cold_and_hot() {
    use hca_serve::{Client, CompileSpec, Server, ServerConfig};

    let _g = OVERRIDE_LOCK.lock().unwrap();
    let fabric = DspFabric::standard(8, 8, 8);

    // Direct reference digests, no daemon involved.
    let direct: Vec<(&'static str, String)> = hca_repro::kernels::table1_kernels()
        .into_iter()
        .map(|kernel| {
            let res = run_hca(&kernel.ddg, &fabric, &HcaConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
            let summary = hca_serve::summarise(kernel.name, &kernel.ddg, &res);
            (kernel.name, summary.digest)
        })
        .collect();

    let server = Server::bind(ServerConfig::default()).expect("bind serve daemon");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run().expect("serve daemon run"));
    let mut client = Client::connect_tcp(&addr).expect("connect to serve daemon");

    // Two passes: the first populates the shared cache (all misses), the
    // second must be served from it — and both must equal the direct run.
    for pass in ["cold", "hot"] {
        for (name, want_digest) in &direct {
            let served = client
                .compile(CompileSpec {
                    kernel: Some((*name).to_string()),
                    ..CompileSpec::default()
                })
                .unwrap_or_else(|e| panic!("{name} ({pass}): serve failed: {e}"));
            assert_eq!(
                &served.digest, want_digest,
                "{name}: {pass} served digest diverges from the direct run"
            );
            assert!(served.legal, "{name}: {pass} served result illegal");
        }
    }
    let stats = client.stats().expect("serve stats");
    assert!(
        stats.memo_hits > 0,
        "hot pass must hit the shared cache: {stats:?}"
    );
    client.shutdown().expect("serve shutdown");
    daemon.join().expect("serve daemon thread");
}

/// Hammering one shared, sharded memo from many OS threads at once must
/// not change a single output bit: every concurrent run of a kernel must
/// equal the sequential reference run of that kernel.
#[test]
fn shared_memo_is_deterministic_under_concurrent_hammering() {
    use hca_repro::hca::{run_hca_shared, Memo};
    use hca_repro::kernels;
    use std::sync::Arc;

    let _g = OVERRIDE_LOCK.lock().unwrap();
    let fabric = DspFabric::standard(8, 8, 8);
    let config = HcaConfig::default();
    let obs = hca_obs::Obs::disabled();

    // A near-duplicate mix: repeats guarantee cross-thread cache traffic.
    let mix: Vec<(String, hca_repro::ddg::Ddg)> = kernels::table1_kernels()
        .into_iter()
        .map(|k| (k.name.to_string(), k.ddg))
        .chain([
            ("biquad".to_string(), kernels::dspstone::biquad()),
            ("fir8".to_string(), kernels::dspstone::fir(8)),
        ])
        .collect();

    // Sequential reference, its own private cache.
    let reference: Vec<HcaResult> = {
        let memo = Memo::new(Memo::DEFAULT_BUDGET);
        mix.iter()
            .map(|(name, ddg)| {
                run_hca_shared(ddg, &fabric, &config, &obs, &memo)
                    .unwrap_or_else(|e| panic!("{name}: {e}"))
            })
            .collect()
    };

    // 8 threads × the whole mix, all against ONE shared cache.
    let shared = Arc::new(Memo::new(Memo::DEFAULT_BUDGET));
    let mix = Arc::new(mix);
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let shared = Arc::clone(&shared);
            let mix = Arc::clone(&mix);
            let fabric = fabric.clone();
            std::thread::spawn(move || -> Vec<HcaResult> {
                let obs = hca_obs::Obs::disabled();
                mix.iter()
                    // Stagger starting points so threads collide on
                    // *different* kernels at any instant.
                    .cycle()
                    .skip(t % mix.len())
                    .take(mix.len())
                    .map(|(name, ddg)| {
                        run_hca_shared(ddg, &fabric, &config, &obs, &shared)
                            .unwrap_or_else(|e| panic!("thread {t} {name}: {e}"))
                    })
                    .collect()
            })
        })
        .collect();

    for (t, h) in handles.into_iter().enumerate() {
        let results = h.join().expect("hammer thread");
        for (i, res) in results.into_iter().enumerate() {
            let slot = (t + i) % mix.len();
            let (name, _) = &mix[slot];
            let want = &reference[slot];
            assert_eq!(
                res.placement, want.placement,
                "thread {t} {name}: placement diverges from sequential"
            );
            assert_eq!(res.mii, want.mii, "thread {t} {name}: MII diverges");
            assert_eq!(res.stats, want.stats, "thread {t} {name}: stats diverge");
            assert_eq!(
                res.final_program.placement, want.final_program.placement,
                "thread {t} {name}: final program diverges"
            );
        }
    }
    assert!(
        shared.hits() > 0,
        "concurrent hammering must produce cache hits"
    );
}
