//! Figure 10 — a child sub-problem's PG completed with special nodes:
//! input nodes broadcastable to every cluster, output nodes with the
//! `outNode_MaxIn` unary fan-in; "in order to satisfy the additional
//! constraint, both the instruction k and h has been assigned to the same
//! cluster".

use hca_repro::arch::ResourceTable;
use hca_repro::ddg::{DdgAnalysis, DdgBuilder, Opcode};
use hca_repro::pg::{ArchConstraints, Ili, IliWire, Pg};
use hca_repro::see::{See, SeeConfig};

#[test]
fn pg_completed_with_special_nodes_as_in_figure_10b() {
    let mut b = DdgBuilder::default();
    let x = b.node(Opcode::Add); // incoming from two input wires
    let z = b.node(Opcode::Add);
    let ddg = b.finish();
    let _ = ddg;
    let mut pg = Pg::complete(4, ResourceTable::of_cns(4));
    pg.attach_ili(&Ili {
        inputs: vec![IliWire::new(vec![x]), IliWire::new(vec![z])],
        outputs: vec![IliWire::new(vec![])],
    });
    assert_eq!(pg.input_ids().count(), 2);
    assert_eq!(pg.output_ids().count(), 1);
    // Input nodes can broadcast to all clusters; all clusters reach the
    // output node.
    let inp = pg.input_ids().next().unwrap();
    let out = pg.output_ids().next().unwrap();
    for c in pg.cluster_ids().collect::<Vec<_>>() {
        assert!(pg.is_potential(inp, c));
        assert!(pg.is_potential(c, out));
    }
}

#[test]
fn out_node_max_in_forces_k_and_h_onto_one_cluster() {
    // Figure 10c: k and h leave on the same output wire; after ICA they
    // must share a cluster.
    let mut b = DdgBuilder::default();
    let x = b.node(Opcode::Add); // external producer
    let k = b.node(Opcode::Add);
    let h = b.node(Opcode::Add);
    let mid = b.op_with(Opcode::Add, &[x]);
    b.flow(mid, k);
    b.flow(mid, h);
    let ddg = b.finish();
    let an = DdgAnalysis::compute(&ddg).unwrap();
    let mut pg = Pg::complete(4, ResourceTable::of_cns(4));
    pg.attach_ili(&Ili {
        inputs: vec![IliWire::new(vec![x])],
        outputs: vec![IliWire::new(vec![k, h])],
    });
    let cons = ArchConstraints {
        max_in_neighbors: 4,
        max_out_neighbors: None,
        out_node_max_in: 1,
        copy_latency: 1,
    };
    let out = See::new(&ddg, &an, &pg, cons, SeeConfig::default())
        .run(Some(&[mid, k, h]))
        .unwrap();
    assert_eq!(
        out.assigned.cluster_of(k),
        out.assigned.cluster_of(h),
        "unary fan-in must co-locate k and h"
    );
    // And the output node is fed by exactly that one cluster.
    let o = pg.output_ids().next().unwrap();
    assert_eq!(out.assigned.real_in_neighbors(o).len(), 1);
}
