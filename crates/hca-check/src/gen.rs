//! Random loop-kernel DDG generation for the fuzz gauntlet.
//!
//! Richer than `hca_kernels::synthetic`: varying fan-out, multi-operand
//! joins, loop-carried recurrences of distance 1–3 (self-loops and longer
//! cycles through the body), address chains feeding loads/stores, and
//! live-in constants/inductions. Zero-distance cycles are impossible by
//! construction — every distance-0 edge points from an earlier node to a
//! later one; only carried edges (distance ≥ 1) go backwards.

use hca_ddg::{Ddg, DdgBuilder, NodeId, Opcode};
use rand::rngs::StdRng;
use rand::Rng;

/// Generate one random kernel with between 2 and `max_nodes` instructions.
pub fn random_kernel(rng: &mut StdRng, max_nodes: usize) -> Ddg {
    let max_nodes = max_nodes.max(2);
    let target = rng.gen_range(2..max_nodes + 1);
    let mut b = DdgBuilder::default();

    let alu_ops = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Mac,
        Opcode::Shift,
        Opcode::Logic,
        Opcode::MinMax,
        Opcode::Clip,
        Opcode::AbsDiff,
    ];

    // Live-ins: a mix of constants, inductions and loaded stream elements.
    let mut nodes: Vec<NodeId> = Vec::new();
    let sources = rng.gen_range(1..target.div_ceil(3).max(1) + 1);
    for _ in 0..sources {
        let n = match rng.gen_range(0..4u32) {
            0 => b.node(Opcode::Const),
            1 => b.node(Opcode::Induction),
            2 => {
                let addr = b.node(Opcode::AddrAdd);
                nodes.push(addr);
                b.op_with(Opcode::Load, &[addr])
            }
            _ => b.node(Opcode::Load),
        };
        nodes.push(n);
        if nodes.len() >= target {
            break;
        }
    }

    // Body: each new node consumes 1–3 existing values (biased towards
    // recent ones so the graph stays layered but keeps long-range edges).
    while nodes.len() < target {
        let op = alu_ops[rng.gen_range(0..alu_ops.len())];
        let arity = rng.gen_range(1..4usize).min(nodes.len());
        let mut operands = Vec::with_capacity(arity);
        for _ in 0..arity {
            let pick = if rng.gen_bool(0.7) {
                // Recent value: high fan-in chains.
                let lo = nodes.len().saturating_sub(4);
                rng.gen_range(lo..nodes.len())
            } else {
                rng.gen_range(0..nodes.len())
            };
            operands.push(nodes[pick]);
        }
        operands.dedup();
        let n = b.op_with(op, &operands);
        nodes.push(n);
    }

    // Loop-carried recurrences: self-accumulators and longer back-cycles.
    for _ in 0..rng.gen_range(0..3usize) {
        let distance = rng.gen_range(1..4u32);
        let i = rng.gen_range(0..nodes.len());
        if rng.gen_bool(0.5) {
            b.carried(nodes[i], nodes[i], distance);
        } else {
            // Back edge from a later node to an earlier one: a recurrence
            // through several body instructions.
            let j = rng.gen_range(0..nodes.len());
            let (src, dst) = (nodes[i.max(j)], nodes[i.min(j)]);
            if src != dst {
                b.carried(src, dst, distance);
            } else {
                b.carried(src, dst, distance.max(1));
            }
        }
    }

    // Live-outs: sink a few values through stores.
    for _ in 0..rng.gen_range(0..3usize) {
        let v = nodes[rng.gen_range(0..nodes.len())];
        b.op_with(Opcode::Store, &[v]);
    }

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_ddg::analysis;
    use rand::SeedableRng;

    #[test]
    fn generated_kernels_always_analyse() {
        for seed in 0..200u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = random_kernel(&mut rng, 24);
            assert!(g.num_nodes() >= 2, "seed {seed}");
            assert!(
                analysis::intra_topo_order(&g).is_some(),
                "seed {seed}: zero-distance cycle"
            );
            assert!(analysis::mii_rec(&g).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_kernel(&mut StdRng::seed_from_u64(42), 16);
        let b = random_kernel(&mut StdRng::seed_from_u64(42), 16);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.edges(), b.edges());
    }
}
