//! # hca-check — differential validation harness
//!
//! The correctness subsystem of the HCA reproduction. Three pillars:
//!
//! * [`oracle`] — a branch-and-bound **flat-ICA oracle**: the exact
//!   optimal resource-MII of small DDGs (≤ ~12 nodes) over the flattened
//!   machine, used as a quality yardstick for HCA's `final_mii`;
//! * [`reach`] — an independent **fixpoint coherency checker**,
//!   differentially compared against `hca_core::coherency`'s memoized
//!   recursion edge by edge;
//! * [`fuzz`] + [`gen`] + [`shrink`] + [`journal`] — a **seeded DDG
//!   fuzzer**: random loop kernels through `run_hca` under
//!   `ValidationLevel::Strict`, the differential coherency check, the
//!   oracle envelope, the apply/undo journal round-trip and a
//!   1-thread-vs-N-thread determinism diff; failures shrink (ddmin) to
//!   minimal reproducers written to disk as JSON.
//!
//! The CLI front-ends live in `hca-cli` as the `fuzz` and `verify`
//! subcommands; CI runs a bounded smoke campaign on fixed seeds.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fuzz;
pub mod gen;
pub mod journal;
pub mod oracle;
pub mod reach;
pub mod shrink;

pub use fuzz::{
    gauntlet, run_campaign, CampaignConfig, CampaignSummary, CheckKind, FailureRecord,
    GauntletConfig, GauntletFailure, GauntletReport,
};
pub use gen::random_kernel;
pub use journal::journal_roundtrip_check;
pub use oracle::{flat_optimal_mii, flat_optimal_mii_seeded, OracleConfig, OracleVerdict};
pub use reach::{coherency_violations_fixpoint, differential_coherency, value_delivered_fixpoint};
pub use shrink::{induced_subgraph, shrink};
