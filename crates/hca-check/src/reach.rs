//! Fixpoint reachability over the configured topology — an independent
//! re-implementation of the coherency question answered by
//! `hca_core::coherency` (which uses memoized mutual recursion with an
//! in-progress marker). Here the same two predicates are computed as the
//! least fixpoint of a monotone system over every member path of the
//! machine:
//!
//! * `emit[p]` — value `v` can be driven onto member `p`'s output wires;
//! * `recv[p]` — `v` is delivered into `p` from its parent group.
//!
//! Both implementations must agree on every edge; a disagreement means one
//! of them is wrong, which is exactly what [`differential_coherency`] is
//! fuzzed for.

use hca_arch::topology::WireSource;
use hca_arch::{CnId, DspFabric, Topology};
use hca_ddg::{Ddg, EdgeId, NodeId, Opcode};
use rustc_hash::FxHashMap;

/// All member paths of the fabric (length 1 ..= depth), in a fixed order.
fn member_paths(fabric: &DspFabric) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut frontier: Vec<Vec<usize>> = vec![vec![]];
    for d in 0..fabric.depth() {
        let arity = fabric.level(d).arity;
        let mut next = Vec::with_capacity(frontier.len() * arity);
        for p in &frontier {
            for m in 0..arity {
                let mut child = p.clone();
                child.push(m);
                out.push(child.clone());
                next.push(child);
            }
        }
        frontier = next;
    }
    out
}

struct Fixpoint<'a> {
    fabric: &'a DspFabric,
    topo: &'a Topology,
    value: NodeId,
    paths: Vec<Vec<usize>>,
    index: FxHashMap<Vec<usize>, usize>,
    emit: Vec<bool>,
    recv: Vec<bool>,
}

impl<'a> Fixpoint<'a> {
    fn new(fabric: &'a DspFabric, topo: &'a Topology, value: NodeId, producer: CnId) -> Self {
        let paths = member_paths(fabric);
        let index: FxHashMap<Vec<usize>, usize> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i))
            .collect();
        let mut emit = vec![false; paths.len()];
        let recv = vec![false; paths.len()];
        let producer_path = fabric.cn_path(producer);
        emit[index[&producer_path]] = true;
        let mut fx = Fixpoint {
            fabric,
            topo,
            value,
            paths,
            index,
            emit,
            recv,
        };
        fx.solve();
        fx
    }

    /// One evaluation of `recv[p]` under the current assignment.
    fn eval_recv(&self, i: usize) -> bool {
        let p = &self.paths[i];
        let (g_path, m) = (&p[..p.len() - 1], p[p.len() - 1]);
        let Some(g) = self.topo.group(g_path) else {
            return false;
        };
        g.wires
            .iter()
            .filter(|w| w.carries(self.value) && w.receivers.contains(&m))
            .any(|w| match w.src {
                WireSource::Member(s) => {
                    let mut sib = g_path.to_vec();
                    sib.push(s);
                    self.emit[self.index[&sib]]
                }
                WireSource::Parent => {
                    // The group itself must have the value delivered from
                    // above; the root has no parent to receive from.
                    !g_path.is_empty() && self.recv[self.index[g_path]]
                }
            })
    }

    /// One evaluation of `emit[p]` under the current assignment.
    fn eval_emit(&self, i: usize) -> bool {
        let p = &self.paths[i];
        if p.len() == self.fabric.depth() {
            // A CN that is not the producer can only re-emit what it
            // received (the producer's entry was seeded true).
            return self.recv[i];
        }
        let Some(g) = self.topo.group(p) else {
            return false;
        };
        g.wires
            .iter()
            .filter(|w| w.to_parent && w.carries(self.value))
            .any(|w| match w.src {
                WireSource::Member(s) => {
                    let mut child = p.clone();
                    child.push(s);
                    self.emit[self.index[&child]]
                }
                WireSource::Parent => self.recv[i],
            })
    }

    /// Iterate to the least fixpoint. The system is monotone (predicates
    /// only flip false → true), so a round-robin sweep terminates.
    fn solve(&mut self) {
        loop {
            let mut changed = false;
            for i in 0..self.paths.len() {
                if !self.recv[i] && self.eval_recv(i) {
                    self.recv[i] = true;
                    changed = true;
                }
                if !self.emit[i] && self.eval_emit(i) {
                    self.emit[i] = true;
                    changed = true;
                }
            }
            if !changed {
                return;
            }
        }
    }
}

/// Does value `v`, produced on CN `src`, arrive at CN `dst`? Same question
/// as `hca_core::coherency::value_delivered`, answered by fixpoint
/// iteration instead of memoized recursion.
pub fn value_delivered_fixpoint(
    fabric: &DspFabric,
    topo: &Topology,
    v: NodeId,
    src: CnId,
    dst: CnId,
) -> bool {
    if src == dst {
        return true;
    }
    let fx = Fixpoint::new(fabric, topo, v, src);
    let dst_path = fabric.cn_path(dst);
    fx.recv[fx.index[&dst_path]]
}

/// Cross-CN dependences whose value the fixpoint checker says is *not*
/// delivered (Const producers excluded, like the production checker).
pub fn coherency_violations_fixpoint(
    fabric: &DspFabric,
    topo: &Topology,
    ddg: &Ddg,
    placement: &dyn Fn(NodeId) -> CnId,
) -> Vec<(EdgeId, CnId, CnId)> {
    let mut out = Vec::new();
    for eid in ddg.edge_ids() {
        let e = ddg.edge(eid);
        if ddg.node(e.src).op == Opcode::Const {
            continue;
        }
        let (cu, cw) = (placement(e.src), placement(e.dst));
        if cu != cw && !value_delivered_fixpoint(fabric, topo, e.src, cu, cw) {
            out.push((eid, cu, cw));
        }
    }
    out
}

/// Differential check: run both coherency implementations over every
/// dependence edge and report each disagreement as a human-readable line.
/// An empty result means the checkers agree edge-for-edge (it does *not*
/// mean the clusterisation is legal — both may agree it is not).
pub fn differential_coherency(
    fabric: &DspFabric,
    topo: &Topology,
    ddg: &Ddg,
    placement: &dyn Fn(NodeId) -> CnId,
) -> Vec<String> {
    let mut out = Vec::new();
    for eid in ddg.edge_ids() {
        let e = ddg.edge(eid);
        if ddg.node(e.src).op == Opcode::Const {
            continue;
        }
        let (cu, cw) = (placement(e.src), placement(e.dst));
        if cu == cw {
            continue;
        }
        let memoized = hca_core::coherency::value_delivered(fabric, topo, e.src, cu, cw);
        let fixpoint = value_delivered_fixpoint(fabric, topo, e.src, cu, cw);
        if memoized != fixpoint {
            out.push(format!(
                "edge {eid:?} (value {} {cu} -> {cw}): memoized says {memoized}, fixpoint says {fixpoint}",
                e.src
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_arch::topology::ConfiguredWire;

    fn wire(src: WireSource, rec: &[usize], up: bool, vals: &[u32]) -> ConfiguredWire {
        ConfiguredWire {
            src,
            receivers: rec.to_vec(),
            to_parent: up,
            values: vals.iter().map(|&v| NodeId(v)).collect(),
        }
    }

    #[test]
    fn agrees_with_memoized_on_sibling_delivery() {
        let f = DspFabric::standard(8, 8, 8);
        let mut t = Topology::new();
        t.group_mut(&[0, 0])
            .wires
            .push(wire(WireSource::Member(0), &[2], false, &[7]));
        let src = f.cn_of_path(&[0, 0, 0]);
        for (dst_path, want) in [([0, 0, 2], true), ([0, 0, 1], false)] {
            let dst = f.cn_of_path(&dst_path);
            assert_eq!(value_delivered_fixpoint(&f, &t, NodeId(7), src, dst), want);
            assert_eq!(
                hca_core::coherency::value_delivered(&f, &t, NodeId(7), src, dst),
                want
            );
        }
    }

    #[test]
    fn full_cross_set_chain_delivers() {
        let f = DspFabric::standard(8, 8, 8);
        let v = NodeId(3);
        let mut t = Topology::new();
        t.group_mut(&[0, 0])
            .wires
            .push(wire(WireSource::Member(0), &[], true, &[3]));
        t.group_mut(&[0])
            .wires
            .push(wire(WireSource::Member(0), &[], true, &[3]));
        t.group_mut(&[])
            .wires
            .push(wire(WireSource::Member(0), &[1], false, &[3]));
        t.group_mut(&[1])
            .wires
            .push(wire(WireSource::Parent, &[2], false, &[3]));
        t.group_mut(&[1, 2])
            .wires
            .push(wire(WireSource::Parent, &[3], false, &[3]));
        let src = f.cn_of_path(&[0, 0, 0]);
        assert!(value_delivered_fixpoint(
            &f,
            &t,
            v,
            src,
            f.cn_of_path(&[1, 2, 3])
        ));
        let mut t2 = t.clone();
        t2.group_mut(&[1]).wires.clear();
        assert!(!value_delivered_fixpoint(
            &f,
            &t2,
            v,
            src,
            f.cn_of_path(&[1, 2, 3])
        ));
    }

    #[test]
    fn cyclic_claims_stay_unreachable() {
        // Mutual pass-through claims with no real source must resolve to
        // false — the least fixpoint never flips them.
        let f = DspFabric::standard(8, 8, 8);
        let v = NodeId(9);
        let mut t = Topology::new();
        let g = t.group_mut(&[0, 0]);
        g.wires
            .push(wire(WireSource::Member(1), &[2, 3], false, &[9]));
        g.wires.push(wire(WireSource::Member(2), &[1], false, &[9]));
        let src = f.cn_of_path(&[3, 3, 3]);
        assert!(!value_delivered_fixpoint(
            &f,
            &t,
            v,
            src,
            f.cn_of_path(&[0, 0, 3])
        ));
    }
}
