//! Delta-debugging shrinker: reduce a failing DDG to a minimal reproducer.
//!
//! Classic ddmin over node subsets (drop chunks of nodes, keep the induced
//! subgraph, re-run the failure predicate), followed by single-edge removal
//! until a fixpoint. The predicate sees each candidate graph with node ids
//! remapped to a dense range, so reproducers stay loadable as ordinary DDGs.

use hca_ddg::{Ddg, NodeId};

/// Induced subgraph over `keep` (ids remapped densely, order preserved).
/// Edges survive only when both endpoints survive.
pub fn induced_subgraph(ddg: &Ddg, keep: &[NodeId]) -> Ddg {
    let mut map = vec![None; ddg.num_nodes()];
    let mut out = Ddg::new();
    for &n in keep {
        let node = ddg.node(n);
        map[n.index()] = Some(out.add_node(node.op, node.name.clone()));
    }
    for e in ddg.edges() {
        if let (Some(src), Some(dst)) = (map[e.src.index()], map[e.dst.index()]) {
            out.add_edge(src, dst, e.latency, e.distance);
        }
    }
    out
}

/// Rebuild `ddg` without the edge at position `skip` (by edge index).
fn without_edge(ddg: &Ddg, skip: usize) -> Ddg {
    let mut out = Ddg::new();
    for n in ddg.node_ids() {
        let node = ddg.node(n);
        out.add_node(node.op, node.name.clone());
    }
    for (i, e) in ddg.edges().iter().enumerate() {
        if i != skip {
            out.add_edge(e.src, e.dst, e.latency, e.distance);
        }
    }
    out
}

/// Shrink `ddg` to a (locally) minimal graph on which `fails` still returns
/// `true`. `fails(&ddg)` itself must be `true` on entry, or the input is
/// returned unchanged. The predicate is invoked at most a few hundred times
/// for fuzz-sized graphs.
pub fn shrink(ddg: &Ddg, fails: &dyn Fn(&Ddg) -> bool) -> Ddg {
    if !fails(ddg) {
        return ddg.clone();
    }
    let mut current = ddg.clone();

    // Phase 1: ddmin over node subsets.
    let mut chunk = (current.num_nodes() / 2).max(1);
    while chunk >= 1 {
        let mut progressed = false;
        let mut start = 0;
        while start < current.num_nodes() {
            let nodes_now: Vec<NodeId> = current.node_ids().collect();
            if start >= nodes_now.len() {
                break;
            }
            let end = (start + chunk).min(nodes_now.len());
            let keep: Vec<NodeId> = nodes_now
                .iter()
                .copied()
                .enumerate()
                .filter(|&(i, _)| i < start || i >= end)
                .map(|(_, n)| n)
                .collect();
            if keep.is_empty() {
                start = end;
                continue;
            }
            let candidate = induced_subgraph(&current, &keep);
            if fails(&candidate) {
                current = candidate;
                progressed = true;
                // Same `start`: the next chunk slid into this position.
            } else {
                start = end;
            }
        }
        if !progressed {
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
    }

    // Phase 2: drop redundant edges one at a time until stable.
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < current.num_edges() {
            let candidate = without_edge(&current, i);
            if fails(&candidate) {
                current = candidate;
                progressed = true;
                // Same index: the edge list shifted down.
            } else {
                i += 1;
            }
        }
        if !progressed {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_ddg::{DdgBuilder, Opcode};

    #[test]
    fn induced_subgraph_remaps_ids() {
        let mut b = DdgBuilder::default();
        let a = b.node(Opcode::Add);
        let c = b.node(Opcode::Mul);
        let d = b.op_with(Opcode::Sub, &[a, c]);
        let _ = b.op_with(Opcode::Store, &[d]);
        let g = b.finish();
        let sub = induced_subgraph(&g, &[c, d]);
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(sub.num_edges(), 1); // only c→d survives
        assert_eq!(sub.edges()[0].src, NodeId(0));
        assert_eq!(sub.edges()[0].dst, NodeId(1));
    }

    #[test]
    fn shrinks_to_the_failing_core() {
        // Failure: "contains a Mul with an incoming edge". The minimal
        // reproducer is 2 nodes and 1 edge.
        let mut b = DdgBuilder::default();
        for _ in 0..6 {
            b.node(Opcode::Add);
        }
        let x = b.node(Opcode::Add);
        let m = b.op_with(Opcode::Mul, &[x]);
        let _ = b.op_with(Opcode::Store, &[m]);
        let g = b.finish();
        let fails = |d: &Ddg| d.edges().iter().any(|e| d.node(e.dst).op == Opcode::Mul);
        let small = shrink(&g, &fails);
        assert!(fails(&small));
        assert_eq!(small.num_nodes(), 2);
        assert_eq!(small.num_edges(), 1);
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let mut b = DdgBuilder::default();
        b.node(Opcode::Add);
        let g = b.finish();
        let small = shrink(&g, &|_| false);
        assert_eq!(small.num_nodes(), 1);
    }
}
