//! Flat-ICA oracle: branch-and-bound cluster assignment over the flattened
//! machine, exact for small DDGs.
//!
//! The oracle answers "what is the best resource-constrained MII any flat
//! single-level ICA could reach on this machine?" by exhaustively searching
//! node → CN assignments under the same constraint set as
//! `hca_core::flat::run_flat`: every CN may listen to at most `in_wires`
//! distinct producer CNs (Const producers are replicated at configuration
//! time and excluded, matching the coherency checker).
//!
//! The objective is deliberately **optimistic** — per-CN load counts only
//! the instructions themselves, never the receive/route primitives the real
//! pipeline materialises — so the returned value is a valid *lower bound*
//! on the flat-feasible MII and a sound yardstick for the quality bound
//! asserted by the fuzz gauntlet. It is **not** a lower bound on HCA itself:
//! the hierarchy's relay CNs can legally realise fan-in shapes the flat
//! constraint forbids, so HCA may (rarely) beat the flat optimum.

use hca_arch::DspFabric;
use hca_ddg::{analysis, Ddg, NodeId, Opcode};
use hca_par::CancelToken;
use rustc_hash::FxHashMap;

/// Oracle search limits.
#[derive(Clone, Copy, Debug)]
pub struct OracleConfig {
    /// Refuse DDGs with more nodes than this (the search is exponential).
    pub max_nodes: usize,
    /// Branch-and-bound step budget before giving up on exactness.
    pub step_budget: u64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            max_nodes: 12,
            step_budget: 5_000_000,
        }
    }
}

/// What the search established about the flat optimum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OracleVerdict {
    /// The exact flat-optimal MII.
    Exact(u32),
    /// Step budget exhausted; the value is the best MII found so far
    /// (a valid upper bound on the optimum).
    Upper(u32),
}

impl OracleVerdict {
    /// The MII value, exact or not.
    pub fn mii(self) -> u32 {
        match self {
            OracleVerdict::Exact(m) | OracleVerdict::Upper(m) => m,
        }
    }
}

struct Search<'a> {
    ddg: &'a Ddg,
    /// Node visit order (by descending degree, for early pruning).
    order: Vec<NodeId>,
    /// Is this node's producer side ignored for fan-in (Const)?
    is_const: Vec<bool>,
    /// Assignment so far: node index (into the DDG) → CN slot.
    assign: FxHashMap<NodeId, usize>,
    /// Instructions per CN slot.
    load: Vec<u32>,
    /// Distinct non-Const producer CNs feeding each CN.
    in_sets: Vec<Vec<usize>>,
    /// CN slots in use (symmetry reduction: slot k+1 opens only after k).
    used: usize,
    /// Fan-in budget per CN (the leaf `in_wires`).
    max_in: usize,
    /// Assignment-independent MII floor (recurrence + DMA terms).
    floor: u32,
    /// Completion lookahead: no assignment of all `n` instructions onto
    /// `slots` CNs keeps every load below `ceil(n / slots)`, so an
    /// incumbent at (or below) that max-load is unbeatable.
    min_load: u32,
    /// Best complete max-load seen so far.
    best: u32,
    steps: u64,
    budget: u64,
    /// Cooperative cancellation, polled at branch points.
    cancel: CancelToken,
    cancel_count: u32,
    cancelled: bool,
    /// An incumbent reached the provable floor — nothing can beat it.
    done: bool,
}

impl Search<'_> {
    /// Record the fan-in edges `n`→/←neighbours induce when `n` lands on
    /// `c`; returns `None` (with nothing recorded) if a budget would burst,
    /// otherwise the undo list of `(consumer_cn, producer_cn)` insertions.
    fn admit(&mut self, n: NodeId, c: usize) -> Option<Vec<(usize, usize)>> {
        let mut added: Vec<(usize, usize)> = Vec::new();
        let mut ok = true;
        for (_, e) in self.ddg.pred_edges(n) {
            if self.is_const[e.src.index()] {
                continue;
            }
            if let Some(&pc) = self.assign.get(&e.src) {
                if pc != c && !self.in_sets[c].contains(&pc) {
                    self.in_sets[c].push(pc);
                    added.push((c, pc));
                    if self.in_sets[c].len() > self.max_in {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if ok && !self.is_const[n.index()] {
            for (_, e) in self.ddg.succ_edges(n) {
                if let Some(&sc) = self.assign.get(&e.dst) {
                    if sc != c && !self.in_sets[sc].contains(&c) {
                        self.in_sets[sc].push(c);
                        added.push((sc, c));
                        if self.in_sets[sc].len() > self.max_in {
                            ok = false;
                            break;
                        }
                    }
                }
            }
        }
        if ok {
            Some(added)
        } else {
            for (cn, pc) in added {
                let i = self.in_sets[cn].iter().position(|&x| x == pc).unwrap();
                self.in_sets[cn].swap_remove(i);
            }
            None
        }
    }

    fn recurse(&mut self, depth: usize, cur_max: u32) {
        self.steps += 1;
        if self.steps > self.budget {
            return;
        }
        if self.cancel.check_stride(&mut self.cancel_count) {
            self.cancelled = true;
            return;
        }
        if depth == self.order.len() {
            self.best = self.best.min(cur_max.max(1));
            // Proven-optimal early exit: at the completion lookahead no
            // spread can do better, and at the assignment-independent
            // floor the resulting MII cannot drop further even if one
            // could — either way the incumbent is exact.
            if self.best <= self.min_load.max(self.floor) {
                self.done = true;
            }
            return;
        }
        let n = self.order[depth];
        // Symmetry reduction: the flat PG is a complete graph of identical
        // CNs, so only the first unused slot is distinguishable.
        let num_slots = self.load.len();
        let limit = (self.used + 1).min(num_slots);
        for c in 0..limit {
            let new_load = self.load[c] + 1;
            // Prune on the objective: a partial max-load already at or
            // above the incumbent (or below the floor's shadow — no,
            // the floor applies to everyone equally) cannot improve.
            if new_load.max(cur_max) >= self.best {
                continue;
            }
            let Some(added) = self.admit(n, c) else {
                continue;
            };
            self.assign.insert(n, c);
            self.load[c] = new_load;
            let opened = c == self.used;
            if opened {
                self.used += 1;
            }
            self.recurse(depth + 1, new_load.max(cur_max));
            if opened {
                self.used -= 1;
            }
            self.load[c] -= 1;
            self.assign.remove(&n);
            for (cn, pc) in added {
                let i = self.in_sets[cn].iter().position(|&x| x == pc).unwrap();
                self.in_sets[cn].swap_remove(i);
            }
            if self.steps > self.budget || self.done || self.cancelled {
                return;
            }
        }
    }
}

/// Exhaustively compute the flat-optimal MII of `ddg` on `fabric`, or
/// `None` when the DDG exceeds [`OracleConfig::max_nodes`] or its analysis
/// fails. The result folds in the assignment-independent floor
/// (`max(MIIRec, DMA, 1)`), so it is directly comparable with
/// `MiiReport::final_mii`.
pub fn flat_optimal_mii(
    ddg: &Ddg,
    fabric: &DspFabric,
    cfg: &OracleConfig,
) -> Option<OracleVerdict> {
    flat_optimal_mii_seeded(ddg, fabric, cfg, None, &CancelToken::new())
}

/// [`flat_optimal_mii`] promoted to a portfolio-grade backend: an incumbent
/// seed plus cooperative cancellation.
///
/// `incumbent_load` must be the max-load of a **known-feasible** flat
/// assignment (seeding an unachievable value would make an `Exact` claim
/// unsound); the search then explores only strictly better assignments,
/// which is what makes racing it against a beam result cheap. `cancel` is
/// polled at branch points ([`CancelToken::check_stride`]) — a fired token
/// (deadline or external) downgrades the verdict to `Upper`, exactly like
/// an exhausted step budget, unless the search had already proven its
/// incumbent optimal (floor hit or completion-lookahead match).
pub fn flat_optimal_mii_seeded(
    ddg: &Ddg,
    fabric: &DspFabric,
    cfg: &OracleConfig,
    incumbent_load: Option<u32>,
    cancel: &CancelToken,
) -> Option<OracleVerdict> {
    let n = ddg.num_nodes();
    if n == 0 {
        return Some(OracleVerdict::Exact(1));
    }
    if n > cfg.max_nodes {
        return None;
    }
    let mii_rec = analysis::mii_rec(ddg).ok()?;
    let floor = mii_rec.max(fabric.dma.mii_res_mem(ddg)).max(1);

    let mut order: Vec<NodeId> = ddg.node_ids().collect();
    let degree = |v: NodeId| ddg.pred_edges(v).count() + ddg.succ_edges(v).count();
    order.sort_by_key(|&v| (std::cmp::Reverse(degree(v)), v));
    let is_const: Vec<bool> = ddg
        .node_ids()
        .map(|v| ddg.node(v).op == Opcode::Const)
        .collect();

    let slots = fabric.num_cns().min(n);
    let leaf = fabric.level(fabric.depth() - 1);
    let mut search = Search {
        ddg,
        order,
        is_const,
        assign: FxHashMap::default(),
        load: vec![0; slots],
        in_sets: vec![Vec::new(); slots],
        used: 0,
        max_in: leaf.in_wires,
        floor,
        min_load: (n as u32).div_ceil(slots as u32),
        // All nodes on one CN is always feasible (no cross-CN edges), so
        // the incumbent `n` is a genuine upper bound, and `n + 1` makes
        // the strict `>=` prune admit it. A caller-supplied feasible seed
        // can only tighten it.
        best: incumbent_load.map_or(n as u32 + 1, |b| b.min(n as u32 + 1)),
        steps: 0,
        budget: cfg.step_budget,
        cancel: cancel.clone(),
        cancel_count: 0,
        cancelled: false,
        done: false,
    };
    // Seeded proven-optimal short-circuit: a feasible incumbent already at
    // the completion lookahead (or under the floor's shadow) cannot be
    // beaten — skip the search entirely.
    if search.best <= search.min_load.max(search.floor) {
        return Some(OracleVerdict::Exact(
            search.floor.max(search.best.min(n as u32)),
        ));
    }
    search.recurse(0, 0);
    let best_load = search.best.min(n as u32);
    let mii = search.floor.max(best_load);
    if (search.steps > search.budget || search.cancelled) && !search.done {
        Some(OracleVerdict::Upper(mii))
    } else {
        Some(OracleVerdict::Exact(mii))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_ddg::DdgBuilder;

    #[test]
    fn independent_nodes_spread_to_load_one() {
        let mut b = DdgBuilder::default();
        for _ in 0..6 {
            b.node(Opcode::Add);
        }
        let ddg = b.finish();
        let f = DspFabric::standard(8, 8, 8);
        assert_eq!(
            flat_optimal_mii(&ddg, &f, &OracleConfig::default()),
            Some(OracleVerdict::Exact(1))
        );
    }

    #[test]
    fn single_cn_machine_serialises_everything() {
        let mut b = DdgBuilder::default();
        let a = b.node(Opcode::Add);
        let c = b.op_with(Opcode::Add, &[a]);
        let _ = b.op_with(Opcode::Add, &[c]);
        let ddg = b.finish();
        let f = DspFabric::two_level(1, 1, 2);
        assert_eq!(
            flat_optimal_mii(&ddg, &f, &OracleConfig::default()),
            Some(OracleVerdict::Exact(3))
        );
    }

    #[test]
    fn fan_in_budget_forces_coalescing() {
        // A 5-way join: spreading the producers over 5 CNs is illegal with
        // in_wires = 2, so at least two producers must share the consumer's
        // CN (or each other's). Optimal max-load is 2: e.g. two producers
        // with the consumer... that is load 3; better: producers paired on
        // 2 CNs (loads 2+2) + consumer alone listening to 2 CNs (load 1+1).
        let mut b = DdgBuilder::default();
        let ps: Vec<_> = (0..4).map(|_| b.node(Opcode::Add)).collect();
        let _join = b.op_with(Opcode::Add, &ps);
        let ddg = b.finish();
        let f = DspFabric::standard(8, 8, 8); // leaf in_wires = 2
        let v = flat_optimal_mii(&ddg, &f, &OracleConfig::default()).unwrap();
        assert_eq!(v, OracleVerdict::Exact(2));
    }

    #[test]
    fn recurrence_floor_dominates() {
        let mut b = DdgBuilder::default();
        let acc = b.node(Opcode::Mac);
        b.carried(acc, acc, 1);
        let ddg = b.finish();
        let f = DspFabric::standard(8, 8, 8);
        // Mac latency 2 over distance 1 → MIIRec 2 even with one node.
        assert_eq!(
            flat_optimal_mii(&ddg, &f, &OracleConfig::default()),
            Some(OracleVerdict::Exact(2))
        );
    }

    #[test]
    fn cancelled_search_downgrades_to_upper() {
        // A pre-fired token stops the search at its very first branch
        // point; the trivial all-on-one-CN incumbent survives as an Upper.
        let mut b = DdgBuilder::default();
        for _ in 0..8 {
            b.node(Opcode::Add);
        }
        let ddg = b.finish();
        let f = DspFabric::standard(8, 8, 8);
        let token = CancelToken::new();
        token.cancel();
        let v = flat_optimal_mii_seeded(&ddg, &f, &OracleConfig::default(), None, &token).unwrap();
        assert!(matches!(v, OracleVerdict::Upper(_)), "got {v:?}");
    }

    #[test]
    fn feasible_seed_at_the_lookahead_short_circuits() {
        // 8 independent ops on >= 8 CNs: the completion lookahead is 1, so
        // a seeded max-load of 1 is provably optimal without searching.
        let mut b = DdgBuilder::default();
        for _ in 0..8 {
            b.node(Opcode::Add);
        }
        let ddg = b.finish();
        let f = DspFabric::standard(8, 8, 8);
        let token = CancelToken::new();
        token.cancel(); // any actual search would be cut and report Upper
        let v =
            flat_optimal_mii_seeded(&ddg, &f, &OracleConfig::default(), Some(1), &token).unwrap();
        assert_eq!(v, OracleVerdict::Exact(1));
    }

    #[test]
    fn seeded_and_unseeded_agree_on_the_optimum() {
        let mut b = DdgBuilder::default();
        let ps: Vec<_> = (0..4).map(|_| b.node(Opcode::Add)).collect();
        let _join = b.op_with(Opcode::Add, &ps);
        let ddg = b.finish();
        let f = DspFabric::standard(8, 8, 8);
        let plain = flat_optimal_mii(&ddg, &f, &OracleConfig::default()).unwrap();
        // Seed with the feasible all-on-one-CN load (n): same optimum.
        let seeded = flat_optimal_mii_seeded(
            &ddg,
            &f,
            &OracleConfig::default(),
            Some(ddg.num_nodes() as u32),
            &CancelToken::new(),
        )
        .unwrap();
        assert_eq!(plain.mii(), seeded.mii());
        assert_eq!(seeded, OracleVerdict::Exact(2));
    }

    #[test]
    fn too_large_is_refused() {
        let mut b = DdgBuilder::default();
        for _ in 0..20 {
            b.node(Opcode::Add);
        }
        let ddg = b.finish();
        let f = DspFabric::standard(8, 8, 8);
        assert_eq!(flat_optimal_mii(&ddg, &f, &OracleConfig::default()), None);
    }

    #[test]
    fn const_producers_do_not_consume_fan_in() {
        // One consumer reading 4 constants: all constants can sit anywhere
        // without burning the consumer's 2 in-wires.
        let mut b = DdgBuilder::default();
        let ks: Vec<_> = (0..4).map(|_| b.node(Opcode::Const)).collect();
        let _ = b.op_with(Opcode::Add, &ks);
        let ddg = b.finish();
        let f = DspFabric::standard(8, 8, 8);
        assert_eq!(
            flat_optimal_mii(&ddg, &f, &OracleConfig::default()),
            Some(OracleVerdict::Exact(1))
        );
    }
}
