//! Apply/undo journal round-trip check for the SEE delta state.
//!
//! `PartialState::apply_assign_logged` journals one assignment;
//! `undo_assign` promises a **bit-exact** rollback (floats restored from
//! snapshots, collections popped operation by operation). This module
//! drives a random assignment sequence forward, fingerprinting the state
//! before every apply, then unwinds the whole journal and verifies each
//! intermediate state matches its fingerprint bit for bit.

use hca_arch::ResourceTable;
use hca_ddg::{Ddg, DdgAnalysis, NodeId};
use hca_pg::{ArchConstraints, Pg, PgNodeId};
use hca_see::{CostWeights, PartialState, SeeContext};
use rand::rngs::StdRng;
use rand::Rng;

/// Stable, bit-exact digest of every externally visible field of a
/// [`PartialState`]. Floats are captured via `to_bits`, hash collections
/// in sorted order.
fn fingerprint(st: &PartialState) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let mut assignment: Vec<(NodeId, PgNodeId)> = st
        .assignment
        .iter()
        .enumerate()
        .filter_map(|(i, &slot)| slot.map(|c| (hca_ddg::NodeId(i as u32), c)))
        .collect();
    assignment.sort();
    writeln!(s, "assignment {assignment:?}").unwrap();
    let mut copies: Vec<(PgNodeId, PgNodeId, Vec<NodeId>)> = Vec::new();
    st.copies
        .for_each_arc(|a, b, vs| copies.push((a, b, vs.to_vec())));
    copies.sort();
    writeln!(s, "copies {copies:?}").unwrap();
    writeln!(s, "issue {:?}", st.loads.issue_all()).unwrap();
    writeln!(s, "alu {:?}", st.loads.alu_all()).unwrap();
    writeln!(s, "ag {:?}", st.loads.ag_all()).unwrap();
    writeln!(s, "recv {:?}", st.loads.recv_all()).unwrap();
    let neigh = |sets: &hca_see::neighbors::NeighborSets| -> Vec<Vec<PgNodeId>> {
        (0..sets.num_rows())
            .map(|i| sets.iter(i).collect()) // bit order is ascending id order
            .collect()
    };
    writeln!(s, "in {:?}", neigh(&st.in_neighbors)).unwrap();
    writeln!(s, "out {:?}", neigh(&st.out_neighbors)).unwrap();
    writeln!(
        s,
        "scalars {} {} {:x} {} {:?} {:x}",
        st.total_copies,
        st.recurrence_copies,
        st.critical_penalty.to_bits(),
        st.routed_hops,
        st.forwards,
        st.cost.to_bits()
    )
    .unwrap();
    s
}

/// Drive a full random assignment over a complete `clusters`-node PG and
/// verify the journal unwinds bit-exactly. Returns the first mismatch as a
/// human-readable diff context.
pub fn journal_roundtrip_check(ddg: &Ddg, clusters: usize, rng: &mut StdRng) -> Result<(), String> {
    let analysis = DdgAnalysis::compute(ddg).map_err(|e| format!("analysis failed: {e}"))?;
    let pg = Pg::complete(clusters, ResourceTable::of_cns(clusters as u32));
    let ctx = SeeContext {
        ddg,
        analysis: &analysis,
        pg: &pg,
        constraints: ArchConstraints {
            max_in_neighbors: 2,
            max_out_neighbors: None,
            out_node_max_in: 1,
            copy_latency: 1,
        },
        weights: CostWeights::default(),
        issue_cap: None,
        statics: hca_see::statics::PgStatics::build(&pg),
    };
    let working_set: Vec<NodeId> = ddg.node_ids().collect();
    let mut st = PartialState::initial(&ctx, &working_set);

    let mut journal = Vec::new();
    let mut checkpoints = vec![fingerprint(&st)];
    for &n in &working_set {
        let c = PgNodeId(rng.gen_range(0..clusters as u32));
        journal.push(st.apply_assign_logged(&ctx, n, c));
        checkpoints.push(fingerprint(&st));
    }

    // Unwind: after undoing apply #i the state must equal checkpoint #i.
    for i in (0..journal.len()).rev() {
        let undo = journal.pop().expect("journal entry");
        st.undo_assign(&ctx, undo);
        let now = fingerprint(&st);
        if now != checkpoints[i] {
            return Err(format!(
                "journal round-trip diverged after undoing step {i}:\n\
                 --- expected ---\n{}\n--- actual ---\n{now}",
                checkpoints[i]
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_kernel;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_is_bit_exact_on_random_kernels() {
        for seed in 0..120u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let ddg = random_kernel(&mut rng, 16);
            journal_roundtrip_check(&ddg, 4, &mut rng)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
