//! The fuzz gauntlet: one random kernel through every check, and the
//! campaign driver that runs seeds in bulk, shrinks failures and writes
//! reproducers to disk.
//!
//! Per-seed stages, in order:
//!
//! 1. `run_hca` under [`ValidationLevel::Strict`] — any typed error fails;
//! 2. result invariants — complete placement, `final_mii ≥ theoretical`,
//!    legal coherency report;
//! 3. differential coherency — the memoized checker and the independent
//!    fixpoint checker must agree on every edge;
//! 4. flat-ICA oracle (≤ `max_nodes` small graphs) — the oracle optimum
//!    must be ≥ the theoretical bound, and HCA's `final_mii` must stay
//!    within the stated quality envelope of the flat optimum;
//! 5. apply/undo journal round-trip — bit-exact state restoration;
//! 6. determinism — a 1-thread and an N-thread run must agree on every
//!    placement, copy primitive and statistic.

use crate::gen::random_kernel;
use crate::journal::journal_roundtrip_check;
use crate::oracle::{flat_optimal_mii, OracleConfig, OracleVerdict};
use crate::reach::{coherency_violations_fixpoint, differential_coherency};
use hca_arch::DspFabric;
use hca_core::{run_hca, HcaConfig, HcaResult};
use hca_ddg::Ddg;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::fmt;
use std::path::{Path, PathBuf};

/// Which gauntlet stage rejected a kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum CheckKind {
    /// `run_hca` returned a typed error (or panicked) under Strict.
    Run,
    /// A result invariant does not hold.
    Invariant,
    /// The two coherency implementations disagree on an edge.
    Differential,
    /// The flat-ICA oracle contradicts the result.
    Oracle,
    /// The apply/undo journal failed to restore a state bit-exactly.
    Journal,
    /// 1-thread and N-thread runs diverge.
    Determinism,
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CheckKind::Run => "run",
            CheckKind::Invariant => "invariant",
            CheckKind::Differential => "differential",
            CheckKind::Oracle => "oracle",
            CheckKind::Journal => "journal",
            CheckKind::Determinism => "determinism",
        };
        f.write_str(s)
    }
}

/// One gauntlet rejection.
#[derive(Clone, Debug)]
pub struct GauntletFailure {
    /// The stage that rejected the kernel.
    pub kind: CheckKind,
    /// Human-readable evidence.
    pub detail: String,
}

/// Gauntlet knobs.
#[derive(Clone, Copy, Debug)]
pub struct GauntletConfig {
    /// Oracle search limits (graphs above `oracle.max_nodes` skip stage 4).
    pub oracle: OracleConfig,
    /// Quality envelope: require `final_mii ≤ factor · opt + slack`.
    pub quality_factor: u32,
    /// Additive slack of the quality envelope (absorbs receive/route
    /// overhead the optimistic oracle does not model).
    pub quality_slack: u32,
    /// Worker count of the N-thread determinism run.
    pub threads: usize,
    /// Run with the cross-sub-problem memo cache enabled
    /// ([`HcaConfig::memo`]). The cache is argued result-transparent; a
    /// gauntlet sweep with it on is the fuzz-side referee of that claim.
    pub memo: bool,
}

impl Default for GauntletConfig {
    fn default() -> Self {
        GauntletConfig {
            oracle: OracleConfig::default(),
            quality_factor: 3,
            quality_slack: 8,
            threads: 4,
            memo: true,
        }
    }
}

/// What one clean gauntlet pass established.
#[derive(Clone, Copy, Debug, Default)]
pub struct GauntletReport {
    /// Oracle stage outcome: `None` when the graph was too large.
    pub oracle: Option<OracleVerdict>,
    /// HCA's final MII.
    pub final_mii: u32,
}

/// Compare the observable output of two runs field by field.
fn diff_results(a: &HcaResult, b: &HcaResult) -> Option<String> {
    if a.placement != b.placement {
        return Some("placements diverge".into());
    }
    if a.mii != b.mii {
        return Some(format!("MII reports diverge: {:?} vs {:?}", a.mii, b.mii));
    }
    if a.stats != b.stats {
        return Some(format!(
            "statistics diverge: {:?} vs {:?}",
            a.stats, b.stats
        ));
    }
    if a.final_program.placement != b.final_program.placement {
        return Some("final-program placements diverge".into());
    }
    if a.final_program.recv_nodes != b.final_program.recv_nodes {
        return Some("recv primitives diverge".into());
    }
    if a.final_program.route_nodes != b.final_program.route_nodes {
        return Some("route primitives diverge".into());
    }
    None
}

/// Run one kernel through the whole gauntlet. `seed` only re-seeds the
/// journal stage's RNG, so the check is reproducible per kernel.
pub fn gauntlet(
    ddg: &Ddg,
    fabric: &DspFabric,
    cfg: &GauntletConfig,
    seed: u64,
) -> Result<GauntletReport, GauntletFailure> {
    let fail = |kind, detail: String| Err(GauntletFailure { kind, detail });
    let hca_cfg = HcaConfig {
        memo: cfg.memo,
        ..HcaConfig::strict()
    };

    // 1. Strict HCA run (single-threaded for reproducibility; the
    //    determinism stage covers the parallel path).
    hca_par::set_thread_override(Some(1));
    let run = run_hca(ddg, fabric, &hca_cfg);
    hca_par::set_thread_override(None);
    let res = match run {
        Ok(r) => r,
        Err(e) => return fail(CheckKind::Run, format!("run_hca(Strict): {e}")),
    };

    // 2. Result invariants.
    if res.placement.len() != ddg.num_nodes() {
        return fail(
            CheckKind::Invariant,
            format!(
                "placement covers {} of {} nodes",
                res.placement.len(),
                ddg.num_nodes()
            ),
        );
    }
    if res.mii.final_mii < res.mii.theoretical {
        return fail(
            CheckKind::Invariant,
            format!(
                "final_mii {} below theoretical {}",
                res.mii.final_mii, res.mii.theoretical
            ),
        );
    }
    if !res.is_legal() {
        return fail(
            CheckKind::Invariant,
            format!("Strict run returned an illegal result: {:?}", res.coherency),
        );
    }

    // 3. Differential coherency (both checkers over every edge), plus the
    //    fixpoint checker's own verdict on the final topology.
    let place = res.placement.clone();
    let placement = move |n| place[&n];
    let disagreements = differential_coherency(fabric, &res.topology, ddg, &placement);
    if !disagreements.is_empty() {
        return fail(CheckKind::Differential, disagreements.join("; "));
    }
    let fx_violations = coherency_violations_fixpoint(fabric, &res.topology, ddg, &placement);
    if !fx_violations.is_empty() {
        return fail(
            CheckKind::Differential,
            format!("fixpoint checker reports undelivered values: {fx_violations:?}"),
        );
    }

    // 4. Flat-ICA oracle.
    let oracle = flat_optimal_mii(ddg, fabric, &cfg.oracle);
    if let Some(verdict) = oracle {
        let opt = verdict.mii();
        if opt < res.mii.theoretical {
            return fail(
                CheckKind::Oracle,
                format!(
                    "oracle optimum {opt} below theoretical bound {}",
                    res.mii.theoretical
                ),
            );
        }
        // Quality envelope. The oracle is exact only for `Exact`; an
        // `Upper` verdict can only make this check *more* lenient to HCA,
        // so it stays sound.
        let envelope = cfg.quality_factor * opt + cfg.quality_slack;
        if res.mii.final_mii > envelope {
            return fail(
                CheckKind::Oracle,
                format!(
                    "final_mii {} outside quality envelope {envelope} (flat optimum {opt}, {verdict:?})",
                    res.mii.final_mii
                ),
            );
        }
    }

    // 5. Journal round-trip.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    if let Err(e) = journal_roundtrip_check(ddg, 4, &mut rng) {
        return fail(CheckKind::Journal, e);
    }

    // 6. Thread-count determinism. With the memo on this also pins that
    //    cache hits, whose order varies with scheduling, stay invisible.
    hca_par::set_thread_override(Some(cfg.threads.max(2)));
    let par = run_hca(ddg, fabric, &hca_cfg);
    hca_par::set_thread_override(None);
    match par {
        Ok(par_res) => {
            if let Some(diff) = diff_results(&res, &par_res) {
                return fail(CheckKind::Determinism, diff);
            }
        }
        Err(e) => {
            return fail(
                CheckKind::Determinism,
                format!("parallel run failed where sequential succeeded: {e}"),
            );
        }
    }

    Ok(GauntletReport {
        oracle,
        final_mii: res.mii.final_mii,
    })
}

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Number of seeds to run.
    pub count: usize,
    /// First seed; seed *i* of the campaign is `base_seed + i`.
    pub base_seed: u64,
    /// Largest kernel the generator may emit.
    pub max_nodes: usize,
    /// Gauntlet knobs.
    pub gauntlet: GauntletConfig,
    /// Where shrunk reproducers are written (`None` disables writing).
    pub out_dir: Option<PathBuf>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            count: 500,
            base_seed: 1,
            max_nodes: 24,
            gauntlet: GauntletConfig::default(),
            out_dir: Some(PathBuf::from("fuzz-failures")),
        }
    }
}

/// One campaign failure, after shrinking.
#[derive(Clone, Debug)]
pub struct FailureRecord {
    /// The failing seed.
    pub seed: u64,
    /// The stage that rejected it.
    pub kind: CheckKind,
    /// Evidence from the *shrunk* reproducer.
    pub detail: String,
    /// Node/edge size of the shrunk reproducer.
    pub shrunk_nodes: usize,
    /// Where the reproducer was written, when `out_dir` was set.
    pub path: Option<PathBuf>,
}

/// Aggregate campaign outcome.
#[derive(Clone, Debug, Default)]
pub struct CampaignSummary {
    /// Seeds run.
    pub runs: usize,
    /// Seeds whose oracle stage produced an exact optimum.
    pub oracle_exact: usize,
    /// Seeds whose oracle stage hit the step budget.
    pub oracle_upper: usize,
    /// Worst observed `final_mii / flat-optimum` ratio over oracle-checked
    /// seeds, as (final_mii, optimum).
    pub worst_ratio: Option<(u32, u32)>,
    /// Every failure, shrunk.
    pub failures: Vec<FailureRecord>,
}

/// JSON reproducer written next to the campaign.
#[derive(Serialize)]
struct Reproducer {
    seed: u64,
    kind: CheckKind,
    detail: String,
    ddg: Ddg,
}

/// Run `cfg.count` seeded kernels through the gauntlet, shrinking every
/// failure to a minimal reproducer (same stage still failing) and writing
/// it to `cfg.out_dir`.
pub fn run_campaign(fabric: &DspFabric, cfg: &CampaignConfig) -> CampaignSummary {
    let mut summary = CampaignSummary::default();
    for i in 0..cfg.count {
        let seed = cfg.base_seed + i as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let ddg = random_kernel(&mut rng, cfg.max_nodes);
        summary.runs += 1;
        match gauntlet(&ddg, fabric, &cfg.gauntlet, seed) {
            Ok(report) => {
                if let Some(verdict) = report.oracle {
                    match verdict {
                        OracleVerdict::Exact(_) => summary.oracle_exact += 1,
                        OracleVerdict::Upper(_) => summary.oracle_upper += 1,
                    }
                    let opt = verdict.mii().max(1);
                    let worse = match summary.worst_ratio {
                        None => true,
                        Some((m, o)) => {
                            u64::from(report.final_mii) * u64::from(o)
                                > u64::from(m) * u64::from(opt)
                        }
                    };
                    if worse {
                        summary.worst_ratio = Some((report.final_mii, opt));
                    }
                }
            }
            Err(failure) => {
                let kind = failure.kind;
                let fails = |g: &Ddg| match gauntlet(g, fabric, &cfg.gauntlet, seed) {
                    Ok(_) => false,
                    Err(f) => f.kind == kind,
                };
                let shrunk = crate::shrink::shrink(&ddg, &fails);
                let detail = match gauntlet(&shrunk, fabric, &cfg.gauntlet, seed) {
                    Err(f) => f.detail,
                    Ok(_) => failure.detail.clone(),
                };
                let path = cfg
                    .out_dir
                    .as_deref()
                    .and_then(|dir| write_reproducer(dir, seed, kind, &detail, &shrunk).ok());
                summary.failures.push(FailureRecord {
                    seed,
                    kind,
                    detail,
                    shrunk_nodes: shrunk.num_nodes(),
                    path,
                });
            }
        }
    }
    summary
}

/// Serialise one shrunk reproducer as JSON under `dir`.
fn write_reproducer(
    dir: &Path,
    seed: u64,
    kind: CheckKind,
    detail: &str,
    ddg: &Ddg,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("seed-{seed}-{kind}.json"));
    let body = serde_json::to_string_pretty(&Reproducer {
        seed,
        kind,
        detail: detail.to_string(),
        ddg: ddg.clone(),
    })
    .map_err(|e| std::io::Error::other(e.to_string()))?;
    std::fs::write(&path, body + "\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that flip the global thread override.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn smoke_campaign_is_clean() {
        let _g = LOCK.lock().unwrap();
        // Debug-mode smoke: a small machine and few seeds keep this fast;
        // the CI fuzz job and the EXPERIMENTS campaign run the full-size
        // sweep in release mode.
        let fabric = DspFabric::two_level(4, 4, 4);
        let cfg = CampaignConfig {
            count: 10,
            base_seed: 100,
            max_nodes: 10,
            out_dir: None,
            ..CampaignConfig::default()
        };
        let summary = run_campaign(&fabric, &cfg);
        assert_eq!(summary.runs, 10);
        assert!(
            summary.failures.is_empty(),
            "failures: {:#?}",
            summary.failures
        );
        assert!(summary.oracle_exact > 0);
    }

    #[test]
    fn gauntlet_passes_on_a_fixed_kernel() {
        let _g = LOCK.lock().unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let ddg = random_kernel(&mut rng, 8);
        let fabric = DspFabric::two_level(4, 4, 4);
        let report = gauntlet(&ddg, &fabric, &GauntletConfig::default(), 7)
            .unwrap_or_else(|f| panic!("{}: {}", f.kind, f.detail));
        assert!(report.final_mii >= 1);
    }
}
