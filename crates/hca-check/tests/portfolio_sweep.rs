//! Fuzz sweep for the exact/beam portfolio acceptance contract:
//!
//! * the portfolio's final MII is **never worse** than beam-alone;
//! * whenever the beam side wins every sub-problem (zero exact wins), the
//!   portfolio output is **bit-identical** to the beam-alone output —
//!   placements, MII report, topology wires and materialised primitives;
//! * both runs pass `ValidationLevel::Strict`.
//!
//! The non-ignored smoke covers a few dozen seeds on every `cargo test`;
//! the full 300-seed sweep (the number the acceptance criteria name) runs
//! under `--ignored` in release mode, where it is cheap.

use hca_check::random_kernel;
use hca_core::{run_hca_obs, HcaConfig, PortfolioConfig};
use hca_obs::Obs;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sweep(count: u64, base_seed: u64, max_nodes: usize) {
    let fabric = hca_arch::DspFabric::two_level(4, 4, 4);
    let mut exact_wins_total = 0u64;
    for i in 0..count {
        let seed = base_seed + i;
        let mut rng = StdRng::seed_from_u64(seed);
        let ddg = random_kernel(&mut rng, max_nodes);

        let beam = run_hca_obs(&ddg, &fabric, &HcaConfig::strict(), &Obs::disabled())
            .unwrap_or_else(|e| panic!("seed {seed}: beam-only Strict run failed: {e}"));

        // ExactSmall is the deterministic portfolio mode (no deadline), so
        // the sweep itself is reproducible.
        let cfg = HcaConfig {
            portfolio: PortfolioConfig::exact_small(),
            ..HcaConfig::strict()
        };
        let obs = Obs::enabled();
        let port = run_hca_obs(&ddg, &fabric, &cfg, &obs)
            .unwrap_or_else(|e| panic!("seed {seed}: portfolio Strict run failed: {e}"));

        assert!(port.is_legal(), "seed {seed}: illegal portfolio result");
        assert!(
            port.mii.final_mii <= beam.mii.final_mii,
            "seed {seed}: portfolio MII {} worse than beam-alone {}",
            port.mii.final_mii,
            beam.mii.final_mii
        );

        let wins = port
            .metrics
            .as_ref()
            .and_then(|m| m.counter("portfolio.exact_wins"))
            .unwrap_or(0);
        exact_wins_total += wins;
        if wins == 0 {
            // Beam won everywhere: the exact side must have been invisible.
            assert_eq!(
                port.placement, beam.placement,
                "seed {seed}: placements diverge with zero exact wins"
            );
            assert_eq!(
                port.mii, beam.mii,
                "seed {seed}: MII reports diverge with zero exact wins"
            );
            assert_eq!(
                port.final_program.placement, beam.final_program.placement,
                "seed {seed}: final-program placements diverge with zero exact wins"
            );
            assert_eq!(
                port.final_program.recv_nodes, beam.final_program.recv_nodes,
                "seed {seed}: recv primitives diverge with zero exact wins"
            );
            assert_eq!(
                port.final_program.route_nodes, beam.final_program.route_nodes,
                "seed {seed}: route primitives diverge with zero exact wins"
            );
        }
    }
    // Not an assertion — which seeds produce exact wins shifts as the beam
    // improves — but surface the number so a sweep log shows whether the
    // exact side ever engaged.
    eprintln!("portfolio sweep: {exact_wins_total} exact win(s) across {count} seeds");
}

#[test]
fn portfolio_never_worse_than_beam_smoke() {
    sweep(40, 20_000, 16);
}

#[test]
#[ignore = "full 300-seed acceptance sweep; run with --ignored (release)"]
fn portfolio_never_worse_than_beam_300_seeds() {
    sweep(300, 20_000, 16);
}
