//! End-to-end tests of the `hca` binary itself.

use std::process::Command;

fn hca(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_hca"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn kernels_lists_table1_loops() {
    let (ok, stdout, _) = hca(&["kernels"]);
    assert!(ok);
    for name in ["fir2dim", "idcthor", "mpeg2inter", "h264deblocking", "biquad"] {
        assert!(stdout.contains(name), "{name} missing:\n{stdout}");
    }
}

#[test]
fn analyze_reports_mii_bounds() {
    let (ok, stdout, _) = hca(&["analyze", "fir2dim"]);
    assert!(ok);
    assert!(stdout.contains("MIIRec               3"), "{stdout}");
    assert!(stdout.contains("MIIRes (unified)     2"), "{stdout}");
}

#[test]
fn clusterize_reports_legality() {
    let (ok, stdout, _) = hca(&["clusterize", "dot_product"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("yes"), "{stdout}");
}

#[test]
fn simulate_verifies_execution() {
    let (ok, stdout, stderr) = hca(&["simulate", "fir8", "--trip", "5"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("match the sequential reference"), "{stdout}");
}

#[test]
fn machine_spec_accepted() {
    let (ok, stdout, stderr) = hca(&["clusterize", "dot_product", "--machine", "4x4@4,4"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("16 CNs"), "{stdout}");
}

#[test]
fn json_roundtrip_through_files() {
    let dir = std::env::temp_dir().join(format!("hca-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("biquad.json");
    let (ok, json, _) = hca(&["export", "biquad", "--json"]);
    assert!(ok);
    std::fs::write(&path, &json).unwrap();
    let (ok2, stdout, stderr) = hca(&["analyze", path.to_str().unwrap()]);
    assert!(ok2, "{stderr}");
    assert!(stdout.contains("MIIRec               4"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_inputs_fail_gracefully() {
    let (ok, _, stderr) = hca(&["clusterize", "no_such_kernel"]);
    assert!(!ok);
    assert!(stderr.contains("not a built-in kernel"), "{stderr}");
    let (ok2, _, stderr2) = hca(&["frobnicate"]);
    assert!(!ok2);
    assert!(stderr2.contains("unknown command"), "{stderr2}");
    let (ok3, _, stderr3) = hca(&["clusterize", "fir8", "--machine", "nope"]);
    assert!(!ok3);
    assert!(!stderr3.is_empty());
}

#[test]
fn rcp_subcommand_reports_ring_assignment() {
    let (ok, stdout, stderr) = hca(&["rcp", "dot_product"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("RCP ring"), "{stdout}");
    assert!(stdout.contains("legal: true"), "{stdout}");
}

#[test]
fn unroll_flag_scales_the_body() {
    let (ok, stdout, _) = hca(&["analyze", "dot_product", "--unroll", "3"]);
    assert!(ok);
    assert!(stdout.contains("dot_product×3"), "{stdout}");
    assert!(stdout.contains("21 nodes"), "{stdout}"); // 7 × 3
}
