//! End-to-end tests of the `hca` binary itself.

use std::process::Command;

fn hca(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_hca"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn kernels_lists_table1_loops() {
    let (ok, stdout, _) = hca(&["kernels"]);
    assert!(ok);
    for name in [
        "fir2dim",
        "idcthor",
        "mpeg2inter",
        "h264deblocking",
        "biquad",
    ] {
        assert!(stdout.contains(name), "{name} missing:\n{stdout}");
    }
}

#[test]
fn analyze_reports_mii_bounds() {
    let (ok, stdout, _) = hca(&["analyze", "fir2dim"]);
    assert!(ok);
    assert!(stdout.contains("MIIRec               3"), "{stdout}");
    assert!(stdout.contains("MIIRes (unified)     2"), "{stdout}");
}

#[test]
fn clusterize_reports_legality() {
    let (ok, stdout, _) = hca(&["clusterize", "dot_product"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("yes"), "{stdout}");
}

#[test]
fn simulate_verifies_execution() {
    let (ok, stdout, stderr) = hca(&["simulate", "fir8", "--trip", "5"]);
    assert!(ok, "{stderr}");
    assert!(
        stdout.contains("match the sequential reference"),
        "{stdout}"
    );
}

#[test]
fn machine_spec_accepted() {
    let (ok, stdout, stderr) = hca(&["clusterize", "dot_product", "--machine", "4x4@4,4"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("16 CNs"), "{stdout}");
}

#[test]
fn json_roundtrip_through_files() {
    let dir = std::env::temp_dir().join(format!("hca-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("biquad.json");
    let (ok, json, _) = hca(&["export", "biquad", "--json"]);
    assert!(ok);
    std::fs::write(&path, &json).unwrap();
    let (ok2, stdout, stderr) = hca(&["analyze", path.to_str().unwrap()]);
    assert!(ok2, "{stderr}");
    assert!(stdout.contains("MIIRec               4"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_inputs_fail_gracefully() {
    let (ok, _, stderr) = hca(&["clusterize", "no_such_kernel"]);
    assert!(!ok);
    assert!(stderr.contains("not a built-in kernel"), "{stderr}");
    let (ok2, _, stderr2) = hca(&["frobnicate"]);
    assert!(!ok2);
    assert!(stderr2.contains("unknown command"), "{stderr2}");
    let (ok3, _, stderr3) = hca(&["clusterize", "fir8", "--machine", "nope"]);
    assert!(!ok3);
    assert!(!stderr3.is_empty());
}

#[test]
fn rcp_subcommand_reports_ring_assignment() {
    let (ok, stdout, stderr) = hca(&["rcp", "dot_product"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("RCP ring"), "{stdout}");
    assert!(stdout.contains("legal: true"), "{stdout}");
}

#[test]
fn metrics_out_writes_valid_json_with_phase_timings_and_counters() {
    let dir = std::env::temp_dir().join(format!("hca-cli-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("m.json");
    let trace = dir.join("t.jsonl");
    let (ok, _, stderr) = hca(&[
        "clusterize",
        "dot_product",
        "--metrics-out",
        metrics.to_str().unwrap(),
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");

    // --metrics-out: valid JSON carrying phase timings and pipeline counters.
    let body = std::fs::read_to_string(&metrics).unwrap();
    let v = serde_json::from_str_value(&body).expect("valid JSON");
    let phases = v.field("phases").as_seq().expect("phases array");
    assert!(
        phases
            .iter()
            .any(|p| p.field("phase").as_str() == Some("driver.coherency")),
        "{body}"
    );
    let counters = v.field("counters").as_seq().expect("counters array");
    let counter = |name: &str| {
        counters
            .iter()
            .find(|c| c.field("name").as_str() == Some(name))
            .and_then(|c| c.field("value").as_u64())
    };
    assert!(
        counter("see.states_explored").is_some_and(|n| n > 0),
        "{body}"
    );
    assert!(
        counter("driver.subproblems").is_some_and(|n| n > 0),
        "{body}"
    );
    assert_eq!(counter("coherency.violations"), Some(0), "{body}");

    // --trace-out *.jsonl: every line is one valid JSON event.
    let trace_body = std::fs::read_to_string(&trace).unwrap();
    assert!(!trace_body.is_empty());
    for line in trace_body.lines() {
        let ev = serde_json::from_str_value(line).expect("valid JSONL event");
        assert!(ev.field("phase").as_str().is_some(), "{line}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_out_chrome_trace_loads_as_json() {
    let dir = std::env::temp_dir().join(format!("hca-cli-chrome-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("t.json");
    let (ok, _, stderr) = hca(&[
        "clusterize",
        "dot_product",
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let body = std::fs::read_to_string(&trace).unwrap();
    let v = serde_json::from_str_value(&body).expect("valid JSON");
    let events = v.field("traceEvents").as_seq().expect("traceEvents array");
    assert!(!events.is_empty());
    assert!(
        events.iter().any(|e| e.field("ph").as_str() == Some("X")),
        "expected at least one complete (span) event"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn closed_stdout_is_a_quiet_success() {
    // `hca kernels | head -0`: stdout is closed before the binary writes.
    // The EPIPE must not surface as a panic/backtrace.
    use std::process::Stdio;
    let mut child = Command::new(env!("CARGO_BIN_EXE_hca"))
        .arg("kernels")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    drop(child.stdout.take()); // close the read end immediately
    let out = child.wait_with_output().unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn explain_reports_mii_attribution_for_a_table1_kernel() {
    let (ok, stdout, stderr) = hca(&["explain", "fir2dim"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("final MII"), "{stdout}");
    assert!(stdout.contains("bound by"), "{stdout}");
    assert!(stdout.contains("sub-problems"), "{stdout}");
    assert!(stdout.contains("pruning reasons"), "{stdout}");
    assert!(stdout.contains("memo:"), "{stdout}");
}

#[test]
fn explain_replays_identically_from_a_recorded_trace() {
    let dir = std::env::temp_dir().join(format!("hca-cli-explain-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("idcthor.jsonl");
    let (ok, live, stderr) = hca(&["explain", "idcthor", "--trace-out", trace.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    let (ok2, replayed, stderr2) = hca(&["explain", trace.to_str().unwrap()]);
    assert!(ok2, "{stderr2}");
    // Same report body after the title line (titles name the source).
    let body = |s: &str| s.split_once('\n').map(|(_, b)| b.to_string()).unwrap();
    assert_eq!(body(&live), body(&replayed));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explain_works_on_a_fuzz_seed() {
    let (ok, stdout, stderr) = hca(&["explain", "fuzz", "--seed", "7"]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("final MII"), "{stdout}");
}

#[test]
fn diff_metrics_attributes_deltas_between_two_runs() {
    let dir = std::env::temp_dir().join(format!("hca-cli-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    let (ok, _, stderr) = hca(&[
        "clusterize",
        "fir2dim",
        "--metrics-out",
        a.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let (ok2, _, stderr2) = hca(&[
        "clusterize",
        "idcthor",
        "--metrics-out",
        b.to_str().unwrap(),
    ]);
    assert!(ok2, "{stderr2}");
    let (ok3, stdout, stderr3) = hca(&["diff-metrics", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(ok3, "{stderr3}");
    assert!(stdout.contains("diff-metrics"), "{stdout}");
    assert!(stdout.contains("phase "), "{stdout}");
    assert!(stdout.contains("counter "), "{stdout}");
    assert!(stdout.contains(" us "), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flame_out_writes_collapsed_stacks() {
    let dir = std::env::temp_dir().join(format!("hca-cli-flame-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let flame = dir.join("f.txt");
    let (ok, _, stderr) = hca(&[
        "clusterize",
        "dot_product",
        "--flame-out",
        flame.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    let body = std::fs::read_to_string(&flame).unwrap();
    assert!(!body.is_empty());
    // Collapsed-stack format: `frame[;frame…] <count>` per line.
    for line in body.lines() {
        let (stack, n) = line.rsplit_once(' ').expect("stack + count");
        assert!(!stack.is_empty(), "{line}");
        assert!(n.parse::<u64>().is_ok(), "{line}");
    }
    assert!(body.contains("driver."), "{body}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unroll_flag_scales_the_body() {
    let (ok, stdout, _) = hca(&["analyze", "dot_product", "--unroll", "3"]);
    assert!(ok);
    assert!(stdout.contains("dot_product×3"), "{stdout}");
    assert!(stdout.contains("21 nodes"), "{stdout}"); // 7 × 3
}
