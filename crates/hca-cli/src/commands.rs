//! Sub-command implementations.

use crate::Options;
use hca_core::Table1Row;
use hca_ddg::{analysis, dot, DdgAnalysis};
use hca_sched::{
    allocate_rotating, derive_dma_program, modulo_schedule, swing_schedule, KernelSchedule,
    StreamDir,
};
use hca_sim::verify_execution;

pub(crate) fn cmd_kernels() -> Result<(), String> {
    println!("built-in workloads:\n");
    println!(
        "{:<16} {:>8} {:>7} {:>7} {:>7}  source",
        "name", "N_Instr", "MIIRec", "MIIRes", "paper"
    );
    for k in hca_kernels::table1_kernels() {
        println!(
            "{:<16} {:>8} {:>7} {:>7} {:>7}  Table 1",
            k.name,
            k.expected.n_instr,
            k.expected.mii_rec,
            k.expected.mii_res,
            k.expected.paper_final_mii
        );
    }
    for (name, g) in [
        ("fir8", hca_kernels::dspstone::fir(8)),
        ("biquad", hca_kernels::dspstone::biquad()),
        ("matvec8", hca_kernels::dspstone::matvec_row(8)),
        ("dot_product", hca_kernels::dspstone::dot_product()),
        ("n_real_updates", hca_kernels::dspstone::n_real_updates(4)),
        ("convolution", hca_kernels::dspstone::convolution(8)),
        ("lms", hca_kernels::dspstone::lms(8)),
        ("matrix1x3", hca_kernels::dspstone::matrix1x3()),
    ] {
        println!(
            "{:<16} {:>8} {:>7} {:>7} {:>7}  DSPstone extra",
            name,
            g.num_nodes(),
            analysis::mii_rec(&g).unwrap(),
            "-",
            "-"
        );
    }
    Ok(())
}

pub(crate) fn cmd_analyze(opts: &Options) -> Result<(), String> {
    let (name, ddg) = opts.load_ddg()?;
    let an = DdgAnalysis::compute(&ddg).map_err(|e| e.to_string())?;
    let fabric = opts.fabric();
    println!("{name}: {}", ddg.summary());
    println!("  MIIRec               {}", an.mii_rec);
    println!(
        "  MIIRes (unified)     {}",
        hca_core::mii::mii_res_unified(&ddg, &fabric)
    );
    println!(
        "  theoretical optimum  {}",
        hca_core::mii::theoretical_mii(an.mii_rec, &ddg, &fabric)
    );
    println!("  critical path        {} cycles", an.levels.critical_path);
    println!("  SCCs                 {}", an.num_sccs);
    let rec = an.recurrence_nodes(&ddg);
    println!("  recurrence nodes     {}", rec.len());
    Ok(())
}

pub(crate) fn cmd_clusterize(opts: &Options) -> Result<(), String> {
    let (name, ddg) = opts.load_ddg()?;
    let res = opts.run(&ddg)?;
    let row = Table1Row::from_result(&name, &ddg, &res);
    let fabric = opts.fabric();
    match &opts.machine_spec {
        Some(spec) => println!("machine: {spec} ({} CNs)", fabric.num_cns()),
        None => {
            let (n, m, k) = opts.machine;
            println!("machine: 64-CN DSPFabric, N={n} M={m} K={k}");
        }
    }
    println!("{row}");
    println!(
        "  ini {}  maxCls {}  wire {}  recRec {}  | {} wires, {} recvs, {} routes, {} subproblems",
        res.mii.ini_mii,
        res.mii.max_cls_mii,
        res.mii.wire_mii,
        res.mii.final_mii_rec,
        res.stats.wires,
        res.final_program.num_recvs(),
        res.final_program.route_nodes.len(),
        res.stats.subproblems,
    );
    if !res.is_legal() {
        for e in &res.coherency.topology_errors {
            println!("  topology: {e}");
        }
        for v in res.coherency.violations.iter().take(8) {
            println!("  violation: {v}");
        }
    }
    Ok(())
}

/// Reproduce the paper's Table 1: run all four multimedia loops through the
/// best-of-portfolio search and print the markdown table. A non-default
/// `--solver` replaces the config portfolio with one run under that
/// sub-problem solver (exact-small or race). With `--metrics-out` the rows
/// (each carrying its run's [`RunMetrics`]) are written as one JSON array;
/// `--trace-out` writes one trace per kernel, tagged with the kernel name.
pub(crate) fn cmd_table1(opts: &Options) -> Result<(), String> {
    let fabric = opts.fabric();
    let mut rows = Vec::new();
    for kernel in hca_kernels::table1_kernels() {
        let obs = opts.kernel_obs(kernel.name)?;
        let res = if opts.solver == hca_core::PortfolioMode::BeamOnly {
            hca_core::run_hca_portfolio_obs(&kernel.ddg, &fabric, &obs)
        } else {
            hca_core::run_hca_obs(&kernel.ddg, &fabric, &opts.hca_config(), &obs)
        }
        .map_err(|e| format!("{}: {e}", kernel.name))?;
        obs.finish();
        rows.push(Table1Row::from_result(kernel.name, &kernel.ddg, &res));
    }
    print!("{}", Table1Row::render_table(&rows));
    if let Some(path) = &opts.metrics_out {
        crate::write_json(path, &rows)?;
        println!("(metrics for {} kernels written to {path})", rows.len());
    }
    Ok(())
}

pub(crate) fn cmd_schedule(opts: &Options) -> Result<(), String> {
    let (name, ddg) = opts.load_ddg()?;
    let fabric = opts.fabric();
    let obs = opts.obs()?;
    let res = opts.run_with(&ddg, &obs)?;
    let sched = {
        let _span = obs
            .span("sched", if opts.sms { "sms" } else { "iterative" })
            .with_arg("mii", u64::from(res.mii.final_mii));
        if opts.sms {
            swing_schedule(&res.final_program, &fabric, res.mii.final_mii)
        } else {
            modulo_schedule(&res.final_program, &fabric, res.mii.final_mii)
        }
        .map_err(|e| e.to_string())?
    };
    opts.finish_obs(&obs)?;
    let folded = KernelSchedule::fold(&res.final_program, &fabric, &sched);
    let regs = allocate_rotating(&res.final_program, &fabric, &sched);
    let dma = derive_dma_program(&res.final_program, &fabric, &sched);
    println!(
        "{name}: II {} (lower bound {}), {} stages, {:.0}% utilisation [{}]",
        sched.ii,
        res.mii.final_mii,
        sched.stages,
        folded.utilization() * 100.0,
        if opts.sms { "SMS" } else { "iterative" },
    );
    println!(
        "rotating registers: worst CN uses {} (fits 64-entry file: {})",
        regs.max_registers(),
        regs.fits(64),
    );
    println!(
        "DMA program: {} streams, peak {} requests/cycle (ports {}), {} in flight (FIFO budget {})",
        dma.streams.len(),
        dma.requests_per_cycle.iter().max().unwrap_or(&0),
        fabric.dma.ports,
        dma.max_inflight,
        fabric.dma.fifo_depth() * fabric.dma.ports,
    );
    for d in dma.streams.iter().take(12) {
        println!(
            "  {} {:?} slot {} stage {} induction {:?} (+{} hops)",
            d.node,
            if d.dir == StreamDir::In { "in " } else { "out" },
            d.slot,
            d.stage,
            d.induction,
            d.offset_hops,
        );
    }
    if dma.streams.len() > 12 {
        println!("  … {} more", dma.streams.len() - 12);
    }
    Ok(())
}

pub(crate) fn cmd_simulate(opts: &Options) -> Result<(), String> {
    let (name, ddg) = opts.load_ddg()?;
    let fabric = opts.fabric();
    let obs = opts.obs()?;
    let res = opts.run_with(&ddg, &obs)?;
    let sched = {
        let _span = obs
            .span("sched", if opts.sms { "sms" } else { "iterative" })
            .with_arg("mii", u64::from(res.mii.final_mii));
        if opts.sms {
            swing_schedule(&res.final_program, &fabric, res.mii.final_mii)
        } else {
            modulo_schedule(&res.final_program, &fabric, res.mii.final_mii)
        }
        .map_err(|e| e.to_string())?
    };
    opts.finish_obs(&obs)?;
    let folded = KernelSchedule::fold(&res.final_program, &fabric, &sched);
    if opts.trace {
        print!(
            "{}",
            hca_sim::render_trace(&res.final_program, &fabric, &folded, 3, opts.trip)
        );
    }
    let rep = verify_execution(&ddg, &res.final_program, &fabric, &folded, opts.trip)
        .map_err(|e| format!("execution diverged: {e}"))?;
    println!(
        "{name}: {} iterations in {} cycles ({:.2} cycles/iter at II {}), \
         {} stored values match the sequential reference ✓",
        rep.trip,
        rep.cycles,
        rep.cycles as f64 / rep.trip.max(1) as f64,
        rep.ii,
        rep.stores_checked,
    );
    println!(
        "peak input-buffer occupancy: {} values on the busiest CN",
        rep.max_buffered
    );
    Ok(())
}

pub(crate) fn cmd_sweep(opts: &Options) -> Result<(), String> {
    let kernels = hca_kernels::table1_kernels();
    print!("{:<8}", "N=M=K");
    for k in &kernels {
        print!("{:>16}", k.name);
    }
    println!();
    for cap in [8usize, 6, 4, 3, 2] {
        print!("{cap:<8}");
        for kernel in &kernels {
            let fabric = hca_arch::DspFabric::standard(cap, cap, cap);
            let cell = if opts.portfolio {
                hca_core::run_hca_portfolio(&kernel.ddg, &fabric)
                    .ok()
                    .map(|r| (r.mii.final_mii, r.is_legal()))
            } else {
                hca_core::run_hca(&kernel.ddg, &fabric, &opts.hca_config())
                    .ok()
                    .map(|r| (r.mii.final_mii, r.is_legal()))
            };
            match cell {
                Some((mii, true)) => print!("{mii:>16}"),
                Some((mii, false)) => print!("{:>16}", format!("{mii}!")),
                None => print!("{:>16}", "—"),
            }
        }
        println!();
    }
    Ok(())
}

pub(crate) fn cmd_rcp(opts: &Options) -> Result<(), String> {
    let (name, ddg) = opts.load_ddg()?;
    let rcp = hca_arch::Rcp::figure1();
    let res =
        hca_core::run_rcp(&ddg, &rcp, hca_see::SeeConfig::default()).map_err(|e| e.to_string())?;
    println!(
        "{name} on the 8-cluster RCP ring (reach {}, {} input ports):",
        rcp.reach, rcp.input_ports
    );
    println!(
        "  estimated MII {}, {} copies, legal: {}",
        res.est_mii,
        res.assigned.total_copies(),
        res.legal,
    );
    for d in &res.diagnostics {
        println!("  diagnostic: {d}");
    }
    println!("  configured ring wires:");
    for &(s, d) in &res.wires {
        println!("    {s} -> {d}");
    }
    for c in res.assigned.pg.cluster_ids() {
        let instrs = res.assigned.instructions_of(c);
        if !instrs.is_empty() {
            println!("  cluster {c}: {} instructions", instrs.len());
        }
    }
    Ok(())
}

/// Seeded fuzz campaign through the validation gauntlet. Prints the
/// summary; any failure (already shrunk and written to `--out`) makes the
/// command exit non-zero.
pub(crate) fn cmd_fuzz(opts: &Options) -> Result<(), String> {
    use hca_check::{CampaignConfig, GauntletConfig};
    let fabric = opts.fabric();
    let cfg = CampaignConfig {
        count: opts.count,
        base_seed: opts.seed,
        max_nodes: opts.max_nodes,
        out_dir: opts.out.as_deref().map(std::path::PathBuf::from),
        gauntlet: GauntletConfig {
            memo: opts.memo,
            ..GauntletConfig::default()
        },
        ..CampaignConfig::default()
    };
    println!(
        "fuzz: {} seeds from {} (kernels ≤ {} nodes) on a {}-CN machine",
        cfg.count,
        cfg.base_seed,
        cfg.max_nodes,
        fabric.num_cns()
    );
    let summary = hca_check::run_campaign(&fabric, &cfg);
    println!(
        "  {} runs: oracle exact on {}, budget-capped on {}, skipped on {}",
        summary.runs,
        summary.oracle_exact,
        summary.oracle_upper,
        summary.runs - summary.oracle_exact - summary.oracle_upper,
    );
    if let Some((mii, opt)) = summary.worst_ratio {
        println!("  worst final_mii vs flat optimum: {mii} vs {opt}");
    }
    if summary.failures.is_empty() {
        println!("  no failures ✓");
        return Ok(());
    }
    for f in &summary.failures {
        println!(
            "  FAIL seed {} [{}] shrunk to {} nodes: {}{}",
            f.seed,
            f.kind,
            f.shrunk_nodes,
            f.detail,
            f.path
                .as_deref()
                .map(|p| format!(" ({})", p.display()))
                .unwrap_or_default(),
        );
    }
    Err(format!(
        "{} of {} seeds failed the gauntlet",
        summary.failures.len(),
        summary.runs
    ))
}

/// Run the full validation gauntlet — Strict HCA run, differential
/// coherency, flat-ICA oracle, journal round-trip, thread determinism — on
/// one workload, or on all Table-1 kernels when no target is given.
pub(crate) fn cmd_verify(opts: &Options) -> Result<(), String> {
    use hca_check::{gauntlet, GauntletConfig, OracleVerdict};
    let fabric = opts.fabric();
    let cfg = GauntletConfig::default();
    let workloads: Vec<(String, hca_ddg::Ddg)> = if opts.target.is_some() {
        vec![opts.load_ddg()?]
    } else {
        hca_kernels::table1_kernels()
            .into_iter()
            .map(|k| (k.name.to_string(), k.ddg))
            .collect()
    };
    let mut failures = 0usize;
    for (name, ddg) in &workloads {
        match gauntlet(ddg, &fabric, &cfg, opts.seed) {
            Ok(report) => {
                let oracle = match report.oracle {
                    Some(OracleVerdict::Exact(o)) => format!("flat optimum {o}"),
                    Some(OracleVerdict::Upper(o)) => format!("flat optimum ≤ {o}"),
                    None => "oracle skipped (too large)".to_string(),
                };
                println!("{name}: final MII {} — {oracle} ✓", report.final_mii);
            }
            Err(f) => {
                failures += 1;
                println!("{name}: FAIL [{}] {}", f.kind, f.detail);
            }
        }
    }
    if failures > 0 {
        return Err(format!(
            "{failures} of {} workloads failed verification",
            workloads.len()
        ));
    }
    Ok(())
}

pub(crate) fn cmd_export(opts: &Options) -> Result<(), String> {
    let (name, ddg) = opts.load_ddg()?;
    if opts.json {
        println!(
            "{}",
            serde_json::to_string_pretty(&ddg).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    if opts.dot {
        // Colour by cluster-set after clusterising.
        let fabric = opts.fabric();
        let placement = opts.run(&ddg)?.placement;
        println!(
            "{}",
            dot::to_dot(&ddg, |n| placement.get(&n).map(|cn| fabric.cn_path(*cn)[0]))
        );
        return Ok(());
    }
    Err(format!("export {name}: pass --dot or --json"))
}

pub(crate) fn cmd_serve(opts: &Options) -> Result<(), String> {
    use hca_serve::{Bind, Server, ServerConfig};
    if opts.bind.is_some() && opts.socket.is_some() {
        return Err("pass --bind or --socket, not both".into());
    }
    let bind = match &opts.socket {
        Some(path) => Bind::Unix(path.into()),
        None => Bind::Tcp(
            opts.bind
                .clone()
                .unwrap_or_else(|| "127.0.0.1:7878".to_string()),
        ),
    };
    let cfg = ServerConfig {
        bind,
        snapshot: opts.snapshot.as_ref().map(std::path::PathBuf::from),
        memo_budget: opts.memo_budget.unwrap_or(hca_core::Memo::DEFAULT_BUDGET),
        hca: opts.hca_config(),
    };
    let server = Server::bind(cfg).map_err(|e| format!("serve: {e}"))?;
    // The address goes to stdout (and is flushed) so scripts driving
    // `--bind 127.0.0.1:0` can read the picked port.
    println!("hca-serve listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let stats = server.run().map_err(|e| format!("serve: {e}"))?;
    eprintln!(
        "hca-serve: {} requests ({} errors), cache {} hits / {} misses / {} evictions, {} entries ({} bytes) at exit",
        stats.requests,
        stats.errors,
        stats.memo_hits,
        stats.memo_misses,
        stats.memo_evictions,
        stats.memo_entries,
        stats.memo_bytes,
    );
    Ok(())
}
