//! Search-trace introspection: `hca explain` replays a recorded (or
//! freshly captured) search trace into a per-sub-problem report, and
//! `hca diff-metrics` attributes the wall-clock delta between two metrics
//! dumps to phases and counters.

use crate::Options;
use hca_obs::trace::{self, kind, EXACT_TIER, FALLBACK_TIER};
use hca_obs::{Obs, SearchTracer, TraceRecord};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// `hca explain <kernel|trace.jsonl|fuzz>`: capture (or read) a search
/// trace and print the introspection report. A `.jsonl` target replays an
/// existing trace file; `fuzz` generates the `--seed`/`--max-nodes` fuzz
/// kernel; anything else resolves like every other command's target.
/// `--trace-out` saves the captured raw trace for later replay.
pub(crate) fn cmd_explain(opts: &Options) -> Result<(), String> {
    let target = opts.target.as_deref().unwrap_or("");
    let (title, records) = if target.ends_with(".jsonl") && std::path::Path::new(target).is_file() {
        (target.to_string(), trace::read_jsonl_file(target)?)
    } else {
        let (name, ddg) = if target == "fuzz" {
            let mut rng = StdRng::seed_from_u64(opts.seed);
            (
                format!("fuzz seed {}", opts.seed),
                hca_check::random_kernel(&mut rng, opts.max_nodes),
            )
        } else {
            opts.load_ddg()?
        };
        let tracer = match &opts.trace_out {
            Some(path) => {
                SearchTracer::to_file(path).map_err(|e| format!("--trace-out {path}: {e}"))?
            }
            None => SearchTracer::enabled(),
        };
        let fabric = opts.fabric();
        hca_core::run_hca_traced(&ddg, &fabric, &opts.hca_config(), &Obs::disabled(), &tracer)
            .map_err(|e| e.to_string())?;
        tracer.flush().map_err(|e| e.to_string())?;
        if let Some(path) = &opts.trace_out {
            eprintln!("(raw search trace written to {path})");
        }
        (name, tracer.records())
    };
    print!("{}", explain_report(&title, &records));
    Ok(())
}

/// Everything `explain` aggregates about one sub-problem.
#[derive(Default)]
struct SubReport {
    depth: u32,
    ws: u32,
    ili_in: u32,
    ili_out: u32,
    memo: Option<bool>,
    /// `(tier, ok, est_mii, why)` in attempt order.
    tiers: Vec<(u32, bool, u32, String)>,
    solved: Option<TraceRecord>,
    steps: u64,
    step_ns: u64,
    explored: u64,
}

/// Render the full introspection report from a flat record sequence. Pure
/// so a trace read from disk and one captured in-process explain
/// identically.
pub(crate) fn explain_report(title: &str, records: &[TraceRecord]) -> String {
    let mut subs: BTreeMap<String, SubReport> = BTreeMap::new();
    // Pruning-reason totals across every step of every SEE run.
    let (mut pr_beam, mut pr_margin, mut pr_branch, mut pr_dedup, mut pr_dom) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let (mut rescued_steps, mut route_bfs, mut route_hits) = (0u64, 0u64, 0u64);
    let mut depth_stats: BTreeMap<u32, (u64, u64, u64)> = BTreeMap::new(); // subs, steps, ns
    let mut mii_rec: Option<&TraceRecord> = None;
    for r in records {
        match r.kind.as_str() {
            kind::SUB => {
                let s = subs.entry(r.problem.clone()).or_default();
                (s.depth, s.ws, s.ili_in, s.ili_out) = (r.depth, r.ws, r.ili_in, r.ili_out);
                depth_stats.entry(r.depth).or_default().0 += 1;
            }
            kind::MEMO => subs.entry(r.problem.clone()).or_default().memo = Some(r.ok),
            kind::STEP => {
                let s = subs.entry(r.problem.clone()).or_default();
                s.steps += 1;
                s.step_ns += r.ns;
                s.explored += r.explored;
                pr_beam += r.pruned_beam;
                pr_margin += r.rej_margin;
                pr_branch += r.rej_branch;
                pr_dedup += r.deduped;
                pr_dom += r.dominated;
                rescued_steps += u64::from(r.rescued);
                let d = depth_stats.entry(r.depth).or_default();
                d.1 += 1;
                d.2 += r.ns;
            }
            kind::TIER => {
                let s = subs.entry(r.problem.clone()).or_default();
                s.tiers.push((r.tier, r.ok, r.est_mii, r.why.clone()));
                route_bfs += r.route_bfs;
                route_hits += r.route_hits;
            }
            kind::SOLVED => {
                subs.entry(r.problem.clone()).or_default().solved = Some(r.clone());
            }
            kind::MII => mii_rec = Some(r),
            _ => {}
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "explain {title}: {} trace records, {} sub-problems",
        records.len(),
        subs.len()
    );

    if let Some(m) = mii_rec {
        let _ = writeln!(
            out,
            "\nfinal MII {} — bound by {} (recurrence {}, cluster {}, wire {})",
            m.est_mii, m.why, m.mii_rec, m.mii_issue, m.mii_arc
        );
    }

    let _ = writeln!(out, "\nper-depth wall-clock (search steps only):");
    for (d, (nsubs, steps, ns)) in &depth_stats {
        let _ = writeln!(
            out,
            "  depth {d}: {nsubs:>4} sub-problems, {steps:>6} steps, {:>9.3} ms",
            *ns as f64 / 1e6
        );
    }

    let pr_total = pr_beam + pr_margin + pr_branch + pr_dedup + pr_dom;
    let _ = writeln!(out, "\npruning reasons ({pr_total} candidate/state drops):");
    for (label, n) in [
        ("beam truncation", pr_beam),
        ("margin rejection", pr_margin),
        ("branch truncation", pr_branch),
        ("frontier dedup", pr_dedup),
        ("dominance", pr_dom),
    ] {
        let pct = if pr_total > 0 {
            n as f64 * 100.0 / pr_total as f64
        } else {
            0.0
        };
        let _ = writeln!(out, "  {label:<18} {n:>10}  {pct:>5.1}%");
    }
    if rescued_steps > 0 {
        let _ = writeln!(out, "  route-rescue steps {rescued_steps:>10}");
    }

    let (memo_hits, memo_lookups) = subs.values().fold((0u64, 0u64), |(h, n), s| match s.memo {
        Some(true) => (h + 1, n + 1),
        Some(false) => (h, n + 1),
        None => (h, n),
    });
    let _ = writeln!(out, "\ncache efficiency:");
    if memo_lookups > 0 {
        let _ = writeln!(
            out,
            "  memo:        {memo_hits} hits / {memo_lookups} lookups ({:.1}%)",
            memo_hits as f64 * 100.0 / memo_lookups as f64
        );
    } else {
        let _ = writeln!(out, "  memo:        no lookups recorded");
    }
    let route_queries = route_bfs + route_hits;
    if route_queries > 0 {
        let _ = writeln!(
            out,
            "  route table: {route_hits} static answers / {route_queries} queries ({:.1}%)",
            route_hits as f64 * 100.0 / route_queries as f64
        );
    }

    // Portfolio exact backend: every EXACT_TIER tier record is one
    // branch-and-bound run, `ok` marks the ones that displaced the beam
    // winner and `why` records how the run ended.
    let exact: Vec<&(u32, bool, u32, String)> = subs
        .values()
        .flat_map(|s| s.tiers.iter())
        .filter(|t| t.0 == EXACT_TIER)
        .collect();
    if !exact.is_empty() {
        let wins = exact.iter().filter(|t| t.1).count();
        let mut ends: BTreeMap<&str, u64> = BTreeMap::new();
        for t in &exact {
            *ends.entry(t.3.as_str()).or_default() += 1;
        }
        let _ = writeln!(
            out,
            "\nportfolio exact backend: {} run(s), {wins} displaced the beam winner",
            exact.len()
        );
        for (why, n) in &ends {
            let label = match *why {
                "proven" => "proven optimal (lower bound hit)",
                "exhausted" => "search space exhausted",
                "deadline" => "deadline expired",
                "budget" => "node budget exhausted",
                other => other,
            };
            let _ = writeln!(out, "  {label:<34} {n}");
        }
    }

    // Which constraint bound each solved sub-problem's MII estimate.
    let mut binders: BTreeMap<&str, u64> = BTreeMap::new();
    for s in subs.values() {
        if let Some(r) = &s.solved {
            *binders.entry(r.why.as_str()).or_default() += 1;
        }
    }
    if !binders.is_empty() {
        let _ = writeln!(out, "\nsub-problem MII binders:");
        for (why, n) in &binders {
            let _ = writeln!(out, "  {why:<12} {n}");
        }
    }

    // The heaviest sub-problems, by search time.
    let mut by_time: Vec<(&String, &SubReport)> = subs.iter().collect();
    by_time.sort_by(|a, b| b.1.step_ns.cmp(&a.1.step_ns).then(a.0.cmp(b.0)));
    let shown = by_time.len().min(12);
    let _ = writeln!(out, "\nheaviest sub-problems ({shown} of {}):", subs.len());
    for (id, s) in by_time.iter().take(shown) {
        let memo = match s.memo {
            Some(true) => "  memo hit",
            _ => "",
        };
        let outcome = match &s.solved {
            Some(r) => {
                let tier = if r.tier == FALLBACK_TIER {
                    "fallback".to_string()
                } else if r.tier == EXACT_TIER {
                    "exact".to_string()
                } else {
                    format!("tier {}", r.tier)
                };
                format!("{tier}  est MII {} ({})", r.est_mii, r.why)
            }
            None if s.memo == Some(true) => "(rehydrated)".to_string(),
            None => "(unsolved)".to_string(),
        };
        let failed = s.tiers.iter().filter(|t| !t.1).count();
        let tier_note = if failed > 0 {
            format!("  {failed} tier(s) failed")
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  {:<12} d{} ws {:<3} {outcome}  {} steps  {:.3} ms{memo}{tier_note}",
            if id.is_empty() { "(root)" } else { id.as_str() },
            s.depth,
            s.ws,
            s.steps,
            s.step_ns as f64 / 1e6,
        );
    }
    out
}

/// One comparable case extracted from a metrics dump: a named run with an
/// optional end-to-end wall-clock and its phase/counter tables.
struct CaseMetrics {
    name: String,
    millis: Option<f64>,
    /// `phase name → wall µs`.
    phases: Vec<(String, u64)>,
    /// `counter name → value`.
    counters: Vec<(String, u64)>,
}

/// `hca diff-metrics <A.json> <B.json>`: attribute the wall-clock delta
/// between two recorded runs to phases and counters. Accepts any of the
/// repo's dump shapes: a single `RunMetrics`, a `table1 --metrics-out`
/// row array, a `BenchCase` array, a `bench_gate` `[name, millis]` dump,
/// or the checked-in `BENCH_baseline.json`.
pub(crate) fn cmd_diff_metrics(opts: &Options) -> Result<(), String> {
    let (Some(a_path), Some(b_path)) = (opts.target.as_deref(), opts.target2.as_deref()) else {
        return Err("diff-metrics needs two metrics files: hca diff-metrics A.json B.json".into());
    };
    let a = load_cases(a_path)?;
    let b = load_cases(b_path)?;
    print!("{}", diff_report(a_path, &a, b_path, &b));
    Ok(())
}

fn load_cases(path: &str) -> Result<Vec<CaseMetrics>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let value = serde_json::from_str_value(&text).map_err(|e| format!("{path}: {e}"))?;
    let cases = normalize_cases(&value);
    if cases.is_empty() {
        return Err(format!("{path}: no recognisable metrics (expected RunMetrics, Table1Row[], BenchCase[], bench_gate dump, or baseline)"));
    }
    Ok(cases)
}

/// Flatten any supported dump shape into named cases.
fn normalize_cases(v: &Value) -> Vec<CaseMetrics> {
    // Single RunMetrics object.
    if v.field("phases").as_seq().is_some() {
        return vec![case_from_metrics("run".into(), None, v)];
    }
    // bench_gate baseline: {tolerance_pct, cases: [{case, millis}]}.
    if let Some(cases) = v.field("cases").as_seq() {
        return cases
            .iter()
            .filter_map(|c| {
                Some(CaseMetrics {
                    name: c.field("case").as_str()?.to_string(),
                    millis: c.field("millis").as_f64(),
                    phases: Vec::new(),
                    counters: Vec::new(),
                })
            })
            .collect();
    }
    let Some(items) = v.as_seq() else {
        return Vec::new();
    };
    items
        .iter()
        .filter_map(|item| {
            if let Some(name) = item.field("loop_name").as_str() {
                // Table1Row: metrics is optional.
                return Some(case_from_metrics(name.into(), None, item.field("metrics")));
            }
            if let Some(name) = item.field("case").as_str() {
                // BenchCase.
                return Some(case_from_metrics(
                    name.into(),
                    item.field("millis").as_f64(),
                    item.field("metrics"),
                ));
            }
            // bench_gate dump: ["name", millis] pairs.
            let pair = item.as_seq()?;
            Some(CaseMetrics {
                name: pair.first()?.as_str()?.to_string(),
                millis: pair.get(1)?.as_f64(),
                phases: Vec::new(),
                counters: Vec::new(),
            })
        })
        .collect()
}

fn case_from_metrics(name: String, millis: Option<f64>, metrics: &Value) -> CaseMetrics {
    let table = |field: &str, key: &str, val: &str| -> Vec<(String, u64)> {
        metrics
            .field(field)
            .as_seq()
            .unwrap_or(&[])
            .iter()
            .filter_map(|row| {
                Some((
                    row.field(key).as_str()?.to_string(),
                    row.field(val).as_u64()?,
                ))
            })
            .collect()
    };
    CaseMetrics {
        name,
        millis,
        phases: table("phases", "phase", "wall_us"),
        counters: table("counters", "name", "value"),
    }
}

/// Signed deltas of one named table, sorted by magnitude.
fn table_deltas(a: &[(String, u64)], b: &[(String, u64)]) -> Vec<(String, i64, u64, u64)> {
    let av: BTreeMap<&str, u64> = a.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let bv: BTreeMap<&str, u64> = b.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let mut names: Vec<&str> = av.keys().chain(bv.keys()).copied().collect();
    names.sort_unstable();
    names.dedup();
    let mut rows: Vec<(String, i64, u64, u64)> = names
        .into_iter()
        .map(|n| {
            let (x, y) = (*av.get(n).unwrap_or(&0), *bv.get(n).unwrap_or(&0));
            (n.to_string(), y as i64 - x as i64, x, y)
        })
        .filter(|r| r.1 != 0)
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1.unsigned_abs()));
    rows
}

fn diff_report(a_name: &str, a: &[CaseMetrics], b_name: &str, b: &[CaseMetrics]) -> String {
    const TOP: usize = 12;
    let mut out = String::new();
    let _ = writeln!(out, "diff-metrics: {a_name} → {b_name}");
    let bmap: BTreeMap<&str, &CaseMetrics> = b.iter().map(|c| (c.name.as_str(), c)).collect();
    let mut matched = 0usize;
    for ca in a {
        let Some(cb) = bmap.get(ca.name.as_str()) else {
            let _ = writeln!(out, "\n{}: only in {a_name}", ca.name);
            continue;
        };
        matched += 1;
        let _ = write!(out, "\n{}", ca.name);
        match (ca.millis, cb.millis) {
            (Some(x), Some(y)) if x > 0.0 => {
                let _ = writeln!(
                    out,
                    ": {x:.1} ms → {y:.1} ms ({:+.1}%)",
                    (y - x) / x * 100.0
                );
            }
            (Some(x), Some(y)) => {
                let _ = writeln!(out, ": {x:.1} ms → {y:.1} ms");
            }
            _ => {
                let _ = writeln!(out);
            }
        }
        let phase_rows = table_deltas(&ca.phases, &cb.phases);
        for (name, d, x, y) in phase_rows.iter().take(TOP) {
            let _ = writeln!(out, "  phase   {name:<28} {:>+10} us  ({x} → {y})", d);
        }
        if phase_rows.len() > TOP {
            let _ = writeln!(out, "  … {} more phase deltas", phase_rows.len() - TOP);
        }
        let counter_rows = table_deltas(&ca.counters, &cb.counters);
        for (name, d, x, y) in counter_rows.iter().take(TOP) {
            let _ = writeln!(out, "  counter {name:<28} {:>+10}     ({x} → {y})", d);
        }
        if counter_rows.len() > TOP {
            let _ = writeln!(out, "  … {} more counter deltas", counter_rows.len() - TOP);
        }
        if phase_rows.is_empty() && counter_rows.is_empty() {
            let _ = writeln!(out, "  no phase/counter deltas");
        }
    }
    for cb in b {
        if !a.iter().any(|c| c.name == cb.name) {
            let _ = writeln!(out, "\n{}: only in {b_name}", cb.name);
        }
    }
    if matched == 0 {
        let _ = writeln!(out, "\n(no cases matched by name)");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind_: &str) -> TraceRecord {
        TraceRecord {
            kind: kind_.to_string(),
            ..TraceRecord::default()
        }
    }

    #[test]
    fn explain_report_aggregates_by_problem() {
        let records = vec![
            TraceRecord {
                problem: "0".into(),
                ws: 5,
                ..rec(kind::SUB)
            },
            TraceRecord {
                problem: "0".into(),
                ok: false,
                why: "miss".into(),
                ..rec(kind::MEMO)
            },
            TraceRecord {
                problem: "0".into(),
                step: 0,
                ns: 1_000_000,
                explored: 10,
                pruned_beam: 4,
                rej_margin: 2,
                ..rec(kind::STEP)
            },
            TraceRecord {
                problem: "0".into(),
                tier: 0,
                ok: true,
                est_mii: 3,
                route_bfs: 1,
                route_hits: 9,
                ..rec(kind::TIER)
            },
            TraceRecord {
                problem: "0".into(),
                tier: 0,
                est_mii: 3,
                why: "recurrence".into(),
                ..rec(kind::SOLVED)
            },
            TraceRecord {
                est_mii: 4,
                mii_rec: 4,
                mii_issue: 2,
                mii_arc: 1,
                why: "recurrence".into(),
                ..rec(kind::MII)
            },
        ];
        let report = explain_report("unit", &records);
        assert!(report.contains("1 sub-problems"), "{report}");
        assert!(
            report.contains("final MII 4 — bound by recurrence"),
            "{report}"
        );
        assert!(report.contains("0 hits / 1 lookups"), "{report}");
        assert!(
            report.contains("9 static answers / 10 queries (90.0%)"),
            "{report}"
        );
        assert!(report.contains("est MII 3 (recurrence)"), "{report}");
        assert!(report.contains("beam truncation"), "{report}");
    }

    #[test]
    fn diff_handles_runmetrics_and_gate_dumps() {
        let a = r#"{"phases":[{"phase":"see.level0","calls":2,"wall_us":300}],
                    "counters":[{"name":"see.steps","value":10}],
                    "histograms":[]}"#;
        let b = r#"{"phases":[{"phase":"see.level0","calls":2,"wall_us":100}],
                    "counters":[{"name":"see.steps","value":14}],
                    "histograms":[]}"#;
        let ca = normalize_cases(&serde_json::from_str_value(a).unwrap());
        let cb = normalize_cases(&serde_json::from_str_value(b).unwrap());
        let report = diff_report("a.json", &ca, "b.json", &cb);
        assert!(report.contains("see.level0"), "{report}");
        assert!(report.contains("-200 us"), "{report}");
        assert!(report.contains("+4"), "{report}");

        let gate = r#"[["fir2dim", 12.5], ["idcthor", 30.0]]"#;
        let cg = normalize_cases(&serde_json::from_str_value(gate).unwrap());
        assert_eq!(cg.len(), 2);
        assert_eq!(cg[0].name, "fir2dim");
        assert_eq!(cg[0].millis, Some(12.5));

        let baseline = r#"{"tolerance_pct":25.0,"cases":[{"case":"fir2dim","millis":10.0}]}"#;
        let cbl = normalize_cases(&serde_json::from_str_value(baseline).unwrap());
        let gate_vs_base = diff_report("base", &cbl, "gate", &cg);
        assert!(gate_vs_base.contains("+25.0%"), "{gate_vs_base}");
    }

    #[test]
    fn table1_rows_normalise_with_nested_metrics() {
        let rows = r#"[{"loop_name":"fir2dim","n_instr":89,"metrics":
            {"phases":[{"phase":"driver.mii","calls":5,"wall_us":42}],
             "counters":[],"histograms":[]}}]"#;
        let c = normalize_cases(&serde_json::from_str_value(rows).unwrap());
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].phases, vec![("driver.mii".to_string(), 42)]);
    }
}
