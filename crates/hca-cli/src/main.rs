//! `hca` — command-line front-end to the Hierarchical Cluster Assignment
//! toolchain.
//!
//! ```text
//! hca kernels                       list the built-in workloads
//! hca analyze  <kernel|ddg.json>    DDG statistics and MII bounds
//! hca clusterize <kernel> [opts]    run HCA, print the report
//! hca schedule <kernel> [opts]      + modulo scheduling, registers, DMA
//! hca simulate <kernel> [opts]      + cycle-level execution, verified
//! hca sweep    [opts]               bandwidth sweep over N=M=K
//! hca rcp      <kernel>             single-level ICA on the RCP ring (§2.1)
//! hca export   <kernel> (--dot|--json)   graphviz / DDG JSON to stdout
//!
//! options: --machine N,M,K   MUX capacities        (default 8,8,8)
//!          --portfolio       best-of-portfolio search
//!          --sms             Swing instead of iterative scheduling
//!          --trip T          simulated iterations   (default 16)
//!          --unroll F        unroll the loop body F times first
//! ```

use hca_arch::DspFabric;
use hca_core::{run_hca, run_hca_portfolio, HcaConfig, HcaResult};
use hca_ddg::{analysis, Ddg};
use std::process::ExitCode;

mod commands;

use commands::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Options::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "kernels" => cmd_kernels(),
        "analyze" => cmd_analyze(&opts),
        "clusterize" => cmd_clusterize(&opts),
        "schedule" => cmd_schedule(&opts),
        "simulate" => cmd_simulate(&opts),
        "sweep" => cmd_sweep(&opts),
        "rcp" => cmd_rcp(&opts),
        "export" => cmd_export(&opts),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

pub(crate) const USAGE: &str = "\
hca — Hierarchical Cluster Assignment toolchain

usage: hca <command> [target] [options]

commands:
  kernels                      list built-in workloads
  analyze    <kernel|file>     DDG statistics and MII bounds
  clusterize <kernel|file>     run HCA, print the report
  schedule   <kernel|file>     + modulo scheduling, registers, DMA program
  simulate   <kernel|file>     + cycle-level execution, verified vs reference
  sweep                        bandwidth sweep over the built-in kernels
  rcp        <kernel|file>     single-level ICA on the 8-cluster RCP ring
  export     <kernel|file>     emit --dot (graphviz) or --json (DDG)

options:
  --machine N,M,K    MUX capacities of the 64-CN machine (default 8,8,8),
                     or a full hierarchy spec like 2x4x4x4@8,8,8,8
  --portfolio        run the config portfolio, keep the best result
  --sms              use Swing Modulo Scheduling instead of iterative
  --trip T           iterations to simulate (default 16)
  --unroll F         unroll the loop body F times before everything else
  --trace            (simulate) print the first kernel passes' issue table
  --dot | --json     export format
";

/// Parsed command-line options.
pub(crate) struct Options {
    pub target: Option<String>,
    pub machine: (usize, usize, usize),
    pub machine_spec: Option<String>,
    pub portfolio: bool,
    pub sms: bool,
    pub trip: u64,
    pub unroll: u32,
    pub trace: bool,
    pub dot: bool,
    pub json: bool,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut o = Options {
            target: None,
            machine: (8, 8, 8),
            machine_spec: None,
            portfolio: false,
            sms: false,
            trip: 16,
            unroll: 1,
            trace: false,
            dot: false,
            json: false,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--machine" => {
                    let v = it.next().ok_or("--machine needs N,M,K or ARITIES@CAPS")?;
                    if v.contains('@') {
                        DspFabric::parse(v)?; // validate early
                        o.machine_spec = Some(v.clone());
                        continue;
                    }
                    let parts: Vec<usize> = v
                        .split(',')
                        .map(|p| p.trim().parse::<usize>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| format!("bad --machine value `{v}`"))?;
                    match parts.as_slice() {
                        [n] => o.machine = (*n, *n, *n),
                        [n, m, k] => o.machine = (*n, *m, *k),
                        _ => return Err(format!("bad --machine value `{v}`")),
                    }
                }
                "--trip" => {
                    let v = it.next().ok_or("--trip needs a number")?;
                    o.trip = v.parse().map_err(|_| format!("bad --trip value `{v}`"))?;
                }
                "--unroll" => {
                    let v = it.next().ok_or("--unroll needs a factor")?;
                    o.unroll = v.parse().map_err(|_| format!("bad --unroll value `{v}`"))?;
                    if o.unroll == 0 {
                        return Err("--unroll factor must be at least 1".into());
                    }
                }
                "--portfolio" => o.portfolio = true,
                "--sms" => o.sms = true,
                "--trace" => o.trace = true,
                "--dot" => o.dot = true,
                "--json" => o.json = true,
                other if !other.starts_with('-') && o.target.is_none() => {
                    o.target = Some(other.to_string());
                }
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        Ok(o)
    }

    pub fn fabric(&self) -> DspFabric {
        if let Some(spec) = &self.machine_spec {
            return DspFabric::parse(spec).expect("validated at parse time");
        }
        let (n, m, k) = self.machine;
        DspFabric::standard(n, m, k)
    }

    /// Resolve the target to a (name, DDG): a built-in kernel name or a
    /// path to a DDG JSON file.
    pub fn load_ddg(&self) -> Result<(String, Ddg), String> {
        let target = self
            .target
            .as_deref()
            .ok_or("missing kernel name or DDG file")?;
        let finish = |name: String, ddg: Ddg| -> (String, Ddg) {
            if self.unroll > 1 {
                (format!("{name}×{}", self.unroll), hca_ddg::unroll(&ddg, self.unroll))
            } else {
                (name, ddg)
            }
        };
        if let Some(k) = hca_kernels::table1_kernels()
            .into_iter()
            .find(|k| k.name == target)
        {
            return Ok(finish(k.name.to_string(), k.ddg));
        }
        let extra = match target {
            "fir8" => Some(hca_kernels::dspstone::fir(8)),
            "biquad" => Some(hca_kernels::dspstone::biquad()),
            "matvec8" => Some(hca_kernels::dspstone::matvec_row(8)),
            "dot_product" => Some(hca_kernels::dspstone::dot_product()),
            "n_real_updates" => Some(hca_kernels::dspstone::n_real_updates(4)),
            "convolution" => Some(hca_kernels::dspstone::convolution(8)),
            "lms" => Some(hca_kernels::dspstone::lms(8)),
            "matrix1x3" => Some(hca_kernels::dspstone::matrix1x3()),
            _ => None,
        };
        if let Some(g) = extra {
            return Ok(finish(target.to_string(), g));
        }
        let body = std::fs::read_to_string(target)
            .map_err(|e| format!("`{target}` is not a built-in kernel and not a readable file ({e})"))?;
        let ddg: Ddg =
            serde_json::from_str(&body).map_err(|e| format!("bad DDG JSON in {target}: {e}"))?;
        analysis::intra_topo_order(&ddg)
            .ok_or_else(|| format!("{target}: intra-iteration dependence cycle"))?;
        Ok(finish(target.to_string(), ddg))
    }

    pub fn run(&self, ddg: &Ddg) -> Result<HcaResult, String> {
        let fabric = self.fabric();
        if self.portfolio {
            run_hca_portfolio(ddg, &fabric).map_err(|e| e.to_string())
        } else {
            run_hca(ddg, &fabric, &HcaConfig::default()).map_err(|e| e.to_string())
        }
    }
}
