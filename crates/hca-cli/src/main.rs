//! `hca` — command-line front-end to the Hierarchical Cluster Assignment
//! toolchain.
//!
//! ```text
//! hca kernels                       list the built-in workloads
//! hca analyze  <kernel|ddg.json>    DDG statistics and MII bounds
//! hca clusterize <kernel> [opts]    run HCA, print the report
//! hca schedule <kernel> [opts]      + modulo scheduling, registers, DMA
//! hca simulate <kernel> [opts]      + cycle-level execution, verified
//! hca sweep    [opts]               bandwidth sweep over N=M=K
//! hca rcp      <kernel>             single-level ICA on the RCP ring (§2.1)
//! hca export   <kernel> (--dot|--json)   graphviz / DDG JSON to stdout
//!
//! options: --machine N,M,K   MUX capacities        (default 8,8,8)
//!          --portfolio       best-of-portfolio search
//!          --sms             Swing instead of iterative scheduling
//!          --trip T          simulated iterations   (default 16)
//!          --unroll F        unroll the loop body F times first
//! ```

use hca_arch::DspFabric;
use hca_core::{run_hca_obs, run_hca_portfolio_obs, HcaConfig, HcaResult, PortfolioMode};
use hca_ddg::{analysis, Ddg};
use hca_obs::{ChromeTraceSink, JsonlSink, Obs, StderrSink};
use std::process::ExitCode;

mod commands;
mod introspect;

use commands::*;
use introspect::{cmd_diff_metrics, cmd_explain};

fn main() -> ExitCode {
    // `hca export … --dot | head` closes stdout early and the std print
    // machinery then panics on EPIPE with a full backtrace. Treat a broken
    // pipe as a normal quiet exit; every other panic behaves as before.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !is_broken_pipe_panic(info.payload()) {
            default_hook(info);
        }
    }));
    match std::panic::catch_unwind(run_cli) {
        Ok(code) => code,
        Err(payload) if is_broken_pipe_panic(payload.as_ref()) => ExitCode::SUCCESS,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

fn is_broken_pipe_panic(payload: &(dyn std::any::Any + Send)) -> bool {
    let msg = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied());
    msg.is_some_and(|m| m.contains("Broken pipe"))
}

fn run_cli() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Options::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "kernels" => cmd_kernels(),
        "analyze" => cmd_analyze(&opts),
        "clusterize" => cmd_clusterize(&opts),
        "table1" => cmd_table1(&opts),
        "schedule" => cmd_schedule(&opts),
        "simulate" => cmd_simulate(&opts),
        "sweep" => cmd_sweep(&opts),
        "rcp" => cmd_rcp(&opts),
        "export" => cmd_export(&opts),
        "fuzz" => cmd_fuzz(&opts),
        "verify" => cmd_verify(&opts),
        "explain" => cmd_explain(&opts),
        "diff-metrics" => cmd_diff_metrics(&opts),
        "serve" => cmd_serve(&opts),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

pub(crate) const USAGE: &str = "\
hca — Hierarchical Cluster Assignment toolchain

usage: hca <command> [target] [options]

commands:
  kernels                      list built-in workloads
  analyze    <kernel|file>     DDG statistics and MII bounds
  clusterize <kernel|file>     run HCA, print the report
  table1                       run all four Table-1 kernels, print the table
  schedule   <kernel|file>     + modulo scheduling, registers, DMA program
  simulate   <kernel|file>     + cycle-level execution, verified vs reference
  sweep                        bandwidth sweep over the built-in kernels
  rcp        <kernel|file>     single-level ICA on the 8-cluster RCP ring
  export     <kernel|file>     emit --dot (graphviz) or --json (DDG)
  fuzz                         seeded DDG fuzz campaign through the
                               validation gauntlet (exit 1 on any failure)
  verify     [kernel|file]     run the gauntlet on one workload, or on all
                               Table-1 kernels under Strict validation
  explain    <kernel|trace.jsonl|fuzz>
                               replay a search trace into a per-sub-problem
                               report: MII attribution, pruning histograms,
                               cache efficiency, per-depth wall-clock.
                               `fuzz` explains the --seed fuzz kernel;
                               --trace-out saves the raw trace for replay
  diff-metrics <A.json> <B.json>
                               attribute the wall-clock delta between two
                               metrics dumps (RunMetrics, table1 rows,
                               BenchCase arrays, bench_gate dumps or
                               BENCH_baseline.json) to phases and counters
  serve                        long-running compile daemon: JSON-lines
                               requests over TCP (--bind, default
                               127.0.0.1:7878) or a Unix socket (--socket),
                               all connections sharing one byte-budgeted
                               sub-problem cache; --snapshot F persists the
                               cache across restarts (versioned; a stale
                               snapshot starts cold). Ops: ping, compile,
                               compile_batch, stats, crash, shutdown —
                               e.g. {\"id\":1,\"op\":\"compile\",\"kernel\":\"fir2dim\"}

options:
  --machine N,M,K    MUX capacities of the 64-CN machine (default 8,8,8),
                     or a full hierarchy spec like 2x4x4x4@8,8,8,8
  --portfolio        run the config portfolio, keep the best result
  --solver MODE      sub-problem solver: beam-only (default), exact-small
                     (deterministic exact backend on small sub-problems) or
                     race (exact-small plus a wall-clock deadline); the
                     result is never worse than beam-only on MII
  --sms              use Swing Modulo Scheduling instead of iterative
  --trip T           iterations to simulate (default 16)
  --unroll F         unroll the loop body F times before everything else
  --trace            (simulate) print the first kernel passes' issue table
  --dot | --json     export format

fuzz options:
  --count N          seeds to run               (default 500)
  --seed S           first seed                 (default 1)
  --max-nodes N      largest generated kernel   (default 24)
  --out DIR          shrunk-reproducer directory (default fuzz-failures;
                     `--out -` disables writing)
  --no-memo          disable the cross-sub-problem memo cache for the
                     gauntlet runs (the cache is on by default)

serve options:
  --bind ADDR        TCP listen address (default 127.0.0.1:7878; :0 picks
                     a free port, printed on stdout)
  --socket PATH      listen on a Unix-domain socket instead of TCP
  --snapshot F       load the cache snapshot from F on start (when valid)
                     and write it back on clean shutdown
  --memo-budget B    cache byte budget, with optional k/m/g suffix
                     (default 64m)

observability:
  --metrics-out F    write a RunMetrics JSON report (phase timings, SEE /
                     mapper / coherency counters) to F; table1 writes one
                     entry per kernel
  --trace-out F      write a structured event trace to F: `.jsonl` gets one
                     JSON event per line, anything else gets Chrome
                     trace_event JSON (load in chrome://tracing); for
                     `explain` this is the raw search-trace JSONL instead
  --flame-out F      write hierarchical span stacks in collapsed-stack
                     (flamegraph.pl / inferno) format to F
  -v, --verbose      log pipeline events and phase timings to stderr
";

/// Parsed command-line options.
pub(crate) struct Options {
    pub target: Option<String>,
    /// Second positional argument (`diff-metrics A B`).
    pub target2: Option<String>,
    pub machine: (usize, usize, usize),
    pub machine_spec: Option<String>,
    pub portfolio: bool,
    pub solver: PortfolioMode,
    pub sms: bool,
    pub trip: u64,
    pub unroll: u32,
    pub trace: bool,
    pub dot: bool,
    pub json: bool,
    pub metrics_out: Option<String>,
    pub trace_out: Option<String>,
    pub flame_out: Option<String>,
    pub verbose: bool,
    pub count: usize,
    pub seed: u64,
    pub max_nodes: usize,
    pub out: Option<String>,
    pub memo: bool,
    pub bind: Option<String>,
    pub socket: Option<String>,
    pub snapshot: Option<String>,
    pub memo_budget: Option<usize>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, String> {
        let mut o = Options {
            target: None,
            target2: None,
            machine: (8, 8, 8),
            machine_spec: None,
            portfolio: false,
            solver: PortfolioMode::BeamOnly,
            sms: false,
            trip: 16,
            unroll: 1,
            trace: false,
            dot: false,
            json: false,
            metrics_out: None,
            trace_out: None,
            flame_out: None,
            verbose: false,
            count: 500,
            seed: 1,
            max_nodes: 24,
            out: Some("fuzz-failures".into()),
            memo: true,
            bind: None,
            socket: None,
            snapshot: None,
            memo_budget: None,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--machine" => {
                    let v = it.next().ok_or("--machine needs N,M,K or ARITIES@CAPS")?;
                    if v.contains('@') {
                        DspFabric::parse(v)?; // validate early
                        o.machine_spec = Some(v.clone());
                        continue;
                    }
                    let parts: Vec<usize> = v
                        .split(',')
                        .map(|p| p.trim().parse::<usize>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| format!("bad --machine value `{v}`"))?;
                    match parts.as_slice() {
                        [n] => o.machine = (*n, *n, *n),
                        [n, m, k] => o.machine = (*n, *m, *k),
                        _ => return Err(format!("bad --machine value `{v}`")),
                    }
                }
                "--trip" => {
                    let v = it.next().ok_or("--trip needs a number")?;
                    o.trip = v.parse().map_err(|_| format!("bad --trip value `{v}`"))?;
                }
                "--unroll" => {
                    let v = it.next().ok_or("--unroll needs a factor")?;
                    o.unroll = v.parse().map_err(|_| format!("bad --unroll value `{v}`"))?;
                    if o.unroll == 0 {
                        return Err("--unroll factor must be at least 1".into());
                    }
                }
                "--portfolio" => o.portfolio = true,
                "--solver" => {
                    let v = it
                        .next()
                        .ok_or("--solver needs beam-only|exact-small|race")?;
                    o.solver = match v.as_str() {
                        "beam-only" => PortfolioMode::BeamOnly,
                        "exact-small" => PortfolioMode::ExactSmall,
                        "race" => PortfolioMode::Race,
                        other => {
                            return Err(format!(
                                "bad --solver value `{other}` (want beam-only, exact-small or race)"
                            ))
                        }
                    };
                }
                "--sms" => o.sms = true,
                "--trace" => o.trace = true,
                "--metrics-out" => {
                    let v = it.next().ok_or("--metrics-out needs a path")?;
                    // Fail on an unwritable path now, not after a long run
                    // (same early check `--trace-out` gets from its sink).
                    std::fs::File::create(v).map_err(|e| format!("--metrics-out {v}: {e}"))?;
                    o.metrics_out = Some(v.clone());
                }
                "--trace-out" => {
                    let v = it.next().ok_or("--trace-out needs a path")?;
                    o.trace_out = Some(v.clone());
                }
                "--flame-out" => {
                    let v = it.next().ok_or("--flame-out needs a path")?;
                    std::fs::File::create(v).map_err(|e| format!("--flame-out {v}: {e}"))?;
                    o.flame_out = Some(v.clone());
                }
                "--count" => {
                    let v = it.next().ok_or("--count needs a number")?;
                    o.count = v.parse().map_err(|_| format!("bad --count value `{v}`"))?;
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a number")?;
                    o.seed = v.parse().map_err(|_| format!("bad --seed value `{v}`"))?;
                }
                "--max-nodes" => {
                    let v = it.next().ok_or("--max-nodes needs a number")?;
                    o.max_nodes = v
                        .parse()
                        .map_err(|_| format!("bad --max-nodes value `{v}`"))?;
                    if o.max_nodes < 2 {
                        return Err("--max-nodes must be at least 2".into());
                    }
                }
                "--out" => {
                    let v = it.next().ok_or("--out needs a directory (or `-`)")?;
                    o.out = (v != "-").then(|| v.clone());
                }
                "--no-memo" => o.memo = false,
                "--bind" => {
                    let v = it.next().ok_or("--bind needs an ip:port address")?;
                    o.bind = Some(v.clone());
                }
                "--socket" => {
                    let v = it.next().ok_or("--socket needs a path")?;
                    o.socket = Some(v.clone());
                }
                "--snapshot" => {
                    let v = it.next().ok_or("--snapshot needs a path")?;
                    o.snapshot = Some(v.clone());
                }
                "--memo-budget" => {
                    let v = it.next().ok_or("--memo-budget needs bytes (k/m/g ok)")?;
                    o.memo_budget = Some(parse_bytes(v)?);
                }
                "-v" | "--verbose" => o.verbose = true,
                "--dot" => o.dot = true,
                "--json" => o.json = true,
                other if !other.starts_with('-') && o.target.is_none() => {
                    o.target = Some(other.to_string());
                }
                other if !other.starts_with('-') && o.target2.is_none() => {
                    o.target2 = Some(other.to_string());
                }
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        Ok(o)
    }

    pub fn fabric(&self) -> DspFabric {
        if let Some(spec) = &self.machine_spec {
            return DspFabric::parse(spec).expect("validated at parse time");
        }
        let (n, m, k) = self.machine;
        DspFabric::standard(n, m, k)
    }

    /// Resolve the target to a (name, DDG): a built-in kernel name or a
    /// path to a DDG JSON file.
    pub fn load_ddg(&self) -> Result<(String, Ddg), String> {
        let target = self
            .target
            .as_deref()
            .ok_or("missing kernel name or DDG file")?;
        let finish = |name: String, ddg: Ddg| -> (String, Ddg) {
            if self.unroll > 1 {
                (
                    format!("{name}×{}", self.unroll),
                    hca_ddg::unroll(&ddg, self.unroll),
                )
            } else {
                (name, ddg)
            }
        };
        if let Some(k) = hca_kernels::table1_kernels()
            .into_iter()
            .find(|k| k.name == target)
        {
            return Ok(finish(k.name.to_string(), k.ddg));
        }
        let extra = match target {
            "fir8" => Some(hca_kernels::dspstone::fir(8)),
            "biquad" => Some(hca_kernels::dspstone::biquad()),
            "matvec8" => Some(hca_kernels::dspstone::matvec_row(8)),
            "dot_product" => Some(hca_kernels::dspstone::dot_product()),
            "n_real_updates" => Some(hca_kernels::dspstone::n_real_updates(4)),
            "convolution" => Some(hca_kernels::dspstone::convolution(8)),
            "lms" => Some(hca_kernels::dspstone::lms(8)),
            "matrix1x3" => Some(hca_kernels::dspstone::matrix1x3()),
            _ => None,
        };
        if let Some(g) = extra {
            return Ok(finish(target.to_string(), g));
        }
        let body = std::fs::read_to_string(target).map_err(|e| {
            format!("`{target}` is not a built-in kernel and not a readable file ({e})")
        })?;
        let ddg: Ddg =
            serde_json::from_str(&body).map_err(|e| format!("bad DDG JSON in {target}: {e}"))?;
        analysis::intra_topo_order(&ddg)
            .ok_or_else(|| format!("{target}: intra-iteration dependence cycle"))?;
        Ok(finish(target.to_string(), ddg))
    }

    /// Build the observer requested by `--metrics-out` / `--trace-out` / `-v`.
    /// Disabled when none of the flags are present. Also installed as the
    /// process-wide observer so scheduler diagnostics reach the same sinks.
    pub fn obs(&self) -> Result<Obs, String> {
        let obs = self.build_obs(self.trace_out.as_deref())?;
        if obs.is_enabled() {
            hca_obs::set_global(obs.clone());
        }
        Ok(obs)
    }

    /// Per-kernel observer for `table1`: fresh metrics per kernel, with the
    /// `--trace-out` path tagged by the kernel name (`t.json` →
    /// `t.fir2dim.json`) so each kernel gets its own trace file.
    pub fn kernel_obs(&self, kernel: &str) -> Result<Obs, String> {
        let tagged = self.trace_out.as_deref().map(|p| suffix_path(p, kernel));
        self.build_obs(tagged.as_deref())
    }

    fn build_obs(&self, trace_out: Option<&str>) -> Result<Obs, String> {
        if !self.verbose
            && trace_out.is_none()
            && self.metrics_out.is_none()
            && self.flame_out.is_none()
        {
            return Ok(Obs::disabled());
        }
        let obs = Obs::enabled();
        if self.verbose {
            obs.add_sink(Box::new(StderrSink::new()));
        }
        if let Some(path) = trace_out {
            if path.ends_with(".jsonl") {
                let sink =
                    JsonlSink::create(path).map_err(|e| format!("--trace-out {path}: {e}"))?;
                obs.add_sink(Box::new(sink));
            } else {
                let sink = ChromeTraceSink::create(path)
                    .map_err(|e| format!("--trace-out {path}: {e}"))?;
                obs.add_sink(Box::new(sink));
            }
        }
        Ok(obs)
    }

    /// Flush sinks and write the `--metrics-out` / `--flame-out` reports,
    /// if requested.
    pub fn finish_obs(&self, obs: &Obs) -> Result<(), String> {
        let metrics = obs.finish();
        if let Some(path) = &self.metrics_out {
            let m = metrics
                .as_ref()
                .ok_or("internal: --metrics-out without an enabled observer")?;
            write_json(path, m)?;
        }
        if let Some(path) = &self.flame_out {
            let m = metrics
                .as_ref()
                .ok_or("internal: --flame-out without an enabled observer")?;
            std::fs::write(path, m.collapsed_stacks())
                .map_err(|e| format!("--flame-out {path}: {e}"))?;
        }
        Ok(())
    }

    pub fn run(&self, ddg: &Ddg) -> Result<HcaResult, String> {
        let obs = self.obs()?;
        let res = self.run_with(ddg, &obs)?;
        self.finish_obs(&obs)?;
        Ok(res)
    }

    /// The [`HcaConfig`] the flags ask for: defaults plus the `--solver`
    /// portfolio mode (with its mode-specific deadline/budget defaults).
    pub fn hca_config(&self) -> HcaConfig {
        let portfolio = match self.solver {
            PortfolioMode::BeamOnly => hca_core::PortfolioConfig::default(),
            PortfolioMode::ExactSmall => hca_core::PortfolioConfig::exact_small(),
            PortfolioMode::Race => hca_core::PortfolioConfig::race(),
        };
        HcaConfig {
            portfolio,
            ..HcaConfig::default()
        }
    }

    /// Run HCA under an externally managed observer (for commands that add
    /// their own spans — scheduling, simulation — before flushing).
    pub fn run_with(&self, ddg: &Ddg, obs: &Obs) -> Result<HcaResult, String> {
        let fabric = self.fabric();
        if self.portfolio {
            run_hca_portfolio_obs(ddg, &fabric, obs).map_err(|e| e.to_string())
        } else {
            run_hca_obs(ddg, &fabric, &self.hca_config(), obs).map_err(|e| e.to_string())
        }
    }
}

/// Pretty-print `value` as JSON into `path` (with a trailing newline).
pub(crate) fn write_json(path: &str, value: &impl serde::Serialize) -> Result<(), String> {
    let mut body = serde_json::to_string_pretty(value).map_err(|e| e.to_string())?;
    body.push('\n');
    std::fs::write(path, body).map_err(|e| format!("writing {path}: {e}"))
}

/// Parse a byte count with an optional `k`/`m`/`g` suffix: `64m` → 64 MiB.
fn parse_bytes(v: &str) -> Result<usize, String> {
    let v = v.trim();
    let (digits, shift) = match v.as_bytes().last() {
        Some(b'k' | b'K') => (&v[..v.len() - 1], 10),
        Some(b'm' | b'M') => (&v[..v.len() - 1], 20),
        Some(b'g' | b'G') => (&v[..v.len() - 1], 30),
        _ => (v, 0),
    };
    let n: usize = digits
        .trim()
        .parse()
        .map_err(|_| format!("bad byte count `{v}`"))?;
    n.checked_shl(shift)
        .filter(|scaled| scaled >> shift == n)
        .ok_or_else(|| format!("byte count `{v}` overflows"))
}

/// Insert `tag` before the file extension: `trace.json` → `trace.fir2dim.json`.
fn suffix_path(path: &str, tag: &str) -> String {
    match path.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() && !ext.contains('/') => {
            format!("{stem}.{tag}.{ext}")
        }
        _ => format!("{path}.{tag}"),
    }
}
