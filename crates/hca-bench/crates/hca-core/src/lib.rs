//! placeholder
