//! Criterion bench behind Table 1: end-to-end HCA runtime per kernel on the
//! paper's 64-CN / N=M=K=8 machine. The companion binary
//! (`cargo run -p hca-bench --bin table1`) prints the table itself; this
//! bench tracks the compile-time cost of the pass, the paper's practical
//! concern for a production back-end.

use criterion::{criterion_group, criterion_main, Criterion};
use hca_core::{run_hca, HcaConfig};

fn bench_table1(c: &mut Criterion) {
    let fabric = hca_bench::paper_fabric();
    let mut group = c.benchmark_group("table1_hca");
    group.sample_size(10);
    for kernel in hca_kernels::table1_kernels() {
        group.bench_function(kernel.name, |b| {
            b.iter(|| {
                run_hca(
                    std::hint::black_box(&kernel.ddg),
                    &fabric,
                    &HcaConfig::default(),
                )
                .map(|r| r.mii.final_mii)
                .ok()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
