//! Criterion bench behind the delta-state SEE rework: raw beam-search
//! throughput on the largest Table-1 kernel (h264deblocking, 214 nodes) for
//! beam widths 1, 8 and 32. Besides the criterion wall-clock samples, each
//! configuration prints placements/sec (from the engine's own per-step
//! timers) and the peak frontier footprint (`SeeStats::peak_frontier_bytes`)
//! so the state-representation win stays tracked over time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hca_arch::ResourceTable;
use hca_ddg::DdgAnalysis;
use hca_pg::{ArchConstraints, Pg};
use hca_see::{See, SeeConfig};

fn bench_see_throughput(c: &mut Criterion) {
    let kernel = hca_kernels::table1_kernels()
        .into_iter()
        .max_by_key(|k| k.ddg.num_nodes())
        .expect("table1 kernel set is non-empty");
    let analysis = DdgAnalysis::compute(&kernel.ddg).expect("kernel analysable");
    // Level-0 shape of the paper's 64-CN machine: 8 clusters of 8 CNs each.
    let pg = Pg::complete(8, ResourceTable::of_cns(8));
    let constraints = ArchConstraints {
        max_in_neighbors: 4,
        max_out_neighbors: None,
        out_node_max_in: 1,
        copy_latency: 1,
    };
    let nodes = kernel.ddg.num_nodes() as f64;

    let mut group = c.benchmark_group("see_throughput");
    group.sample_size(10);
    for beam_width in [1usize, 8, 32] {
        let config = SeeConfig {
            beam_width,
            ..SeeConfig::default()
        };
        let see = See::new(&kernel.ddg, &analysis, &pg, constraints, config);
        let outcome = see
            .run(None)
            .expect("largest kernel assigns on the complete Pg");
        let step_secs = outcome.stats.step_time_total_ns as f64 * 1e-9;
        println!(
            "see_throughput/{}/beam{beam_width}: {:.0} placements/s, \
             peak frontier {:.1} KiB",
            kernel.name,
            nodes / step_secs.max(1e-9),
            outcome.stats.peak_frontier_bytes as f64 / 1024.0,
        );
        group.bench_function(BenchmarkId::from_parameter(beam_width), |b| {
            b.iter(|| see.run(std::hint::black_box(None)).map(|o| o.cost).ok())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_see_throughput);
criterion_main!(benches);
