//! Criterion bench behind the routing-cache rework: SEE on a sparse RCP
//! ring, where most cluster pairs are *not* potential neighbours and the
//! Route Allocator carries the assignment. The checked-in `RouteTable`
//! answers reachability and hop-distance queries ahead of the per-flow
//! search, so this workload measures exactly the path the cache shortens.
//! Besides the criterion wall-clock samples, each kernel prints the route
//! counters (`route_attempts` / `routed_nodes` / `route_bfs_runs` /
//! `route_cache_hits`) so cache effectiveness stays tracked over time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hca_arch::Rcp;
use hca_ddg::DdgAnalysis;
use hca_pg::{ArchConstraints, Pg};
use hca_see::{See, SeeConfig};

fn bench_route_throughput(c: &mut Criterion) {
    // Figure-1 geometry (8 clusters, reach 2) with memory everywhere:
    // opposite ring positions sit 2 routed hops apart, so long flows must
    // go through the Route Allocator instead of a direct potential arc.
    let rcp = Rcp::new(8, 2, 2, |_| true);
    let pg = Pg::from_rcp(&rcp);
    let constraints = ArchConstraints::for_rcp(&rcp);

    let mut group = c.benchmark_group("route_throughput");
    group.sample_size(10);
    for kernel in hca_kernels::table1_kernels() {
        let analysis = DdgAnalysis::compute(&kernel.ddg).expect("kernel analysable");
        let see = See::new(
            &kernel.ddg,
            &analysis,
            &pg,
            constraints,
            SeeConfig::default(),
        );
        let outcome = match see.run(None) {
            Ok(o) => o,
            Err(e) => {
                println!("route_throughput/{}: skipped ({e})", kernel.name);
                continue;
            }
        };
        let s = &outcome.stats;
        println!(
            "route_throughput/{}: {} attempts, {} routed, {} BFS runs, \
             {} cache hits",
            kernel.name, s.route_attempts, s.routed_nodes, s.route_bfs_runs, s.route_cache_hits,
        );
        group.bench_function(BenchmarkId::from_parameter(kernel.name), |b| {
            b.iter(|| see.run(std::hint::black_box(None)).map(|o| o.cost).ok())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_route_throughput);
criterion_main!(benches);
