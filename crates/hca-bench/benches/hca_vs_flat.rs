//! Criterion bench behind Scaling S2: HCA vs flat ICA runtime as the DDG
//! grows. The flat baseline searches one complete 64-node Pattern Graph
//! (the state the paper argues is intractable to track); HCA solves a tree
//! of 4-node sub-problems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hca_core::{run_flat, run_hca, HcaConfig};
use hca_ddg::DdgAnalysis;
use hca_kernels::synthetic::scaling_family;
use hca_see::SeeConfig;

fn bench_scaling(c: &mut Criterion) {
    let fabric = hca_bench::paper_fabric();
    let family = scaling_family(&[32, 64, 128], 0xC0FFEE);
    let mut group = c.benchmark_group("hca_vs_flat");
    group.sample_size(10);
    for (n, ddg) in &family {
        group.bench_with_input(BenchmarkId::new("hca", n), ddg, |b, ddg| {
            b.iter(|| {
                run_hca(ddg, &fabric, &HcaConfig::default())
                    .map(|r| r.mii.final_mii)
                    .ok()
            })
        });
        let analysis = DdgAnalysis::compute(ddg).unwrap();
        group.bench_with_input(BenchmarkId::new("flat", n), ddg, |b, ddg| {
            b.iter(|| {
                run_flat(ddg, &analysis, &fabric, SeeConfig::default())
                    .map(|o| o.est_mii)
                    .ok()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
