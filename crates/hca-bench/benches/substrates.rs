//! Micro-benchmarks of the substrates under HCA: MIIRec analysis, one
//! single-level SEE run and the Mapper's copy distribution. These are the
//! inner loops whose cost dominates the end-to-end pass.

use criterion::{criterion_group, criterion_main, Criterion};
use hca_arch::ResourceTable;
use hca_ddg::{analysis, DdgAnalysis};
use hca_mapper::{map_level, MapOptions};
use hca_pg::{ArchConstraints, Pg};
use hca_see::{See, SeeConfig};

fn bench_substrates(c: &mut Criterion) {
    let kernel = hca_kernels::h264::build();
    let ddg = &kernel.ddg;

    c.bench_function("mii_rec_h264", |b| {
        b.iter(|| analysis::mii_rec(std::hint::black_box(ddg)).unwrap())
    });

    let an = DdgAnalysis::compute(ddg).unwrap();
    c.bench_function("full_analysis_h264", |b| {
        b.iter(|| DdgAnalysis::compute(std::hint::black_box(ddg)).unwrap())
    });

    // One level-0 SEE run: 214 nodes over 4 clusters of 16 CNs.
    let pg = Pg::complete(4, ResourceTable::of_cns(16));
    let cons = ArchConstraints {
        max_in_neighbors: 8,
        max_out_neighbors: None,
        out_node_max_in: 1,
        copy_latency: 1,
    };
    c.bench_function("see_level0_h264", |b| {
        b.iter(|| {
            See::new(ddg, &an, &pg, cons, SeeConfig::default())
                .run(None)
                .map(|o| o.est_mii)
                .ok()
        })
    });

    // Mapper on that assignment.
    let outcome = See::new(ddg, &an, &pg, cons, SeeConfig::default())
        .run(None)
        .unwrap();
    let spec = hca_arch::LevelSpec {
        arity: 4,
        in_wires: 8,
        out_wires: 8,
        glue_in: 0,
        glue_out: 0,
    };
    c.bench_function("mapper_level0_h264", |b| {
        b.iter(|| {
            map_level(
                std::hint::black_box(&outcome.assigned),
                spec,
                MapOptions {
                    balance_split: true,
                },
            )
            .map(|m| m.stats.max_pressure)
            .unwrap()
        })
    });
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
