//! Criterion bench behind the lane-batched scoring kernel: raw candidate
//! scoring throughput (ns/candidate) on a fixed expansion snapshot of the
//! 512-node synthetic DAG, scalar `score_if_assignable` loop vs the batched
//! `score_candidates_batched` kernel. The snapshot is deterministic — half
//! the nodes greedily assigned, the other half's candidate views frozen —
//! so the two paths score the exact same (state, node, candidate) set and
//! the ratio isolates the kernel, not the workload.
//!
//! Besides the criterion samples, the derived ns/candidate figures and the
//! lane coverage land in `target/experiments/BENCH_scorer_throughput.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use hca_arch::ResourceTable;
use hca_ddg::DdgAnalysis;
use hca_pg::{ArchConstraints, Pg, PgNodeId};
use hca_see::{
    node_view, score_candidates_batched, score_if_assignable, CandList, CostWeights, LaneStats,
    NodeView, PartialState, SeeContext,
};
use std::time::Instant;

/// Build the frozen expansion snapshot: a half-assigned 512-node state and
/// the candidate views of every remaining node. Assignments alternate over
/// the node order so an unassigned node typically sees *both* assigned
/// producers and assigned consumers — the mid-search shape whose consumer
/// terms dominate scoring — rather than the consumer-free fringe a
/// prefix-assigned state would expose.
fn snapshot(ctx: &SeeContext<'_>) -> (PartialState, Vec<(hca_ddg::NodeId, NodeView)>) {
    let order: Vec<_> = ctx.ddg.node_ids().collect();
    let mut st = PartialState::initial(ctx, &order);
    for &n in order.iter().step_by(2) {
        let view = node_view(ctx, &st, n);
        let mut best: Option<(PgNodeId, f64)> = None;
        for c in view.candidates() {
            if let Some(cost) = score_if_assignable(ctx, &st, &view, n, c) {
                if best.is_none_or(|(_, b)| cost < b) {
                    best = Some((c, cost));
                }
            }
        }
        if let Some((c, _)) = best {
            st.apply_assign(ctx, n, c);
        }
    }
    let views = order
        .iter()
        .skip(1)
        .step_by(2)
        .map(|&n| (n, node_view(ctx, &st, n)))
        .collect();
    (st, views)
}

/// One full pass of the scalar reference over the snapshot.
fn scalar_pass(
    ctx: &SeeContext<'_>,
    st: &PartialState,
    views: &[(hca_ddg::NodeId, NodeView)],
) -> usize {
    let mut pushed = 0;
    let mut cands = CandList::new();
    for (n, view) in views {
        cands.clear();
        for c in view.candidates() {
            if let Some(cost) = score_if_assignable(ctx, st, view, *n, c) {
                cands.push((c, cost));
            }
        }
        pushed += cands.len();
    }
    pushed
}

/// One full pass of the batched kernel over the snapshot.
fn batched_pass(
    ctx: &SeeContext<'_>,
    st: &PartialState,
    views: &[(hca_ddg::NodeId, NodeView)],
    stats: &mut LaneStats,
) -> usize {
    let mut pushed = 0;
    let mut cands = CandList::new();
    for (n, view) in views {
        cands.clear();
        score_candidates_batched(ctx, st, view, *n, &mut cands, stats);
        pushed += cands.len();
    }
    pushed
}

fn bench_scorer_throughput(c: &mut Criterion) {
    let (_, ddg) = hca_kernels::synthetic::scaling_family(&[512], 0xB5E7)
        .pop()
        .expect("scaling family produces the 512-node case");
    let analysis = DdgAnalysis::compute(&ddg).expect("synthetic DAG analysable");
    // Level-0 shape of the paper's 64-CN machine: 8 clusters of 8 CNs each.
    let pg = Pg::complete(8, ResourceTable::of_cns(8));
    let ctx = SeeContext {
        ddg: &ddg,
        analysis: &analysis,
        pg: &pg,
        constraints: ArchConstraints {
            max_in_neighbors: 4,
            max_out_neighbors: None,
            out_node_max_in: 1,
            copy_latency: 1,
        },
        weights: CostWeights::default(),
        issue_cap: None,
        statics: hca_see::statics::PgStatics::build(&pg),
    };
    let (st, views) = snapshot(&ctx);
    let total_cands: usize = views.iter().map(|(_, v)| v.candidates().count()).sum();
    assert!(total_cands > 0, "snapshot must expose candidates");

    // Derived ns/candidate figures from a fixed manual loop (criterion's
    // samples track the trend; these go to the experiment dump).
    const PASSES: u32 = 200;
    let t0 = Instant::now();
    let mut scalar_pushed = 0;
    for _ in 0..PASSES {
        scalar_pushed = scalar_pass(&ctx, &st, &views);
    }
    let scalar_ns = t0.elapsed().as_nanos() as f64 / f64::from(PASSES) / total_cands as f64;
    let mut stats = LaneStats::default();
    let t0 = Instant::now();
    let mut batched_pushed = 0;
    for _ in 0..PASSES {
        stats = LaneStats::default();
        batched_pushed = batched_pass(&ctx, &st, &views, &mut stats);
    }
    let batched_ns = t0.elapsed().as_nanos() as f64 / f64::from(PASSES) / total_cands as f64;
    assert_eq!(
        scalar_pushed, batched_pushed,
        "both paths must accept the same candidate set"
    );
    let coverage =
        stats.lanes_scored as f64 * 100.0 / (stats.lanes_scored + stats.scalar_tail).max(1) as f64;
    println!(
        "scorer_throughput: {total_cands} candidates/pass, scalar {scalar_ns:.1} ns/cand, \
         batched {batched_ns:.1} ns/cand ({:.2}x), lane coverage {coverage:.0}%",
        scalar_ns / batched_ns.max(1e-9),
    );
    #[derive(serde::Serialize)]
    struct Report {
        candidates_per_pass: usize,
        scalar_ns_per_candidate: f64,
        batched_ns_per_candidate: f64,
        speedup: f64,
        lanes_scored: usize,
        lane_batches: usize,
        scalar_tail: usize,
        lane_coverage_pct: f64,
    }
    hca_bench::dump_bench_json(
        "scorer_throughput",
        &Report {
            candidates_per_pass: total_cands,
            scalar_ns_per_candidate: scalar_ns,
            batched_ns_per_candidate: batched_ns,
            speedup: scalar_ns / batched_ns.max(1e-9),
            lanes_scored: stats.lanes_scored,
            lane_batches: stats.lane_batches,
            scalar_tail: stats.scalar_tail,
            lane_coverage_pct: coverage,
        },
    );

    let mut group = c.benchmark_group("scorer_throughput");
    group.sample_size(20);
    group.bench_function("scalar", |b| {
        b.iter(|| scalar_pass(&ctx, std::hint::black_box(&st), &views))
    });
    group.bench_function("batched", |b| {
        b.iter(|| {
            let mut stats = LaneStats::default();
            batched_pass(&ctx, std::hint::black_box(&st), &views, &mut stats)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scorer_throughput);
criterion_main!(benches);
