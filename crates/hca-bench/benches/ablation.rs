//! Criterion bench behind the A1 ablation: how the SEE beam width trades
//! compile time for search effort on the largest kernel (h264deblocking).
//! Result quality per beam width is reported by the `ablation` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hca_core::{run_hca, HcaConfig};

fn bench_beam(c: &mut Criterion) {
    let fabric = hca_bench::paper_fabric();
    let kernel = hca_kernels::h264::build();
    let mut group = c.benchmark_group("ablation_beam");
    group.sample_size(10);
    for beam in [1usize, 4, 8, 32] {
        let mut cfg = HcaConfig::default();
        cfg.see.beam_width = beam;
        group.bench_with_input(BenchmarkId::from_parameter(beam), &cfg, |b, cfg| {
            b.iter(|| {
                run_hca(&kernel.ddg, &fabric, cfg)
                    .map(|r| r.mii.final_mii)
                    .ok()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_beam);
criterion_main!(benches);
