//! Shared plumbing for the experiment harnesses (`src/bin/*`) and the
//! criterion benches (`benches/*`). Each binary regenerates one table or
//! figure of the paper's evaluation — see `DESIGN.md` §4 for the index and
//! `EXPERIMENTS.md` for recorded results.

use hca_arch::DspFabric;
use hca_core::{run_hca_portfolio_obs, HcaResult, Table1Row};
use hca_kernels::Kernel;
use hca_obs::{Obs, RunMetrics};
use serde::Serialize;
use std::path::PathBuf;

/// The evaluation machine: 64-CN DSPFabric with the paper's best bandwidth
/// (N = M = K = 8, §5).
pub fn paper_fabric() -> DspFabric {
    DspFabric::standard(8, 8, 8)
}

/// Run the full HCA portfolio on one kernel and build its Table-1 row.
pub fn clusterize(kernel: &Kernel, fabric: &DspFabric) -> Option<(HcaResult, Table1Row)> {
    clusterize_obs(kernel, fabric, &Obs::disabled())
}

/// [`clusterize`] under an observer: the row's `metrics` field carries the
/// run's phase timings and counters.
pub fn clusterize_obs(
    kernel: &Kernel,
    fabric: &DspFabric,
    obs: &Obs,
) -> Option<(HcaResult, Table1Row)> {
    let res = run_hca_portfolio_obs(&kernel.ddg, fabric, obs).ok()?;
    let row = Table1Row::from_result(kernel.name, &kernel.ddg, &res);
    Some((res, row))
}

/// One entry of a `BENCH_*.json` report: a named case, its wall-clock, and
/// the observer's snapshot (per-phase timings + pipeline counters).
#[derive(Serialize)]
pub struct BenchCase {
    /// What was run, e.g. a kernel name or `"8,4,2/fir2dim"`.
    pub case: String,
    /// End-to-end wall-clock of the case, milliseconds.
    pub millis: f64,
    /// Per-phase timings and counters collected while the case ran.
    pub metrics: RunMetrics,
}

/// Run one benchmark case under a fresh metrics-only observer, timing it and
/// appending a [`BenchCase`] to `out`. Returns the closure's result.
pub fn bench_case<T>(
    name: impl Into<String>,
    out: &mut Vec<BenchCase>,
    f: impl FnOnce(&Obs) -> T,
) -> T {
    let obs = Obs::enabled();
    let t0 = std::time::Instant::now();
    let result = f(&obs);
    out.push(BenchCase {
        case: name.into(),
        millis: t0.elapsed().as_secs_f64() * 1e3,
        metrics: obs.finish().unwrap_or_default(),
    });
    result
}

/// Write the machine-readable benchmark report as
/// `target/experiments/BENCH_<bin>.json`.
pub fn dump_bench_json<T: Serialize>(bin: &str, value: &T) {
    dump_json(&format!("BENCH_{bin}"), value);
}

/// Where experiment JSON dumps go (`target/experiments/`).
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Serialise a result set for EXPERIMENTS.md.
pub fn dump_json<T: Serialize>(name: &str, value: &T) {
    let path = experiments_dir().join(format!("{name}.json"));
    let body = serde_json::to_string_pretty(value).expect("serialisable");
    std::fs::write(&path, body).expect("write experiment dump");
    eprintln!("(wrote {})", path.display());
}
