//! Shared plumbing for the experiment harnesses (`src/bin/*`) and the
//! criterion benches (`benches/*`). Each binary regenerates one table or
//! figure of the paper's evaluation — see `DESIGN.md` §4 for the index and
//! `EXPERIMENTS.md` for recorded results.

use hca_arch::DspFabric;
use hca_core::{run_hca_portfolio, HcaResult, Table1Row};
use hca_kernels::Kernel;
use serde::Serialize;
use std::path::PathBuf;

/// The evaluation machine: 64-CN DSPFabric with the paper's best bandwidth
/// (N = M = K = 8, §5).
pub fn paper_fabric() -> DspFabric {
    DspFabric::standard(8, 8, 8)
}

/// Run the full HCA portfolio on one kernel and build its Table-1 row.
pub fn clusterize(kernel: &Kernel, fabric: &DspFabric) -> Option<(HcaResult, Table1Row)> {
    let res = run_hca_portfolio(&kernel.ddg, fabric).ok()?;
    let row = Table1Row::from_result(kernel.name, &kernel.ddg, &res);
    Some((res, row))
}

/// Where experiment JSON dumps go (`target/experiments/`).
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Serialise a result set for EXPERIMENTS.md.
pub fn dump_json<T: Serialize>(name: &str, value: &T) {
    let path = experiments_dir().join(format!("{name}.json"));
    let body = serde_json::to_string_pretty(value).expect("serialisable");
    std::fs::write(&path, body).expect("write experiment dump");
    eprintln!("(wrote {})", path.display());
}
