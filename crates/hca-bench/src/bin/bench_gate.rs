//! **Bench regression gate** — diffs a fresh run of the fixed gate workload
//! (full HCA over the four Table-1 kernels plus a 512-node synthetic
//! scaling case) against the checked-in `BENCH_baseline.json` and exits
//! non-zero when any case regresses by more than the tolerance (default 25%
//! wall-clock).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p hca-bench --bin bench_gate            # compare
//! cargo run --release -p hca-bench --bin bench_gate -- --record   # rebaseline
//! cargo run --release -p hca-bench --bin bench_gate -- --tolerance 40
//! ```
//!
//! Each case takes the best of three runs to damp scheduler noise; absolute
//! numbers are machine-specific, so CI runs this job as non-blocking and the
//! baseline documents the reference machine's trajectory rather than a
//! portable truth.

use hca_core::{run_hca, HcaConfig};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;

/// One measured case of the gate workload.
#[derive(Serialize, Deserialize)]
struct GateCase {
    /// Kernel name.
    case: String,
    /// Best-of-three wall-clock, milliseconds.
    millis: f64,
}

/// The checked-in baseline file.
#[derive(Serialize, Deserialize)]
struct Baseline {
    /// Allowed wall-clock regression, percent.
    tolerance_pct: f64,
    /// Reference measurements.
    cases: Vec<GateCase>,
}

/// `BENCH_baseline.json` at the repository root.
fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_baseline.json")
}

/// Run the fixed gate workload: best-of-3 full-HCA wall-clock per kernel.
/// Beyond the four paper kernels, a seeded 512-node synthetic DAG stresses
/// the sub-problem memoization and frontier caches at a size where the
/// Table-1 loops barely exercise them.
fn measure() -> Vec<GateCase> {
    let fabric = hca_bench::paper_fabric();
    let mut workload: Vec<(String, hca_ddg::Ddg)> = hca_kernels::table1_kernels()
        .into_iter()
        .map(|k| (k.name.to_string(), k.ddg))
        .collect();
    for (n, ddg) in hca_kernels::synthetic::scaling_family(&[512], 0xB5E7) {
        workload.push((format!("synthetic{n}"), ddg));
    }
    let mut cases = Vec::new();
    for (name, ddg) in &workload {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            let res = run_hca(ddg, &fabric, &HcaConfig::default());
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            assert!(res.is_ok(), "{name}: HCA failed in the gate workload");
            best = best.min(ms);
        }
        cases.push(GateCase {
            case: name.clone(),
            millis: best,
        });
    }
    cases
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let record = args.iter().any(|a| a == "--record");
    let tolerance_override = args
        .iter()
        .position(|a| a == "--tolerance")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok());

    let fresh = measure();

    if record {
        let baseline = Baseline {
            tolerance_pct: tolerance_override.unwrap_or(25.0),
            cases: fresh,
        };
        let body = serde_json::to_string_pretty(&baseline).expect("serialisable baseline");
        std::fs::write(baseline_path(), body + "\n").expect("write baseline");
        println!(
            "recorded {} cases to {}",
            baseline.cases.len(),
            baseline_path().display()
        );
        return;
    }

    let text = std::fs::read_to_string(baseline_path()).unwrap_or_else(|e| {
        eprintln!(
            "cannot read {} ({e}); run with --record to create it",
            baseline_path().display()
        );
        std::process::exit(2);
    });
    let baseline: Baseline = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!(
            "malformed baseline {} ({e}); run with --record to recreate it",
            baseline_path().display()
        );
        std::process::exit(2);
    });
    let tolerance = tolerance_override.unwrap_or(baseline.tolerance_pct);

    println!(
        "{:<20} {:>12} {:>12} {:>9}  (tolerance {tolerance:.0}%)",
        "case", "baseline ms", "fresh ms", "delta"
    );
    let mut regressed = false;
    for new in &fresh {
        let Some(old) = baseline.cases.iter().find(|c| c.case == new.case) else {
            println!(
                "{:<20} {:>12} {:>12.1} {:>9}",
                new.case, "—", new.millis, "new"
            );
            continue;
        };
        if !old.millis.is_finite() || old.millis <= 0.0 {
            eprintln!(
                "baseline entry {:?} has unusable wall-clock {} ms; \
                 run with --record to rebaseline",
                new.case, old.millis
            );
            std::process::exit(2);
        }
        let delta_pct = (new.millis - old.millis) / old.millis * 100.0;
        let flag = if delta_pct > tolerance {
            regressed = true;
            "  REGRESSION"
        } else {
            ""
        };
        println!(
            "{:<20} {:>12.1} {:>12.1} {:>+8.1}%{flag}",
            new.case, old.millis, new.millis, delta_pct
        );
    }
    hca_bench::dump_bench_json(
        "bench_gate",
        &fresh
            .iter()
            .map(|c| (c.case.clone(), c.millis))
            .collect::<Vec<_>>(),
    );
    if regressed {
        eprintln!("bench gate FAILED: wall-clock regression beyond {tolerance:.0}%");
        std::process::exit(1);
    }
    println!("bench gate OK");
}
