//! **Bench regression gate** — diffs a fresh run of the fixed gate workload
//! (full HCA over the four Table-1 kernels, a 512-node synthetic scaling
//! case, and `+race` portfolio variants of the paper kernels) against the
//! checked-in `BENCH_baseline.json` and exits non-zero when any case
//! regresses by more than the tolerance (default 25% wall-clock).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p hca-bench --bin bench_gate            # compare
//! cargo run --release -p hca-bench --bin bench_gate -- --record   # rebaseline
//! cargo run --release -p hca-bench --bin bench_gate -- --tolerance 40
//! cargo run --release -p hca-bench --bin bench_gate -- --interleave 7
//! ```
//!
//! By default each case takes the best of three back-to-back runs to damp
//! scheduler noise. `--interleave N` instead runs N *rounds that alternate
//! over the cases* (case1, …, caseK, case1, …), so slow host drift (thermal
//! throttling, a background job) spreads across every case instead of
//! biasing whichever case ran last; the per-case wall-clock is then the
//! **median** of its N samples, and `--record` keeps the per-case **maximum**
//! as the conservative baseline. All round samples land in
//! `BENCH_history.jsonl`. Absolute numbers are machine-specific, so CI runs
//! this job as non-blocking and the baseline documents the reference
//! machine's trajectory rather than a portable truth.

use hca_core::{run_hca, run_hca_obs, HcaConfig, PortfolioConfig};
use hca_obs::Obs;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

/// One measured case of the gate workload.
#[derive(Serialize, Deserialize)]
struct GateCase {
    /// Kernel name.
    case: String,
    /// Representative wall-clock, milliseconds: best-of-three by default,
    /// the per-case median under `--interleave` (maximum when recording a
    /// baseline — see the module docs).
    millis: f64,
    /// Every raw sample behind `millis`, in measurement order. Only
    /// populated by `--interleave` runs; absent in best-of-three records.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    rounds: Vec<f64>,
    /// Key pipeline counters from one additional *observed* run (the timed
    /// runs stay unobserved). Absent in baselines recorded before this
    /// field existed.
    #[serde(default)]
    counters: BTreeMap<String, u64>,
}

/// The counters each history record keeps: enough to attribute a
/// wall-clock trend shift without storing a full `RunMetrics`.
const HISTORY_COUNTERS: &[&str] = &[
    "see.states_explored",
    "see.states_pruned",
    "see.steps",
    "see.frontier_deduped",
    "see.dominance_pruned",
    "see.route_bfs_runs",
    "see.route_cache_hits",
    "see.route_table_bytes",
    "see.peak_frontier_bytes",
    "see.arc_table_bytes",
    "see.state_arena_bytes",
    "see.state_clones",
    "see.lanes_scored",
    "see.lane_batches",
    "see.scalar_tail",
    "see.lane_fill_pct",
    "driver.subproblems",
    "driver.memo_hits",
    "driver.memo_misses",
    "driver.memo_evictions",
    "driver.memo_bytes",
    "driver.memo_entries",
    "driver.fallbacks",
    "portfolio.bounds_computed",
    "portfolio.bound_exits",
    "portfolio.exact_runs",
    "portfolio.exact_wins",
    "portfolio.exact_proofs",
    "portfolio.exact_timeouts",
    "portfolio.gap_known",
    "portfolio.gap_sum",
    "portfolio.guard_runs",
    "portfolio.guard_kept_beam",
];

/// One appended line of `BENCH_history.jsonl` — the bench trajectory.
#[derive(Serialize)]
struct HistoryRecord {
    /// `git rev-parse --short HEAD`, or `"unknown"` outside a checkout.
    commit: String,
    /// Wall-clock timestamp, milliseconds since the Unix epoch.
    unix_ms: u64,
    /// Was this invocation a `--record` rebaseline?
    record: bool,
    /// The fresh measurements of this invocation.
    cases: Vec<GateCase>,
}

/// The checked-in baseline file.
#[derive(Serialize, Deserialize)]
struct Baseline {
    /// Allowed wall-clock regression, percent.
    tolerance_pct: f64,
    /// Reference measurements.
    cases: Vec<GateCase>,
}

/// `BENCH_baseline.json` at the repository root.
fn baseline_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_baseline.json")
}

/// The median of an interleaved sample set: middle element for odd counts,
/// mean of the two middles for even ones.
fn median(samples: &[f64]) -> f64 {
    let mut s = samples.to_vec();
    s.sort_by(f64::total_cmp);
    let mid = s.len() / 2;
    if s.len() % 2 == 1 {
        s[mid]
    } else {
        (s[mid - 1] + s[mid]) / 2.0
    }
}

/// Run the fixed gate workload and return one wall-clock figure per kernel:
/// best-of-3 back-to-back runs by default, or the median of `interleave`
/// rounds that alternate over the cases. Beyond the four paper kernels, a
/// seeded 512-node synthetic DAG stresses the sub-problem memoization and
/// frontier caches at a size where the Table-1 loops barely exercise them,
/// and `+race` variants of the paper kernels time the exact/beam portfolio
/// (and feed its `portfolio.*` counters into the history trajectory).
fn measure(interleave: Option<usize>) -> Vec<GateCase> {
    let fabric = hca_bench::paper_fabric();
    let base = HcaConfig::default();
    let race = HcaConfig {
        portfolio: PortfolioConfig::race(),
        ..HcaConfig::default()
    };
    let mut workload: Vec<(String, hca_ddg::Ddg, HcaConfig)> = hca_kernels::table1_kernels()
        .into_iter()
        .map(|k| (k.name.to_string(), k.ddg, base))
        .collect();
    for (n, ddg) in hca_kernels::synthetic::scaling_family(&[512], 0xB5E7) {
        workload.push((format!("synthetic{n}"), ddg, base));
    }
    for k in hca_kernels::table1_kernels() {
        workload.push((format!("{}+race", k.name), k.ddg, race));
    }
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); workload.len()];
    match interleave {
        Some(rounds) => {
            // Round-robin over the cases so slow host drift spreads evenly
            // instead of biasing whichever case ran last.
            for _ in 0..rounds.max(1) {
                for (i, (name, ddg, config)) in workload.iter().enumerate() {
                    let t0 = Instant::now();
                    let res = run_hca(ddg, &fabric, config);
                    let ms = t0.elapsed().as_secs_f64() * 1e3;
                    assert!(res.is_ok(), "{name}: HCA failed in the gate workload");
                    samples[i].push(ms);
                }
            }
        }
        None => {
            for (i, (name, ddg, config)) in workload.iter().enumerate() {
                for _ in 0..3 {
                    let t0 = Instant::now();
                    let res = run_hca(ddg, &fabric, config);
                    let ms = t0.elapsed().as_secs_f64() * 1e3;
                    assert!(res.is_ok(), "{name}: HCA failed in the gate workload");
                    samples[i].push(ms);
                }
            }
        }
    }
    let mut cases = Vec::new();
    for ((name, ddg, config), samples) in workload.iter().zip(samples) {
        // One extra observed run (outside the timing loop, so the observer
        // cannot skew `millis`) supplies the history counters.
        let obs = Obs::enabled();
        let res = run_hca_obs(ddg, &fabric, config, &obs);
        assert!(res.is_ok(), "{name}: observed HCA run failed");
        let metrics = obs.finish().unwrap_or_default();
        let counters = HISTORY_COUNTERS
            .iter()
            .filter_map(|&n| Some((n.to_string(), metrics.counter(n)?)))
            .collect();
        let (millis, rounds) = if interleave.is_some() {
            (median(&samples), samples)
        } else {
            (
                samples.iter().copied().fold(f64::INFINITY, f64::min),
                Vec::new(),
            )
        };
        cases.push(GateCase {
            case: name.clone(),
            millis,
            rounds,
            counters,
        });
    }
    cases
}

/// `BENCH_history.jsonl` at the repository root: one line per `bench_gate`
/// invocation, appended — the machine's performance trajectory over time.
fn history_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_history.jsonl")
}

/// Append this invocation's measurements to the bench trajectory. Failures
/// are warnings: the gate verdict must not depend on the history file.
fn append_history(cases: &[GateCase], record: bool) {
    let commit = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0);
    let rec = HistoryRecord {
        commit,
        unix_ms,
        record,
        cases: cases
            .iter()
            .map(|c| GateCase {
                case: c.case.clone(),
                millis: c.millis,
                rounds: c.rounds.clone(),
                counters: c.counters.clone(),
            })
            .collect(),
    };
    let line = match serde_json::to_string(&rec) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("warning: cannot serialise history record: {e}");
            return;
        }
    };
    use std::io::Write;
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(history_path())
        .and_then(|mut f| writeln!(f, "{line}"));
    match appended {
        Ok(()) => eprintln!("(appended to {})", history_path().display()),
        Err(e) => eprintln!("warning: cannot append {}: {e}", history_path().display()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let record = args.iter().any(|a| a == "--record");
    let tolerance_override = args
        .iter()
        .position(|a| a == "--tolerance")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok());
    let interleave = args
        .iter()
        .position(|a| a == "--interleave")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());

    let fresh = measure(interleave);
    append_history(&fresh, record);

    if record {
        let mut cases = fresh;
        if interleave.is_some() {
            // A baseline is a promise future runs are diffed against; keep
            // the conservative per-case maximum so host noise on the
            // reference machine does not manufacture regressions later.
            for c in &mut cases {
                c.millis = c.rounds.iter().copied().fold(c.millis, f64::max);
            }
        }
        let baseline = Baseline {
            tolerance_pct: tolerance_override.unwrap_or(25.0),
            cases,
        };
        let body = serde_json::to_string_pretty(&baseline).expect("serialisable baseline");
        std::fs::write(baseline_path(), body + "\n").expect("write baseline");
        println!(
            "recorded {} cases to {}",
            baseline.cases.len(),
            baseline_path().display()
        );
        return;
    }

    let text = std::fs::read_to_string(baseline_path()).unwrap_or_else(|e| {
        eprintln!(
            "cannot read {} ({e}); run with --record to create it",
            baseline_path().display()
        );
        std::process::exit(2);
    });
    let baseline: Baseline = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!(
            "malformed baseline {} ({e}); run with --record to recreate it",
            baseline_path().display()
        );
        std::process::exit(2);
    });
    let tolerance = tolerance_override.unwrap_or(baseline.tolerance_pct);

    println!(
        "{:<20} {:>12} {:>12} {:>9}  (tolerance {tolerance:.0}%)",
        "case", "baseline ms", "fresh ms", "delta"
    );
    let mut regressed = false;
    for new in &fresh {
        let Some(old) = baseline.cases.iter().find(|c| c.case == new.case) else {
            println!(
                "{:<20} {:>12} {:>12.1} {:>9}",
                new.case, "—", new.millis, "new"
            );
            continue;
        };
        if !old.millis.is_finite() || old.millis <= 0.0 {
            eprintln!(
                "baseline entry {:?} has unusable wall-clock {} ms; \
                 run with --record to rebaseline",
                new.case, old.millis
            );
            std::process::exit(2);
        }
        let delta_pct = (new.millis - old.millis) / old.millis * 100.0;
        let flag = if delta_pct > tolerance {
            regressed = true;
            "  REGRESSION"
        } else {
            ""
        };
        println!(
            "{:<20} {:>12.1} {:>12.1} {:>+8.1}%{flag}",
            new.case, old.millis, new.millis, delta_pct
        );
    }
    hca_bench::dump_bench_json(
        "bench_gate",
        &fresh
            .iter()
            .map(|c| (c.case.clone(), c.millis))
            .collect::<Vec<_>>(),
    );
    if regressed {
        eprintln!("bench gate FAILED: wall-clock regression beyond {tolerance:.0}%");
        std::process::exit(1);
    }
    println!("bench gate OK");
}
