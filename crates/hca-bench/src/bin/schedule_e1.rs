//! **Extension E1** — the paper's declared future work (§5/§7), executed:
//! modulo-schedule every clusterised kernel, fold it into Kernel-Only form,
//! estimate rotating-register pressure, and *run* it on the cycle-level
//! simulator, checking every stored value against the sequential reference.
//!
//! The headline check: the achieved II equals (or sits within a cycle or
//! two of) the §4.2 MII lower bound that HCA optimised for — i.e. the
//! cluster assignment really was schedulable at its advertised quality.

use hca_bench::{bench_case, clusterize_obs, dump_bench_json, dump_json, paper_fabric};
use hca_sched::{modulo_schedule, register_pressure, swing_schedule, KernelSchedule};
use hca_sim::verify_execution;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    kernel: &'static str,
    mii_lower_bound: u32,
    achieved_ii: u32,
    sms_ii: Option<u32>,
    sms_max_registers: Option<u32>,
    stages: u32,
    utilization: f64,
    max_registers: u32,
    iterations_verified: u64,
    cycles_per_iteration: f64,
}

fn main() {
    const TRIP: u64 = 32;
    let fabric = paper_fabric();
    println!("E1 — modulo scheduling + simulated execution (trip count {TRIP})\n");
    println!(
        "{:<16} {:>7} {:>5} {:>7} {:>7} {:>6} {:>8} {:>9} {:>10} {:>10}",
        "Loop",
        "MII-LB",
        "II",
        "SMS-II",
        "stages",
        "util",
        "max-regs",
        "SMS-regs",
        "verified",
        "cyc/iter"
    );
    let mut rows = Vec::new();
    let mut bench = Vec::new();
    for kernel in hca_kernels::table1_kernels() {
        let outcome = bench_case(kernel.name, &mut bench, |obs| {
            let (res, _) = clusterize_obs(&kernel, &fabric, obs)?;
            let sched = {
                let _span = obs.span("sched", "iterative");
                modulo_schedule(&res.final_program, &fabric, res.mii.final_mii)
            };
            let sms = {
                let _span = obs.span("sched", "sms");
                swing_schedule(&res.final_program, &fabric, res.mii.final_mii).ok()
            };
            Some((res, sched, sms))
        });
        let Some((res, sched, sms)) = outcome else {
            println!("{:<16} clusterisation failed", kernel.name);
            continue;
        };
        let sched = match sched {
            Ok(s) => s,
            Err(e) => {
                println!("{:<16} scheduling failed: {e}", kernel.name);
                continue;
            }
        };
        let folded = KernelSchedule::fold(&res.final_program, &fabric, &sched);
        let pressure = register_pressure(&res.final_program, &fabric, &sched);
        // `sms` is the register-pressure-aware alternative, for comparison.
        let sms_regs = sms.as_ref().map(|s| {
            register_pressure(&res.final_program, &fabric, s)
                .into_iter()
                .max()
                .unwrap_or(0)
        });
        match verify_execution(&kernel.ddg, &res.final_program, &fabric, &folded, TRIP) {
            Ok(rep) => {
                let row = Row {
                    kernel: kernel.name,
                    mii_lower_bound: res.mii.final_mii,
                    achieved_ii: sched.ii,
                    sms_ii: sms.as_ref().map(|s| s.ii),
                    sms_max_registers: sms_regs,
                    stages: sched.stages,
                    utilization: folded.utilization(),
                    max_registers: pressure.iter().copied().max().unwrap_or(0),
                    iterations_verified: rep.trip,
                    cycles_per_iteration: rep.cycles as f64 / rep.trip as f64,
                };
                println!(
                    "{:<16} {:>7} {:>5} {:>7} {:>7} {:>6.2} {:>8} {:>9} {:>10} {:>10.1}",
                    row.kernel,
                    row.mii_lower_bound,
                    row.achieved_ii,
                    row.sms_ii.map_or("—".into(), |v| v.to_string()),
                    row.stages,
                    row.utilization,
                    row.max_registers,
                    row.sms_max_registers.map_or("—".into(), |v| v.to_string()),
                    row.iterations_verified,
                    row.cycles_per_iteration,
                );
                rows.push(row);
            }
            Err(e) => println!("{:<16} SIMULATION MISMATCH: {e}", kernel.name),
        }
    }
    dump_json("schedule_e1", &rows);
    dump_bench_json("schedule_e1", &bench);
}
