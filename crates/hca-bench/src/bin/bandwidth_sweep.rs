//! **Sweep S1** — the §5 in-text claim: "lower bandwidths cause a rapid
//! degradation of the clusterization quality, since the interconnection
//! network is not able to distribute the high number of intercluster
//! copies, which are the main limiting factor to the final MII."
//!
//! Sweeps the MUX capacities N = M = K over {2, 3, 4, 6, 8} (plus two
//! asymmetric points) and reports the final MII — or the failure — per
//! kernel. Expected shape: monotone degradation as bandwidth shrinks, with
//! the paper's N = M = K = 8 point the best.

use hca_arch::DspFabric;
use hca_bench::bench_case;
use hca_core::run_hca_portfolio_obs;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    n: usize,
    m: usize,
    k: usize,
    kernel: &'static str,
    final_mii: Option<u32>,
    legal: bool,
    recvs: usize,
}

fn main() {
    let sweep: Vec<(usize, usize, usize)> = vec![
        (8, 8, 8),
        (6, 6, 6),
        (4, 4, 4),
        (3, 3, 3),
        (2, 2, 2),
        (8, 4, 2), // wide top, starved crossbar
        (2, 4, 8), // starved top
    ];
    let kernels = hca_kernels::table1_kernels();
    println!("Bandwidth sweep (final MII; '—' = clusterisation failed)\n");
    print!("{:<12}", "N,M,K");
    for k in &kernels {
        print!("{:>16}", k.name);
    }
    println!();
    let mut points = Vec::new();
    let mut bench = Vec::new();
    for &(n, m, k) in &sweep {
        print!("{:<12}", format!("{n},{m},{k}"));
        for kernel in &kernels {
            let fabric = DspFabric::standard(n, m, k);
            let res = bench_case(format!("{n},{m},{k}/{}", kernel.name), &mut bench, |obs| {
                run_hca_portfolio_obs(&kernel.ddg, &fabric, obs)
            });
            match res {
                Ok(res) => {
                    let tag = if res.is_legal() { "" } else { "!" };
                    print!("{:>16}", format!("{}{}", res.mii.final_mii, tag));
                    points.push(Point {
                        n,
                        m,
                        k,
                        kernel: kernel.name,
                        final_mii: Some(res.mii.final_mii),
                        legal: res.is_legal(),
                        recvs: res.final_program.num_recvs(),
                    });
                }
                Err(_) => {
                    print!("{:>16}", "—");
                    points.push(Point {
                        n,
                        m,
                        k,
                        kernel: kernel.name,
                        final_mii: None,
                        legal: false,
                        recvs: 0,
                    });
                }
            }
        }
        println!();
    }
    println!("\n('!' marks an illegal clusterisation the checker rejected)");
    hca_bench::dump_json("bandwidth_sweep", &points);
    hca_bench::dump_bench_json("bandwidth_sweep", &bench);
}
