//! **Extension E2** — hierarchy-shape exploration (the paper's §7 "easily
//! scales with the architecture" claim, exercised): the same kernels on
//! machines of different hierarchy depths and shapes, at comparable CN
//! counts and MUX budgets. HCA's decomposition adapts automatically — the
//! driver never special-cases the depth.

use hca_arch::DspFabric;
use hca_bench::bench_case;
use hca_core::{run_hca_obs, HcaConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    machine: &'static str,
    cns: usize,
    depth: usize,
    kernel: &'static str,
    final_mii: Option<u32>,
    legal: bool,
    subproblems: usize,
    millis: u128,
}

fn main() {
    let machines: Vec<(&'static str, DspFabric)> = vec![
        ("8x8@8,8", DspFabric::parse("8x8@8,8").unwrap()), // flat-ish, 64 CN
        ("4x4x4@8,8,8", DspFabric::parse("4x4x4@8,8,8").unwrap()), // the paper
        (
            "2x2x4x4@8,8,8,8",
            DspFabric::parse("2x2x4x4@8,8,8,8").unwrap(),
        ), // deep, 64 CN
        (
            "4x4x4x4@8,8,8,8",
            DspFabric::parse("4x4x4x4@8,8,8,8").unwrap(),
        ), // 256 CN
    ];
    let kernels = hca_kernels::table1_kernels();
    print!("{:<20} {:>5} {:>6}", "machine", "CNs", "depth");
    for k in &kernels {
        print!("{:>16}", k.name);
    }
    println!();
    let mut points = Vec::new();
    let mut bench = Vec::new();
    for (name, fabric) in &machines {
        print!("{:<20} {:>5} {:>6}", name, fabric.num_cns(), fabric.depth());
        for kernel in &kernels {
            let t0 = std::time::Instant::now();
            let res = bench_case(format!("{name}/{}", kernel.name), &mut bench, |obs| {
                run_hca_obs(&kernel.ddg, fabric, &HcaConfig::default(), obs).ok()
            });
            let cell = match &res {
                Some(r) if r.is_legal() => format!("{}", r.mii.final_mii),
                Some(r) => format!("{}!", r.mii.final_mii),
                None => "—".into(),
            };
            print!("{cell:>16}");
            points.push(Point {
                machine: name,
                cns: fabric.num_cns(),
                depth: fabric.depth(),
                kernel: kernel.name,
                final_mii: res.as_ref().map(|r| r.mii.final_mii),
                legal: res.as_ref().is_some_and(|r| r.is_legal()),
                subproblems: res.as_ref().map_or(0, |r| r.stats.subproblems),
                millis: t0.elapsed().as_millis(),
            });
        }
        println!();
    }
    println!("\n('—' = failed, '!' = illegal clusterisation)");
    hca_bench::dump_json("hierarchy_sweep", &points);
    hca_bench::dump_bench_json("hierarchy_sweep", &bench);
}
