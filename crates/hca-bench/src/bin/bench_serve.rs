//! **Serve load generator** — boots an in-process `hca serve` daemon,
//! hammers it from concurrent client connections with a near-duplicate
//! kernel mix, and reports requests/s with p50/p99 latency plus the
//! daemon's cache counters. The whole point of the daemon is cross-request
//! memoisation, so `--expect-hits` turns "the cache actually hit" into an
//! exit code for CI.
//!
//! ```text
//! cargo run --release -p hca-bench --bin bench_serve
//! cargo run --release -p hca-bench --bin bench_serve -- \
//!     --requests 400 --clients 8 --snapshot /tmp/serve.snap --expect-hits
//! ```
//!
//! Each invocation appends one `serve` record to `BENCH_history.jsonl`
//! (same schema as `bench_gate`: wall-clock in `millis`, everything else
//! as counters) so the daemon's throughput rides the same trajectory file
//! as the direct-path benches.

use hca_serve::{Client, CompileSpec, Server, ServerConfig};
use serde::Serialize;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

/// The request mix: near-duplicate traffic, the daemon's target workload.
/// Every kernel appears many times per run, so a working cross-request
/// cache must hit from the second occurrence on.
const MIX: &[&str] = &[
    "fir2dim",
    "idcthor",
    "fir8",
    "biquad",
    "dot_product",
    "synthetic:96",
    "synthetic:96:0xB5E8",
    "fir2dim",
    "matvec8",
    "synthetic:96",
];

struct Args {
    requests: usize,
    clients: usize,
    snapshot: Option<PathBuf>,
    expect_hits: bool,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let num = |flag: &str, default: usize| -> usize {
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    Args {
        requests: num("--requests", 200).max(1),
        clients: num("--clients", 4).clamp(1, 64),
        snapshot: argv
            .iter()
            .position(|a| a == "--snapshot")
            .and_then(|i| argv.get(i + 1))
            .map(PathBuf::from),
        expect_hits: argv.iter().any(|a| a == "--expect-hits"),
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = (p / 100.0 * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

/// Mirror of `bench_gate`'s history line so both benches share
/// `BENCH_history.jsonl` (and `hca diff-metrics` reads either).
#[derive(Serialize)]
struct HistoryCase {
    case: String,
    millis: f64,
    counters: BTreeMap<String, u64>,
}

#[derive(Serialize)]
struct HistoryRecord {
    commit: String,
    unix_ms: u64,
    record: bool,
    cases: Vec<HistoryCase>,
}

fn append_history(case: HistoryCase) {
    let commit = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0);
    let rec = HistoryRecord {
        commit,
        unix_ms,
        record: false,
        cases: vec![case],
    };
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_history.jsonl");
    let line = match serde_json::to_string(&rec) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("warning: cannot serialise history record: {e}");
            return;
        }
    };
    use std::io::Write;
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| writeln!(f, "{line}"));
    match appended {
        Ok(()) => eprintln!("(appended to {})", path.display()),
        Err(e) => eprintln!("warning: cannot append {}: {e}", path.display()),
    }
}

fn main() {
    let args = parse_args();

    let server = Server::bind(ServerConfig {
        snapshot: args.snapshot.clone(),
        ..ServerConfig::default()
    })
    .expect("bench_serve: bind");
    let addr = server.local_addr().to_string();
    let stop = server.stop_handle();
    let daemon = std::thread::spawn(move || server.run().expect("bench_serve: server run"));

    let per_client = args.requests.div_ceil(args.clients);
    let t0 = Instant::now();
    let mut workers = Vec::new();
    for c in 0..args.clients {
        let addr = addr.clone();
        workers.push(std::thread::spawn(move || -> Vec<u64> {
            let mut client = Client::connect_tcp(&addr).expect("bench_serve: connect");
            let mut lat_us = Vec::with_capacity(per_client);
            for i in 0..per_client {
                // Interleave the mix across clients so identical jobs land
                // on different connections — cross-connection hits are the
                // claim under test, not same-connection ones.
                let kernel = MIX[(c + i) % MIX.len()];
                let spec = CompileSpec {
                    kernel: Some(kernel.to_string()),
                    ..CompileSpec::default()
                };
                let t = Instant::now();
                let summary = client.compile(spec).expect("bench_serve: compile");
                lat_us.push(u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX));
                assert!(
                    summary.legal,
                    "bench_serve: {kernel} served an illegal result"
                );
            }
            lat_us
        }));
    }
    let mut lat_us: Vec<u64> = Vec::new();
    for w in workers {
        lat_us.extend(w.join().expect("bench_serve: client thread"));
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut tail = Client::connect_tcp(&addr).expect("bench_serve: stats connect");
    let stats = tail.stats().expect("bench_serve: stats");
    drop(tail);
    stop.stop();
    daemon.join().expect("bench_serve: daemon thread");

    lat_us.sort_unstable();
    let total = lat_us.len();
    let rps = total as f64 / (wall_ms / 1e3);
    let p50 = percentile(&lat_us, 50.0);
    let p99 = percentile(&lat_us, 99.0);
    let lookups = stats.memo_hits + stats.memo_misses;
    let hit_pct = if lookups > 0 {
        stats.memo_hits as f64 / lookups as f64 * 100.0
    } else {
        0.0
    };

    println!(
        "bench_serve: {total} requests, {c} clients, {wall_ms:.0} ms wall",
        c = args.clients
    );
    println!("  throughput   {rps:>10.1} req/s");
    println!("  latency p50  {:>10.2} ms", p50 as f64 / 1e3);
    println!("  latency p99  {:>10.2} ms", p99 as f64 / 1e3);
    println!(
        "  memo         {} hits / {} misses ({hit_pct:.1}% of {lookups} lookups), \
         {} evictions, {} entries, {} bytes",
        stats.memo_hits,
        stats.memo_misses,
        stats.memo_evictions,
        stats.memo_entries,
        stats.memo_bytes
    );
    if stats.snapshot_entries > 0 {
        println!(
            "  snapshot     {} entries restored at boot",
            stats.snapshot_entries
        );
    }

    let counters: BTreeMap<String, u64> = [
        ("serve.requests".to_string(), total as u64),
        ("serve.clients".to_string(), args.clients as u64),
        ("serve.p50_us".to_string(), p50),
        ("serve.p99_us".to_string(), p99),
        ("serve.memo_hits".to_string(), stats.memo_hits),
        ("serve.memo_misses".to_string(), stats.memo_misses),
        ("serve.memo_evictions".to_string(), stats.memo_evictions),
        ("serve.memo_entries".to_string(), stats.memo_entries as u64),
        ("serve.memo_bytes".to_string(), stats.memo_bytes as u64),
        (
            "serve.snapshot_entries".to_string(),
            stats.snapshot_entries as u64,
        ),
    ]
    .into_iter()
    .collect();
    append_history(HistoryCase {
        case: "serve".to_string(),
        millis: wall_ms,
        counters,
    });

    if args.expect_hits && stats.memo_hits == 0 {
        eprintln!(
            "bench_serve FAILED: --expect-hits but the shared cache never hit \
             ({} misses over {} requests of a near-duplicate mix)",
            stats.memo_misses, total
        );
        std::process::exit(1);
    }
}
