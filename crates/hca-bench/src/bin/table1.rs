//! **Table 1** — "HCA test on four multimedia application loops" (paper §5).
//!
//! Clusterises fir2dim / idcthor / mpeg2inter / h264deblocking onto the
//! 64-CN DSPFabric at N = M = K = 8 and prints the paper's columns next to
//! the published values. Absolute Final-MII numbers differ (our SEE
//! heuristics are a reconstruction, not the authors' production tuning);
//! the *shape* to check: every clusterisation is legal, N_Instr / MIIRec /
//! MIIRes match exactly, and Final MII sits near the unified-machine
//! theoretical optimum.

use hca_bench::{bench_case, clusterize_obs, dump_bench_json, dump_json, paper_fabric};
use hca_core::Table1Row;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    #[serde(flatten)]
    ours: Table1Row,
    paper_final_mii: u32,
    theoretical_mii: u32,
    recvs: usize,
    wires: usize,
    millis: u128,
}

fn main() {
    let fabric = paper_fabric();
    println!("Table 1 — HCA test on four multimedia application loops");
    println!("(64-CN DSPFabric, N = M = K = 8; paper values in parentheses)\n");
    println!(
        "{:<16} {:>7} {:>7} {:>7} {:>7} {:>16} {:>10}",
        "Loop", "N_Instr", "MIIRec", "MIIRes", "Legal", "Final MII (paper)", "runtime"
    );
    let mut rows = Vec::new();
    let mut bench = Vec::new();
    for kernel in hca_kernels::table1_kernels() {
        let t0 = std::time::Instant::now();
        let outcome = bench_case(kernel.name, &mut bench, |obs| {
            clusterize_obs(&kernel, &fabric, obs)
        });
        let Some((res, row)) = outcome else {
            println!("{:<16} FAILED TO CLUSTERISE", kernel.name);
            continue;
        };
        let millis = t0.elapsed().as_millis();
        println!(
            "{:<16} {:>7} {:>7} {:>7} {:>7} {:>10} ({:>3}) {:>8}ms",
            row.loop_name,
            row.n_instr,
            row.mii_rec,
            row.mii_res,
            if row.legal { "yes" } else { "no" },
            row.final_mii,
            kernel.expected.paper_final_mii,
            millis,
        );
        rows.push(Row {
            paper_final_mii: kernel.expected.paper_final_mii,
            theoretical_mii: res.mii.theoretical,
            recvs: res.final_program.num_recvs(),
            wires: res.stats.wires,
            millis,
            ours: row,
        });
    }
    dump_json("table1", &rows);
    dump_bench_json("table1", &bench);
}
