//! **Scaling S2** — the paper's motivating claim (§1/§4): hierarchical
//! decomposition "easily scales with the architecture", while flat ICA on
//! the K₆₄ graph must track a state space that "grows with the capacities
//! of the MUXes as multiplication factors".
//!
//! Runs HCA and the flat baseline over seeded synthetic DDGs of increasing
//! size and reports runtime, explored search states and result quality.
//! Expected shape: HCA runtime grows gently (many small sub-problems); flat
//! runtime and state counts blow up with DDG size × machine size, and its
//! assignments — which ignore the MUX hierarchy — are not even mappable
//! onto the real machine.

use hca_arch::DspFabric;
use hca_bench::bench_case;
use hca_core::{run_flat, run_hca_obs, HcaConfig};
use hca_ddg::DdgAnalysis;
use hca_kernels::synthetic::scaling_family;
use hca_see::SeeConfig;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Point {
    nodes: usize,
    hca_ms: f64,
    hca_final_mii: Option<u32>,
    hca_states: usize,
    flat_ms: f64,
    flat_est_mii: Option<u32>,
    flat_states: usize,
}

fn main() {
    let fabric = DspFabric::standard(8, 8, 8);
    let sizes = [32, 64, 128, 256, 384, 512];
    println!("Scaling: HCA vs flat ICA on the 64-CN machine (synthetic DDGs)\n");
    println!(
        "{:>6} {:>10} {:>8} {:>9} {:>10} {:>8} {:>9}",
        "nodes", "HCA ms", "MII", "states", "flat ms", "estMII", "states"
    );
    let mut points = Vec::new();
    let mut bench = Vec::new();
    for (n, ddg) in scaling_family(&sizes, 0xC0FFEE) {
        let t0 = Instant::now();
        let hca = bench_case(format!("hca/{n}"), &mut bench, |obs| {
            run_hca_obs(&ddg, &fabric, &HcaConfig::default(), obs).ok()
        });
        let hca_ms = t0.elapsed().as_secs_f64() * 1e3;

        let analysis = DdgAnalysis::compute(&ddg).unwrap();
        let t1 = Instant::now();
        let flat = run_flat(&ddg, &analysis, &fabric, SeeConfig::default()).ok();
        let flat_ms = t1.elapsed().as_secs_f64() * 1e3;

        let p = Point {
            nodes: n,
            hca_ms,
            hca_final_mii: hca.as_ref().map(|r| r.mii.final_mii),
            hca_states: hca.as_ref().map_or(0, |r| r.stats.see_states),
            flat_ms,
            flat_est_mii: flat.as_ref().map(|o| o.est_mii),
            flat_states: flat.as_ref().map_or(0, |o| o.stats.states_explored),
        };
        println!(
            "{:>6} {:>10.1} {:>8} {:>9} {:>10.1} {:>8} {:>9}",
            p.nodes,
            p.hca_ms,
            p.hca_final_mii.map_or("—".into(), |m| m.to_string()),
            p.hca_states,
            p.flat_ms,
            p.flat_est_mii.map_or("—".into(), |m| m.to_string()),
            p.flat_states,
        );
        points.push(p);
    }
    println!(
        "\n(flat est-MII ignores the MUX hierarchy entirely — its assignment\n\
         is generally not mappable onto the real machine, which is the point)"
    );
    hca_bench::dump_json("scaling", &points);
    hca_bench::dump_bench_json("scaling", &bench);
}
