//! **Ablations A1–A4** — the design choices `DESIGN.md` calls out:
//!
//! * A1: SEE beam width (1, 4, 8, 32);
//! * A2: priority-list policy (all of them);
//! * A3: Route Allocator on/off (the no-candidates action);
//! * A4: objective-function weights (full / copies-only / pressure-only).
//!
//! Each variant clusterises the four Table-1 kernels with a single
//! [`HcaConfig`] (no portfolio — the ablation isolates one knob) and
//! reports legality and final MII.

use hca_arch::DspFabric;
use hca_bench::{bench_case, BenchCase};
use hca_core::{run_hca, run_hca_obs, HcaConfig};
use hca_ddg::PriorityPolicy;
use hca_see::CostWeights;
use serde::Serialize;

#[derive(Serialize)]
struct Outcome {
    variant: String,
    kernel: &'static str,
    final_mii: Option<u32>,
    legal: bool,
    millis: u128,
}

fn run_variant(name: &str, config: &HcaConfig, out: &mut Vec<Outcome>, bench: &mut Vec<BenchCase>) {
    let fabric = DspFabric::standard(8, 8, 8);
    print!("{name:<24}");
    for kernel in hca_kernels::table1_kernels() {
        let t0 = std::time::Instant::now();
        let res = bench_case(format!("{name}/{}", kernel.name), bench, |obs| {
            run_hca_obs(&kernel.ddg, &fabric, config, obs).ok()
        });
        let millis = t0.elapsed().as_millis();
        let cell = match &res {
            Some(r) if r.is_legal() => format!("{}", r.mii.final_mii),
            Some(r) => format!("{}!", r.mii.final_mii),
            None => "—".into(),
        };
        print!("{cell:>16}");
        out.push(Outcome {
            variant: name.to_string(),
            kernel: kernel.name,
            final_mii: res.as_ref().map(|r| r.mii.final_mii),
            legal: res.as_ref().is_some_and(|r| r.is_legal()),
            millis,
        });
    }
    println!();
}

fn main() {
    let mut out = Vec::new();
    let mut bench = Vec::new();
    print!("{:<24}", "variant");
    for k in hca_kernels::table1_kernels() {
        print!("{:>16}", k.name);
    }
    println!("\n");

    // A1: beam width.
    for beam in [1usize, 4, 8, 32] {
        let mut cfg = HcaConfig::default();
        cfg.see.beam_width = beam;
        run_variant(&format!("A1 beam={beam}"), &cfg, &mut out, &mut bench);
    }
    // A2: priority policy.
    for &p in PriorityPolicy::all() {
        let mut cfg = HcaConfig::default();
        cfg.see.priority = p;
        run_variant(
            &format!("A2 priority={}", p.name()),
            &cfg,
            &mut out,
            &mut bench,
        );
    }
    // A3: route allocator.
    for router in [true, false] {
        let mut cfg = HcaConfig::default();
        cfg.see.enable_router = router;
        run_variant(&format!("A3 router={router}"), &cfg, &mut out, &mut bench);
    }
    // A4: objective weights.
    for (name, w) in [
        ("full", CostWeights::default()),
        ("copies-only", CostWeights::copies_only()),
        ("pressure-only", CostWeights::pressure_only()),
    ] {
        let mut cfg = HcaConfig::default();
        cfg.see.weights = w;
        run_variant(&format!("A4 weights={name}"), &cfg, &mut out, &mut bench);
    }
    // A5: unrolling (more exposed ILP vs larger working set), fir2dim only.
    {
        let fabric = DspFabric::standard(8, 8, 8);
        let base = hca_kernels::fir2dim::build().ddg;
        for factor in [1u32, 2, 4] {
            let ddg = hca_ddg::unroll(&base, factor);
            let t0 = std::time::Instant::now();
            let res = run_hca(&ddg, &fabric, &HcaConfig::default()).ok();
            let cell = match &res {
                Some(r) if r.is_legal() => {
                    // Report per-ORIGINAL-iteration MII for comparability.
                    format!("{:.1}", f64::from(r.mii.final_mii) / f64::from(factor))
                }
                Some(_) => "!".into(),
                None => "—".into(),
            };
            println!("{:<24}{cell:>16}", format!("A5 unroll={factor}"));
            out.push(Outcome {
                variant: format!("A5 unroll={factor}"),
                kernel: "fir2dim",
                final_mii: res.as_ref().map(|r| r.mii.final_mii),
                legal: res.as_ref().is_some_and(|r| r.is_legal()),
                millis: t0.elapsed().as_millis(),
            });
        }
    }
    println!("\n('—' = failed, '!' = illegal clusterisation)");
    hca_bench::dump_json("ablation", &out);
    hca_bench::dump_bench_json("ablation", &bench);
}
