//! Deterministic data parallelism for the HCA workspace.
//!
//! A tiny scoped worker pool over `std::thread` exposing exactly the
//! patterns the compiler uses — `par_map` (shared input, collected in index
//! order), `par_map_mut` (contiguous chunks of a mutable slice) and `join`.
//! The design contract is **determinism**: every function returns results
//! in input order, so callers that merge sequentially afterwards produce
//! bit-identical output whatever the thread count. Thread scheduling only
//! decides *who* computes an element, never *where* its result lands.
//!
//! Thread count resolution, in precedence order:
//!
//! 1. the `sequential` cargo feature (compile-time kill switch),
//! 2. [`set_thread_override`] (programmatic, used by determinism tests),
//! 3. the `HCA_THREADS` environment variable (read once per process),
//! 4. [`std::thread::available_parallelism`].
//!
//! Nested calls run inline: a worker thread that itself calls `par_map`
//! executes sequentially instead of spawning threads-under-threads. The
//! HCA driver parallelises sibling sub-problems at the top and each SEE
//! beam expansion below it — without this rule the fan-out would be
//! multiplicative.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Programmatic thread-count override; 0 = unset.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `HCA_THREADS`, parsed once per process.
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

thread_local! {
    /// Set inside pool workers so nested calls degrade to inline execution.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Force the pool width programmatically (`None` restores the environment
/// default). Takes precedence over `HCA_THREADS`; the `sequential` feature
/// still wins. Used by determinism tests to compare 1-thread and N-thread
/// runs inside one process.
pub fn set_thread_override(threads: Option<usize>) {
    OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// Parse an `HCA_THREADS` value: `Ok(n)` for a usable width, `Err(reason)`
/// for anything that must fall back to the default (empty, non-numeric, or
/// zero — a zero-wide pool cannot make progress).
fn parse_hca_threads(raw: &str) -> Result<usize, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err("empty value".into());
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Err("thread count must be at least 1".into()),
        Ok(n) => Ok(n),
        Err(e) => Err(e.to_string()),
    }
}

/// The configured pool width (≥ 1).
pub fn configured_threads() -> usize {
    if cfg!(feature = "sequential") {
        return 1;
    }
    let o = OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    // Parsed once per process; an unusable value warns once on stderr (not
    // silently swallowed) and the pool falls back to the default width.
    let env = *ENV_THREADS.get_or_init(|| match std::env::var("HCA_THREADS") {
        Ok(raw) => match parse_hca_threads(&raw) {
            Ok(n) => Some(n),
            Err(reason) => {
                eprintln!(
                    "warning: ignoring HCA_THREADS={raw:?} ({reason}); \
                     using the default thread count"
                );
                None
            }
        },
        Err(_) => None,
    });
    env.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Is the current thread already inside a pool worker?
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Threads that would actually be spawned for `len` items right now.
fn effective_threads(len: usize) -> usize {
    if len < 2 || in_worker() {
        1
    } else {
        configured_threads().min(len)
    }
}

/// Map `f` over `items` and collect the results **in input order**.
///
/// Work is distributed by an atomic cursor (good balance for items of
/// uneven cost, like beam states of different maturity); each worker tags
/// results with their index, and the merge places them positionally, so the
/// output is independent of scheduling. Runs inline when the pool width is
/// 1, the input is trivial, or the caller is itself a pool worker. A panic
/// in `f` propagates to the caller.
pub fn par_map<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let threads = effective_threads(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    IN_WORKER.with(|w| w.set(true));
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        produced.push((i, f(&items[i])));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("par_map worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index produced"))
        .collect()
}

/// Map `f` over exclusive references into `items`, collecting results in
/// input order. The slice is split into contiguous chunks, one per worker,
/// so no synchronisation guards the mutable accesses; chunk results are
/// concatenated positionally. Same inline/nesting/panic rules as
/// [`par_map`].
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let threads = effective_threads(items.len());
    if threads <= 1 {
        return items.iter_mut().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let f = &f;
    let per_chunk: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    chunk.iter_mut().map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map_mut worker panicked"))
            .collect()
    });
    per_chunk.into_iter().flatten().collect()
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB,
    RA: Send,
{
    if effective_threads(2) <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let ha = scope.spawn(|| {
            IN_WORKER.with(|w| w.set(true));
            a()
        });
        let rb = b();
        (ha.join().expect("join worker panicked"), rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that touch the global override.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn par_map_preserves_order() {
        let _g = LOCK.lock().unwrap();
        set_thread_override(Some(4));
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
        set_thread_override(None);
    }

    #[test]
    fn par_map_mut_mutates_and_preserves_order() {
        let _g = LOCK.lock().unwrap();
        set_thread_override(Some(3));
        let mut items: Vec<u64> = (0..100).collect();
        let out = par_map_mut(&mut items, |x| {
            *x += 1;
            *x * 10
        });
        assert_eq!(items, (1..=100).collect::<Vec<u64>>());
        assert_eq!(out, (1..=100).map(|x| x * 10).collect::<Vec<u64>>());
        set_thread_override(None);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let _g = LOCK.lock().unwrap();
        let items: Vec<u64> = (0..257).collect();
        let mut runs = Vec::new();
        for threads in [1, 2, 7] {
            set_thread_override(Some(threads));
            runs.push(par_map(&items, |&x| x.wrapping_mul(0x9E37_79B9) >> 3));
        }
        set_thread_override(None);
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn nested_calls_run_inline() {
        let _g = LOCK.lock().unwrap();
        set_thread_override(Some(4));
        let outer: Vec<usize> = (0..8).collect();
        let out = par_map(&outer, |&i| {
            assert!(in_worker());
            let inner: Vec<usize> = (0..4).collect();
            // Must not deadlock or explode the thread count.
            par_map(&inner, move |&j| i * 10 + j)
        });
        assert_eq!(out[1], vec![10, 11, 12, 13]);
        set_thread_override(None);
    }

    #[test]
    fn join_returns_both() {
        let _g = LOCK.lock().unwrap();
        set_thread_override(Some(2));
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
        set_thread_override(None);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        let _g = match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        set_thread_override(Some(2));
        let items = vec![1u32, 2, 3, 4];
        let _ = par_map(&items, |&x| {
            assert!(x != 3, "boom");
            x
        });
    }

    #[test]
    fn hca_threads_parsing() {
        assert_eq!(parse_hca_threads("4"), Ok(4));
        assert_eq!(parse_hca_threads("  16 "), Ok(16));
        assert_eq!(parse_hca_threads("1"), Ok(1));
        // Zero, garbage, negatives, and empty all fall back with a reason.
        assert!(parse_hca_threads("0").is_err());
        assert!(parse_hca_threads("").is_err());
        assert!(parse_hca_threads("   ").is_err());
        assert!(parse_hca_threads("four").is_err());
        assert!(parse_hca_threads("-2").is_err());
        assert!(parse_hca_threads("2.5").is_err());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[42u32], |&x| x + 1), vec![43]);
    }
}
