//! Deterministic data parallelism for the HCA workspace.
//!
//! A tiny scoped worker pool over `std::thread` exposing exactly the
//! patterns the compiler uses — `par_map` (shared input, collected in index
//! order), `par_map_mut` (contiguous chunks of a mutable slice) and `join`.
//! The design contract is **determinism**: every function returns results
//! in input order, so callers that merge sequentially afterwards produce
//! bit-identical output whatever the thread count. Thread scheduling only
//! decides *who* computes an element, never *where* its result lands.
//!
//! Thread count resolution, in precedence order:
//!
//! 1. the `sequential` cargo feature (compile-time kill switch),
//! 2. [`set_thread_override`] (programmatic, used by determinism tests),
//! 3. the `HCA_THREADS` environment variable (read once per process),
//! 4. [`std::thread::available_parallelism`].
//!
//! Nested calls run inline: a worker thread that itself calls `par_map`
//! executes sequentially instead of spawning threads-under-threads. The
//! HCA driver parallelises sibling sub-problems at the top and each SEE
//! beam expansion below it — without this rule the fan-out would be
//! multiplicative.

#![forbid(unsafe_code)]

use std::any::Any;
use std::cell::Cell;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Cooperative cancellation for long-running searches.
///
/// A token is either manually cancelled ([`CancelToken::cancel`]) or expires
/// when an optional wall-clock deadline passes. Searches poll it at branch
/// points with [`CancelToken::check_stride`], which keeps the hot path to a
/// relaxed atomic load and only consults the clock every `STRIDE` calls —
/// cheap enough for a branch-and-bound inner loop, and it works sequentially
/// on a single core (no watcher thread). Clones share the same flag, so one
/// `cancel()` stops every holder.
#[derive(Clone, Debug)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// Clock polls happen once per this many [`CancelToken::check_stride`]
    /// calls; in between, only the atomic flag is read.
    pub const STRIDE: u32 = 1024;

    /// A token that never fires until [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: None,
        }
    }

    /// A token that fires `budget` from now (or when cancelled manually,
    /// whichever comes first).
    pub fn with_deadline(budget: Duration) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Instant::now().checked_add(budget),
        }
    }

    /// Cancel the token (and every clone sharing its flag).
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has the token been cancelled or its deadline passed? Consults the
    /// clock when a deadline is set; the result latches into the shared flag
    /// so later checks are a plain load.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.flag.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Stride-checked poll for search hot loops: bumps `count`, reads only
    /// the atomic flag on most calls, and does the full deadline check every
    /// [`CancelToken::STRIDE`]-th call.
    #[inline]
    pub fn check_stride(&self, count: &mut u32) -> bool {
        *count = count.wrapping_add(1);
        if (*count).is_multiple_of(Self::STRIDE) {
            self.is_cancelled()
        } else {
            self.flag.load(Ordering::Relaxed)
        }
    }
}

/// A worker closure panicked while processing one item.
///
/// [`try_par_map`] turns each panic into one of these instead of aborting
/// the whole map: a long-running service can fail the one affected request
/// and keep serving the rest. The original payload is reduced to its
/// message (panic payloads are `Box<dyn Any>` and rarely more structured
/// than a string).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Input index of the item whose closure panicked.
    pub index: usize,
    /// The panic message, if the payload carried one.
    pub message: String,
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "worker panicked on item {}: {}",
            self.index, self.message
        )
    }
}

impl std::error::Error for WorkerPanic {}

/// Extract the human-readable message from a panic payload.
fn payload_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Programmatic thread-count override; 0 = unset.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `HCA_THREADS`, parsed once per process.
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

thread_local! {
    /// Set inside pool workers so nested calls degrade to inline execution.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Force the pool width programmatically (`None` restores the environment
/// default). Takes precedence over `HCA_THREADS`; the `sequential` feature
/// still wins. Used by determinism tests to compare 1-thread and N-thread
/// runs inside one process.
pub fn set_thread_override(threads: Option<usize>) {
    OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// Parse an `HCA_THREADS` value: `Ok(n)` for a usable width, `Err(reason)`
/// for anything that must fall back to the default (empty, non-numeric, or
/// zero — a zero-wide pool cannot make progress).
fn parse_hca_threads(raw: &str) -> Result<usize, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err("empty value".into());
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Err("thread count must be at least 1".into()),
        Ok(n) => Ok(n),
        Err(e) => Err(e.to_string()),
    }
}

/// The configured pool width (≥ 1).
pub fn configured_threads() -> usize {
    if cfg!(feature = "sequential") {
        return 1;
    }
    let o = OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    // Parsed once per process; an unusable value warns once on stderr (not
    // silently swallowed) and the pool falls back to the default width.
    let env = *ENV_THREADS.get_or_init(|| match std::env::var("HCA_THREADS") {
        Ok(raw) => match parse_hca_threads(&raw) {
            Ok(n) => Some(n),
            Err(reason) => {
                eprintln!(
                    "warning: ignoring HCA_THREADS={raw:?} ({reason}); \
                     using the default thread count"
                );
                None
            }
        },
        Err(_) => None,
    });
    env.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Is the current thread already inside a pool worker?
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Threads that would actually be spawned for `len` items right now.
fn effective_threads(len: usize) -> usize {
    if len < 2 || in_worker() {
        1
    } else {
        configured_threads().min(len)
    }
}

/// A caught panic payload, as `std::thread` reports it.
type Payload = Box<dyn Any + Send>;

/// Shared engine of [`par_map`] / [`try_par_map`]: map `f` over `items`
/// with every panic caught per item, results (or payloads) collected in
/// input order. Workers keep draining the cursor after a panic, so every
/// item is attempted exactly once whatever its neighbours did.
fn par_map_catch<'a, T, R, F>(items: &'a [T], f: F) -> Vec<Result<R, Payload>>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let threads = effective_threads(items.len());
    let run_one = |item: &'a T| catch_unwind(AssertUnwindSafe(|| f(item)));
    if threads <= 1 {
        return items.iter().map(run_one).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<R, Payload>>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    IN_WORKER.with(|w| w.set(true));
                    let mut produced: Vec<(usize, Result<R, Payload>)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        produced.push((i, run_one(&items[i])));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            // The worker closure cannot panic (f is inside catch_unwind),
            // so a join error would be a bug in this module itself.
            for (i, r) in handle.join().expect("pool worker cannot panic") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index produced"))
        .collect()
}

/// Map `f` over `items` and collect the results **in input order**.
///
/// Work is distributed by an atomic cursor (good balance for items of
/// uneven cost, like beam states of different maturity); each worker tags
/// results with their index, and the merge places them positionally, so the
/// output is independent of scheduling. Runs inline when the pool width is
/// 1, the input is trivial, or the caller is itself a pool worker.
///
/// A panic in `f` propagates to the caller with its original payload —
/// deterministically the panic of the **lowest input index**, whatever the
/// thread interleaving (use [`try_par_map`] to keep the survivors instead).
pub fn par_map<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for r in par_map_catch(items, f) {
        match r {
            Ok(v) => out.push(v),
            Err(payload) => resume_unwind(payload),
        }
    }
    out
}

/// [`par_map`] with per-item panic isolation: each item maps to
/// `Ok(result)` or `Err(WorkerPanic)`, in input order. A panicking closure
/// fails only its own item — every other item still runs to completion and
/// keeps its deterministic slot. This is the dispatch primitive for
/// long-running services, where one poisoned request must not take down
/// the batch (or the process).
pub fn try_par_map<'a, T, R, F>(items: &'a [T], f: F) -> Vec<Result<R, WorkerPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    par_map_catch(items, f)
        .into_iter()
        .enumerate()
        .map(|(index, r)| {
            r.map_err(|payload| WorkerPanic {
                index,
                message: payload_message(payload.as_ref()),
            })
        })
        .collect()
}

/// Map `f` over exclusive references into `items`, collecting results in
/// input order. The slice is split into contiguous chunks, one per worker,
/// so no synchronisation guards the mutable accesses; chunk results are
/// concatenated positionally. Same inline/nesting/panic rules as
/// [`par_map`].
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let threads = effective_threads(items.len());
    if threads <= 1 {
        return items.iter_mut().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let f = &f;
    let per_chunk: Vec<Result<Vec<R>, Payload>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    catch_unwind(AssertUnwindSafe(|| {
                        chunk.iter_mut().map(f).collect::<Vec<R>>()
                    }))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker cannot panic"))
            .collect()
    });
    // Chunks are contiguous, so the first erring chunk holds the panic of
    // the lowest input index — propagate that one deterministically.
    let mut out = Vec::with_capacity(items.len());
    for chunk in per_chunk {
        match chunk {
            Ok(rs) => out.extend(rs),
            Err(payload) => resume_unwind(payload),
        }
    }
    out
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB,
    RA: Send,
{
    if effective_threads(2) <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let ha = scope.spawn(|| {
            IN_WORKER.with(|w| w.set(true));
            catch_unwind(AssertUnwindSafe(a))
        });
        let rb = catch_unwind(AssertUnwindSafe(b));
        let ra = ha.join().unwrap_or_else(|payload| Err(payload));
        // `a` first, matching the inline `(a(), b())` evaluation order, so
        // which payload propagates is independent of the thread count.
        match (ra, rb) {
            (Ok(ra), Ok(rb)) => (ra, rb),
            (Err(payload), _) | (_, Err(payload)) => resume_unwind(payload),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that touch the global override.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn par_map_preserves_order() {
        let _g = LOCK.lock().unwrap();
        set_thread_override(Some(4));
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
        set_thread_override(None);
    }

    #[test]
    fn par_map_mut_mutates_and_preserves_order() {
        let _g = LOCK.lock().unwrap();
        set_thread_override(Some(3));
        let mut items: Vec<u64> = (0..100).collect();
        let out = par_map_mut(&mut items, |x| {
            *x += 1;
            *x * 10
        });
        assert_eq!(items, (1..=100).collect::<Vec<u64>>());
        assert_eq!(out, (1..=100).map(|x| x * 10).collect::<Vec<u64>>());
        set_thread_override(None);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let _g = LOCK.lock().unwrap();
        let items: Vec<u64> = (0..257).collect();
        let mut runs = Vec::new();
        for threads in [1, 2, 7] {
            set_thread_override(Some(threads));
            runs.push(par_map(&items, |&x| x.wrapping_mul(0x9E37_79B9) >> 3));
        }
        set_thread_override(None);
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn nested_calls_run_inline() {
        let _g = LOCK.lock().unwrap();
        set_thread_override(Some(4));
        let outer: Vec<usize> = (0..8).collect();
        let out = par_map(&outer, |&i| {
            assert!(in_worker());
            let inner: Vec<usize> = (0..4).collect();
            // Must not deadlock or explode the thread count.
            par_map(&inner, move |&j| i * 10 + j)
        });
        assert_eq!(out[1], vec![10, 11, 12, 13]);
        set_thread_override(None);
    }

    #[test]
    fn join_returns_both() {
        let _g = LOCK.lock().unwrap();
        set_thread_override(Some(2));
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
        set_thread_override(None);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate_original_payload() {
        let _g = match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        set_thread_override(Some(2));
        let items = vec![1u32, 2, 3, 4];
        let _ = par_map(&items, |&x| {
            assert!(x != 3, "boom");
            x
        });
    }

    #[test]
    fn par_map_propagates_lowest_index_panic() {
        let _g = match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        set_thread_override(Some(4));
        let items: Vec<u32> = (0..64).collect();
        let payload = catch_unwind(AssertUnwindSafe(|| {
            let _ = par_map(&items, |&x| {
                if x == 7 || x == 40 {
                    panic!("item {x} failed");
                }
                x
            });
        }))
        .unwrap_err();
        // Whatever thread hit which item first, index 7's payload wins.
        assert_eq!(payload_message(payload.as_ref()), "item 7 failed");
        set_thread_override(None);
    }

    #[test]
    fn try_par_map_isolates_panics_to_their_item() {
        let _g = match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        for threads in [1, 4] {
            set_thread_override(Some(threads));
            let items: Vec<u32> = (0..32).collect();
            let out = try_par_map(&items, |&x| {
                if x % 10 == 3 {
                    panic!("poisoned item {x}");
                }
                x * 2
            });
            assert_eq!(out.len(), items.len());
            for (i, r) in out.iter().enumerate() {
                if i % 10 == 3 {
                    let err = r.as_ref().unwrap_err();
                    assert_eq!(err.index, i);
                    assert_eq!(err.message, format!("poisoned item {i}"));
                } else {
                    // Survivors keep their deterministic slot and value.
                    assert_eq!(*r.as_ref().unwrap(), (i as u32) * 2);
                }
            }
        }
        set_thread_override(None);
    }

    #[test]
    fn try_par_map_all_ok_roundtrip() {
        let _g = match LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        set_thread_override(Some(3));
        let items: Vec<u64> = (0..100).collect();
        let out: Vec<u64> = try_par_map(&items, |&x| x + 1)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(out, (1..=100).collect::<Vec<u64>>());
        set_thread_override(None);
    }

    #[test]
    fn hca_threads_parsing() {
        assert_eq!(parse_hca_threads("4"), Ok(4));
        assert_eq!(parse_hca_threads("  16 "), Ok(16));
        assert_eq!(parse_hca_threads("1"), Ok(1));
        // Zero, garbage, negatives, and empty all fall back with a reason.
        assert!(parse_hca_threads("0").is_err());
        assert!(parse_hca_threads("").is_err());
        assert!(parse_hca_threads("   ").is_err());
        assert!(parse_hca_threads("four").is_err());
        assert!(parse_hca_threads("-2").is_err());
        assert!(parse_hca_threads("2.5").is_err());
    }

    #[test]
    fn cancel_token_manual_cancel_is_shared() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!t.is_cancelled());
        assert!(!clone.is_cancelled());
        clone.cancel();
        assert!(t.is_cancelled());
        assert!(clone.is_cancelled());
    }

    #[test]
    fn cancel_token_deadline_fires_and_latches() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        // The zero deadline has already passed; the first full check latches.
        assert!(t.is_cancelled());
        // Latched: even a stride-off check sees the flag.
        let mut n = 0;
        assert!(t.check_stride(&mut n));
    }

    #[test]
    fn cancel_token_far_deadline_does_not_fire() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        let mut n = 0;
        for _ in 0..(CancelToken::STRIDE * 2 + 5) {
            assert!(!t.check_stride(&mut n));
        }
        t.cancel();
        assert!(t.check_stride(&mut n));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[42u32], |&x| x + 1), vec![43]);
    }
}
