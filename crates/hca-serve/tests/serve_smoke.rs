//! End-to-end daemon smoke test: boot on a loopback port, exercise every
//! op over a real TCP connection, shut down cleanly, and verify the cache
//! snapshot survives a restart.

use hca_serve::{Client, CompileSpec, Request, Server, ServerConfig};
use std::path::PathBuf;

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hca_serve_smoke_{}_{name}", std::process::id()));
    p
}

fn spec(kernel: &str) -> CompileSpec {
    CompileSpec {
        kernel: Some(kernel.to_string()),
        ..CompileSpec::default()
    }
}

#[test]
fn daemon_round_trip_and_snapshot_reload() {
    let snap = temp_path("snapshot.json");
    let _ = std::fs::remove_file(&snap);

    // --- first life: cold cache ---
    let server = Server::bind(ServerConfig {
        snapshot: Some(snap.clone()),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run().expect("server run"));

    let mut client = Client::connect_tcp(&addr).expect("connect");
    client.ping().expect("ping");

    // Cold compile: all misses.
    let first = client.compile(spec("fir2dim")).expect("cold compile");
    assert!(first.legal, "served fir2dim must be legal");
    assert!(first.subproblems > 0);

    // Hot compile of the same kernel: the shared memo must hit.
    let second = client.compile(spec("fir2dim")).expect("hot compile");
    assert_eq!(first, second, "same job must serve identical bits");
    let stats = client.stats().expect("stats");
    assert!(
        stats.memo_hits > 0,
        "second compile of the same kernel must hit the cache: {stats:?}"
    );
    assert_eq!(stats.snapshot_entries, 0, "first life starts cold");

    // Batch: good jobs succeed in order, a bad job fails only itself.
    let items = client
        .compile_batch(vec![spec("biquad"), spec("no_such_kernel"), spec("fir8")])
        .expect("batch");
    assert_eq!(items.len(), 3);
    assert!(items[0].ok && items[2].ok);
    assert!(!items[1].ok, "unknown kernel must fail its own item");
    assert!(items[1]
        .error
        .as_deref()
        .unwrap()
        .contains("unknown kernel"));

    // A deliberately panicking worker degrades only its request.
    let msg = client.crash().expect("crash op must report the panic");
    assert!(
        msg.contains("deliberate crash"),
        "panic message served: {msg}"
    );
    client
        .ping()
        .expect("daemon must keep serving after a worker panic");

    // Unknown op and malformed line both get answers, not silence.
    let resp = client
        .call(Request {
            op: "frobnicate".into(),
            ..Request::default()
        })
        .expect("unknown op still answered");
    assert!(!resp.ok);

    client.shutdown().expect("shutdown");
    let final_stats = daemon.join().expect("daemon thread");
    assert!(
        final_stats.memo_entries > 0,
        "cache must hold entries at exit"
    );
    assert!(snap.exists(), "shutdown must write the snapshot");

    // --- second life: warm cache from the snapshot ---
    let server = Server::bind(ServerConfig {
        snapshot: Some(snap.clone()),
        ..ServerConfig::default()
    })
    .expect("re-bind");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.run().expect("server re-run"));

    let mut client = Client::connect_tcp(&addr).expect("re-connect");
    let stats = client.stats().expect("stats after reload");
    assert!(
        stats.snapshot_entries > 0,
        "restart must restore snapshot entries: {stats:?}"
    );
    let served = client.compile(spec("fir2dim")).expect("warm compile");
    assert_eq!(
        served, first,
        "a snapshot-warmed result must be bit-identical to the cold one"
    );
    let stats = client.stats().expect("stats after warm compile");
    assert!(
        stats.memo_hits > 0,
        "warm compile must hit restored entries: {stats:?}"
    );

    client.shutdown().expect("second shutdown");
    daemon.join().expect("daemon thread 2");
    let _ = std::fs::remove_file(&snap);
}

#[cfg(unix)]
#[test]
fn unix_socket_round_trip() {
    let sock = temp_path("sock");
    let _ = std::fs::remove_file(&sock);
    let server = Server::bind(ServerConfig {
        bind: hca_serve::Bind::Unix(sock.clone()),
        ..ServerConfig::default()
    })
    .expect("bind unix");
    let stop = server.stop_handle();
    let daemon = std::thread::spawn(move || server.run().expect("unix run"));

    let mut client = Client::connect_unix(&sock).expect("connect unix");
    client.ping().expect("unix ping");
    let served = client.compile(spec("dot_product")).expect("unix compile");
    assert!(served.legal);

    stop.stop();
    daemon.join().expect("daemon thread");
    assert!(!sock.exists(), "socket file must be removed on shutdown");
}
