//! # hca-serve — the long-running HCA compilation daemon
//!
//! ROADMAP item 1: amortise sub-problem solving *across* runs. A fleet
//! compiling near-duplicate kernels re-solves the same decomposition
//! subtrees endlessly; this crate keeps one process alive with a shared,
//! sharded, byte-budgeted [`Memo`](hca_core::Memo) cache so the second
//! request for an isomorphic sub-problem is a lookup, not a search.
//!
//! * [`protocol`] — the JSON-lines wire format (requests, responses,
//!   [`CompileSummary`] with its bit-identity digest);
//! * [`server`] — the daemon: TCP or Unix-socket accept loop, one thread
//!   per connection, `compile_batch` fan-out over the [`hca_par`] worker
//!   set with per-item panic isolation, snapshot-on-shutdown /
//!   load-on-start cache persistence;
//! * [`client`] — a small blocking client (benches, tests, CI);
//! * [`kernels`] — server-side resolution of built-in kernel names.
//!
//! The cache is sound across requests because the memo key encodes the
//! fabric and the full solving context (see `hca-core`'s `memo` module):
//! a served result is bit-identical to a direct [`hca_core::run_hca`]
//! call, cache hot or cold — `tests/determinism.rs` pins exactly that.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod kernels;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use kernels::resolve_kernel;
pub use protocol::{
    summarise, CompileSpec, CompileSummary, ItemResult, Request, Response, StatsReport,
};
pub use server::{parse_machine, Bind, Server, ServerConfig, StopHandle};
