//! Server-side kernel resolution: the same built-in workload names the
//! `hca` CLI accepts, so a client can name a kernel instead of shipping
//! its DDG over the wire.

use hca_ddg::Ddg;

/// Resolve a kernel name to `(name, ddg)`.
///
/// Accepted names: the four Table-1 kernels (`fir2dim`, `idcthor`,
/// `mpeg2inter`, `h264deblocking`), the DSPstone set (`fir8`, `biquad`,
/// `matvec8`, `dot_product`, `n_real_updates`, `convolution`, `lms`,
/// `matrix1x3`), and seeded synthetics as `synthetic:<nodes>[:<seed>]`
/// (seed defaults to `0xB5E7`, decimal or `0x…` hex).
pub fn resolve_kernel(name: &str) -> Result<(String, Ddg), String> {
    if let Some(k) = hca_kernels::table1_kernels()
        .into_iter()
        .find(|k| k.name == name)
    {
        return Ok((k.name.to_string(), k.ddg));
    }
    let dspstone = match name {
        "fir8" => Some(hca_kernels::dspstone::fir(8)),
        "biquad" => Some(hca_kernels::dspstone::biquad()),
        "matvec8" => Some(hca_kernels::dspstone::matvec_row(8)),
        "dot_product" => Some(hca_kernels::dspstone::dot_product()),
        "n_real_updates" => Some(hca_kernels::dspstone::n_real_updates(4)),
        "convolution" => Some(hca_kernels::dspstone::convolution(8)),
        "lms" => Some(hca_kernels::dspstone::lms(8)),
        "matrix1x3" => Some(hca_kernels::dspstone::matrix1x3()),
        _ => None,
    };
    if let Some(ddg) = dspstone {
        return Ok((name.to_string(), ddg));
    }
    if let Some(rest) = name.strip_prefix("synthetic:") {
        let (nodes_str, seed_str) = match rest.split_once(':') {
            Some((n, s)) => (n, Some(s)),
            None => (rest, None),
        };
        let nodes: usize = nodes_str
            .parse()
            .map_err(|_| format!("bad synthetic node count `{nodes_str}`"))?;
        if nodes == 0 || nodes > 1 << 16 {
            return Err(format!("synthetic node count {nodes} out of range"));
        }
        let seed = match seed_str {
            None => 0xB5E7,
            Some(s) => match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                Some(hex) => {
                    u64::from_str_radix(hex, 16).map_err(|_| format!("bad synthetic seed `{s}`"))?
                }
                None => s.parse().map_err(|_| format!("bad synthetic seed `{s}`"))?,
            },
        };
        let (_, ddg) = hca_kernels::synthetic::scaling_family(&[nodes], seed)
            .pop()
            .ok_or("empty synthetic family")?;
        return Ok((name.to_string(), ddg));
    }
    Err(format!(
        "unknown kernel `{name}` (try a Table-1 name, a DSPstone name, or synthetic:<nodes>[:<seed>])"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_and_dspstone_resolve() {
        for name in [
            "fir2dim",
            "idcthor",
            "mpeg2inter",
            "h264deblocking",
            "biquad",
        ] {
            let (n, ddg) = resolve_kernel(name).unwrap();
            assert_eq!(n, name);
            assert!(ddg.num_nodes() > 0, "{name} resolved empty");
        }
    }

    #[test]
    fn synthetic_specs_resolve_deterministically() {
        let (_, a) = resolve_kernel("synthetic:64").unwrap();
        let (_, b) = resolve_kernel("synthetic:64:0xB5E7").unwrap();
        let (_, c) = resolve_kernel("synthetic:64:7").unwrap();
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "default seed must equal explicit 0xB5E7"
        );
        assert_ne!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&c).unwrap(),
            "different seeds must differ"
        );
    }

    #[test]
    fn bad_names_are_rejected() {
        assert!(resolve_kernel("nope").is_err());
        assert!(resolve_kernel("synthetic:").is_err());
        assert!(resolve_kernel("synthetic:0").is_err());
        assert!(resolve_kernel("synthetic:10:zzz").is_err());
    }
}
