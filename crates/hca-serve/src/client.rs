//! A small blocking client for the `hca serve` protocol — used by the
//! `bench_serve` load generator, the serve round-trip tests, and the CI
//! job. One connection, synchronous call/response.

use crate::protocol::{CompileSpec, CompileSummary, ItemResult, Request, Response, StatsReport};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::path::Path;

/// A connected protocol client.
pub struct Client {
    reader: BufReader<Box<dyn std::io::Read + Send>>,
    writer: Box<dyn Write + Send>,
    next_id: u64,
}

impl Client {
    /// Connect over TCP (`ip:port`).
    pub fn connect_tcp(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let reader = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(Box::new(reader)),
            writer: Box::new(stream),
            next_id: 1,
        })
    }

    /// Connect over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<Path>) -> std::io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let reader = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(Box::new(reader)),
            writer: Box::new(stream),
            next_id: 1,
        })
    }

    /// Send one request and block for its response. Checks the id echo.
    pub fn call(&mut self, mut req: Request) -> Result<Response, String> {
        req.id = self.next_id;
        self.next_id += 1;
        let line = serde_json::to_string(&req).map_err(|e| e.to_string())?;
        writeln!(self.writer, "{line}")
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut resp_line = String::new();
        loop {
            match self.reader.read_line(&mut resp_line) {
                Ok(0) => return Err("server closed the connection".into()),
                Ok(_) if resp_line.trim().is_empty() => resp_line.clear(),
                Ok(_) => break,
                Err(e) => return Err(format!("recv: {e}")),
            }
        }
        let resp: Response =
            serde_json::from_str(&resp_line).map_err(|e| format!("bad response: {e}"))?;
        if resp.id != req.id {
            return Err(format!("response id {} for request {}", resp.id, req.id));
        }
        Ok(resp)
    }

    /// `ping` — returns the round trip's error, if any.
    pub fn ping(&mut self) -> Result<(), String> {
        let resp = self.call(Request {
            op: "ping".into(),
            ..Request::default()
        })?;
        if resp.ok {
            Ok(())
        } else {
            Err(resp.error.unwrap_or_else(|| "ping failed".into()))
        }
    }

    /// `compile` one job, returning the served summary.
    pub fn compile(&mut self, job: CompileSpec) -> Result<CompileSummary, String> {
        let resp = self.call(Request {
            op: "compile".into(),
            job,
            ..Request::default()
        })?;
        if !resp.ok {
            return Err(resp.error.unwrap_or_else(|| "compile failed".into()));
        }
        resp.parse_result()
    }

    /// `compile_batch`: per-job outcomes in job order.
    pub fn compile_batch(&mut self, jobs: Vec<CompileSpec>) -> Result<Vec<ItemResult>, String> {
        let resp = self.call(Request {
            op: "compile_batch".into(),
            jobs,
            ..Request::default()
        })?;
        if !resp.ok {
            return Err(resp.error.unwrap_or_else(|| "batch failed".into()));
        }
        resp.parse_result()
    }

    /// `stats`: the daemon's cache and traffic counters.
    pub fn stats(&mut self) -> Result<StatsReport, String> {
        let resp = self.call(Request {
            op: "stats".into(),
            ..Request::default()
        })?;
        if !resp.ok {
            return Err(resp.error.unwrap_or_else(|| "stats failed".into()));
        }
        resp.parse_result()
    }

    /// `crash`: ask a worker to panic (diagnostic). Returns the error
    /// message the daemon reported — the daemon itself must survive.
    pub fn crash(&mut self) -> Result<String, String> {
        let resp = self.call(Request {
            op: "crash".into(),
            ..Request::default()
        })?;
        match resp.error {
            Some(e) if !resp.ok => Ok(e),
            _ => Err("crash op unexpectedly succeeded".into()),
        }
    }

    /// `shutdown`: stop the daemon (it snapshots its cache on the way out).
    pub fn shutdown(&mut self) -> Result<(), String> {
        let resp = self.call(Request {
            op: "shutdown".into(),
            ..Request::default()
        })?;
        if resp.ok {
            Ok(())
        } else {
            Err(resp.error.unwrap_or_else(|| "shutdown failed".into()))
        }
    }
}
