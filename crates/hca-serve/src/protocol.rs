//! The `hca serve` wire protocol: JSON lines, one request or response
//! object per line, over TCP or a Unix socket.
//!
//! Requests carry a client-chosen `id` that the response echoes, so a
//! client may pipeline requests on one connection (responses come back in
//! request order — the connection handler is sequential; concurrency comes
//! from multiple connections and from `compile_batch` fan-out).
//!
//! ```text
//! → {"id":1,"op":"ping"}
//! ← {"id":1,"ok":true,"result":"pong"}
//! → {"id":2,"op":"compile","kernel":"fir2dim"}
//! ← {"id":2,"ok":true,"result":{"kernel":"fir2dim","final_mii":3,...,"digest":"5ad0…"}}
//! → {"id":3,"op":"compile_batch","jobs":[{"kernel":"fir2dim"},{"kernel":"idcthor"}]}
//! ← {"id":3,"ok":true,"result":[{"ok":true,"result":{...}},{"ok":true,"result":{...}}]}
//! → {"id":4,"op":"stats"}
//! ← {"id":4,"ok":true,"result":{"memo_hits":17,"memo_misses":40,...}}
//! → {"id":5,"op":"shutdown"}
//! ← {"id":5,"ok":true,"result":"snapshot saved: 40 entries"}
//! ```
//!
//! A malformed line still gets a response (`ok:false`, `id:0` when the id
//! could not be parsed) — a daemon must never answer garbage with silence.

use hca_core::HcaResult;
use hca_ddg::Ddg;
use serde::{Deserialize, Serialize};

/// One request line. `op` selects the operation; the remaining fields are
/// op-specific and ignored elsewhere.
#[derive(Serialize, Deserialize, Clone, Debug, Default)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    #[serde(default)]
    pub id: u64,
    /// `ping` | `compile` | `compile_batch` | `stats` | `crash` | `shutdown`.
    pub op: String,
    /// (`compile`) the job to run.
    #[serde(flatten)]
    pub job: CompileSpec,
    /// (`compile_batch`) the jobs to fan out across the worker set.
    #[serde(default)]
    pub jobs: Vec<CompileSpec>,
}

/// One compilation job: a kernel by name or an inline DDG, plus the target
/// machine.
#[derive(Serialize, Deserialize, Clone, Debug, Default)]
pub struct CompileSpec {
    /// Built-in kernel name (`fir2dim`, `biquad`, `synthetic:512:0xB5E7`, …).
    /// Mutually exclusive with [`ddg`](CompileSpec::ddg).
    #[serde(default)]
    pub kernel: Option<String>,
    /// Inline DDG (the `hca export --json` schema). Takes precedence over
    /// [`kernel`](CompileSpec::kernel) when both are present.
    #[serde(default)]
    pub ddg: Option<Ddg>,
    /// Machine spec: `N,M,K` MUX capacities of the standard 64-CN fabric,
    /// or a full `ARITIES@CAPS` hierarchy spec. Default `8,8,8`.
    #[serde(default)]
    pub machine: Option<String>,
}

/// One response line.
#[derive(Serialize, Deserialize, Clone, Debug)]
pub struct Response {
    /// The request's correlation id (0 when the request was unparsable).
    pub id: u64,
    /// Did the operation succeed?
    pub ok: bool,
    /// Error message when `ok` is false.
    #[serde(default)]
    pub error: Option<String>,
    /// Op-specific payload: a [`CompileSummary`], a `Vec<ItemResult>`, a
    /// [`StatsReport`], or a plain string.
    #[serde(default)]
    pub result: Option<serde_json::Value>,
}

impl Response {
    /// A success response with a serialisable payload.
    pub fn ok(id: u64, result: &impl Serialize) -> Response {
        Response {
            id,
            ok: true,
            error: None,
            result: Some(result.serialize()),
        }
    }

    /// A failure response.
    pub fn err(id: u64, error: impl Into<String>) -> Response {
        Response {
            id,
            ok: false,
            error: Some(error.into()),
            result: None,
        }
    }

    /// Deserialise the payload as `T` (for clients that know the op).
    pub fn parse_result<T: Deserialize>(&self) -> Result<T, String> {
        let v = self.result.as_ref().ok_or("response carries no result")?;
        T::deserialize(v).map_err(|e| format!("unexpected result shape: {e}"))
    }
}

/// One item of a `compile_batch` response: the per-job outcome, in job
/// order. A panicked worker fails only its own item.
#[derive(Serialize, Deserialize, Clone, Debug)]
pub struct ItemResult {
    /// Did this job succeed?
    pub ok: bool,
    /// Error message when `ok` is false (a typed compile error, or
    /// `worker panicked on item N: …` when the worker blew up).
    #[serde(default)]
    pub error: Option<String>,
    /// The summary when `ok` is true.
    #[serde(default)]
    pub result: Option<CompileSummary>,
}

/// The served digest of one compilation — everything a client needs to
/// check bit-identity against a direct [`hca_core::run_hca`] call without
/// shipping the full placement over the wire.
#[derive(Serialize, Deserialize, Clone, Debug, PartialEq, Eq)]
pub struct CompileSummary {
    /// The job's kernel name (or `inline` for inline DDGs).
    pub kernel: String,
    /// DDG size, original nodes.
    pub nodes: usize,
    /// Final achieved MII (§4.2 cost model).
    pub final_mii: u32,
    /// Unified-machine theoretical optimum.
    pub theoretical_mii: u32,
    /// Coherency-checker verdict.
    pub legal: bool,
    /// `recv` primitives materialised.
    pub recvs: usize,
    /// Sub-problems solved.
    pub subproblems: usize,
    /// FNV-1a/64 over the full solution (sorted placement, route ops,
    /// final-program placement, MII report, stats) — two runs produced the
    /// same bits iff the digests match, up to 64-bit collision odds.
    pub digest: String,
}

/// Cache and traffic counters served by the `stats` op.
#[derive(Serialize, Deserialize, Clone, Debug, Default)]
pub struct StatsReport {
    /// Lifetime memo-cache hits (across every request since start).
    pub memo_hits: u64,
    /// Lifetime memo-cache misses.
    pub memo_misses: u64,
    /// Lifetime LRU evictions.
    pub memo_evictions: u64,
    /// Entries inserted since start.
    pub memo_insertions: u64,
    /// Cached sub-problems right now.
    pub memo_entries: usize,
    /// Approximate cache footprint, bytes.
    pub memo_bytes: usize,
    /// Configured byte budget.
    pub memo_budget: usize,
    /// Requests handled since start (all ops).
    pub requests: u64,
    /// Requests answered with `ok:false`.
    pub errors: u64,
    /// Entries restored from the startup snapshot (0 = cold start).
    pub snapshot_entries: usize,
}

/// FNV-1a/64 running state.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Summarise a full HCA result for the wire, with a digest strong enough
/// that `served.digest == direct.digest` pins bit-identity of the solution
/// (used by `tests/determinism.rs` and the serve CI job).
pub fn summarise(kernel: &str, ddg: &Ddg, res: &HcaResult) -> CompileSummary {
    let mut h = Fnv::new();
    // Placement, in node-id order (the map's iteration order is an
    // implementation detail; the sorted view is canonical).
    let mut placed: Vec<(u32, u32)> = res.placement.iter().map(|(n, c)| (n.0, c.0)).collect();
    placed.sort_unstable();
    h.u64(placed.len() as u64);
    for (n, c) in placed {
        h.u64(u64::from(n));
        h.u64(u64::from(c));
    }
    // The final program's own placement covers route/recv materialisation
    // order — any drift in the post pass changes the digest.
    h.u64(res.final_program.placement.len() as u64);
    for c in &res.final_program.placement {
        h.u64(u64::from(c.0));
    }
    for v in [
        res.mii.mii_rec,
        res.mii.mii_res,
        res.mii.theoretical,
        res.mii.ini_mii,
        res.mii.max_cls_mii,
        res.mii.wire_mii,
        res.mii.final_mii_rec,
        res.mii.final_mii,
    ] {
        h.u64(u64::from(v));
    }
    for v in [
        res.stats.subproblems,
        res.stats.see_states,
        res.stats.routed_nodes,
        res.stats.forwards,
        res.stats.wires,
    ] {
        h.u64(v as u64);
    }
    h.u64(u64::from(res.is_legal()));
    CompileSummary {
        kernel: kernel.to_string(),
        nodes: ddg.num_nodes(),
        final_mii: res.mii.final_mii,
        theoretical_mii: res.mii.theoretical,
        legal: res.is_legal(),
        recvs: res.final_program.num_recvs(),
        subproblems: res.stats.subproblems,
        digest: format!("{:016x}", h.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip_compile() {
        let line = r#"{"id":7,"op":"compile","kernel":"fir2dim","machine":"8,8,8"}"#;
        let req: Request = serde_json::from_str(line).unwrap();
        assert_eq!(req.id, 7);
        assert_eq!(req.op, "compile");
        assert_eq!(req.job.kernel.as_deref(), Some("fir2dim"));
        assert_eq!(req.job.machine.as_deref(), Some("8,8,8"));
        let back = serde_json::to_string(&req).unwrap();
        let again: Request = serde_json::from_str(&back).unwrap();
        assert_eq!(again.job.kernel.as_deref(), Some("fir2dim"));
    }

    #[test]
    fn request_missing_id_defaults_to_zero() {
        let req: Request = serde_json::from_str(r#"{"op":"ping"}"#).unwrap();
        assert_eq!(req.id, 0);
        assert_eq!(req.op, "ping");
    }

    #[test]
    fn response_payload_round_trip() {
        let stats = StatsReport {
            memo_hits: 3,
            requests: 9,
            ..StatsReport::default()
        };
        let resp = Response::ok(4, &stats);
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert!(back.ok);
        let parsed: StatsReport = back.parse_result().unwrap();
        assert_eq!(parsed.memo_hits, 3);
        assert_eq!(parsed.requests, 9);
    }

    #[test]
    fn error_response_shape() {
        let resp = Response::err(0, "bad json");
        let line = serde_json::to_string(&resp).unwrap();
        assert!(line.contains("\"ok\":false"));
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.error.as_deref(), Some("bad json"));
        assert!(back.result.is_none() || matches!(back.result, Some(serde_json::Value::Null)));
    }
}
