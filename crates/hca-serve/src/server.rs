//! The daemon: accept loop, per-connection handlers, request dispatch,
//! snapshot lifecycle.
//!
//! Concurrency model: one OS thread per connection (clients are expected
//! in the tens, not the tens of thousands), each handling its requests
//! sequentially so responses come back in request order. `compile_batch`
//! fans its jobs across the [`hca_par`] worker set with per-item panic
//! isolation ([`hca_par::try_par_map`]) — a job whose worker panics fails
//! *that job only*; survivors keep their deterministic slots and the
//! daemon keeps serving. All connections share one byte-budgeted
//! [`Memo`] cache, so near-duplicate traffic turns into cache hits
//! whatever connection it arrives on.
//!
//! The accept loop polls a non-blocking listener and a stop flag;
//! connection readers poll with a short read timeout. A `shutdown` request
//! flips the flag, every thread drains within a poll interval, and the
//! cache is snapshotted to disk (versioned; a stale snapshot is discarded
//! on the next start, never trusted).

use crate::kernels::resolve_kernel;
use crate::protocol::{summarise, CompileSpec, ItemResult, Request, Response, StatsReport};
use hca_arch::DspFabric;
use hca_core::{run_hca_shared, HcaConfig, Memo};
use hca_ddg::Ddg;
use hca_obs::Obs;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where the daemon listens.
#[derive(Clone, Debug)]
pub enum Bind {
    /// A TCP address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    Tcp(String),
    /// A Unix-domain socket path (removed and re-created on bind).
    #[cfg(unix)]
    Unix(PathBuf),
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address.
    pub bind: Bind,
    /// Snapshot file: loaded on start (discarded when stale), written on
    /// clean shutdown. `None` disables persistence.
    pub snapshot: Option<PathBuf>,
    /// Byte budget of the shared memo cache.
    pub memo_budget: usize,
    /// The solving configuration every request runs under.
    pub hca: HcaConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: Bind::Tcp("127.0.0.1:0".to_string()),
            snapshot: None,
            memo_budget: Memo::DEFAULT_BUDGET,
            hca: HcaConfig::default(),
        }
    }
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    memo: Memo,
    hca: HcaConfig,
    stop: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
    snapshot_entries: usize,
}

impl Shared {
    fn stats(&self) -> StatsReport {
        StatsReport {
            memo_hits: self.memo.hits(),
            memo_misses: self.memo.misses(),
            memo_evictions: self.memo.evictions(),
            memo_insertions: self.memo.insertions(),
            memo_entries: self.memo.entries(),
            memo_bytes: self.memo.approx_bytes(),
            memo_budget: self.memo.budget(),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            snapshot_entries: self.snapshot_entries,
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// A bound (but not yet running) daemon. [`Server::bind`] loads the
/// snapshot and claims the address; [`Server::run`] serves until a
/// `shutdown` request, then snapshots and returns the final stats.
pub struct Server {
    listener: Listener,
    shared: Arc<Shared>,
    snapshot: Option<PathBuf>,
    local_addr: String,
}

/// Accept-loop poll interval; also bounds how long shutdown drains.
const POLL: Duration = Duration::from_millis(25);

impl Server {
    /// Bind the listen address and load the snapshot (if configured and
    /// valid — a stale or unreadable snapshot logs one warning and the
    /// cache starts cold).
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let mut snapshot_entries = 0;
        let memo = match &cfg.snapshot {
            Some(path) if path.exists() => match Memo::load(path, cfg.memo_budget) {
                Ok(m) => {
                    snapshot_entries = m.entries();
                    eprintln!(
                        "hca-serve: restored {} cached sub-problems from {}",
                        snapshot_entries,
                        path.display()
                    );
                    m
                }
                Err(why) => {
                    eprintln!("hca-serve: ignoring snapshot ({why}); starting cold");
                    Memo::new(cfg.memo_budget)
                }
            },
            _ => Memo::new(cfg.memo_budget),
        };
        let (listener, local_addr) = match &cfg.bind {
            Bind::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                l.set_nonblocking(true)?;
                let local = l.local_addr()?.to_string();
                (Listener::Tcp(l), local)
            }
            #[cfg(unix)]
            Bind::Unix(path) => {
                // A previous unclean exit leaves the socket file behind;
                // re-binding it is this daemon's claim.
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                (Listener::Unix(l), path.display().to_string())
            }
        };
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                memo,
                hca: cfg.hca,
                stop: AtomicBool::new(false),
                requests: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                snapshot_entries,
            }),
            snapshot: cfg.snapshot,
            local_addr,
        })
    }

    /// The bound address — for TCP, `ip:port` with the real port even when
    /// the config asked for `:0`.
    pub fn local_addr(&self) -> &str {
        &self.local_addr
    }

    /// Serve until a `shutdown` request (or [`Server::stop_handle`] flips),
    /// then drain connections, snapshot the cache, and return final stats.
    pub fn run(self) -> std::io::Result<StatsReport> {
        let mut handles = Vec::new();
        while !self.shared.stop.load(Ordering::SeqCst) {
            let accepted = match &self.listener {
                Listener::Tcp(l) => match l.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false)?;
                        stream.set_read_timeout(Some(POLL))?;
                        let shared = Arc::clone(&self.shared);
                        handles.push(std::thread::spawn(move || {
                            handle_connection(&shared, &stream, stream.try_clone());
                        }));
                        true
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
                    Err(e) => return Err(e),
                },
                #[cfg(unix)]
                Listener::Unix(l) => match l.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false)?;
                        stream.set_read_timeout(Some(POLL))?;
                        let shared = Arc::clone(&self.shared);
                        handles.push(std::thread::spawn(move || {
                            handle_connection(&shared, &stream, stream.try_clone());
                        }));
                        true
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => false,
                    Err(e) => return Err(e),
                },
            };
            if !accepted {
                std::thread::sleep(POLL);
            }
        }
        // Connection readers poll the stop flag between timeouts, so every
        // handler exits within ~one interval even if its client lingers.
        for h in handles {
            let _ = h.join();
        }
        if let Some(path) = &self.snapshot {
            match self.shared.memo.save(path) {
                Ok(n) => eprintln!(
                    "hca-serve: snapshot saved: {} entries to {}",
                    n,
                    path.display()
                ),
                Err(e) => eprintln!("hca-serve: snapshot failed: {e}"),
            }
        }
        #[cfg(unix)]
        if let Listener::Unix(_) = &self.listener {
            let _ = std::fs::remove_file(&self.local_addr);
        }
        Ok(self.shared.stats())
    }

    /// A handle that makes [`Server::run`] return (equivalent to a client
    /// `shutdown` request) — for embedding the daemon in tests and benches.
    pub fn stop_handle(&self) -> StopHandle {
        StopHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// See [`Server::stop_handle`].
pub struct StopHandle {
    shared: Arc<Shared>,
}

impl StopHandle {
    /// Request shutdown; the accept loop exits within one poll interval.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
    }
}

/// Serve one connection: JSON-lines requests in, responses out, in order.
/// Generic over the stream so TCP and Unix sockets share the code.
fn handle_connection<R: std::io::Read>(
    shared: &Shared,
    reader: R,
    writer: std::io::Result<impl Write>,
) {
    let Ok(mut writer) = writer else { return };
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                if line.trim().is_empty() {
                    line.clear();
                    continue;
                }
                let (resp, shutdown) = dispatch(shared, &line);
                line.clear();
                shared.requests.fetch_add(1, Ordering::Relaxed);
                if !resp.ok {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                }
                let Ok(body) = serde_json::to_string(&resp) else {
                    return;
                };
                if writeln!(writer, "{body}")
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    return;
                }
                if shutdown {
                    shared.stop.store(true, Ordering::SeqCst);
                    return;
                }
            }
            // Timeout polls: partial data stays buffered in `line`, the
            // next read appends the rest of the request.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return,
        }
    }
}

/// Decode and execute one request line. Returns the response and whether
/// this request asked the daemon to shut down.
fn dispatch(shared: &Shared, line: &str) -> (Response, bool) {
    let req: Request = match serde_json::from_str(line) {
        Ok(r) => r,
        Err(e) => {
            // Fish the id out of the raw JSON if there is one, so even a
            // malformed request correlates with its error.
            let id = serde_json::from_str_value(line)
                .ok()
                .and_then(|v| v.field("id").as_u64())
                .unwrap_or(0);
            return (Response::err(id, format!("bad request: {e}")), false);
        }
    };
    let id = req.id;
    match req.op.as_str() {
        "ping" => (Response::ok(id, &"pong"), false),
        "stats" => (Response::ok(id, &shared.stats()), false),
        "compile" => {
            // Single jobs run through the same panic-isolating dispatch as
            // batches: a panicking solve fails this request, not the daemon.
            let items = run_jobs(shared, std::slice::from_ref(&req.job));
            let item = items.into_iter().next().expect("one job in, one out");
            match (item.ok, item.result, item.error) {
                (true, Some(summary), _) => (Response::ok(id, &summary), false),
                (_, _, err) => (
                    Response::err(id, err.unwrap_or_else(|| "compile failed".into())),
                    false,
                ),
            }
        }
        "compile_batch" => {
            if req.jobs.is_empty() {
                return (Response::err(id, "compile_batch needs jobs"), false);
            }
            let items = run_jobs(shared, &req.jobs);
            (Response::ok(id, &items), false)
        }
        "crash" => {
            // Diagnostic op: deliberately panic inside the worker dispatch,
            // proving to operators (and the CI serve job) that a panicking
            // request degrades only itself.
            let jobs = [()];
            let caught = hca_par::try_par_map(&jobs, |()| -> () {
                panic!("deliberate crash requested by client");
            });
            let msg = match &caught[0] {
                Err(p) => p.to_string(),
                Ok(()) => "crash op failed to crash".to_string(),
            };
            (Response::err(id, msg), false)
        }
        "shutdown" => (Response::ok(id, &"shutting down; snapshot on exit"), true),
        other => (Response::err(id, format!("unknown op `{other}`")), false),
    }
}

/// Fan `jobs` across the worker set with per-item panic isolation; one
/// [`ItemResult`] per job, in job order.
fn run_jobs(shared: &Shared, jobs: &[CompileSpec]) -> Vec<ItemResult> {
    hca_par::try_par_map(jobs, |job| compile_one(shared, job))
        .into_iter()
        .map(|worker| match worker {
            Ok(Ok(summary)) => ItemResult {
                ok: true,
                error: None,
                result: Some(summary),
            },
            Ok(Err(e)) => ItemResult {
                ok: false,
                error: Some(e),
                result: None,
            },
            Err(panic) => ItemResult {
                ok: false,
                error: Some(panic.to_string()),
                result: None,
            },
        })
        .collect()
}

/// Resolve and solve one job against the shared cache.
fn compile_one(
    shared: &Shared,
    job: &CompileSpec,
) -> Result<crate::protocol::CompileSummary, String> {
    let (name, ddg): (String, Ddg) = match (&job.ddg, &job.kernel) {
        (Some(ddg), _) => ("inline".to_string(), ddg.clone()),
        (None, Some(kernel)) => resolve_kernel(kernel)?,
        (None, None) => return Err("compile needs `kernel` or `ddg`".into()),
    };
    let fabric = parse_machine(job.machine.as_deref())?;
    let res = run_hca_shared(&ddg, &fabric, &shared.hca, &Obs::disabled(), &shared.memo)
        .map_err(|e| e.to_string())?;
    Ok(summarise(&name, &ddg, &res))
}

/// Parse a machine spec: `N,M,K` / `N` MUX capacities of the standard
/// 64-CN fabric, or a full `ARITIES@CAPS` hierarchy spec.
pub fn parse_machine(spec: Option<&str>) -> Result<DspFabric, String> {
    let Some(spec) = spec else {
        return Ok(DspFabric::standard(8, 8, 8));
    };
    if spec.contains('@') {
        return DspFabric::parse(spec);
    }
    let parts: Vec<usize> = spec
        .split(',')
        .map(|p| p.trim().parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|_| format!("bad machine spec `{spec}`"))?;
    match parts.as_slice() {
        [n] => Ok(DspFabric::standard(*n, *n, *n)),
        [n, m, k] => Ok(DspFabric::standard(*n, *m, *k)),
        _ => Err(format!("bad machine spec `{spec}`")),
    }
}
