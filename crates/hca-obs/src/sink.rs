//! Event sinks: where [`Event`]s go once emitted.
//!
//! * [`JsonlSink`] — one JSON object per line, streamable, `tail -f`-able.
//! * [`ChromeTraceSink`] — a `chrome://tracing` / Perfetto-compatible
//!   `trace_event` JSON file, written on flush.
//! * [`StderrSink`] — human-readable lines, used by `-v` and the legacy
//!   `HCA_TRACE` / `SMS_TRACE` environment switches.
//! * [`MemorySink`] — in-process buffer for tests.

use crate::event::{ArgValue, Event};
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// A consumer of pipeline events.
///
/// Implementations must be `Send`: the observer handle is shared and the
/// sink list lives behind a mutex.
pub trait PipelineObserver: Send {
    /// Receive one event. Called synchronously from the emitting thread.
    fn on_event(&mut self, event: &Event);

    /// Flush buffered output (end of run). Default: no-op.
    fn flush(&mut self) {}
}

/// Human-readable stderr logging.
pub struct StderrSink {
    /// When false, span-completion events are suppressed (logs/instants only).
    pub spans: bool,
}

impl StderrSink {
    /// Log everything, spans included.
    pub fn new() -> Self {
        StderrSink { spans: true }
    }

    /// Log only instants and messages — the `HCA_TRACE` replacement.
    pub fn logs_only() -> Self {
        StderrSink { spans: false }
    }
}

impl Default for StderrSink {
    fn default() -> Self {
        Self::new()
    }
}

impl PipelineObserver for StderrSink {
    fn on_event(&mut self, event: &Event) {
        if event.dur_us.is_some() && !self.spans {
            return;
        }
        let mut line = format!("[{}.{}]", event.phase, event.name);
        if let Some(dur) = event.dur_us {
            line.push_str(&format!(" {dur}us"));
        }
        for (k, v) in &event.args {
            line.push_str(&format!(" {k}={v}"));
        }
        if let Some(msg) = &event.msg {
            line.push_str(": ");
            line.push_str(msg);
        }
        eprintln!("{line}");
    }
}

/// Shared in-memory event buffer (clone the sink, keep a handle).
#[derive(Clone, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    /// Fresh empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }
}

impl PipelineObserver for MemorySink {
    fn on_event(&mut self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

/// One serialised [`Event`] per line.
pub struct JsonlSink {
    out: BufWriter<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Stream to a file at `path` (created/truncated).
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink {
            out: BufWriter::new(Box::new(file)),
        })
    }

    /// Stream to an arbitrary writer.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: BufWriter::new(writer),
        }
    }
}

impl PipelineObserver for JsonlSink {
    fn on_event(&mut self, event: &Event) {
        let _ = writeln!(self.out, "{}", jsonl_event_json(event));
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// Render one event as a single JSONL object. Hand-built (like the Chrome
/// rendering) so `args` is a flat `{"key": scalar}` object — `jq`-friendly —
/// rather than the externally tagged [`ArgValue`] serde form.
fn jsonl_event_json(ev: &Event) -> String {
    let mut s = String::with_capacity(96);
    s.push_str(&format!("{{\"ts_us\":{},\"phase\":", ev.ts_us));
    push_json_str(&mut s, &ev.phase);
    s.push_str(",\"name\":");
    push_json_str(&mut s, &ev.name);
    if let Some(dur) = ev.dur_us {
        s.push_str(&format!(",\"dur_us\":{dur}"));
    }
    s.push_str(",\"args\":{");
    let mut first = true;
    for (k, v) in &ev.args {
        if !first {
            s.push(',');
        }
        first = false;
        push_json_str(&mut s, k);
        s.push(':');
        push_arg_value(&mut s, v);
    }
    s.push('}');
    if let Some(msg) = &ev.msg {
        s.push_str(",\"msg\":");
        push_json_str(&mut s, msg);
    }
    s.push('}');
    s
}

/// Buffers events and writes a Chrome `trace_event` JSON array on flush.
///
/// Span events become complete (`"ph":"X"`) slices; instants and logs become
/// instant (`"ph":"i"`) markers. The output loads directly in
/// `chrome://tracing` and <https://ui.perfetto.dev>.
pub struct ChromeTraceSink {
    out: Option<Box<dyn Write + Send>>,
    events: Vec<Event>,
}

impl ChromeTraceSink {
    /// Write the trace to `path` when flushed (created/truncated now, so an
    /// unwritable path fails early).
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(ChromeTraceSink {
            out: Some(Box::new(file)),
            events: Vec::new(),
        })
    }

    /// Write the trace to an arbitrary writer when flushed.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        ChromeTraceSink {
            out: Some(Box::new(writer)),
            events: Vec::new(),
        }
    }

    fn write_all(&mut self) -> io::Result<()> {
        let Some(mut out) = self.out.take() else {
            return Ok(());
        };
        let mut body = String::from("{\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&trace_event_json(ev));
        }
        body.push_str("]}\n");
        out.write_all(body.as_bytes())?;
        out.flush()
    }
}

impl PipelineObserver for ChromeTraceSink {
    fn on_event(&mut self, event: &Event) {
        self.events.push(event.clone());
    }

    fn flush(&mut self) {
        let _ = self.write_all();
    }
}

impl Drop for ChromeTraceSink {
    fn drop(&mut self) {
        let _ = self.write_all();
    }
}

/// Render one event in `trace_event` form. Hand-built so arguments flatten
/// to bare JSON scalars regardless of how [`ArgValue`] serialises.
fn trace_event_json(ev: &Event) -> String {
    let mut s = String::with_capacity(96);
    s.push_str("{\"name\":");
    push_json_str(&mut s, &ev.name);
    s.push_str(",\"cat\":");
    push_json_str(&mut s, &ev.phase);
    match ev.dur_us {
        Some(dur) => {
            s.push_str(&format!(",\"ph\":\"X\",\"ts\":{},\"dur\":{dur}", ev.ts_us));
        }
        None => {
            s.push_str(&format!(",\"ph\":\"i\",\"ts\":{},\"s\":\"t\"", ev.ts_us));
        }
    }
    s.push_str(",\"pid\":1,\"tid\":1,\"args\":{");
    let mut first = true;
    for (k, v) in &ev.args {
        if !first {
            s.push(',');
        }
        first = false;
        push_json_str(&mut s, k);
        s.push(':');
        push_arg_value(&mut s, v);
    }
    if let Some(msg) = &ev.msg {
        if !first {
            s.push(',');
        }
        s.push_str("\"msg\":");
        push_json_str(&mut s, msg);
    }
    s.push_str("}}");
    s
}

fn push_arg_value(s: &mut String, v: &ArgValue) {
    match v {
        ArgValue::U64(n) => s.push_str(&n.to_string()),
        ArgValue::I64(n) => s.push_str(&n.to_string()),
        ArgValue::F64(x) if x.is_finite() => s.push_str(&format!("{x}")),
        ArgValue::F64(_) => s.push_str("null"),
        ArgValue::Str(t) => push_json_str(s, t),
        ArgValue::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
    }
}

fn push_json_str(s: &mut String, text: &str) {
    s.push('"');
    for c in text.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shared byte buffer usable as a `Write + Send` target.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_emits_one_parseable_line_per_event() {
        let buf = SharedBuf::default();
        let mut sink = JsonlSink::new(Box::new(buf.clone()));
        sink.on_event(&Event::instant(1, "see", "start").arg("level", 2u64));
        sink.on_event(&Event::instant(2, "see", "end"));
        sink.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let ev = serde_json::from_str_value(line).unwrap();
            assert_eq!(ev.field("phase").as_str(), Some("see"));
        }
        // Args flatten to bare scalars, same as the Chrome rendering.
        let first = serde_json::from_str_value(lines[0]).unwrap();
        assert_eq!(first.field("args").field("level").as_u64(), Some(2));
    }

    #[test]
    fn chrome_sink_writes_valid_trace_event_json() {
        let buf = SharedBuf::default();
        let mut sink = ChromeTraceSink::new(Box::new(buf.clone()));
        sink.on_event(&Event {
            ts_us: 5,
            phase: "mapper".into(),
            name: "distribute \"x\"".into(),
            dur_us: Some(40),
            args: vec![
                ("wires".into(), ArgValue::U64(3)),
                ("ratio".into(), ArgValue::F64(0.5)),
            ],
            msg: None,
        });
        sink.on_event(&Event::instant(9, "driver", "fallback").arg("why", "margin"));
        sink.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        // The file must be plain JSON our own parser accepts, with the
        // trace_event skeleton Chrome expects.
        let v = serde_json::from_str_value(&text).unwrap();
        let events = v.field("traceEvents").as_seq().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].field("ph").as_str(), Some("X"));
        assert_eq!(events[0].field("dur").as_u64(), Some(40));
        assert_eq!(events[1].field("ph").as_str(), Some("i"));
        assert_eq!(
            events[0].field("args").field("wires").as_u64(),
            Some(3),
            "args must flatten to bare scalars"
        );
    }

    #[test]
    fn memory_sink_buffers() {
        let sink = MemorySink::new();
        let mut writer = sink.clone();
        writer.on_event(&Event::instant(0, "a", "b"));
        assert_eq!(sink.events().len(), 1);
    }
}
