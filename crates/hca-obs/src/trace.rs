//! The search-trace recorder: a compact JSONL schema for per-step SEE
//! decisions, replayed later by `hca explain`.
//!
//! Where [`Obs`](crate::Obs) aggregates (counters, phase totals), a
//! [`SearchTracer`] keeps the *sequence*: one [`TraceRecord`] per
//! sub-problem, search tier, placement step, memo decision and MII
//! attribution. The handle follows the same zero-cost contract as `Obs` —
//! a disabled tracer is a `None` and [`SearchTracer::record`] never runs
//! its closure, so instrumented hot paths pay one branch and nothing else.
//!
//! Records stream to a JSONL file when the tracer was opened with
//! [`SearchTracer::to_file`], and are always retained in memory for
//! [`SearchTracer::records`]. [`read_jsonl`] / [`read_jsonl_file`] are the
//! matching readers, so a trace written in one process can be explained in
//! another.

use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Record kinds, as stored in [`TraceRecord::kind`].
pub mod kind {
    /// Driver: a sub-problem enters the solver (fields: `problem`, `depth`,
    /// `ws`, `ili_in`, `ili_out`).
    pub const SUB: &str = "sub";
    /// Driver: memo-cache decision for a sub-problem (`why` = `hit`/`miss`).
    pub const MEMO: &str = "memo";
    /// Engine: one placement step of one SEE tier (`step`, `node`, `beam`,
    /// rejection/dedup/dominance deltas, top-`k` `cands`, `ns`).
    pub const STEP: &str = "step";
    /// Driver: outcome of one escalation tier (`ok`, `est_mii`, `cost`,
    /// `copies`, route counters; `why` carries the error on failure).
    pub const TIER: &str = "tier";
    /// Driver: a sub-problem is solved (`tier` = winning tier, `est_mii`
    /// plus its `mii_rec`/`mii_issue`/`mii_arc` components, `why` = the
    /// binding constraint).
    pub const SOLVED: &str = "solved";
    /// Driver: run-level MII attribution from the final MII report
    /// (`why` = binding constraint of the final MII).
    pub const MII: &str = "mii";
}

/// The fallback pseudo-tier used when every SEE tier failed and a
/// deterministic fallback produced the sub-problem's outcome.
pub const FALLBACK_TIER: u32 = 99;

/// The pseudo-tier used when the portfolio's exact branch-and-bound backend
/// beat every beam tier and produced the sub-problem's outcome.
pub const EXACT_TIER: u32 = 98;

/// One line of the search trace. A flat record: `kind` says which fields
/// are meaningful (see [`kind`]); the rest default to zero/empty so the
/// schema can grow without breaking old traces.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Record kind — one of the [`kind`] constants.
    pub kind: String,
    /// Sub-problem id (the driver's dotted decomposition path; empty for
    /// run-level records).
    #[serde(default)]
    pub problem: String,
    /// Decomposition depth of the sub-problem.
    #[serde(default)]
    pub depth: u32,
    /// Escalation tier (0-based; [`FALLBACK_TIER`] for fallback outcomes).
    #[serde(default)]
    pub tier: u32,
    /// Placement-step index within one SEE run (`step` records).
    #[serde(default)]
    pub step: u32,
    /// DDG node placed in this step (`step` records).
    #[serde(default)]
    pub node: u32,
    /// Frontier width after all filtering in this step.
    #[serde(default)]
    pub beam: u32,
    /// States materialised in this step / tier.
    #[serde(default)]
    pub explored: u64,
    /// States dropped by beam truncation in this step.
    #[serde(default)]
    pub pruned_beam: u64,
    /// Candidates rejected by the cost-margin rule in this step.
    #[serde(default)]
    pub rej_margin: u64,
    /// Candidates rejected by branch-factor truncation in this step.
    #[serde(default)]
    pub rej_branch: u64,
    /// Duplicate frontier states folded by content dedup in this step.
    #[serde(default)]
    pub deduped: u64,
    /// Frontier states removed by dominance pruning in this step.
    #[serde(default)]
    pub dominated: u64,
    /// True when this step went through the Route Allocator rescue path.
    #[serde(default)]
    pub rescued: bool,
    /// Wall-clock nanoseconds of this step (or tier, for `tier` records).
    #[serde(default)]
    pub ns: u64,
    /// Top-k scored candidates of this step as `(cluster, cost)`, best
    /// first, truncated to [`TOP_K`].
    #[serde(default)]
    pub cands: Vec<(u32, f64)>,
    /// Did the tier succeed (`tier` records)?
    #[serde(default)]
    pub ok: bool,
    /// Estimated MII (`tier`/`solved`) or final MII (`mii`).
    #[serde(default)]
    pub est_mii: u32,
    /// Recurrence-bound MII component.
    #[serde(default)]
    pub mii_rec: u32,
    /// Issue-pressure MII component (cluster issue load).
    #[serde(default)]
    pub mii_issue: u32,
    /// Arc/wire-pressure MII component.
    #[serde(default)]
    pub mii_arc: u32,
    /// Objective value of the tier's outcome.
    #[serde(default)]
    pub cost: f64,
    /// Copy operations in the tier's outcome.
    #[serde(default)]
    pub copies: u32,
    /// Working-set size (`sub` records).
    #[serde(default)]
    pub ws: u32,
    /// Glue-in wires of the sub-problem's ILI.
    #[serde(default)]
    pub ili_in: u32,
    /// Glue-out wires of the sub-problem's ILI.
    #[serde(default)]
    pub ili_out: u32,
    /// Route-table BFS searches executed by the tier.
    #[serde(default)]
    pub route_bfs: u64,
    /// Routing queries answered from the static route table.
    #[serde(default)]
    pub route_hits: u64,
    /// Reason text: tier error, memo `hit`/`miss`, or the name of the MII
    /// component that bound the estimate (`recurrence`/`issue`/`arc`).
    #[serde(default)]
    pub why: String,
}

/// Candidates kept per `step` record.
pub const TOP_K: usize = 8;

struct TracerInner {
    records: Mutex<Vec<TraceRecord>>,
    writer: Mutex<Option<BufWriter<File>>>,
}

/// Recover a tracer guard even when a previous holder panicked. Both
/// mutexes only guard append-only state (a record vector, a buffered
/// writer) whose invariants hold at every await point, so a panicking
/// traced request must not disable tracing for every later request of a
/// long-running process.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Scope pre-filled onto records by a [`SearchTracer::scoped`] handle.
#[derive(Debug)]
struct TraceScope {
    problem: String,
    depth: u32,
    tier: u32,
}

/// Cheap cloneable search-trace handle. Clones share the record buffer and
/// the JSONL writer; [`SearchTracer::scoped`] derives a handle that stamps
/// its sub-problem/tier onto every record, so the engine never needs to
/// know where in the decomposition it runs.
#[derive(Clone, Default)]
pub struct SearchTracer {
    inner: Option<Arc<TracerInner>>,
    scope: Option<Arc<TraceScope>>,
}

impl SearchTracer {
    /// A disabled tracer: [`record`](Self::record) never runs its closure.
    pub fn disabled() -> Self {
        SearchTracer::default()
    }

    /// An enabled in-memory tracer.
    pub fn enabled() -> Self {
        SearchTracer {
            inner: Some(Arc::new(TracerInner {
                records: Mutex::new(Vec::new()),
                writer: Mutex::new(None),
            })),
            scope: None,
        }
    }

    /// An enabled tracer that additionally streams each record to `path`
    /// as one JSON object per line.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(SearchTracer {
            inner: Some(Arc::new(TracerInner {
                records: Mutex::new(Vec::new()),
                writer: Mutex::new(Some(BufWriter::new(file))),
            })),
            scope: None,
        })
    }

    /// Is this handle recording anything?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle that stamps `problem`/`depth`/`tier` onto every record it
    /// emits (records keep their own `problem` if they set one).
    pub fn scoped(&self, problem: &str, depth: u32, tier: u32) -> SearchTracer {
        SearchTracer {
            inner: self.inner.clone(),
            scope: self.inner.as_ref().map(|_| {
                Arc::new(TraceScope {
                    problem: problem.to_string(),
                    depth,
                    tier,
                })
            }),
        }
    }

    /// Append one record; `f` runs only when the tracer is enabled.
    #[inline]
    pub fn record(&self, f: impl FnOnce() -> TraceRecord) {
        let Some(inner) = &self.inner else {
            return;
        };
        let mut rec = f();
        if let Some(scope) = &self.scope {
            if rec.problem.is_empty() {
                rec.problem = scope.problem.clone();
            }
            rec.depth = scope.depth;
            rec.tier = scope.tier;
        }
        if let Some(w) = lock_recover(&inner.writer).as_mut() {
            if let Ok(line) = serde_json::to_string(&rec) {
                let _ = writeln!(w, "{line}");
            }
        }
        lock_recover(&inner.records).push(rec);
    }

    /// Snapshot of every record so far, in emission order.
    pub fn records(&self) -> Vec<TraceRecord> {
        match &self.inner {
            Some(inner) => lock_recover(&inner.records).clone(),
            None => Vec::new(),
        }
    }

    /// Flush the streaming writer (no-op for in-memory tracers).
    pub fn flush(&self) -> io::Result<()> {
        if let Some(inner) = &self.inner {
            if let Some(w) = lock_recover(&inner.writer).as_mut() {
                w.flush()?;
            }
        }
        Ok(())
    }

    /// Deliberately poison both tracer mutexes (a panic while each guard is
    /// held), for tests pinning the poison-recovery behaviour.
    #[doc(hidden)]
    pub fn poison_for_test(&self) {
        let Some(inner) = &self.inner else {
            return;
        };
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = inner.records.lock().unwrap();
            panic!("poison records");
        }));
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = inner.writer.lock().unwrap();
            panic!("poison writer");
        }));
    }

    /// Write every in-memory record to `path` as JSONL (independent of the
    /// streaming writer).
    pub fn write_jsonl(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut out = String::new();
        for rec in self.records() {
            let line = serde_json::to_string(&rec)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            out.push_str(&line);
            out.push('\n');
        }
        std::fs::write(path, out)
    }
}

/// Parse a JSONL trace back into records (blank lines are skipped).
pub fn read_jsonl(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let rec: TraceRecord =
            serde_json::from_str(line).map_err(|e| format!("trace line {}: {e}", i + 1))?;
        out.push(rec);
    }
    Ok(out)
}

/// Read and parse a JSONL trace file.
pub fn read_jsonl_file(path: impl AsRef<Path>) -> Result<Vec<TraceRecord>, String> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| format!("{}: {e}", path.as_ref().display()))?;
    read_jsonl(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_never_runs_the_closure() {
        let t = SearchTracer::disabled();
        assert!(!t.is_enabled());
        t.record(|| unreachable!("closure must not run when disabled"));
        assert!(t.records().is_empty());
        // A scope derived from a disabled tracer stays disabled.
        let s = t.scoped("0.1", 1, 2);
        assert!(!s.is_enabled());
        s.record(|| unreachable!());
    }

    #[test]
    fn scoped_handles_stamp_problem_and_tier() {
        let t = SearchTracer::enabled();
        let s = t.scoped("0.2", 1, 3);
        s.record(|| TraceRecord {
            kind: kind::STEP.to_string(),
            step: 7,
            ..TraceRecord::default()
        });
        // Explicit problem wins over the scope.
        s.record(|| TraceRecord {
            kind: kind::MEMO.to_string(),
            problem: "explicit".to_string(),
            ..TraceRecord::default()
        });
        let recs = t.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].problem, "0.2");
        assert_eq!(recs[0].depth, 1);
        assert_eq!(recs[0].tier, 3);
        assert_eq!(recs[0].step, 7);
        assert_eq!(recs[1].problem, "explicit");
    }

    #[test]
    fn jsonl_round_trip_preserves_records() {
        let t = SearchTracer::enabled();
        t.record(|| TraceRecord {
            kind: kind::STEP.to_string(),
            problem: "0".to_string(),
            step: 3,
            node: 12,
            beam: 8,
            explored: 40,
            pruned_beam: 32,
            rescued: true,
            ns: 12345,
            cands: vec![(0, 1.5), (3, 2.25)],
            why: "margin".to_string(),
            ..TraceRecord::default()
        });
        t.record(|| TraceRecord {
            kind: kind::SOLVED.to_string(),
            problem: "0".to_string(),
            est_mii: 4,
            mii_rec: 3,
            mii_issue: 4,
            mii_arc: 2,
            cost: -1.75,
            why: "issue".to_string(),
            ..TraceRecord::default()
        });
        let mut text = String::new();
        for r in t.records() {
            text.push_str(&serde_json::to_string(&r).unwrap());
            text.push('\n');
        }
        let back = read_jsonl(&text).unwrap();
        assert_eq!(back, t.records());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("hca_obs_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.jsonl");
        let t = SearchTracer::to_file(&path).unwrap();
        t.record(|| TraceRecord {
            kind: kind::SUB.to_string(),
            problem: "0.1".to_string(),
            ws: 17,
            ..TraceRecord::default()
        });
        t.flush().unwrap();
        let back = read_jsonl_file(&path).unwrap();
        assert_eq!(back, t.records());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn poisoned_tracer_keeps_recording() {
        let dir = std::env::temp_dir().join("hca_obs_trace_poison_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("poisoned.jsonl");
        let t = SearchTracer::to_file(&path).unwrap();
        t.record(|| TraceRecord {
            kind: kind::SUB.to_string(),
            problem: "before".to_string(),
            ..TraceRecord::default()
        });
        // A traced request panicked while holding both tracer locks: every
        // later record/records/flush must recover, not cascade the panic.
        t.poison_for_test();
        t.record(|| TraceRecord {
            kind: kind::SUB.to_string(),
            problem: "after".to_string(),
            ..TraceRecord::default()
        });
        let recs = t.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].problem, "after");
        t.flush().unwrap();
        let back = read_jsonl_file(&path).unwrap();
        assert_eq!(back.len(), 2, "writer lost records after poisoning");
        std::fs::remove_file(&path).ok();
    }
}
