//! Structured tracing, pipeline metrics and machine-readable run reports
//! for the HCA toolchain.
//!
//! The central type is [`Obs`], a cheap cloneable observer handle threaded
//! through the pipeline (driver → SEE tiers → mapper → coherency →
//! scheduling). A **disabled** handle is a `None` — every call site pays one
//! branch and allocates nothing, so instrumented code costs effectively
//! nothing in ordinary runs. An **enabled** handle:
//!
//! * times phases via RAII [`Span`] guards and folds the wall-clock totals
//!   into a metrics registry;
//! * accumulates namespaced counters and histograms
//!   (`"see.states_pruned"`, `"mapper.copies_per_wire"`, …);
//! * fans events out to any number of [`PipelineObserver`] sinks — JSONL
//!   ([`JsonlSink`]), Chrome `trace_event` ([`ChromeTraceSink`]), stderr
//!   ([`StderrSink`]) or in-memory ([`MemorySink`]);
//! * snapshots everything into a serialisable [`RunMetrics`] for
//!   `--metrics-out` files and `BENCH_*.json` reports.
//!
//! ```
//! use hca_obs::{MemorySink, Obs};
//!
//! let obs = Obs::enabled();
//! let sink = MemorySink::new();
//! obs.add_sink(Box::new(sink.clone()));
//! {
//!     let _span = obs.span("see", "tier").with_arg("level", 2u64);
//!     obs.counter_add("see.states_explored", 17);
//! }
//! let metrics = obs.snapshot().unwrap();
//! assert_eq!(metrics.counter("see.states_explored"), Some(17));
//! assert_eq!(sink.events().len(), 1);
//! ```

#![forbid(unsafe_code)]

mod event;
mod metrics;
mod sink;
pub mod trace;

pub use event::{ArgValue, Event};
pub use metrics::{Counter, Histogram, PhaseTiming, RunMetrics, StackTiming};
pub use sink::{ChromeTraceSink, JsonlSink, MemorySink, PipelineObserver, StderrSink};
pub use trace::{SearchTracer, TraceRecord};

use metrics::Registry;
use std::cell::RefCell;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

thread_local! {
    /// Paths of the enabled spans currently open on this thread, outermost
    /// first — the source of the hierarchical [`StackTiming`] rows. Worker
    /// threads root their own stacks at whatever span they open first.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

struct Inner {
    epoch: Instant,
    sinks: Mutex<Vec<Box<dyn PipelineObserver>>>,
    registry: Mutex<Registry>,
}

/// Observer handle. Clone freely; clones share sinks and metrics.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl Obs {
    /// A disabled observer: every operation is a cheap no-op.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// An enabled observer with no sinks yet (metrics are still collected).
    pub fn enabled() -> Self {
        Obs {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                sinks: Mutex::new(Vec::new()),
                registry: Mutex::new(Registry::default()),
            })),
        }
    }

    /// An enabled observer that logs instants and messages to stderr — the
    /// replacement for ad-hoc `HCA_TRACE` / `SMS_TRACE` `eprintln!`s.
    pub fn stderr_logger() -> Self {
        let obs = Self::enabled();
        obs.add_sink(Box::new(StderrSink::logs_only()));
        obs
    }

    /// Is this handle collecting anything?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attach a sink; it receives every subsequent event.
    pub fn add_sink(&self, sink: Box<dyn PipelineObserver>) {
        if let Some(inner) = &self.inner {
            inner.sinks.lock().unwrap().push(sink);
        }
    }

    /// Microseconds since this observer was created.
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// Open a timed span; the phase timing (flat and per span stack) is
    /// recorded and a completion event emitted when the guard drops.
    #[inline]
    pub fn span(&self, phase: &'static str, name: &'static str) -> Span {
        match &self.inner {
            Some(_) => {
                let (path, depth) = SPAN_STACK.with(|s| {
                    let mut s = s.borrow_mut();
                    let path = match s.last() {
                        Some(parent) => format!("{parent};{phase}.{name}"),
                        None => format!("{phase}.{name}"),
                    };
                    s.push(path.clone());
                    (path, s.len() - 1)
                });
                Span {
                    obs: self.clone(),
                    phase,
                    name,
                    start_us: self.now_us(),
                    t0: Instant::now(),
                    args: Vec::new(),
                    path,
                    depth,
                }
            }
            None => Span {
                obs: Obs::disabled(),
                phase,
                name,
                start_us: 0,
                t0: Instant::now(),
                args: Vec::new(),
                path: String::new(),
                depth: 0,
            },
        }
    }

    /// Emit an instant event.
    pub fn instant(&self, phase: &str, name: &str, args: Vec<(String, ArgValue)>) {
        if self.inner.is_some() {
            let mut ev = Event::instant(self.now_us(), phase, name);
            ev.args = args;
            self.emit(&ev);
        }
    }

    /// Emit a log event; the message closure runs only when enabled, so
    /// formatting costs nothing on the disabled path.
    #[inline]
    pub fn log(&self, phase: &str, name: &str, msg: impl FnOnce() -> String) {
        if self.inner.is_some() {
            let mut ev = Event::instant(self.now_us(), phase, name);
            ev.msg = Some(msg());
            self.emit(&ev);
        }
    }

    /// Add `delta` to the counter `name`.
    #[inline]
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.lock().unwrap().counter_add(name, delta);
        }
    }

    /// Raise the counter `name` to at least `value` — for high-water marks
    /// (byte footprints, peak sizes) where summing across records would
    /// overstate the figure.
    #[inline]
    pub fn counter_max(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.lock().unwrap().counter_max(name, value);
        }
    }

    /// Record one observation of magnitude `value` in histogram `name`.
    #[inline]
    pub fn histogram_record(&self, name: &str, value: usize) {
        if let Some(inner) = &self.inner {
            inner.registry.lock().unwrap().histogram_record(name, value);
        }
    }

    /// Merge dense bucket counts (index = magnitude) into histogram `name`.
    pub fn histogram_merge(&self, name: &str, buckets: &[u64]) {
        if let Some(inner) = &self.inner {
            inner
                .registry
                .lock()
                .unwrap()
                .histogram_merge(name, buckets);
        }
    }

    /// Snapshot the collected metrics; `None` when disabled.
    pub fn snapshot(&self) -> Option<RunMetrics> {
        self.inner
            .as_ref()
            .map(|inner| inner.registry.lock().unwrap().snapshot())
    }

    /// Flush all sinks (end of run) and return the final metrics snapshot.
    pub fn finish(&self) -> Option<RunMetrics> {
        if let Some(inner) = &self.inner {
            for sink in inner.sinks.lock().unwrap().iter_mut() {
                sink.flush();
            }
        }
        self.snapshot()
    }

    fn emit(&self, event: &Event) {
        if let Some(inner) = &self.inner {
            for sink in inner.sinks.lock().unwrap().iter_mut() {
                sink.on_event(event);
            }
        }
    }
}

/// RAII guard for a timed pipeline phase. Records `phase.name` wall time and
/// emits a completion event on drop.
pub struct Span {
    obs: Obs,
    phase: &'static str,
    name: &'static str,
    start_us: u64,
    t0: Instant,
    args: Vec<(String, ArgValue)>,
    /// `;`-joined chain of enclosing span keys (empty when disabled).
    path: String,
    /// This span's index in the thread-local stack at creation time.
    depth: usize,
}

impl Span {
    /// Attach an argument to the completion event (builder style).
    pub fn with_arg(mut self, key: impl Into<String>, value: impl Into<ArgValue>) -> Self {
        if self.obs.is_enabled() {
            self.args.push((key.into(), value.into()));
        }
        self
    }

    /// Attach an argument to the completion event.
    pub fn arg(&mut self, key: impl Into<String>, value: impl Into<ArgValue>) {
        if self.obs.is_enabled() {
            self.args.push((key.into(), value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = &self.obs.inner else {
            return;
        };
        // Unwind the thread-local stack to where this span entered it; the
        // path itself was captured at creation, so out-of-order drops can
        // at worst shorten a sibling's recorded children, never corrupt.
        SPAN_STACK.with(|s| s.borrow_mut().truncate(self.depth));
        let wall_us = self.t0.elapsed().as_micros() as u64;
        let key = format!("{}.{}", self.phase, self.name);
        {
            let mut reg = inner.registry.lock().unwrap();
            reg.record_span(&key, wall_us);
            reg.record_stack(&self.path, wall_us);
        }
        let ev = Event {
            ts_us: self.start_us,
            phase: self.phase.to_string(),
            name: self.name.to_string(),
            dur_us: Some(wall_us),
            args: std::mem::take(&mut self.args),
            msg: None,
        };
        self.obs.emit(&ev);
    }
}

// ------------------------------------------------------------------ global

static GLOBAL: OnceLock<Obs> = OnceLock::new();

/// Install the process-wide observer used by code that is not reached by an
/// explicit [`Obs`] parameter (e.g. SMS trace diagnostics). First caller
/// wins; returns `false` if one was already installed.
pub fn set_global(obs: Obs) -> bool {
    GLOBAL.set(obs).is_ok()
}

/// The process-wide observer; disabled unless [`set_global`] was called.
pub fn global() -> Obs {
    GLOBAL.get().cloned().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_observer_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        {
            let _span = obs.span("see", "tier").with_arg("level", 1u64);
            obs.counter_add("c", 5);
            obs.histogram_record("h", 2);
            obs.log("see", "x", || unreachable!("must not format when disabled"));
        }
        assert!(obs.snapshot().is_none());
        assert!(obs.finish().is_none());
    }

    #[test]
    fn spans_record_timings_and_emit_events() {
        let obs = Obs::enabled();
        let sink = MemorySink::new();
        obs.add_sink(Box::new(sink.clone()));
        {
            let _a = obs.span("driver", "see").with_arg("level", 0u64);
            let _b = obs.span("driver", "see");
        }
        let m = obs.snapshot().unwrap();
        let timing = &m.phases[0];
        assert_eq!(timing.phase, "driver.see");
        assert_eq!(timing.calls, 2);
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.dur_us.is_some()));
        // Inner span (dropped first) carries no args; outer carries one.
        assert!(events.iter().any(|e| e.args.is_empty()));
        assert!(events
            .iter()
            .any(|e| e.args == vec![("level".to_string(), ArgValue::U64(0))]));
    }

    #[test]
    fn counters_and_histograms_aggregate_across_clones() {
        let obs = Obs::enabled();
        let clone = obs.clone();
        obs.counter_add("see.states", 2);
        clone.counter_add("see.states", 3);
        clone.histogram_merge("copies", &[0, 4]);
        obs.histogram_record("copies", 1);
        let m = obs.finish().unwrap();
        assert_eq!(m.counter("see.states"), Some(5));
        assert_eq!(m.histogram("copies"), Some(&[0, 5][..]));
    }

    #[test]
    fn log_events_reach_sinks_with_message() {
        let obs = Obs::enabled();
        let sink = MemorySink::new();
        obs.add_sink(Box::new(sink.clone()));
        obs.log("sched", "sms", || "II 4: empty window".to_string());
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].msg.as_deref(), Some("II 4: empty window"));
        assert_eq!(events[0].dur_us, None);
    }

    #[test]
    fn nested_spans_record_hierarchical_stacks() {
        let obs = Obs::enabled();
        {
            let _outer = obs.span("driver", "run");
            {
                let _mid = obs.span("driver", "see");
                let _leaf = obs.span("see", "tier");
            }
            let _sibling = obs.span("driver", "mapper");
        }
        let m = obs.snapshot().unwrap();
        let stacks: Vec<&str> = m.stacks.iter().map(|s| s.stack.as_str()).collect();
        assert!(stacks.contains(&"driver.run"), "{stacks:?}");
        assert!(stacks.contains(&"driver.run;driver.see"), "{stacks:?}");
        assert!(
            stacks.contains(&"driver.run;driver.see;see.tier"),
            "{stacks:?}"
        );
        assert!(stacks.contains(&"driver.run;driver.mapper"), "{stacks:?}");
        // The collapsed export contains only leaf/self frames.
        let collapsed = m.collapsed_stacks();
        assert!(collapsed.contains("driver.run;driver.see;see.tier "));
    }

    #[test]
    fn counter_max_is_a_high_water_mark_across_clones() {
        let obs = Obs::enabled();
        obs.counter_max("memo.bytes", 10);
        obs.clone().counter_max("memo.bytes", 512);
        obs.counter_max("memo.bytes", 44);
        assert_eq!(obs.snapshot().unwrap().counter("memo.bytes"), Some(512));
    }

    #[test]
    fn global_defaults_to_disabled() {
        // Never install a global in tests: first-caller-wins is process-wide.
        assert!(!global().is_enabled() || GLOBAL.get().is_some());
    }
}
