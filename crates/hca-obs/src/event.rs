//! The one record type every sink consumes.
//!
//! An [`Event`] is either the completion of a timed [`Span`](crate::Span)
//! (`dur_us` is `Some`), an instant marker, or a log line (`msg` is `Some`).
//! Events are plain data: serialisable, comparable, and cheap enough to
//! buffer in memory for tests.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A typed argument value attached to an [`Event`].
///
/// Externally tagged in serde form (`{"U64": 5}`); both file sinks flatten
/// it to a bare JSON scalar instead.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ArgValue {
    /// Unsigned counter-like quantity.
    U64(u64),
    /// Signed quantity.
    I64(i64),
    /// Ratio / cost / score.
    F64(f64),
    /// Free-form text.
    Str(String),
    /// Flag.
    Bool(bool),
}

impl fmt::Display for ArgValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgValue::U64(v) => write!(f, "{v}"),
            ArgValue::I64(v) => write!(f, "{v}"),
            ArgValue::F64(v) => write!(f, "{v}"),
            ArgValue::Str(v) => write!(f, "{v}"),
            ArgValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// One observability record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Microseconds since the observer's epoch (span events: span *start*).
    pub ts_us: u64,
    /// Pipeline phase / category, e.g. `"see"`, `"mapper"`, `"driver"`.
    pub phase: String,
    /// Event name within the phase, e.g. `"tier"`, `"distribute"`.
    pub name: String,
    /// `Some(wall_us)` for a completed span, `None` for instants and logs.
    pub dur_us: Option<u64>,
    /// Structured key/value payload.
    pub args: Vec<(String, ArgValue)>,
    /// Human-readable text for log events (replaces ad-hoc `eprintln!`).
    pub msg: Option<String>,
}

impl Event {
    /// An instant event with no payload.
    pub fn instant(ts_us: u64, phase: impl Into<String>, name: impl Into<String>) -> Self {
        Event {
            ts_us,
            phase: phase.into(),
            name: name.into(),
            dur_us: None,
            args: Vec::new(),
            msg: None,
        }
    }

    /// Attach an argument (builder style).
    pub fn arg(mut self, key: impl Into<String>, value: impl Into<ArgValue>) -> Self {
        self.args.push((key.into(), value.into()));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_round_trips_through_json() {
        let ev = Event::instant(42, "see", "tier")
            .arg("level", 3u64)
            .arg("cost", 1.5)
            .arg("legal", true)
            .arg("why", "margin");
        let text = serde_json::to_string(&ev).unwrap();
        let back: Event = serde_json::from_str(&text).unwrap();
        assert_eq!(ev, back);
    }

    #[test]
    fn span_event_round_trips() {
        let ev = Event {
            ts_us: 10,
            phase: "mapper".into(),
            name: "distribute".into(),
            dur_us: Some(250),
            args: vec![("wires".into(), ArgValue::U64(8))],
            msg: Some("ok".into()),
        };
        let text = serde_json::to_string(&ev).unwrap();
        let back: Event = serde_json::from_str(&text).unwrap();
        assert_eq!(ev, back);
    }
}
