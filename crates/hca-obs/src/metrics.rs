//! The metrics registry and its machine-readable snapshot, [`RunMetrics`].
//!
//! Counters and histograms are namespaced with dotted keys
//! (`"see.states_explored"`, `"mapper.copies_per_wire"`); phase timings are
//! accumulated automatically by [`Span`](crate::Span) drops. A snapshot is a
//! plain serialisable struct so CLI `--metrics-out` files and
//! `BENCH_*.json` reports share one schema.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Accumulated wall-clock time for one pipeline phase.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// `phase.name` of the spans folded into this row.
    pub phase: String,
    /// Number of spans.
    pub calls: u64,
    /// Total wall time, microseconds.
    pub wall_us: u64,
}

/// One named counter.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    /// Dotted name, e.g. `"see.states_pruned"`.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One named histogram; `buckets[i]` counts observations of magnitude `i`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Dotted name, e.g. `"mapper.copies_per_wire"`.
    pub name: String,
    /// Dense bucket counts indexed by observed value.
    pub buckets: Vec<u64>,
}

/// Accumulated wall-clock time for one *span stack* — the `;`-joined chain
/// of enclosing spans on the recording thread, e.g.
/// `"driver.run;driver.level0;see.tier"`. This is the hierarchical view the
/// flat [`PhaseTiming`] rows cannot express, and the input to
/// [`RunMetrics::collapsed_stacks`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StackTiming {
    /// `;`-separated span path, outermost first.
    pub stack: String,
    /// Number of spans recorded at this path.
    pub calls: u64,
    /// Total wall time, microseconds.
    pub wall_us: u64,
}

/// Machine-readable snapshot of everything an observer collected.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Per-phase wall-clock totals, sorted by phase name.
    pub phases: Vec<PhaseTiming>,
    /// Counters, sorted by name.
    pub counters: Vec<Counter>,
    /// Histograms, sorted by name.
    pub histograms: Vec<Histogram>,
    /// Hierarchical span-stack totals, sorted by stack path. Absent in
    /// metrics files written before this field existed — deserialises to
    /// empty.
    #[serde(default)]
    pub stacks: Vec<StackTiming>,
}

impl RunMetrics {
    /// Value of a counter, or `None` if it was never touched.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Total wall time of a phase in microseconds, or `None`.
    pub fn phase_wall_us(&self, phase: &str) -> Option<u64> {
        self.phases
            .iter()
            .find(|p| p.phase == phase)
            .map(|p| p.wall_us)
    }

    /// Buckets of a histogram, or `None`.
    pub fn histogram(&self, name: &str) -> Option<&[u64]> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| h.buckets.as_slice())
    }

    /// Total wall time recorded at a span-stack path, or `None`.
    pub fn stack_wall_us(&self, stack: &str) -> Option<u64> {
        self.stacks
            .iter()
            .find(|s| s.stack == stack)
            .map(|s| s.wall_us)
    }

    /// Render the span-stack totals in the *collapsed stack* format consumed
    /// by flamegraph tools: one line per stack with **self time** in
    /// microseconds (total minus the totals of its direct children). Leaf
    /// stacks are always emitted; interior stacks whose time is fully
    /// accounted to children are omitted.
    pub fn collapsed_stacks(&self) -> String {
        let mut out = String::new();
        for st in &self.stacks {
            let prefix = format!("{};", st.stack);
            let mut has_children = false;
            let mut child_sum: u64 = 0;
            for c in &self.stacks {
                if c.stack.starts_with(prefix.as_str()) {
                    has_children = true;
                    if !c.stack[prefix.len()..].contains(';') {
                        child_sum += c.wall_us;
                    }
                }
            }
            let self_us = st.wall_us.saturating_sub(child_sum);
            if self_us > 0 || !has_children {
                out.push_str(&st.stack);
                out.push(' ');
                out.push_str(&self_us.to_string());
                out.push('\n');
            }
        }
        out
    }
}

/// Mutable accumulation state behind the observer's mutex.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    phases: BTreeMap<String, (u64, u64)>,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Vec<u64>>,
    stacks: BTreeMap<String, (u64, u64)>,
}

impl Registry {
    pub(crate) fn record_span(&mut self, key: &str, wall_us: u64) {
        let slot = self.phases.entry(key.to_string()).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += wall_us;
    }

    pub(crate) fn record_stack(&mut self, stack: &str, wall_us: u64) {
        let slot = self.stacks.entry(stack.to_string()).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += wall_us;
    }

    pub(crate) fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Raise counter `name` to at least `value` (high-water marks: byte
    /// footprints, peak sizes — values that must not be summed).
    pub(crate) fn counter_max(&mut self, name: &str, value: u64) {
        let slot = self.counters.entry(name.to_string()).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Add one observation of magnitude `value` to `name`.
    pub(crate) fn histogram_record(&mut self, name: &str, value: usize) {
        let buckets = self.histograms.entry(name.to_string()).or_default();
        if buckets.len() <= value {
            buckets.resize(value + 1, 0);
        }
        buckets[value] += 1;
    }

    /// Merge a dense bucket vector (index = magnitude) into `name`.
    pub(crate) fn histogram_merge(&mut self, name: &str, add: &[u64]) {
        let buckets = self.histograms.entry(name.to_string()).or_default();
        if buckets.len() < add.len() {
            buckets.resize(add.len(), 0);
        }
        for (slot, v) in buckets.iter_mut().zip(add) {
            *slot += v;
        }
    }

    pub(crate) fn snapshot(&self) -> RunMetrics {
        RunMetrics {
            phases: self
                .phases
                .iter()
                .map(|(phase, &(calls, wall_us))| PhaseTiming {
                    phase: phase.clone(),
                    calls,
                    wall_us,
                })
                .collect(),
            counters: self
                .counters
                .iter()
                .map(|(name, &value)| Counter {
                    name: name.clone(),
                    value,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, buckets)| Histogram {
                    name: name.clone(),
                    buckets: buckets.clone(),
                })
                .collect(),
            stacks: self
                .stacks
                .iter()
                .map(|(stack, &(calls, wall_us))| StackTiming {
                    stack: stack.clone(),
                    calls,
                    wall_us,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_accumulates_and_snapshots() {
        let mut r = Registry::default();
        r.record_span("see", 100);
        r.record_span("see", 50);
        r.counter_add("see.states", 7);
        r.counter_add("see.states", 3);
        r.histogram_record("copies", 2);
        r.histogram_record("copies", 2);
        r.histogram_record("copies", 0);
        r.histogram_merge("copies", &[1, 1]);
        let m = r.snapshot();
        assert_eq!(m.phase_wall_us("see"), Some(150));
        assert_eq!(m.phases[0].calls, 2);
        assert_eq!(m.counter("see.states"), Some(10));
        assert_eq!(m.histogram("copies"), Some(&[2, 1, 2][..]));
    }

    #[test]
    fn run_metrics_round_trips_through_json() {
        let mut r = Registry::default();
        r.record_span("driver.see", 12);
        r.counter_add("coherency.violations", 0);
        r.histogram_record("mapper.copies_per_wire", 3);
        r.record_stack("driver.run;driver.see", 12);
        let m = r.snapshot();
        let text = serde_json::to_string_pretty(&m).unwrap();
        let back: RunMetrics = serde_json::from_str(&text).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn metrics_without_stacks_field_still_parse() {
        // Files written before `stacks` existed must keep deserialising.
        let text = r#"{"phases":[],"counters":[{"name":"c","value":1}],"histograms":[]}"#;
        let m: RunMetrics = serde_json::from_str(text).unwrap();
        assert_eq!(m.counter("c"), Some(1));
        assert!(m.stacks.is_empty());
    }

    #[test]
    fn counter_max_keeps_the_high_water_mark() {
        let mut r = Registry::default();
        r.counter_max("see.route_table_bytes", 100);
        r.counter_max("see.route_table_bytes", 40);
        r.counter_max("see.route_table_bytes", 250);
        assert_eq!(r.snapshot().counter("see.route_table_bytes"), Some(250));
    }

    #[test]
    fn collapsed_stacks_subtract_child_self_time() {
        let mut r = Registry::default();
        r.record_stack("a", 100);
        r.record_stack("a;b", 60);
        r.record_stack("a;b;c", 25);
        r.record_stack("a;d", 40);
        let m = r.snapshot();
        let collapsed = m.collapsed_stacks();
        let lines: Vec<&str> = collapsed.lines().collect();
        // a self = 100 - (60 + 40) = 0 → omitted; a;b self = 60 - 25 = 35.
        assert!(!lines.iter().any(|l| l.starts_with("a ")), "{collapsed}");
        assert!(lines.contains(&"a;b 35"), "{collapsed}");
        assert!(lines.contains(&"a;b;c 25"), "{collapsed}");
        assert!(lines.contains(&"a;d 40"), "{collapsed}");
        assert_eq!(m.stack_wall_us("a;b"), Some(60));
    }
}
