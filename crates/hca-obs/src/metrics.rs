//! The metrics registry and its machine-readable snapshot, [`RunMetrics`].
//!
//! Counters and histograms are namespaced with dotted keys
//! (`"see.states_explored"`, `"mapper.copies_per_wire"`); phase timings are
//! accumulated automatically by [`Span`](crate::Span) drops. A snapshot is a
//! plain serialisable struct so CLI `--metrics-out` files and
//! `BENCH_*.json` reports share one schema.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Accumulated wall-clock time for one pipeline phase.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// `phase.name` of the spans folded into this row.
    pub phase: String,
    /// Number of spans.
    pub calls: u64,
    /// Total wall time, microseconds.
    pub wall_us: u64,
}

/// One named counter.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    /// Dotted name, e.g. `"see.states_pruned"`.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One named histogram; `buckets[i]` counts observations of magnitude `i`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Dotted name, e.g. `"mapper.copies_per_wire"`.
    pub name: String,
    /// Dense bucket counts indexed by observed value.
    pub buckets: Vec<u64>,
}

/// Machine-readable snapshot of everything an observer collected.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Per-phase wall-clock totals, sorted by phase name.
    pub phases: Vec<PhaseTiming>,
    /// Counters, sorted by name.
    pub counters: Vec<Counter>,
    /// Histograms, sorted by name.
    pub histograms: Vec<Histogram>,
}

impl RunMetrics {
    /// Value of a counter, or `None` if it was never touched.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Total wall time of a phase in microseconds, or `None`.
    pub fn phase_wall_us(&self, phase: &str) -> Option<u64> {
        self.phases
            .iter()
            .find(|p| p.phase == phase)
            .map(|p| p.wall_us)
    }

    /// Buckets of a histogram, or `None`.
    pub fn histogram(&self, name: &str) -> Option<&[u64]> {
        self.histograms
            .iter()
            .find(|h| h.name == name)
            .map(|h| h.buckets.as_slice())
    }
}

/// Mutable accumulation state behind the observer's mutex.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    phases: BTreeMap<String, (u64, u64)>,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Vec<u64>>,
}

impl Registry {
    pub(crate) fn record_span(&mut self, key: &str, wall_us: u64) {
        let slot = self.phases.entry(key.to_string()).or_insert((0, 0));
        slot.0 += 1;
        slot.1 += wall_us;
    }

    pub(crate) fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Add one observation of magnitude `value` to `name`.
    pub(crate) fn histogram_record(&mut self, name: &str, value: usize) {
        let buckets = self.histograms.entry(name.to_string()).or_default();
        if buckets.len() <= value {
            buckets.resize(value + 1, 0);
        }
        buckets[value] += 1;
    }

    /// Merge a dense bucket vector (index = magnitude) into `name`.
    pub(crate) fn histogram_merge(&mut self, name: &str, add: &[u64]) {
        let buckets = self.histograms.entry(name.to_string()).or_default();
        if buckets.len() < add.len() {
            buckets.resize(add.len(), 0);
        }
        for (slot, v) in buckets.iter_mut().zip(add) {
            *slot += v;
        }
    }

    pub(crate) fn snapshot(&self) -> RunMetrics {
        RunMetrics {
            phases: self
                .phases
                .iter()
                .map(|(phase, &(calls, wall_us))| PhaseTiming {
                    phase: phase.clone(),
                    calls,
                    wall_us,
                })
                .collect(),
            counters: self
                .counters
                .iter()
                .map(|(name, &value)| Counter {
                    name: name.clone(),
                    value,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, buckets)| Histogram {
                    name: name.clone(),
                    buckets: buckets.clone(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_accumulates_and_snapshots() {
        let mut r = Registry::default();
        r.record_span("see", 100);
        r.record_span("see", 50);
        r.counter_add("see.states", 7);
        r.counter_add("see.states", 3);
        r.histogram_record("copies", 2);
        r.histogram_record("copies", 2);
        r.histogram_record("copies", 0);
        r.histogram_merge("copies", &[1, 1]);
        let m = r.snapshot();
        assert_eq!(m.phase_wall_us("see"), Some(150));
        assert_eq!(m.phases[0].calls, 2);
        assert_eq!(m.counter("see.states"), Some(10));
        assert_eq!(m.histogram("copies"), Some(&[2, 1, 2][..]));
    }

    #[test]
    fn run_metrics_round_trips_through_json() {
        let mut r = Registry::default();
        r.record_span("driver.see", 12);
        r.counter_add("coherency.violations", 0);
        r.histogram_record("mapper.copies_per_wire", 3);
        let m = r.snapshot();
        let text = serde_json::to_string_pretty(&m).unwrap();
        let back: RunMetrics = serde_json::from_str(&text).unwrap();
        assert_eq!(m, back);
    }
}
