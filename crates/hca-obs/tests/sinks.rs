//! File-level sink coverage and the zero-overhead contract.
//!
//! The in-crate unit tests exercise the sinks against in-memory buffers;
//! these tests go through the real file paths the CLI uses (`--trace-out`,
//! `--events-out`) and pin down the two external guarantees:
//!
//! 1. every sink's file output parses back (Chrome `trace_event` as one
//!    JSON document, JSONL and search traces line by line);
//! 2. a disabled observer/tracer never runs user closures and collects
//!    nothing — the "zero-cost when disabled" contract hot paths rely on.

use hca_obs::trace::{self, kind, SearchTracer, TraceRecord};
use hca_obs::{ChromeTraceSink, JsonlSink, Obs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hca_obs_sink_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}_{name}", std::process::id()))
}

#[test]
fn chrome_trace_file_is_valid_json_with_trace_events() {
    let path = temp_path("chrome.json");
    let obs = Obs::enabled();
    obs.add_sink(Box::new(ChromeTraceSink::create(&path).unwrap()));
    {
        let _span = obs.span("driver", "run").with_arg("nodes", 42u64);
        let _inner = obs.span("see", "tier").with_arg("level", 1u64);
    }
    obs.log("driver", "note", || {
        "quoted \"text\" and \\ slash".to_string()
    });
    obs.finish();

    let text = std::fs::read_to_string(&path).unwrap();
    let v = serde_json::from_str_value(&text).expect("chrome trace must be valid JSON");
    let events = v.field("traceEvents").as_seq().expect("traceEvents array");
    assert_eq!(events.len(), 3);
    // Two complete slices and one instant, all with the mandatory fields.
    let complete = events
        .iter()
        .filter(|e| e.field("ph").as_str() == Some("X"))
        .count();
    assert_eq!(complete, 2);
    for e in events {
        assert!(e.field("name").as_str().is_some());
        assert!(e.field("ts").as_u64().is_some());
        assert!(e.field("pid").as_u64().is_some());
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn jsonl_sink_file_parses_line_by_line() {
    let path = temp_path("events.jsonl");
    let obs = Obs::enabled();
    obs.add_sink(Box::new(JsonlSink::create(&path).unwrap()));
    {
        let _span = obs.span("mapper", "distribute");
    }
    obs.log("mapper", "wire", || "w3 split".to_string());
    obs.finish();

    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(lines.len(), 2);
    for line in lines {
        let v = serde_json::from_str_value(line).expect("each JSONL line must parse");
        assert_eq!(v.field("phase").as_str(), Some("mapper"));
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn search_trace_streams_to_file_and_round_trips_through_reader() {
    let path = temp_path("search.jsonl");
    let tracer = SearchTracer::to_file(&path).unwrap();
    let scoped = tracer.scoped("0.3", 1, 2);
    scoped.record(|| TraceRecord {
        kind: kind::STEP.to_string(),
        step: 0,
        node: 5,
        beam: 4,
        explored: 12,
        pruned_beam: 8,
        cands: vec![(0, 0.5), (2, 1.25)],
        ns: 987,
        ..TraceRecord::default()
    });
    tracer.record(|| TraceRecord {
        kind: kind::SOLVED.to_string(),
        problem: "0.3".to_string(),
        tier: 1,
        est_mii: 3,
        mii_rec: 3,
        mii_issue: 2,
        mii_arc: 1,
        why: "recurrence".to_string(),
        ..TraceRecord::default()
    });
    tracer.flush().unwrap();

    let back = trace::read_jsonl_file(&path).unwrap();
    assert_eq!(back, tracer.records());
    assert_eq!(back[0].problem, "0.3");
    assert_eq!(back[0].cands, vec![(0, 0.5), (2, 1.25)]);
    assert_eq!(back[1].why, "recurrence");

    // And the independent in-memory dump produces an identical trace.
    let dump = temp_path("search_dump.jsonl");
    tracer.write_jsonl(&dump).unwrap();
    assert_eq!(trace::read_jsonl_file(&dump).unwrap(), back);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&dump).ok();
}

#[test]
fn disabled_observer_and_tracer_never_run_closures() {
    let ran = AtomicUsize::new(0);
    let obs = Obs::disabled();
    let tracer = SearchTracer::disabled();
    for _ in 0..10_000 {
        let _span = obs.span("see", "step");
        obs.log("see", "x", || {
            ran.fetch_add(1, Ordering::Relaxed);
            String::new()
        });
        tracer.record(|| {
            ran.fetch_add(1, Ordering::Relaxed);
            TraceRecord::default()
        });
        // Scoped handles derived from a disabled tracer stay free too.
        tracer.scoped("p", 0, 0).record(|| {
            ran.fetch_add(1, Ordering::Relaxed);
            TraceRecord::default()
        });
    }
    assert_eq!(
        ran.load(Ordering::Relaxed),
        0,
        "disabled paths ran closures"
    );
    assert!(obs.snapshot().is_none());
    assert!(obs.finish().is_none());
    assert!(tracer.records().is_empty());
}
