//! # hca-pg — the Pattern Graph abstraction
//!
//! The Pattern Graph (PG) "represents the architecture topology at a high
//! abstraction level" (paper §3, Figure 7): each node is a cluster described
//! by its Resource Table; an arc states that two clusters *could* be
//! connected by a communication pattern, without committing to any physical
//! wire. During Instruction Cluster Assignment arcs become **real** patterns
//! the moment an inter-cluster copy is allocated onto them; the Mapper later
//! lowers real patterns onto MUX wires.
//!
//! For the hierarchical decomposition (§4.1) a child sub-problem's PG is
//! completed with special **input nodes** (one per incoming glue wire,
//! broadcastable to every cluster) and **output nodes** (one per outgoing
//! glue wire, with the `outNode_MaxIn = 1` unary fan-in constraint).
//!
//! This crate owns the shared vocabulary between the Space Exploration
//! Engine and the Mapper: PG storage ([`Pg`]), reconfiguration constraints
//! ([`ArchConstraints`]), copy bookkeeping ([`AssignedPg`]) and the
//! Inter-Level Interface ([`Ili`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod constraints;
pub mod copies;
pub mod ili;
pub mod pg;

pub use constraints::ArchConstraints;
pub use copies::{AssignedPg, CopyMap};
pub use ili::{Ili, IliWire};
pub use pg::{Pg, PgNode, PgNodeId, PgNodeKind};
