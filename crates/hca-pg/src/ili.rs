//! Inter-Level Interface (paper §4.1, Figure 9c).
//!
//! After the Mapper distributes the copies of a level over physical wires,
//! it "generates an ILI for each subproblem of the current one": the list of
//! input wires (with the values each pumps down) and output wires (with the
//! values each sends up) crossing that child's boundary.

use hca_ddg::NodeId;
use serde::{Deserialize, Serialize};

/// One glue wire crossing a sub-problem boundary.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IliWire {
    /// Values carried by the wire (identified by their producing DDG node).
    pub values: Vec<NodeId>,
}

impl IliWire {
    /// Wire carrying the given values.
    pub fn new(values: Vec<NodeId>) -> Self {
        IliWire { values }
    }

    /// Time-multiplexing pressure of the wire.
    pub fn pressure(&self) -> u32 {
        self.values.len() as u32
    }
}

/// The Inter-Level Interface of one sub-problem.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ili {
    /// Wires entering the sub-problem from the parent level.
    pub inputs: Vec<IliWire>,
    /// Wires leaving the sub-problem towards the parent level.
    pub outputs: Vec<IliWire>,
}

impl Ili {
    /// The empty interface — used for the root problem, which has no parent.
    pub fn root() -> Self {
        Ili::default()
    }

    /// All values entering the sub-problem.
    pub fn incoming_values(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.inputs.iter().flat_map(|w| w.values.iter().copied())
    }

    /// All values that must leave the sub-problem.
    pub fn outgoing_values(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.outputs.iter().flat_map(|w| w.values.iter().copied())
    }

    /// True when nothing crosses the boundary.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty() && self.outputs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9c_shape() {
        // ILI_{0,3} of Figure 9: four input lines carrying a | b | c | {k,h},
        // one output line carrying z.
        let (a, b, c, k, h, z) = (
            NodeId(0),
            NodeId(1),
            NodeId(2),
            NodeId(3),
            NodeId(4),
            NodeId(5),
        );
        let ili = Ili {
            inputs: vec![
                IliWire::new(vec![a]),
                IliWire::new(vec![b]),
                IliWire::new(vec![c]),
                IliWire::new(vec![k, h]),
            ],
            outputs: vec![IliWire::new(vec![z])],
        };
        assert_eq!(ili.inputs.len(), 4);
        assert_eq!(ili.incoming_values().count(), 5);
        assert_eq!(ili.outgoing_values().collect::<Vec<_>>(), vec![z]);
        assert_eq!(ili.inputs[3].pressure(), 2);
        assert!(!ili.is_empty());
    }

    #[test]
    fn root_is_empty() {
        assert!(Ili::root().is_empty());
        assert_eq!(Ili::root().incoming_values().count(), 0);
    }
}
