//! Reconfiguration constraints at one hierarchy level (paper §3/§4.1).
//!
//! "The number of real communication patterns is limited by a group of
//! constraints, which specifies the maximum number of input/output
//! neighbors allowed for each node. The constraints must ensure that the
//! module Mapper will be able to map PG onto the Machine Model."

use crate::copies::AssignedPg;
use crate::pg::PgNodeKind;
use hca_arch::{DspFabric, Rcp};
use serde::{Deserialize, Serialize};

/// Constraint set handed to the Space Exploration Engine for one
/// single-level ICA sub-problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchConstraints {
    /// Max distinct *real* in-neighbours per cluster node (MUX capacity:
    /// every in-neighbour needs at least one input port on the Mapper side).
    /// Special input nodes count as in-neighbours of the clusters they feed.
    pub max_in_neighbors: u32,
    /// Max distinct real out-neighbours per cluster node; `None` means
    /// unlimited — DSPFabric output wires broadcast, so the paper does "not
    /// limit the number of output neighbors".
    pub max_out_neighbors: Option<u32>,
    /// Unary fan-in of output special nodes (`outNode_MaxIn`, Figure 10b):
    /// at most this many clusters may feed one outgoing glue wire. 1 on
    /// DSPFabric (MUX unary fan-in).
    pub out_node_max_in: u32,
    /// Transport latency added to values crossing clusters at this level.
    pub copy_latency: u32,
}

impl ArchConstraints {
    /// Constraints of a DSPFabric group at hierarchy depth `d`.
    pub fn for_dspfabric_level(fabric: &DspFabric, d: usize) -> Self {
        let spec = fabric.level(d);
        ArchConstraints {
            max_in_neighbors: spec.in_wires as u32,
            max_out_neighbors: None,
            out_node_max_in: 1,
            copy_latency: fabric.copy_latency,
        }
    }

    /// Constraints of an RCP ring (single-level machine, §2.1).
    pub fn for_rcp(rcp: &Rcp) -> Self {
        ArchConstraints {
            max_in_neighbors: rcp.input_ports as u32,
            max_out_neighbors: None,
            out_node_max_in: 1,
            copy_latency: 1,
        }
    }

    /// Validate a finished assignment against this constraint set.
    ///
    /// Checks, per the paper:
    /// * real patterns only along potential arcs,
    /// * distinct in-neighbours per cluster ≤ `max_in_neighbors`,
    /// * distinct out-neighbours per cluster ≤ `max_out_neighbors` (if set),
    /// * in-degree of every output special node ≤ `out_node_max_in`.
    pub fn check(&self, apg: &AssignedPg) -> Result<(), String> {
        for (&(src, dst), values) in apg.copies.iter() {
            if values.is_empty() {
                continue;
            }
            if !apg.pg.is_potential(src, dst) {
                return Err(format!(
                    "real pattern {src}->{dst} is not a potential connection"
                ));
            }
        }
        for c in apg.pg.cluster_ids() {
            let ins = apg.real_in_neighbors(c).len() as u32;
            if ins > self.max_in_neighbors {
                return Err(format!(
                    "cluster {c} has {ins} in-neighbours, limit {}",
                    self.max_in_neighbors
                ));
            }
            if let Some(limit) = self.max_out_neighbors {
                let outs = apg.real_out_neighbors(c).len() as u32;
                if outs > limit {
                    return Err(format!(
                        "cluster {c} has {outs} out-neighbours, limit {limit}"
                    ));
                }
            }
        }
        for o in apg.pg.output_ids() {
            let ins = apg.real_in_neighbors(o).len() as u32;
            if ins > self.out_node_max_in {
                return Err(format!(
                    "output node {o} has fan-in {ins}, outNode_MaxIn = {}",
                    self.out_node_max_in
                ));
            }
            // Every value the parent expects on this wire must be produced
            // by the feeding cluster(s).
            if let PgNodeKind::Output { values, .. } = &apg.pg.node(o).kind {
                for &v in values {
                    let present = apg
                        .copies
                        .iter()
                        .any(|(&(_, dst), vs)| dst == o && vs.contains(&v));
                    if !present {
                        return Err(format!("output node {o} never receives value {v}"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::copies::AssignedPg;
    use crate::ili::{Ili, IliWire};
    use crate::pg::{Pg, PgNodeId};
    use hca_arch::ResourceTable;
    use hca_ddg::{DdgBuilder, Opcode};

    #[test]
    fn dspfabric_level_constraints() {
        let f = DspFabric::standard(8, 4, 2);
        let c0 = ArchConstraints::for_dspfabric_level(&f, 0);
        assert_eq!(c0.max_in_neighbors, 8);
        assert_eq!(c0.max_out_neighbors, None);
        let c2 = ArchConstraints::for_dspfabric_level(&f, 2);
        assert_eq!(c2.max_in_neighbors, 2); // CN input wires
        assert_eq!(c2.out_node_max_in, 1);
    }

    #[test]
    fn rcp_constraints() {
        let c = ArchConstraints::for_rcp(&Rcp::figure1());
        assert_eq!(c.max_in_neighbors, 2);
    }

    /// Small DDG: two producers on different clusters feeding one consumer.
    fn two_to_one() -> (AssignedPg, ArchConstraints) {
        let mut b = DdgBuilder::default();
        let p0 = b.node(Opcode::Add);
        let p1 = b.node(Opcode::Add);
        let c = b.node(Opcode::Add);
        b.flow(p0, c);
        b.flow(p1, c);
        let ddg = b.finish();
        let pg = Pg::complete(3, ResourceTable::of_cns(4));
        let mut apg = AssignedPg::new(pg);
        apg.assign(p0, PgNodeId(0));
        apg.assign(p1, PgNodeId(1));
        apg.assign(c, PgNodeId(2));
        apg.derive_copies(&ddg, None);
        let cons = ArchConstraints {
            max_in_neighbors: 2,
            max_out_neighbors: None,
            out_node_max_in: 1,
            copy_latency: 1,
        };
        (apg, cons)
    }

    #[test]
    fn in_neighbor_limit_respected() {
        let (apg, cons) = two_to_one();
        assert!(cons.check(&apg).is_ok());
        let tight = ArchConstraints {
            max_in_neighbors: 1,
            ..cons
        };
        let err = tight.check(&apg).unwrap_err();
        assert!(err.contains("in-neighbours"), "{err}");
    }

    #[test]
    fn out_node_fanin_enforced() {
        let mut b = DdgBuilder::default();
        let k = b.node(Opcode::Add);
        let h = b.node(Opcode::Add);
        let ddg = b.finish();
        let mut pg = Pg::complete(2, ResourceTable::of_cns(4));
        pg.attach_ili(&Ili {
            inputs: vec![],
            outputs: vec![IliWire::new(vec![k, h])],
        });
        let out = pg.output_ids().next().unwrap();
        let cons = ArchConstraints {
            max_in_neighbors: 4,
            max_out_neighbors: None,
            out_node_max_in: 1,
            copy_latency: 1,
        };
        // Figure 10c: k and h on the same cluster — legal.
        let mut ok = AssignedPg::new(pg.clone());
        ok.assign(k, PgNodeId(0));
        ok.assign(h, PgNodeId(0));
        ok.derive_copies(&ddg, None);
        assert!(cons.check(&ok).is_ok());
        // k and h on different clusters — two arcs into one output node.
        let mut bad = AssignedPg::new(pg);
        bad.assign(k, PgNodeId(0));
        bad.assign(h, PgNodeId(1));
        bad.derive_copies(&ddg, None);
        let err = cons.check(&bad).unwrap_err();
        assert!(err.contains("outNode_MaxIn"), "{err}");
        let _ = out;
    }

    #[test]
    fn missing_output_value_detected() {
        let mut b = DdgBuilder::default();
        let k = b.node(Opcode::Add);
        let _ddg = b.finish();
        let mut pg = Pg::complete(2, ResourceTable::of_cns(4));
        pg.attach_ili(&Ili {
            inputs: vec![],
            outputs: vec![IliWire::new(vec![k])],
        });
        let apg = AssignedPg::new(pg); // nothing assigned, no copies
        let cons = ArchConstraints {
            max_in_neighbors: 4,
            max_out_neighbors: None,
            out_node_max_in: 1,
            copy_latency: 1,
        };
        let err = cons.check(&apg).unwrap_err();
        assert!(err.contains("never receives"), "{err}");
    }

    #[test]
    fn out_neighbor_limit_optional() {
        let (apg, mut cons) = two_to_one();
        cons.max_out_neighbors = Some(1);
        assert!(cons.check(&apg).is_ok()); // each producer has one out-neighbour
        cons.max_out_neighbors = Some(0);
        assert!(cons.check(&apg).is_err());
    }
}
