//! Pattern Graph storage and construction.

use crate::ili::Ili;
use hca_arch::{Rcp, ResourceTable};
use hca_ddg::NodeId;
use serde::{Deserialize, Serialize};
use smallvec::SmallVec;
use std::fmt;

/// Index of a PG node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PgNodeId(pub u32);

impl PgNodeId {
    /// Usable as a plain array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PgNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for PgNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// What a PG node stands for.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PgNodeKind {
    /// A real cluster: member `member` of the group this PG describes.
    Cluster {
        /// Member index within the hierarchy group.
        member: usize,
    },
    /// Special input node for incoming glue wire `wire` (paper §4.1): the
    /// listed values are "pumped from the father into the current level".
    Input {
        /// ILI input-wire index.
        wire: usize,
        /// Values arriving on the wire.
        values: Vec<NodeId>,
    },
    /// Special output node for outgoing glue wire `wire`: the listed values
    /// are "sent to the father". Subject to `outNode_MaxIn`.
    Output {
        /// ILI output-wire index.
        wire: usize,
        /// Values leaving on the wire.
        values: Vec<NodeId>,
    },
}

impl PgNodeKind {
    /// True for real clusters.
    #[inline]
    pub fn is_cluster(&self) -> bool {
        matches!(self, PgNodeKind::Cluster { .. })
    }
}

/// One PG node.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PgNode {
    /// Role of the node.
    pub kind: PgNodeKind,
    /// Resource table ("each node of the PG is represented by its RT", §3).
    /// Zero for special nodes — they execute nothing.
    pub rt: ResourceTable,
}

/// The Pattern Graph: nodes plus *potential* communication patterns.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Pg {
    nodes: Vec<PgNode>,
    /// Out-adjacency of potential arcs.
    succs: Vec<SmallVec<[PgNodeId; 8]>>,
    /// In-adjacency of potential arcs.
    preds: Vec<SmallVec<[PgNodeId; 8]>>,
}

impl Pg {
    /// Empty PG.
    pub fn new() -> Self {
        Pg::default()
    }

    /// Add a node; returns its id.
    pub fn add_node(&mut self, node: PgNode) -> PgNodeId {
        let id = PgNodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.succs.push(SmallVec::new());
        self.preds.push(SmallVec::new());
        id
    }

    /// Declare a potential communication pattern `src → dst`.
    ///
    /// Idempotent; self-arcs are rejected (a cluster does not copy to itself).
    pub fn add_potential(&mut self, src: PgNodeId, dst: PgNodeId) {
        assert!(src != dst, "self communication pattern on {src}");
        assert!(src.index() < self.nodes.len() && dst.index() < self.nodes.len());
        if !self.succs[src.index()].contains(&dst) {
            self.succs[src.index()].push(dst);
            self.preds[dst.index()].push(src);
        }
    }

    /// Number of nodes (clusters + special nodes).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Node payload.
    #[inline]
    pub fn node(&self, id: PgNodeId) -> &PgNode {
        &self.nodes[id.index()]
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = PgNodeId> + Clone + use<> {
        (0..self.nodes.len() as u32).map(PgNodeId)
    }

    /// Ids of the cluster (non-special) nodes.
    pub fn cluster_ids(&self) -> impl Iterator<Item = PgNodeId> + '_ {
        self.node_ids()
            .filter(|&id| self.node(id).kind.is_cluster())
    }

    /// Ids of the special input nodes.
    pub fn input_ids(&self) -> impl Iterator<Item = PgNodeId> + '_ {
        self.node_ids()
            .filter(|&id| matches!(self.node(id).kind, PgNodeKind::Input { .. }))
    }

    /// Ids of the special output nodes.
    pub fn output_ids(&self) -> impl Iterator<Item = PgNodeId> + '_ {
        self.node_ids()
            .filter(|&id| matches!(self.node(id).kind, PgNodeKind::Output { .. }))
    }

    /// Is `src → dst` a potential pattern?
    #[inline]
    pub fn is_potential(&self, src: PgNodeId, dst: PgNodeId) -> bool {
        self.succs[src.index()].contains(&dst)
    }

    /// Potential successors of `id`.
    pub fn potential_succs(&self, id: PgNodeId) -> &[PgNodeId] {
        &self.succs[id.index()]
    }

    /// Potential predecessors of `id`.
    pub fn potential_preds(&self, id: PgNodeId) -> &[PgNodeId] {
        &self.preds[id.index()]
    }

    /// Member index of a cluster node.
    ///
    /// # Panics
    /// If `id` is a special node.
    pub fn member_of(&self, id: PgNodeId) -> usize {
        match self.node(id).kind {
            PgNodeKind::Cluster { member } => member,
            _ => panic!("{id} is a special node"),
        }
    }

    /// The cluster node for member index `m`, if present.
    pub fn cluster_of_member(&self, m: usize) -> Option<PgNodeId> {
        self.cluster_ids()
            .find(|&id| matches!(self.node(id).kind, PgNodeKind::Cluster { member } if member == m))
    }

    /// A complete PG over `n` clusters, each with resource table `rt` —
    /// the level view of a DSPFabric group, where MUXes make every cluster
    /// potentially reachable from every other (Figure 7).
    pub fn complete(n: usize, rt: ResourceTable) -> Self {
        let mut pg = Pg::new();
        let ids: Vec<PgNodeId> = (0..n)
            .map(|member| {
                pg.add_node(PgNode {
                    kind: PgNodeKind::Cluster { member },
                    rt,
                })
            })
            .collect();
        for &a in &ids {
            for &b in &ids {
                if a != b {
                    pg.add_potential(a, b);
                }
            }
        }
        pg
    }

    /// PG of an RCP ring: potential arcs follow the ring reach, resource
    /// tables reflect the heterogeneous memory capability (§2.1).
    pub fn from_rcp(rcp: &Rcp) -> Self {
        let mut pg = Pg::new();
        let ids: Vec<PgNodeId> = (0..rcp.clusters)
            .map(|member| {
                pg.add_node(PgNode {
                    kind: PgNodeKind::Cluster { member },
                    rt: rcp.cluster_rt(member),
                })
            })
            .collect();
        for dst in 0..rcp.clusters {
            for src in rcp.potential_sources(dst) {
                pg.add_potential(ids[src], ids[dst]);
            }
        }
        pg
    }

    /// Complete this PG with the special nodes induced by an ILI (§4.1,
    /// Figure 10b): one input node per incoming wire, connected by potential
    /// patterns **to** every cluster; one output node per outgoing wire,
    /// connected **from** every cluster.
    pub fn attach_ili(&mut self, ili: &Ili) {
        let clusters: Vec<PgNodeId> = self.cluster_ids().collect();
        for (wire, w) in ili.inputs.iter().enumerate() {
            let id = self.add_node(PgNode {
                kind: PgNodeKind::Input {
                    wire,
                    values: w.values.clone(),
                },
                rt: ResourceTable::default(),
            });
            for &c in &clusters {
                self.add_potential(id, c);
            }
        }
        for (wire, w) in ili.outputs.iter().enumerate() {
            let id = self.add_node(PgNode {
                kind: PgNodeKind::Output {
                    wire,
                    values: w.values.clone(),
                },
                rt: ResourceTable::default(),
            });
            for &c in &clusters {
                self.add_potential(c, id);
            }
        }
    }

    /// The input node (if any) whose wire carries value `v`.
    pub fn input_carrying(&self, v: NodeId) -> Option<PgNodeId> {
        self.input_ids().find(|&id| match &self.node(id).kind {
            PgNodeKind::Input { values, .. } => values.contains(&v),
            _ => false,
        })
    }

    /// Output nodes whose wire must carry value `v`.
    pub fn outputs_carrying(&self, v: NodeId) -> Vec<PgNodeId> {
        self.output_ids()
            .filter(|&id| match &self.node(id).kind {
                PgNodeKind::Output { values, .. } => values.contains(&v),
                _ => false,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ili::{Ili, IliWire};

    #[test]
    fn complete_pg_is_complete() {
        let pg = Pg::complete(4, ResourceTable::of_cns(4));
        assert_eq!(pg.num_nodes(), 4);
        for a in pg.node_ids() {
            assert_eq!(pg.potential_succs(a).len(), 3);
            assert_eq!(pg.potential_preds(a).len(), 3);
            assert!(!pg.is_potential(a, a));
        }
    }

    #[test]
    fn rcp_pg_follows_ring() {
        let rcp = Rcp::figure1();
        let pg = Pg::from_rcp(&rcp);
        assert_eq!(pg.num_nodes(), 8);
        let c0 = PgNodeId(0);
        assert_eq!(pg.potential_preds(c0).len(), 4);
        assert!(pg.is_potential(PgNodeId(1), c0));
        assert!(!pg.is_potential(PgNodeId(4), c0));
        // heterogeneous RTs survive
        assert_eq!(pg.node(PgNodeId(0)).rt.addr_gen, 1);
        assert_eq!(pg.node(PgNodeId(1)).rt.addr_gen, 0);
    }

    #[test]
    fn attach_ili_adds_special_nodes() {
        use hca_ddg::NodeId;
        let mut pg = Pg::complete(4, ResourceTable::of_cns(1));
        let ili = Ili {
            inputs: vec![
                IliWire::new(vec![NodeId(10)]),
                IliWire::new(vec![NodeId(11), NodeId(12)]),
            ],
            outputs: vec![IliWire::new(vec![NodeId(20)])],
        };
        pg.attach_ili(&ili);
        assert_eq!(pg.num_nodes(), 7);
        assert_eq!(pg.input_ids().count(), 2);
        assert_eq!(pg.output_ids().count(), 1);
        let inp = pg.input_carrying(NodeId(11)).unwrap();
        // Input nodes broadcast to every cluster…
        for c in pg.cluster_ids().collect::<Vec<_>>() {
            assert!(pg.is_potential(inp, c));
        }
        // …and clusters reach every output node.
        let out = pg.outputs_carrying(NodeId(20));
        assert_eq!(out.len(), 1);
        for c in pg.cluster_ids().collect::<Vec<_>>() {
            assert!(pg.is_potential(c, out[0]));
        }
        // Special nodes execute nothing.
        assert_eq!(pg.node(inp).rt, ResourceTable::default());
    }

    #[test]
    fn member_lookup_roundtrip() {
        let pg = Pg::complete(4, ResourceTable::CN);
        for m in 0..4 {
            let id = pg.cluster_of_member(m).unwrap();
            assert_eq!(pg.member_of(id), m);
        }
        assert!(pg.cluster_of_member(4).is_none());
    }

    #[test]
    #[should_panic(expected = "special node")]
    fn member_of_special_panics() {
        let mut pg = Pg::complete(2, ResourceTable::CN);
        let ili = Ili {
            inputs: vec![IliWire::new(vec![])],
            outputs: vec![],
        };
        pg.attach_ili(&ili);
        let inp = pg.input_ids().next().unwrap();
        pg.member_of(inp);
    }

    #[test]
    fn add_potential_is_idempotent() {
        let mut pg = Pg::complete(2, ResourceTable::CN);
        let (a, b) = (PgNodeId(0), PgNodeId(1));
        pg.add_potential(a, b);
        pg.add_potential(a, b);
        assert_eq!(pg.potential_succs(a).len(), 1);
        assert_eq!(pg.potential_preds(b).len(), 1);
    }
}
