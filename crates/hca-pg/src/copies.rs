//! Copy bookkeeping over an assigned Pattern Graph.
//!
//! After ICA the paper works with the overlined structures: `DDG̅(x)` is the
//! cluster instruction `x` was assigned to, `PG̅(c)` the instruction list of
//! cluster `c`, and `cpy(PG̅(c,d))` the values on the arc from `c` to `d` —
//! the **inter-cluster copies** (§4.1). [`AssignedPg`] stores exactly that.

use crate::pg::{Pg, PgNodeId, PgNodeKind};
use hca_ddg::{Ddg, NodeId};
use rustc_hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};

/// Values flowing on each real arc: `cpy(PG̅(c, d))`.
pub type CopyMap = FxHashMap<(PgNodeId, PgNodeId), Vec<NodeId>>;

/// An assigned Pattern Graph: the result of one single-level ICA.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AssignedPg {
    /// The Pattern Graph (clusters + special nodes).
    pub pg: Pg,
    /// `DDG̅`: cluster per DDG node. External producers entering through the
    /// ILI are mapped to their special input node.
    pub assignment: FxHashMap<NodeId, PgNodeId>,
    /// `cpy(PG̅(c, d))` for every real pattern.
    pub copies: CopyMap,
    /// Pass-through forwards: `(value, cluster)` pairs where an externally
    /// produced value enters on a glue-in wire and leaves on a glue-out wire
    /// with no local consumer — the named cluster spends an issue slot
    /// re-emitting it (a `Route` op in the final DDG).
    pub forwards: Vec<(NodeId, PgNodeId)>,
}

impl AssignedPg {
    /// Fresh, unassigned wrapper around `pg`.
    pub fn new(pg: Pg) -> Self {
        AssignedPg {
            pg,
            assignment: FxHashMap::default(),
            copies: CopyMap::default(),
            forwards: Vec::new(),
        }
    }

    /// Record `node → cluster` (or `external producer → input node`).
    pub fn assign(&mut self, node: NodeId, cluster: PgNodeId) {
        self.assignment.insert(node, cluster);
    }

    /// `DDG̅(x)`: cluster of an assigned node.
    pub fn cluster_of(&self, node: NodeId) -> Option<PgNodeId> {
        self.assignment.get(&node).copied()
    }

    /// `PG̅(c)`: instructions assigned to `c`, in `NodeId` order.
    pub fn instructions_of(&self, cluster: PgNodeId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .assignment
            .iter()
            .filter(|&(_, &c)| c == cluster)
            .map(|(&n, _)| n)
            .collect();
        v.sort_unstable();
        v
    }

    /// `cpy(PG̅(c, d))`: values on the real arc `c → d` (empty slice if none).
    pub fn cpy(&self, src: PgNodeId, dst: PgNodeId) -> &[NodeId] {
        self.copies.get(&(src, dst)).map_or(&[], Vec::as_slice)
    }

    /// Distinct real in-neighbours of `c`.
    pub fn real_in_neighbors(&self, c: PgNodeId) -> FxHashSet<PgNodeId> {
        self.copies
            .iter()
            .filter(|(&(_, dst), vs)| dst == c && !vs.is_empty())
            .map(|(&(src, _), _)| src)
            .collect()
    }

    /// Distinct real out-neighbours of `c`.
    pub fn real_out_neighbors(&self, c: PgNodeId) -> FxHashSet<PgNodeId> {
        self.copies
            .iter()
            .filter(|(&(src, _), vs)| src == c && !vs.is_empty())
            .map(|(&(_, dst), _)| dst)
            .collect()
    }

    /// Total number of (value, destination) copy pairs — the paper's main
    /// penalty source.
    pub fn total_copies(&self) -> usize {
        self.copies.values().map(Vec::len).sum()
    }

    /// Number of receive primitives cluster `c` will execute: one per value
    /// arriving at `c` (each consumes an issue slot, §4.2 copy pressure).
    pub fn recv_count(&self, c: PgNodeId) -> usize {
        self.copies
            .iter()
            .filter(|(&(_, dst), _)| dst == c)
            .map(|(_, vs)| vs.len())
            .sum()
    }

    /// Flow-conservation audit of one assigned level: every working-set
    /// consumer whose operand lives on another cluster must receive the
    /// value on some real arc into its cluster, every value on an arc must
    /// be available at the arc's source (produced there, bound to the input
    /// node, or arriving on another arc), and every output-node value must
    /// be fed. Returns human-readable violations (empty = conserved).
    pub fn check_flow(&self, ddg: &Ddg, working_set: &[NodeId]) -> Vec<String> {
        let mut errs = Vec::new();
        let ws: FxHashSet<NodeId> = working_set.iter().copied().collect();
        for &n in working_set {
            let Some(cn) = self.cluster_of(n) else {
                errs.push(format!("{n} in working set but unassigned"));
                continue;
            };
            for (_, e) in ddg.pred_edges(n) {
                if ddg.node(e.src).op == hca_ddg::Opcode::Const {
                    continue;
                }
                let Some(cp) = self.cluster_of(e.src) else {
                    continue; // external value not on this level's interface
                };
                if cp == cn {
                    continue;
                }
                let delivered = self
                    .copies
                    .iter()
                    .any(|(&(_, dst), vs)| dst == cn && vs.contains(&e.src));
                if !delivered {
                    errs.push(format!(
                        "{n}@{cn} never receives operand {} (at {cp})",
                        e.src
                    ));
                }
            }
        }
        for (&(a, b), vs) in self.copies.iter() {
            for &v in vs {
                if !self.pg.node(a).kind.is_cluster() {
                    // Input node: must actually carry v.
                    if self.pg.input_carrying(v) != Some(a) {
                        errs.push(format!("arc {a}->{b}: input node does not carry {v}"));
                    }
                    continue;
                }
                let produced_here = self.cluster_of(v) == Some(a) && ws.contains(&v);
                let arrives = self
                    .copies
                    .iter()
                    .any(|(&(_, dst), vs2)| dst == a && vs2.contains(&v));
                if !produced_here && !arrives {
                    errs.push(format!("arc {a}->{b}: {v} not available at {a}"));
                }
            }
        }
        errs
    }

    /// Rebuild `copies` from scratch out of the assignment and the DDG
    /// (restricted to `working_set` when given):
    ///
    /// * for every dependence `u → v` with `v` in the working set and
    ///   different clusters, value `u` is copied `cluster(u) → cluster(v)`
    ///   (deduplicated: a value reaches each destination cluster once —
    ///   broadcast within a cluster is free through the register file);
    /// * every value listed on an output special node is copied from its
    ///   producer's cluster to that node.
    pub fn derive_copies(&mut self, ddg: &Ddg, working_set: Option<&FxHashSet<NodeId>>) {
        self.copies.clear();
        let in_ws = |n: NodeId| working_set.is_none_or(|ws| ws.contains(&n));
        for e in ddg.edges() {
            if !in_ws(e.dst) || ddg.node(e.src).op == hca_ddg::Opcode::Const {
                continue;
            }
            let (Some(cu), Some(cv)) = (self.cluster_of(e.src), self.cluster_of(e.dst)) else {
                continue;
            };
            if cu == cv {
                continue;
            }
            let entry = self.copies.entry((cu, cv)).or_default();
            if !entry.contains(&e.src) {
                entry.push(e.src);
            }
        }
        for o in self.pg.output_ids().collect::<Vec<_>>() {
            let PgNodeKind::Output { values, .. } = &self.pg.node(o).kind else {
                unreachable!()
            };
            for &v in values.clone().iter() {
                if let Some(cv) = self.cluster_of(v) {
                    let entry = self.copies.entry((cv, o)).or_default();
                    if !entry.contains(&v) {
                        entry.push(v);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ili::{Ili, IliWire};
    use hca_arch::ResourceTable;
    use hca_ddg::{DdgBuilder, Opcode};

    fn fan_out_ddg() -> (Ddg, [NodeId; 4]) {
        // x feeds three consumers.
        let mut b = DdgBuilder::default();
        let x = b.node(Opcode::Load);
        let c1 = b.node(Opcode::Add);
        let c2 = b.node(Opcode::Add);
        let c3 = b.node(Opcode::Add);
        b.flow(x, c1);
        b.flow(x, c2);
        b.flow(x, c3);
        (b.finish(), [x, c1, c2, c3])
    }

    #[test]
    fn copies_deduplicate_per_destination_cluster() {
        let (ddg, [x, c1, c2, c3]) = fan_out_ddg();
        let pg = Pg::complete(2, ResourceTable::of_cns(4));
        let mut apg = AssignedPg::new(pg);
        apg.assign(x, PgNodeId(0));
        apg.assign(c1, PgNodeId(1));
        apg.assign(c2, PgNodeId(1));
        apg.assign(c3, PgNodeId(0));
        apg.derive_copies(&ddg, None);
        // x goes to cluster 1 exactly once even though two consumers live there.
        assert_eq!(apg.cpy(PgNodeId(0), PgNodeId(1)), &[x]);
        assert_eq!(apg.total_copies(), 1);
        assert_eq!(apg.recv_count(PgNodeId(1)), 1);
        assert_eq!(apg.recv_count(PgNodeId(0)), 0);
    }

    #[test]
    fn instructions_of_lists_cluster_content() {
        let (ddg, [x, c1, c2, c3]) = fan_out_ddg();
        let pg = Pg::complete(2, ResourceTable::of_cns(4));
        let mut apg = AssignedPg::new(pg);
        apg.assign(x, PgNodeId(0));
        apg.assign(c1, PgNodeId(1));
        apg.assign(c2, PgNodeId(1));
        apg.assign(c3, PgNodeId(0));
        apg.derive_copies(&ddg, None);
        assert_eq!(apg.instructions_of(PgNodeId(0)), vec![x, c3]);
        assert_eq!(apg.instructions_of(PgNodeId(1)), vec![c1, c2]);
        assert_eq!(apg.cluster_of(x), Some(PgNodeId(0)));
    }

    #[test]
    fn working_set_limits_derivation() {
        let (ddg, [x, c1, c2, c3]) = fan_out_ddg();
        let pg = Pg::complete(2, ResourceTable::of_cns(4));
        let mut apg = AssignedPg::new(pg);
        apg.assign(x, PgNodeId(0));
        apg.assign(c1, PgNodeId(1));
        apg.assign(c2, PgNodeId(1));
        apg.assign(c3, PgNodeId(0));
        let ws: FxHashSet<NodeId> = [c1].into_iter().collect();
        apg.derive_copies(&ddg, Some(&ws));
        assert_eq!(apg.total_copies(), 1);
        let _ = (c2, c3);
    }

    #[test]
    fn output_node_copies_derived() {
        let mut b = DdgBuilder::default();
        let k = b.node(Opcode::Add);
        let ddg = b.finish();
        let mut pg = Pg::complete(2, ResourceTable::of_cns(4));
        pg.attach_ili(&Ili {
            inputs: vec![],
            outputs: vec![IliWire::new(vec![k])],
        });
        let out = pg.output_ids().next().unwrap();
        let mut apg = AssignedPg::new(pg);
        apg.assign(k, PgNodeId(1));
        apg.derive_copies(&ddg, None);
        assert_eq!(apg.cpy(PgNodeId(1), out), &[k]);
        assert_eq!(apg.real_in_neighbors(out).len(), 1);
    }

    #[test]
    fn neighbor_sets() {
        let (ddg, [x, c1, _, _]) = fan_out_ddg();
        let pg = Pg::complete(3, ResourceTable::of_cns(4));
        let mut apg = AssignedPg::new(pg);
        apg.assign(x, PgNodeId(0));
        apg.assign(c1, PgNodeId(2));
        apg.derive_copies(&ddg, None);
        assert!(apg.real_out_neighbors(PgNodeId(0)).contains(&PgNodeId(2)));
        assert!(apg.real_in_neighbors(PgNodeId(2)).contains(&PgNodeId(0)));
        assert!(apg.real_in_neighbors(PgNodeId(1)).is_empty());
    }
}
