//! # hca-core — Hierarchical Cluster Assignment
//!
//! The paper's primary contribution (§4): decompose the Instruction Cluster
//! Assignment of a multimedia-loop DDG over a hierarchical reconfigurable
//! machine into a tree of single-level sub-problems.
//!
//! * [`decompose`] — the working-set rule `WS(DDG…i,j) = {x | DDG̅…i(x) = j}`,
//!   per-level Pattern-Graph construction, ILI attachment and the effective
//!   wire budgets (Figure 8/10);
//! * [`driver`] — the recursive pipeline: SEE at level 0 → Mapper → ILIs →
//!   recurse into each member → leaves; then the post-processing pass;
//! * [`post`] — materialise `recv` primitives (and `route` forwards) into
//!   the final DDG, with every node placed on a computation node;
//! * [`coherency`] — the paper's final legality check: every pair of
//!   dependent instructions on different CNs must be connected by configured
//!   wires actually carrying the value;
//! * [`mii`] — the §4.2 cost model: `MII = max(iniMII, maxClsMII)` with
//!   recurrence, resource, DMA and wire-pressure terms, plus the unified
//!   machine "theoretical optimum" used by Table 1;
//! * [`flat`] — the non-hierarchical baseline the paper argues against:
//!   one SEE run over the flat 64-node Pattern Graph;
//! * [`rcp_flow`] — the degenerate single-level machine (§2.1's RCP ring):
//!   one SEE run plus ring-wire lowering and feasibility checking;
//! * [`report`] — Table-1 row rendering.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod coherency;
pub mod decompose;
pub mod driver;
pub mod flat;
mod memo;
pub mod mii;
pub mod post;
pub mod problem;
pub mod rcp_flow;
pub mod report;

pub use coherency::{check_coherency, CoherencyReport, Violation};
pub use driver::{
    run_hca, run_hca_obs, run_hca_portfolio, run_hca_portfolio_obs, run_hca_shared, run_hca_traced,
    HcaConfig, HcaError, HcaResult, HcaStats, PortfolioConfig, PortfolioMode, ValidationLevel,
};
pub use flat::run_flat;
pub use memo::{Memo, SNAPSHOT_VERSION};
pub use mii::MiiReport;
pub use post::FinalProgram;
pub use problem::Subproblem;
pub use rcp_flow::{run_rcp, RcpResult};
pub use report::Table1Row;
