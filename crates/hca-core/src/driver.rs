//! The recursive HCA driver (paper §4.1).
//!
//! "The HCA algorithm starts at level 0, mapping DDG₀ onto PG₀. Then the
//! module Mapper maps PG̅₀ onto the first level of the Machine Model
//! Hierarchy … The Mapper produces an ILI for each subproblem of the current
//! one. Now the communication paths at level 0 of the hierarchy have been
//! allocated and the process can be iterated through all the nested levels,
//! until a leaf problem is reached."

use crate::coherency::{check_coherency, CoherencyReport};
use crate::decompose::{child_working_sets, effective_spec, level_constraints, level_pg};
use crate::mii::{mii_report, MiiReport};
use crate::post::{build_final_program, FinalProgram};
use crate::problem::Subproblem;
use hca_arch::{CnId, DspFabric, GroupTopology, Topology};
use hca_ddg::{analysis::DdgError, Ddg, DdgAnalysis, NodeId};
use hca_mapper::{map_level_obs, MapError, MapOptions, MapperOutput};
use hca_obs::trace::{kind, EXACT_TIER, FALLBACK_TIER};
use hca_obs::{Obs, RunMetrics, SearchTracer, TraceRecord};
use hca_see::{mii_lower_bound, solution_score, ExactConfig, See, SeeConfig, SeeError};
use rustc_hash::FxHashMap;
use std::fmt;

/// How much the driver trusts its own output (paper: "a coherency checker
/// validates legality").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ValidationLevel {
    /// Skip the coherency checker entirely. [`HcaResult::coherency`] is an
    /// empty (vacuously legal) report; use only when the caller re-validates
    /// or benchmarks the driver alone.
    Off,
    /// Run the checker and *report* its verdict in the result — the
    /// historical behaviour, and the default.
    #[default]
    Report,
    /// Run the checker as a hard gate: any undelivered value, illegal copy
    /// route, or `outNode_MaxIn` fan-in violation turns into a typed
    /// [`HcaError`] instead of reaching the scheduler.
    Strict,
}

impl ValidationLevel {
    /// Apply this policy to a checker verdict. Under [`Strict`] an illegal
    /// report becomes [`HcaError::Incoherent`]; otherwise the report passes
    /// through for the caller to record. This *is* the driver's gate —
    /// negative tests feed corrupted reports through it directly.
    ///
    /// [`Strict`]: ValidationLevel::Strict
    pub fn enforce(self, report: CoherencyReport) -> Result<CoherencyReport, HcaError> {
        if self == ValidationLevel::Strict && !report.is_legal() {
            return Err(HcaError::Incoherent { report });
        }
        Ok(report)
    }
}

/// Which solver backends the driver runs per sub-problem.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PortfolioMode {
    /// The historical behaviour: the beam escalation ladder alone. No
    /// bounds are computed, no exact search runs — bit-identical to the
    /// pre-portfolio driver.
    #[default]
    BeamOnly,
    /// Beam plus the exact branch-and-bound on sub-problems of at most
    /// [`PortfolioConfig::exact_max_nodes`] working-set nodes, cut only by
    /// the deterministic node budget (any configured deadline is ignored),
    /// so runs are reproducible. Admissible MII floors are shared with the
    /// beam for the proven-optimal tier skip.
    ExactSmall,
    /// [`ExactSmall`](PortfolioMode::ExactSmall) with the wall-clock
    /// deadline ([`PortfolioConfig::exact_deadline_ms`]) armed as a
    /// cooperative cancellation safety net: the exact side races the clock
    /// and concedes to the beam incumbent when it fires. Latency-bounded,
    /// at the price of run-to-run determinism of the *statistics* (the
    /// kept result is still always legal and never worse on MII).
    Race,
}

/// Per-sub-problem exact/beam portfolio knobs (see [`PortfolioMode`]).
///
/// Whatever the mode, the beam runs first and the exact backend only
/// replaces its result when strictly better on the shared solution score
/// (`16·MII + copies`), not worse on MII, mappable, and passing
/// [`hca_pg::ArchConstraints::check`] — so the portfolio's MII is never
/// worse than beam-alone, and bit-identical to it whenever the beam wins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PortfolioConfig {
    /// Backend selection policy.
    pub mode: PortfolioMode,
    /// Largest working set (in nodes) the exact backend attempts; beyond
    /// it the search space is hopeless and only the beam runs.
    pub exact_max_nodes: usize,
    /// Deterministic branch-node budget of one exact run (the primary cut;
    /// machine-independent).
    pub exact_node_budget: u64,
    /// Wall-clock deadline in milliseconds per exact run, armed only under
    /// [`PortfolioMode::Race`]. `0` disarms it even there.
    pub exact_deadline_ms: u64,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            mode: PortfolioMode::BeamOnly,
            exact_max_nodes: 12,
            exact_node_budget: 200_000,
            exact_deadline_ms: 50,
        }
    }
}

impl PortfolioConfig {
    /// Deterministic exact/beam portfolio ([`PortfolioMode::ExactSmall`]).
    pub fn exact_small() -> Self {
        PortfolioConfig {
            mode: PortfolioMode::ExactSmall,
            ..PortfolioConfig::default()
        }
    }

    /// Deadline-raced portfolio ([`PortfolioMode::Race`]).
    pub fn race() -> Self {
        PortfolioConfig {
            mode: PortfolioMode::Race,
            ..PortfolioConfig::default()
        }
    }
}

/// HCA tunables.
#[derive(Clone, Copy, Debug)]
pub struct HcaConfig {
    /// Configuration of every per-level SEE run.
    pub see: SeeConfig,
    /// Per-issue-slot load ceiling, as slack over the unified-machine
    /// theoretical MII: every cluster may hold at most
    /// `theoretical + slack` ops per issue slot. Forces the wide spread the
    /// machine is built for; relaxed automatically on retry escalations.
    /// `None` disables the ceiling.
    pub issue_cap_slack: Option<u32>,
    /// Post-pass validation policy (see [`ValidationLevel`]).
    pub validation: ValidationLevel,
    /// Memoise solved sub-problems under a renumbering-equivariant
    /// canonical key and reuse them for isomorphic sub-problems within the
    /// run (and across portfolio variants). Cached results are bit-exact
    /// replays; disable to compare.
    pub memo: bool,
    /// Byte budget of the run-private memo cache (when [`memo`] is on and
    /// no shared cache is supplied). Least-recently-used entries are
    /// evicted past the budget; eviction can only turn hits into misses,
    /// never change results. `0` caches nothing. Shared caches
    /// ([`run_hca_shared`]) carry their own budget and ignore this knob.
    ///
    /// [`memo`]: HcaConfig::memo
    pub memo_budget: usize,
    /// Exact/beam portfolio policy (see [`PortfolioConfig`]). The default
    /// [`PortfolioMode::BeamOnly`] leaves the driver bit-identical to its
    /// pre-portfolio behaviour.
    pub portfolio: PortfolioConfig,
}

impl Default for HcaConfig {
    fn default() -> Self {
        HcaConfig {
            see: SeeConfig::default(),
            issue_cap_slack: Some(1),
            validation: ValidationLevel::Report,
            memo: true,
            memo_budget: crate::memo::Memo::DEFAULT_BUDGET,
            portfolio: PortfolioConfig::default(),
        }
    }
}

impl HcaConfig {
    /// The default config with [`ValidationLevel::Strict`] validation.
    pub fn strict() -> Self {
        HcaConfig {
            validation: ValidationLevel::Strict,
            ..HcaConfig::default()
        }
    }
}

/// Why HCA failed.
#[derive(Clone, Debug)]
pub enum HcaError {
    /// The input DDG is ill-formed (zero-distance dependence cycle).
    Analysis(DdgError),
    /// A sub-problem's SEE found no legal assignment.
    See {
        /// Sub-problem id, e.g. `"0,2"`.
        problem: String,
        /// Underlying engine error.
        source: SeeError,
    },
    /// A sub-problem's Mapper could not lower the copies onto wires.
    Map {
        /// Sub-problem id.
        problem: String,
        /// Underlying mapper error.
        source: MapError,
    },
    /// A solved sub-problem left a working-set node without a cluster —
    /// an engine invariant violation surfaced as an error instead of a
    /// process abort.
    Unassigned {
        /// Sub-problem id.
        problem: String,
        /// The node SEE failed to place.
        node: NodeId,
    },
    /// Under [`ValidationLevel::Strict`], a solved sub-problem's assignment
    /// violates the architecture constraints (e.g. `outNode_MaxIn`).
    Constraint {
        /// Sub-problem id.
        problem: String,
        /// Human-readable constraint violation.
        detail: String,
    },
    /// Under [`ValidationLevel::Strict`], the final clusterisation failed
    /// the coherency checker.
    Incoherent {
        /// The full checker verdict (topology errors + per-edge violations).
        report: CoherencyReport,
    },
}

impl fmt::Display for HcaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HcaError::Analysis(e) => write!(f, "DDG analysis failed: {e}"),
            HcaError::See { problem, source } => {
                write!(f, "sub-problem {problem}: SEE failed: {source}")
            }
            HcaError::Map { problem, source } => {
                write!(f, "sub-problem {problem}: Mapper failed: {source}")
            }
            HcaError::Unassigned { problem, node } => {
                write!(f, "sub-problem {problem}: node {node} left unassigned")
            }
            HcaError::Constraint { problem, detail } => {
                write!(f, "sub-problem {problem}: constraint violated: {detail}")
            }
            HcaError::Incoherent { report } => {
                write!(
                    f,
                    "strict validation failed: {} topology error(s), {} undelivered value(s)",
                    report.topology_errors.len(),
                    report.violations.len()
                )?;
                if let Some(err) = report.topology_errors.first() {
                    write!(f, "; first: {err}")?;
                } else if let Some(v) = report.violations.first() {
                    write!(f, "; first: {v}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for HcaError {}

/// Aggregate run statistics. Serialisable because solved subtrees carry
/// their stats through the memo cache's on-disk snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HcaStats {
    /// Sub-problems solved (tree nodes visited).
    pub subproblems: usize,
    /// Partial solutions materialised across every SEE run.
    pub see_states: usize,
    /// Nodes placed by the Route Allocator.
    pub routed_nodes: usize,
    /// Leaf-level pass-through forwards (route ops in the final DDG).
    pub forwards: usize,
    /// Configured wires in the final topology.
    pub wires: usize,
    /// Sub-problems where the portfolio's exact backend displaced the beam
    /// result. Zero on every beam-only run; the driver uses it to decide
    /// whether the global never-worse guard needs a beam-alone re-run.
    #[serde(default)]
    pub exact_wins: usize,
}

/// Result of a full HCA run.
#[derive(Clone, Debug)]
pub struct HcaResult {
    /// Placement of every original DDG node.
    pub placement: FxHashMap<NodeId, CnId>,
    /// The configured topology of the whole machine.
    pub topology: Topology,
    /// The final DDG (recv/route primitives materialised) with placements.
    pub final_program: FinalProgram,
    /// The §4.2 cost model outputs.
    pub mii: MiiReport,
    /// Coherency-checker verdict.
    pub coherency: CoherencyReport,
    /// Run statistics.
    pub stats: HcaStats,
    /// Observability snapshot (phase timings, counters, histograms);
    /// `None` when the run was not observed.
    pub metrics: Option<RunMetrics>,
}

impl HcaResult {
    /// Is the clusterisation legal (paper Table 1's "Legal clusterization")?
    pub fn is_legal(&self) -> bool {
        self.coherency.is_legal()
    }
}

/// Run Hierarchical Cluster Assignment of `ddg` onto `fabric`.
///
/// ```
/// use hca_core::{run_hca, HcaConfig};
/// use hca_arch::DspFabric;
/// use hca_ddg::{DdgBuilder, Opcode};
///
/// // ptr++ ; x = load ptr ; y = x * x ; store y @ ptr
/// let mut b = DdgBuilder::default();
/// let ptr = b.named(Opcode::AddrAdd, "ptr++");
/// b.carried(ptr, ptr, 1);
/// let x = b.op_with(Opcode::Load, &[ptr]);
/// let y = b.op_with(Opcode::Mul, &[x, x]);
/// b.op_with(Opcode::Store, &[y, ptr]);
/// let ddg = b.finish();
///
/// let fabric = DspFabric::standard(8, 8, 8); // the paper's 64-CN machine
/// let result = run_hca(&ddg, &fabric, &HcaConfig::default()).unwrap();
/// assert!(result.is_legal());
/// assert!(result.mii.final_mii >= result.mii.theoretical);
/// assert_eq!(result.placement.len(), ddg.num_nodes());
/// ```
pub fn run_hca(ddg: &Ddg, fabric: &DspFabric, config: &HcaConfig) -> Result<HcaResult, HcaError> {
    // Legacy escape hatch: HCA_TRACE=1 (or 2, for wire dumps) routes the
    // driver's diagnostic events to stderr through a throwaway observer.
    let obs = if std::env::var_os("HCA_TRACE").is_some() {
        Obs::stderr_logger()
    } else {
        Obs::disabled()
    };
    run_hca_obs(ddg, fabric, config, &obs)
}

/// SEE phase label for a hierarchy level (static so disabled spans stay
/// allocation-free).
fn level_phase(d: usize) -> &'static str {
    match d {
        0 => "level0",
        1 => "level1",
        2 => "level2",
        3 => "level3",
        _ => "level4plus",
    }
}

/// Fold one SEE run's statistics into the observer's counters.
fn record_see_stats(obs: &Obs, s: &hca_see::SeeStats) {
    if !obs.is_enabled() {
        return;
    }
    obs.counter_add("see.states_explored", s.states_explored as u64);
    obs.counter_add("see.states_pruned", s.states_pruned as u64);
    obs.counter_add("see.cand_rejected_margin", s.cand_rejected_margin as u64);
    obs.counter_add("see.cand_rejected_branch", s.cand_rejected_branch as u64);
    obs.counter_add("see.route_attempts", s.route_attempts as u64);
    obs.counter_add("see.routed_nodes", s.routed_nodes as u64);
    obs.counter_add("see.routed_hops", u64::from(s.routed_hops));
    obs.counter_add("see.route_bfs_runs", s.route_bfs_runs as u64);
    obs.counter_add("see.route_cache_hits", s.route_cache_hits as u64);
    obs.counter_add("see.frontier_deduped", s.frontier_deduped as u64);
    obs.counter_add("see.dominance_pruned", s.dominance_pruned as u64);
    obs.counter_add("see.steps", s.steps as u64);
    // The occupancy vector is a bounded *sample* (STEP_SAMPLE_CAP); the
    // histogram over it stays representative, the exact totals live in
    // `beam_occupancy_sum` / `step_time_total_ns`.
    for &width in &s.beam_occupancy {
        obs.histogram_record("see.beam_occupancy", width);
    }
    obs.counter_add("see.step_time_us", s.step_time_total_ns / 1_000);
    // Trial clones made while scoring candidates. The mutation-free scorer
    // keeps this at zero; a non-zero value means a per-candidate state copy
    // crept back into the hot loop (`tests/determinism.rs` hard-fails on it).
    obs.counter_add("see.state_clones", s.state_clones as u64);
    // Batched-scoring kernel coverage. `lane_fill_pct` is the share of
    // scored candidates that went through full lane batches (a high-water
    // mark across runs): full-batch-only flushing makes capacity fill
    // trivially 100%, so coverage is the number worth watching.
    obs.counter_add("see.lanes_scored", s.lanes_scored as u64);
    obs.counter_add("see.lane_batches", s.lane_batches as u64);
    obs.counter_add("see.scalar_tail", s.scalar_tail as u64);
    let scored = s.lanes_scored + s.scalar_tail;
    if let Some(pct) = (s.lanes_scored * 100).checked_div(scored) {
        obs.counter_max("see.lane_fill_pct", pct as u64);
    }
    // Byte footprints are high-water marks, never histograms (histogram
    // buckets are dense, indexed by magnitude).
    obs.counter_max("see.route_table_bytes", s.route_table_bytes as u64);
    obs.counter_max("see.peak_frontier_bytes", s.peak_frontier_bytes as u64);
    obs.counter_max("see.arc_table_bytes", s.arc_table_bytes as u64);
    obs.counter_max("see.state_arena_bytes", s.state_arena_bytes as u64);
}

/// Shared immutable context of one HCA run, threaded through the recursive
/// sub-problem solver (and across `hca-par` workers — everything here is a
/// shared reference to immutable or internally-synchronised data).
struct SolveCtx<'a> {
    ddg: &'a Ddg,
    fabric: &'a DspFabric,
    config: &'a HcaConfig,
    obs: &'a Obs,
    analysis: &'a DdgAnalysis,
    theo_mii: u32,
    /// Topological position per DDG node (the memo cache is DDG-independent,
    /// so the run supplies this table to the key canonicaliser).
    topo_pos: &'a [usize],
    /// Sub-problem cache ([`HcaConfig::memo`]); `None` when disabled.
    memo: Option<&'a crate::memo::Memo>,
    /// Search-trace recorder ([`run_hca_traced`]); disabled elsewhere.
    tracer: &'a SearchTracer,
}

/// Everything one sub-problem subtree contributes to the final result.
///
/// Each solved sub-problem appends to these sequences locally; a parent
/// concatenates its children's results in **reverse member order** — the
/// traversal order of the historical explicit-stack DFS — so the merged
/// sequences (and everything derived from them: placement map insertion
/// order, route-op order, topology groups) are bit-identical whatever the
/// `HCA_THREADS` count.
#[derive(Default)]
pub(crate) struct SubResult {
    pub(crate) placement: Vec<(NodeId, CnId)>,
    pub(crate) route_ops: Vec<(NodeId, CnId)>,
    pub(crate) groups: Vec<(Vec<usize>, GroupTopology)>,
    pub(crate) stats: HcaStats,
    /// `est_mii` of the level-0 outcome (1 everywhere below the root).
    pub(crate) ini_mii: u32,
}

/// Fold a child subtree's statistics into the parent's.
fn merge_stats(into: &mut HcaStats, from: &HcaStats) {
    into.subproblems += from.subproblems;
    into.see_states += from.see_states;
    into.routed_nodes += from.routed_nodes;
    into.forwards += from.forwards;
    into.wires += from.wires;
    into.exact_wins += from.exact_wins;
}

/// [`run_hca`] with explicit observability: phase spans (decomposition,
/// per-level SEE, mapper, materialisation, coherency, MII), the SEE /
/// mapper / coherency counters, and structured diagnostic events replacing
/// the old `HCA_TRACE` `eprintln!`s. With a disabled [`Obs`] every hook is
/// a no-op branch and the run behaves exactly like [`run_hca`].
pub fn run_hca_obs(
    ddg: &Ddg,
    fabric: &DspFabric,
    config: &HcaConfig,
    obs: &Obs,
) -> Result<HcaResult, HcaError> {
    run_hca_inner(ddg, fabric, config, obs, None, &SearchTracer::disabled())
}

/// [`run_hca_obs`] with a search-trace recorder: every sub-problem emits
/// `sub` / `memo` / `tier` / `solved` records and every SEE run streams
/// per-step `step` records through the tracer (see
/// [`hca_obs::trace`] for the schema). One run-level `mii` record closes
/// the trace. With a disabled tracer this is exactly [`run_hca_obs`] —
/// the trace hooks are no-op branches on the hot path.
pub fn run_hca_traced(
    ddg: &Ddg,
    fabric: &DspFabric,
    config: &HcaConfig,
    obs: &Obs,
    tracer: &SearchTracer,
) -> Result<HcaResult, HcaError> {
    run_hca_inner(ddg, fabric, config, obs, None, tracer)
}

/// [`run_hca_obs`] with an externally owned sub-problem cache. The cache
/// outlives the run: a portfolio shares one across variants, and a serving
/// daemon shares one across every request it ever handles. The memo key
/// encodes the fabric and the full solving context, so one cache is sound
/// across different kernels, machines and configurations — a hit happens
/// exactly when a fresh solve would reproduce the cached bits. The shared
/// cache is used regardless of [`HcaConfig::memo`] (passing it *is* the
/// opt-in) and carries its own byte budget.
pub fn run_hca_shared(
    ddg: &Ddg,
    fabric: &DspFabric,
    config: &HcaConfig,
    obs: &Obs,
    memo: &crate::memo::Memo,
) -> Result<HcaResult, HcaError> {
    run_hca_inner(
        ddg,
        fabric,
        config,
        obs,
        Some(memo),
        &SearchTracer::disabled(),
    )
}

/// [`run_hca_obs`] with an optional externally owned sub-problem cache, so
/// a portfolio run can share one [`crate::memo::Memo`] across variants.
/// With `None` (and [`HcaConfig::memo`] on) the run owns a private cache.
///
/// When the exact backend displaced the beam result in at least one
/// sub-problem, the *global* never-worse-than-beam guarantee does not
/// follow from the per-sub-problem acceptance rule alone: a locally better
/// level result (same estimated MII, fewer copies) can steer the greedy
/// recursion into a worse final MII downstream. So this wrapper re-runs
/// the driver beam-only whenever `stats.exact_wins > 0` and keeps the
/// result with the lower final MII (the exact-assisted one on ties). The
/// extra run costs nothing in the common case — with zero exact wins the
/// two runs are bit-identical and the guard never fires.
fn run_hca_inner(
    ddg: &Ddg,
    fabric: &DspFabric,
    config: &HcaConfig,
    obs: &Obs,
    shared_memo: Option<&crate::memo::Memo>,
    tracer: &SearchTracer,
) -> Result<HcaResult, HcaError> {
    let res = run_hca_once(ddg, fabric, config, obs, shared_memo, tracer)?;
    if config.portfolio.mode == PortfolioMode::BeamOnly || res.stats.exact_wins == 0 {
        return Ok(res);
    }
    obs.counter_add("portfolio.guard_runs", 1);
    let beam_cfg = HcaConfig {
        portfolio: PortfolioConfig {
            mode: PortfolioMode::BeamOnly,
            ..config.portfolio
        },
        ..*config
    };
    // The guard run is untraced: a search trace describes one solve, and
    // the exact-assisted run above is the one being explained.
    let beam = run_hca_once(
        ddg,
        fabric,
        &beam_cfg,
        obs,
        shared_memo,
        &SearchTracer::disabled(),
    )?;
    let beam_better = beam.mii.final_mii < res.mii.final_mii && beam.is_legal();
    let mut kept = if beam_better || (!res.is_legal() && beam.is_legal()) {
        obs.counter_add("portfolio.guard_kept_beam", 1);
        beam
    } else {
        res
    };
    // Re-snapshot so the kept result's metrics cover the guard run too.
    kept.metrics = obs.snapshot();
    Ok(kept)
}

fn run_hca_once(
    ddg: &Ddg,
    fabric: &DspFabric,
    config: &HcaConfig,
    obs: &Obs,
    shared_memo: Option<&crate::memo::Memo>,
    tracer: &SearchTracer,
) -> Result<HcaResult, HcaError> {
    let analysis_span = obs.span("driver", "analysis");
    let analysis = DdgAnalysis::compute(ddg).map_err(HcaError::Analysis)?;
    let theo_mii = crate::mii::theoretical_mii(analysis.mii_rec, ddg, fabric);
    drop(analysis_span);

    let own_memo;
    let memo: Option<&crate::memo::Memo> = match shared_memo {
        // An explicit shared cache is the opt-in, whatever `config.memo`
        // says — its owner decided the budget and lifetime.
        Some(m) => Some(m),
        None if config.memo => {
            own_memo = Some(crate::memo::Memo::new(config.memo_budget));
            own_memo.as_ref()
        }
        None => None,
    };
    // Topological position per node, for the memo key's relative-order
    // encoding (the cache itself is DDG-independent).
    let mut topo_pos = vec![usize::MAX; ddg.num_nodes()];
    for (i, &n) in analysis.topo.iter().enumerate() {
        topo_pos[n.index()] = i;
    }
    let cx = SolveCtx {
        ddg,
        fabric,
        config,
        obs,
        analysis: &analysis,
        theo_mii,
        topo_pos: &topo_pos,
        memo,
        tracer,
    };
    let root = Subproblem::root(ddg.node_ids().collect());
    let sub = solve_subproblem(&cx, &root)?;

    let mut topology = Topology::new();
    for (path, group) in sub.groups {
        *topology.group_mut(&path) = group;
    }
    let mut placement: FxHashMap<NodeId, CnId> = FxHashMap::default();
    for (n, cn) in sub.placement {
        placement.insert(n, cn);
    }
    let route_ops = sub.route_ops;
    let ini_mii = sub.ini_mii;
    let mut stats = sub.stats;

    stats.forwards = route_ops.len();
    let materialise_span = obs.span("driver", "materialise");
    let final_program = build_final_program(ddg, fabric, &placement, &route_ops);
    drop(materialise_span);
    let mii_span = obs.span("driver", "mii");
    let mii = mii_report(
        ddg,
        analysis.mii_rec,
        fabric,
        &final_program,
        &topology,
        ini_mii,
    );
    drop(mii_span);
    // Run-level MII attribution: which §4.2 cost-model component the final
    // MII is bound by. `final_mii = max(ini_mii, max_cls_mii, wire_mii,
    // dma_mii, final_mii_rec)`; the binder is the first component reaching
    // it (dma is the only one the report does not carry explicitly).
    tracer.record(|| {
        let why = if mii.final_mii == mii.final_mii_rec {
            "recurrence"
        } else if mii.final_mii == mii.max_cls_mii {
            "cluster"
        } else if mii.final_mii == mii.wire_mii {
            "wire"
        } else if mii.final_mii == mii.ini_mii {
            "estimate"
        } else {
            "dma"
        };
        TraceRecord {
            kind: kind::MII.to_string(),
            est_mii: mii.final_mii,
            mii_rec: mii.final_mii_rec,
            mii_issue: mii.max_cls_mii,
            mii_arc: mii.wire_mii,
            why: why.to_string(),
            ..TraceRecord::default()
        }
    });
    let coherency = if config.validation == ValidationLevel::Off {
        CoherencyReport::default()
    } else {
        let place = placement.clone();
        let coherency_span = obs.span("driver", "coherency");
        let report = check_coherency(fabric, &topology, ddg, &move |n| place[&n]);
        drop(coherency_span);
        report
    };
    let coherency = match config.validation.enforce(coherency) {
        Ok(report) => report,
        Err(e) => {
            if let HcaError::Incoherent { report } = &e {
                obs.counter_add("coherency.violations", report.violations.len() as u64);
                obs.counter_add(
                    "coherency.topology_errors",
                    report.topology_errors.len() as u64,
                );
            }
            return Err(e);
        }
    };

    if obs.is_enabled() {
        if let Some(m) = memo {
            // High-water marks, not sums: a shared portfolio (or daemon)
            // cache reports its largest observed footprint, and evictions
            // are a lifetime count over the cache, not this run.
            obs.counter_max("driver.memo_bytes", m.approx_bytes() as u64);
            obs.counter_max("driver.memo_entries", m.entries() as u64);
            obs.counter_max("driver.memo_evictions", m.evictions());
        }
        obs.counter_add("driver.subproblems", stats.subproblems as u64);
        obs.counter_add("driver.forwards", stats.forwards as u64);
        obs.counter_add("driver.wires", stats.wires as u64);
        obs.counter_add("coherency.violations", coherency.violations.len() as u64);
        obs.counter_add(
            "coherency.topology_errors",
            coherency.topology_errors.len() as u64,
        );
        obs.instant(
            "driver",
            "done",
            vec![
                ("final_mii".into(), u64::from(mii.final_mii).into()),
                ("legal".into(), coherency.is_legal().into()),
            ],
        );
    }

    Ok(HcaResult {
        placement,
        topology,
        final_program,
        mii,
        coherency,
        stats,
        metrics: obs.snapshot(),
    })
}

/// Solve sub-problem `sp` and its whole subtree: run the SEE escalation
/// ladder and the Mapper at this level, then recurse into the child
/// sub-problems — in parallel, they are independent. Returns the subtree's
/// contribution to the final result; see [`SubResult`] for the determinism
/// contract.
fn solve_subproblem(cx: &SolveCtx<'_>, sp: &Subproblem) -> Result<SubResult, HcaError> {
    let SolveCtx {
        ddg,
        fabric,
        config,
        obs,
        analysis,
        theo_mii,
        topo_pos,
        memo,
        tracer,
    } = *cx;
    let trace_on = tracer.is_enabled();
    if trace_on {
        tracer.record(|| TraceRecord {
            kind: kind::SUB.to_string(),
            problem: sp.id(),
            depth: sp.depth() as u32,
            ws: sp.working_set.len() as u32,
            ili_in: sp.ili.inputs.len() as u32,
            ili_out: sp.ili.outputs.len() as u32,
            ..TraceRecord::default()
        });
    }
    // Memoisation: answer isomorphic sub-problems from the cache. The key
    // encodes the full solving context (see `memo` module docs), so a hit
    // rehydrates to exactly what the solve below would have produced.
    let memo_ctx = memo.map(|m| {
        let (key, canon2raw) =
            crate::memo::canonicalise(topo_pos, ddg, analysis, config, theo_mii, fabric, sp);
        (m, key, canon2raw)
    });
    if let Some((m, key, canon2raw)) = &memo_ctx {
        let hit = m.lookup(key);
        if trace_on {
            let was_hit = hit.is_some();
            tracer.record(|| TraceRecord {
                kind: kind::MEMO.to_string(),
                problem: sp.id(),
                depth: sp.depth() as u32,
                ok: was_hit,
                why: if was_hit { "hit" } else { "miss" }.to_string(),
                ..TraceRecord::default()
            });
        }
        if let Some(hit) = hit {
            obs.counter_add("driver.memo_hits", 1);
            return Ok(crate::memo::rehydrate(&hit, canon2raw, &sp.path, fabric));
        }
        obs.counter_add("driver.memo_misses", 1);
    }
    let mut res = SubResult {
        ini_mii: 1,
        ..SubResult::default()
    };
    res.stats.subproblems = 1;
    let d = sp.depth();
    let decompose_span = obs.span("driver", "decompose");
    let pg = level_pg(fabric, d, &sp.ili);
    let constraints = level_constraints(fabric, d);
    let spec = effective_spec(fabric, d);
    drop(decompose_span);
    // Pressure-balancing splits only at the very top: deeper levels must
    // hoard crossbar intake and CN input ports.
    let opts = MapOptions {
        balance_split: d + 2 < fabric.depth(),
    };

    // Escalating retries: when the beam dead-ends (or its assignment is
    // unmappable), widen the search before giving up — a common trick in
    // production clusterers, and cheap because failures are rare.
    let mut attempt_err: Option<HcaError> = None;
    let mut solved: Option<(hca_see::SeeOutcome, MapperOutput)> = None;
    // Escalation ladder. Tier 0 is the user's config plus the
    // spread-forcing issue cap; later tiers deliberately *diversify*
    // (different priority orders, wider beams, and finally a pure
    // copy-minimising objective) — empirically, distinct sub-problems
    // fall to distinct strategies, so breadth beats depth here.
    // Bound sharing (portfolio modes only): admissible MII floors computed
    // once, before any search, feed both backends — the beam's
    // proven-optimal tier skip below and the exact search's pruning cutoff.
    // BeamOnly skips even the computation so the historical mode stays
    // literally untouched.
    let bound: Option<u32> = (config.portfolio.mode != PortfolioMode::BeamOnly).then(|| {
        let lb = mii_lower_bound(ddg, analysis, &pg, &constraints, Some(&sp.working_set));
        obs.counter_add("portfolio.bounds_computed", 1);
        lb.overall()
    });
    let mut base = config.see;
    base.mii_bound = bound.or(base.mii_bound);
    let cap = config.issue_cap_slack;
    let tiers: [SeeConfig; 5] = [
        SeeConfig {
            issue_cap: cap.map(|s| theo_mii + s),
            ..base
        },
        SeeConfig {
            issue_cap: cap.map(|s| theo_mii + s + 2),
            beam_width: base.beam_width * 8,
            branch_factor: base.branch_factor * 2,
            candidate_margin: base.candidate_margin * 4.0,
            ..base
        },
        SeeConfig {
            issue_cap: None,
            beam_width: base.beam_width * 4,
            branch_factor: base.branch_factor + 1,
            candidate_margin: base.candidate_margin * 2.0,
            priority: hca_ddg::PriorityPolicy::ExternalOperandsFirst,
            ..base
        },
        SeeConfig {
            issue_cap: None,
            beam_width: base.beam_width * 4,
            branch_factor: base.branch_factor + 1,
            candidate_margin: f64::INFINITY,
            // Survival mode: a pressure-minimising objective steers every
            // beam state towards balanced placements that die on input
            // ports; pure copy minimisation co-locates dataflow
            // neighbours — the port-light shape that still fits.
            weights: hca_see::CostWeights::copies_only(),
            ..base
        },
        SeeConfig {
            issue_cap: None,
            beam_width: base.beam_width * 8,
            branch_factor: base.branch_factor * 2,
            candidate_margin: base.candidate_margin * 4.0,
            priority: hca_ddg::PriorityPolicy::ConnectivityFirst,
            ..base
        },
    ];
    // Run every tier and keep the best mapped result — tiers are cheap
    // (sub-problems are tiny) and which strategy wins varies per
    // sub-problem.
    let mut winner_tier: u32 = FALLBACK_TIER;
    // Set when a tier winner provably reached the global score minimum
    // (bound sharing): the remaining tiers — and the exact backend — have
    // nothing left to win.
    let mut bound_exit = false;
    let see_span = obs.span("see", level_phase(d));
    for (tier, see_cfg) in tiers.into_iter().enumerate() {
        let tier_t0 = trace_on.then(std::time::Instant::now);
        let elapsed_ns = |t0: Option<std::time::Instant>| {
            t0.map_or(0, |t| {
                u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
            })
        };
        let mut see = See::new(ddg, analysis, &pg, constraints, see_cfg);
        if trace_on {
            see = see.with_tracer(tracer.scoped(&sp.id(), d as u32, tier as u32));
        }
        let outcome = match see.run(Some(&sp.working_set)) {
            Ok(o) => o,
            Err(source) => {
                if trace_on {
                    let (ns, msg) = (elapsed_ns(tier_t0), source.to_string());
                    tracer.record(|| TraceRecord {
                        kind: kind::TIER.to_string(),
                        problem: sp.id(),
                        depth: d as u32,
                        tier: tier as u32,
                        ok: false,
                        ns,
                        why: msg,
                        ..TraceRecord::default()
                    });
                }
                obs.log("see", "tier_failed", || {
                    format!("{} tier {tier}: {source}", sp.id())
                });
                attempt_err = Some(HcaError::See {
                    problem: format!(
                        "{} (ws {} nodes, ili {} in / {} out, max_in {})",
                        sp.id(),
                        sp.working_set.len(),
                        sp.ili.inputs.len(),
                        sp.ili.outputs.len(),
                        constraints.max_in_neighbors,
                    ),
                    source,
                });
                continue;
            }
        };
        res.stats.see_states += outcome.stats.states_explored;
        record_see_stats(obs, &outcome.stats);
        match map_level_obs(&outcome.assigned, spec, opts, obs) {
            Ok(mapped) => {
                if trace_on {
                    let ns = elapsed_ns(tier_t0);
                    let (bfs, hits) = (
                        outcome.stats.route_bfs_runs as u64,
                        outcome.stats.route_cache_hits as u64,
                    );
                    let copies = outcome.assigned.total_copies() as u32;
                    let (est, mi, ma, cost) = (
                        outcome.est_mii,
                        outcome.mii_issue,
                        outcome.mii_arc,
                        outcome.cost,
                    );
                    tracer.record(|| TraceRecord {
                        kind: kind::TIER.to_string(),
                        problem: sp.id(),
                        depth: d as u32,
                        tier: tier as u32,
                        ok: true,
                        ns,
                        est_mii: est,
                        mii_rec: analysis.mii_rec,
                        mii_issue: mi,
                        mii_arc: ma,
                        cost,
                        copies,
                        route_bfs: bfs,
                        route_hits: hits,
                        ..TraceRecord::default()
                    });
                }
                // Copies dominate downstream cost (each becomes receives,
                // ports and wires one level down), so weigh them against
                // the local MII estimate rather than tie-breaking on it.
                let score =
                    |o: &hca_see::SeeOutcome| 16 * o.est_mii as usize + o.assigned.total_copies();
                let better = match &solved {
                    None => true,
                    Some((best, _)) => score(&outcome) < score(best),
                };
                if better {
                    winner_tier = tier as u32;
                    solved = Some((outcome, mapped));
                }
                // Proven-optimal early exit: with zero copies at the
                // admissible floor the winner's score `16·MII + copies`
                // sits at its global minimum, and the tier loop keeps the
                // *earliest* tier on score ties — so no later tier can
                // change the outcome. Skipping them is output-preserving,
                // and the floor is also an absolute optimality proof.
                if let (Some(b), Some((best, _))) = (bound, &solved) {
                    if best.est_mii <= b && best.assigned.total_copies() == 0 {
                        obs.counter_add("portfolio.bound_exits", 1);
                        obs.counter_add("portfolio.gap_known", 1);
                        bound_exit = true;
                        break;
                    }
                }
            }
            Err(source) => {
                if trace_on {
                    let (ns, msg) = (elapsed_ns(tier_t0), format!("map: {source}"));
                    tracer.record(|| TraceRecord {
                        kind: kind::TIER.to_string(),
                        problem: sp.id(),
                        depth: d as u32,
                        tier: tier as u32,
                        ok: false,
                        ns,
                        why: msg,
                        ..TraceRecord::default()
                    });
                }
                attempt_err = Some(HcaError::Map {
                    problem: sp.id(),
                    source,
                });
            }
        }
    }
    drop(see_span);
    // Completion backstop: the deterministic chain layout (see
    // `See::chain_fallback`) — legal whenever the consumed wires fit,
    // at terrible MII, so only the search's rare dead-ends pay it.
    if solved.is_none() {
        obs.counter_add("driver.fallbacks", 1);
        obs.log("driver", "fallback", || {
            let mut msg = format!(
                "chain fallback at {} (ws {}, ili {}in/{}out): {}",
                sp.id(),
                sp.working_set.len(),
                sp.ili.inputs.len(),
                sp.ili.outputs.len(),
                attempt_err
                    .as_ref()
                    .map_or_else(|| "?".into(), ToString::to_string),
            );
            if std::env::var("HCA_TRACE").as_deref() == Ok("2") {
                for (i, w) in sp.ili.inputs.iter().enumerate() {
                    msg.push_str(&format!("\n  in[{i}]: {:?}", w.values));
                }
                for (i, w) in sp.ili.outputs.iter().enumerate() {
                    msg.push_str(&format!("\n  out[{i}]: {:?}", w.values));
                }
            }
            msg
        });
        let fallback_span = obs.span("driver", "fallback");
        let see = See::new(ddg, analysis, &pg, constraints, config.see);
        // Layered (work-spreading) fallback first; the single-host chain
        // only for the cases it cannot express.
        for (label, outcome) in [
            ("layered", see.layered_fallback(Some(&sp.working_set))),
            ("chain", see.chain_fallback(Some(&sp.working_set))),
        ] {
            let Some(outcome) = outcome else { continue };
            if let Ok(mapped) = map_level_obs(&outcome.assigned, spec, opts, obs) {
                record_see_stats(obs, &outcome.stats);
                if trace_on {
                    let copies = outcome.assigned.total_copies() as u32;
                    let (est, mi, ma, cost) = (
                        outcome.est_mii,
                        outcome.mii_issue,
                        outcome.mii_arc,
                        outcome.cost,
                    );
                    tracer.record(|| TraceRecord {
                        kind: kind::TIER.to_string(),
                        problem: sp.id(),
                        depth: d as u32,
                        tier: FALLBACK_TIER,
                        ok: true,
                        est_mii: est,
                        mii_rec: analysis.mii_rec,
                        mii_issue: mi,
                        mii_arc: ma,
                        cost,
                        copies,
                        why: label.to_string(),
                        ..TraceRecord::default()
                    });
                }
                winner_tier = FALLBACK_TIER;
                solved = Some((outcome, mapped));
                break;
            }
        }
        drop(fallback_span);
    }

    // Exact backend: on small sub-problems, race the branch-and-bound
    // against the beam incumbent. Seeded with the beam's score it only ever
    // returns strictly better solutions; acceptance additionally requires a
    // no-worse MII, a successful Mapper run and a from-scratch
    // `ArchConstraints::check` pass — so the portfolio result is never
    // worse than beam-alone on MII and bit-identical to it whenever the
    // beam side wins. A bound-exited winner already sits at the global
    // score minimum, so the exact run is skipped as pointless.
    let beam_key = solved.as_ref().map(|(o, _)| {
        (
            solution_score(o.est_mii, o.assigned.total_copies() as u32),
            o.est_mii,
        )
    });
    let pf = &config.portfolio;
    if let Some((beam_score, beam_mii)) = beam_key {
        if pf.mode != PortfolioMode::BeamOnly
            && !bound_exit
            && !sp.working_set.is_empty()
            && sp.working_set.len() <= pf.exact_max_nodes
        {
            obs.counter_add("portfolio.exact_runs", 1);
            let cancel = if pf.mode == PortfolioMode::Race && pf.exact_deadline_ms > 0 {
                hca_par::CancelToken::with_deadline(std::time::Duration::from_millis(
                    pf.exact_deadline_ms,
                ))
            } else {
                hca_par::CancelToken::new()
            };
            let exact_t0 = trace_on.then(std::time::Instant::now);
            let exact_span = obs.span("see", "exact");
            let exact_see = See::new(ddg, analysis, &pg, constraints, SeeConfig::exhaustive());
            let run = exact_see.run_exact(
                Some(&sp.working_set),
                &ExactConfig {
                    node_budget: pf.exact_node_budget,
                    cancel,
                    incumbent_score: Some(beam_score),
                    floor: bound.unwrap_or(1),
                    ..ExactConfig::default()
                },
            );
            drop(exact_span);
            if let Ok(ex) = run {
                res.stats.see_states += usize::try_from(ex.nodes_visited).unwrap_or(usize::MAX);
                if ex.cancelled {
                    obs.counter_add("portfolio.exact_timeouts", 1);
                }
                if ex.mii_proven {
                    obs.counter_add("portfolio.exact_proofs", 1);
                }
                // Optimality-gap accounting: when the exact side settles
                // the optimum — floor hit (absolute) or full enumeration
                // (optimal among direct assignments) — record how far
                // beam-alone landed from it.
                let proven_opt = if ex.mii_proven {
                    ex.outcome.as_ref().map(|o| o.est_mii)
                } else if ex.exhausted {
                    Some(
                        ex.outcome
                            .as_ref()
                            .map_or(beam_mii, |o| o.est_mii.min(beam_mii)),
                    )
                } else {
                    None
                };
                if let Some(opt) = proven_opt {
                    obs.counter_add("portfolio.gap_known", 1);
                    obs.counter_add("portfolio.gap_sum", u64::from(beam_mii.saturating_sub(opt)));
                }
                let mut accepted = false;
                if let (Some(out), Some(ex_score)) = (ex.outcome, ex.score) {
                    // The legality gate applies to exact outputs exactly as
                    // Strict applies to beam outputs — whatever the run's
                    // validation level, an illegal exact solution never
                    // displaces a legal beam one.
                    if ex_score < beam_score
                        && out.est_mii <= beam_mii
                        && constraints.check(&out.assigned).is_ok()
                    {
                        if let Ok(mapped) = map_level_obs(&out.assigned, spec, opts, obs) {
                            obs.counter_add("portfolio.exact_wins", 1);
                            res.stats.exact_wins += 1;
                            record_see_stats(obs, &out.stats);
                            winner_tier = EXACT_TIER;
                            accepted = true;
                            solved = Some((out, mapped));
                        }
                    }
                }
                if trace_on {
                    let ns = exact_t0.map_or(0, |t| {
                        u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
                    });
                    let why = if ex.mii_proven {
                        "proven"
                    } else if ex.exhausted {
                        "exhausted"
                    } else if ex.cancelled {
                        "deadline"
                    } else {
                        "budget"
                    };
                    let (est, copies) = solved
                        .as_ref()
                        .filter(|_| accepted)
                        .map_or((0, 0), |(o, _)| {
                            (o.est_mii, o.assigned.total_copies() as u32)
                        });
                    tracer.record(|| TraceRecord {
                        kind: kind::TIER.to_string(),
                        problem: sp.id(),
                        depth: d as u32,
                        tier: EXACT_TIER,
                        ok: accepted,
                        ns,
                        est_mii: est,
                        mii_rec: analysis.mii_rec,
                        copies,
                        why: why.to_string(),
                        ..TraceRecord::default()
                    });
                }
            }
        }
    }

    if let Some((outcome, _)) = &solved {
        // Flow re-verification is a debugging aid, not a pipeline stage:
        // it stays behind the HCA_TRACE gate (an enabled observer alone
        // must not change what work the driver performs).
        if obs.is_enabled() && std::env::var_os("HCA_TRACE").is_some() {
            for err in outcome.assigned.check_flow(ddg, &sp.working_set) {
                obs.log("driver", "flow_violation", || {
                    format!("flow violation at {}: {err}", sp.id())
                });
            }
        }
    }

    let Some((outcome, mapped)) = solved else {
        obs.log("driver", "subproblem_failed", || {
            let mut msg = format!("--- failing subproblem {} ---", sp.id());
            for (i, w) in sp.ili.inputs.iter().enumerate() {
                msg.push_str(&format!("\n  in[{i}]: {:?}", w.values));
            }
            for (i, w) in sp.ili.outputs.iter().enumerate() {
                msg.push_str(&format!("\n  out[{i}]: {:?}", w.values));
            }
            for &n in &sp.working_set {
                let preds: Vec<String> = ddg
                    .pred_edges(n)
                    .map(|(_, e)| format!("{}{}", e.src, if e.distance > 0 { "*" } else { "" }))
                    .collect();
                msg.push_str(&format!("\n  {n}: {} <- {:?}", ddg.node(n).op, preds));
            }
            msg
        });
        return Err(attempt_err.expect("at least one attempt ran"));
    };
    if trace_on {
        // Per-sub-problem MII attribution: `est_mii` is
        // `max(mii_rec, mii_issue, mii_arc, 1)` — the binder is the first
        // component reaching it ("floor" when only the ≥1 clamp holds).
        let est = outcome.est_mii;
        let why = if analysis.mii_rec == est {
            "recurrence"
        } else if outcome.mii_issue == est {
            "issue"
        } else if outcome.mii_arc == est {
            "arc"
        } else {
            "floor"
        };
        let copies = outcome.assigned.total_copies() as u32;
        let (mi, ma, cost) = (outcome.mii_issue, outcome.mii_arc, outcome.cost);
        tracer.record(|| TraceRecord {
            kind: kind::SOLVED.to_string(),
            problem: sp.id(),
            depth: d as u32,
            tier: winner_tier,
            est_mii: est,
            mii_rec: analysis.mii_rec,
            mii_issue: mi,
            mii_arc: ma,
            cost,
            copies,
            why: why.to_string(),
            ..TraceRecord::default()
        });
    }
    if config.validation == ValidationLevel::Strict {
        // Defence in depth: SEE enforces the constraints incrementally, but
        // under Strict the solved assignment is re-checked from scratch so
        // a delta-state bug cannot smuggle an `outNode_MaxIn` (or port
        // budget) violation past the gate.
        if let Err(detail) = constraints.check(&outcome.assigned) {
            return Err(HcaError::Constraint {
                problem: sp.id(),
                detail,
            });
        }
    }
    obs.histogram_merge("mapper.copies_per_wire", &mapped.stats.copy_hist);
    obs.counter_add("mapper.member_wires", mapped.stats.member_wires as u64);
    obs.counter_add("mapper.glue_in_wires", mapped.stats.glue_in_wires as u64);
    res.stats.routed_nodes += outcome.stats.routed_nodes;
    if d == 0 {
        res.ini_mii = outcome.est_mii;
    }
    res.stats.wires += mapped.group.wires.len();
    res.groups.push((sp.path.clone(), mapped.group));

    if d + 1 == fabric.depth() {
        // Leaf: members are single CNs.
        for &n in &sp.working_set {
            let Some(c) = outcome.assigned.cluster_of(n) else {
                // An SEE dead-end on a pathological PG must surface as a
                // typed error, not a process abort.
                return Err(HcaError::Unassigned {
                    problem: sp.id(),
                    node: n,
                });
            };
            let mut path = sp.path.clone();
            path.push(outcome.assigned.pg.member_of(c));
            res.placement.push((n, fabric.cn_of_path(&path)));
        }
        for &(v, c) in &outcome.assigned.forwards {
            let mut path = sp.path.clone();
            path.push(outcome.assigned.pg.member_of(c));
            res.route_ops.push((v, fabric.cn_of_path(&path)));
        }
        // Relay hops: a CN that re-emits a value it neither produced nor
        // forwarded upward still spends an issue slot moving it from its
        // input buffer to its output register — materialise those too.
        // Relay dedup is local: leaf paths are disjoint, so CNs never
        // collide across sub-problems — seeding from this leaf's own
        // route ops is equivalent to the historical global seed.
        let mut relays: rustc_hash::FxHashSet<(NodeId, CnId)> =
            res.route_ops.iter().copied().collect();
        for (&(a, b), values) in outcome.assigned.copies.iter() {
            if !outcome.assigned.pg.node(a).kind.is_cluster() || values.is_empty() {
                continue;
            }
            let _ = b;
            for &v in values {
                if outcome.assigned.cluster_of(v) != Some(a) {
                    let mut path = sp.path.clone();
                    path.push(outcome.assigned.pg.member_of(a));
                    let cn = fabric.cn_of_path(&path);
                    if relays.insert((v, cn)) {
                        res.route_ops.push((v, cn));
                    }
                }
            }
        }
    } else {
        let children: Vec<Subproblem> = {
            let _decompose_span = obs.span("driver", "decompose");
            let wss = child_working_sets(&outcome.assigned, &sp.working_set, spec.arity);
            let mut children = Vec::new();
            for (member, ws) in wss.into_iter().enumerate() {
                let ili = mapped.child_ilis[member].clone();
                if ws.is_empty() && ili.is_empty() {
                    continue; // nothing to do in this subtree
                }
                let mut path = sp.path.clone();
                path.push(member);
                children.push(Subproblem {
                    path,
                    working_set: ws,
                    ili,
                });
            }
            children
        };
        // Sibling sub-problems are independent (disjoint working sets,
        // private ILIs): solve the subtrees on the worker pool. hca-par
        // returns results in input order; merging in *reverse* member
        // order reproduces the historical explicit-stack DFS traversal
        // bit for bit, whatever the thread count.
        let solved_children = hca_par::par_map(&children, |child| solve_subproblem(cx, child));
        for child in solved_children.into_iter().rev() {
            let child = child?;
            res.placement.extend(child.placement);
            res.route_ops.extend(child.route_ops);
            res.groups.extend(child.groups);
            merge_stats(&mut res.stats, &child.stats);
        }
    }
    if let Some((m, key, canon2raw)) = memo_ctx {
        // Defensive: anything outside the canonical universe (which would
        // make rehydration unsound) skips the cache instead of poisoning it.
        match crate::memo::capture(&res, &canon2raw, &sp.path, fabric) {
            Some(canon) => m.insert(key, canon),
            None => obs.counter_add("driver.memo_uncachable", 1),
        }
    }
    Ok(res)
}

/// Run HCA under a small portfolio of base configurations and keep the
/// legal result with the lowest final MII (ties: fewer receives). The
/// per-sub-problem escalation ladder already diversifies *within* a run;
/// this outer sweep additionally varies the global search character, which
/// matters because upper-level choices lock in the decomposition.
pub fn run_hca_portfolio(ddg: &Ddg, fabric: &DspFabric) -> Result<HcaResult, HcaError> {
    run_hca_portfolio_obs(ddg, fabric, &Obs::disabled())
}

/// [`run_hca_portfolio`] with observability. All variants share the
/// observer (counters accumulate across the portfolio, spans are labelled
/// with the variant index); the winner's [`HcaResult::metrics`] snapshot is
/// taken at the end so it covers the whole portfolio run.
pub fn run_hca_portfolio_obs(
    ddg: &Ddg,
    fabric: &DspFabric,
    obs: &Obs,
) -> Result<HcaResult, HcaError> {
    let mut base = HcaConfig::default();
    let mut variants: Vec<HcaConfig> = vec![base];
    base.see.beam_width = 16;
    base.see.branch_factor = 4;
    variants.push(base);
    let mut wide = HcaConfig::default();
    wide.see.beam_width = 64;
    wide.see.branch_factor = 6;
    wide.see.candidate_margin = 64.0;
    variants.push(wide);
    let mut copyish = HcaConfig::default();
    copyish.see.weights.copy = 2.0;
    copyish.see.weights.pressure = 2.0;
    variants.push(copyish);
    let mut ext = HcaConfig::default();
    ext.see.priority = hca_ddg::PriorityPolicy::ExternalOperandsFirst;
    variants.push(ext);

    // One sub-problem cache shared by every variant: the memo key encodes
    // the solving configuration, so cross-variant reuse happens exactly
    // when two variants would solve a sub-problem identically.
    let shared_memo = crate::memo::Memo::new(crate::memo::Memo::DEFAULT_BUDGET);

    let mut best: Option<HcaResult> = None;
    let mut last_err: Option<HcaError> = None;
    for (i, cfg) in variants.into_iter().enumerate() {
        let span = obs
            .span("driver", "portfolio_variant")
            .with_arg("variant", i);
        let memo = if cfg.memo { Some(&shared_memo) } else { None };
        let run = run_hca_inner(ddg, fabric, &cfg, obs, memo, &SearchTracer::disabled());
        drop(span);
        match run {
            Ok(res) => {
                let key =
                    |r: &HcaResult| (!r.is_legal(), r.mii.final_mii, r.final_program.num_recvs());
                if best.as_ref().is_none_or(|b| key(&res) < key(b)) {
                    best = Some(res);
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    if let Some(res) = &mut best {
        // Re-snapshot so the winner's metrics cover every variant.
        res.metrics = obs.snapshot();
    }
    best.ok_or_else(|| last_err.expect("at least one variant ran"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_ddg::{DdgBuilder, Opcode};

    /// A small synthetic kernel: 4 independent MAC chains over loaded data,
    /// with a carried accumulator each, plus stores.
    fn small_kernel() -> Ddg {
        let mut b = DdgBuilder::default();
        for _ in 0..4 {
            let addr = b.node(Opcode::AddrAdd);
            b.carried(addr, addr, 1);
            let ld = b.op_with(Opcode::Load, &[addr]);
            let k = b.node(Opcode::Const);
            let prod = b.op_with(Opcode::Mul, &[ld, k]);
            let acc = b.op_with(Opcode::Mac, &[prod]);
            b.carried(acc, acc, 1);
            let st = b.op_with(Opcode::Store, &[acc, addr]);
            let _ = st;
        }
        b.finish()
    }

    #[test]
    fn hca_places_every_node_on_standard_machine() {
        let ddg = small_kernel();
        let fabric = DspFabric::standard(8, 8, 8);
        let res = run_hca(&ddg, &fabric, &HcaConfig::default()).unwrap();
        assert_eq!(res.placement.len(), ddg.num_nodes());
        assert!(res.is_legal(), "{:?}", res.coherency);
        assert!(res.mii.final_mii >= res.mii.theoretical);
        assert!(res.stats.subproblems >= 1);
    }

    #[test]
    fn hca_two_level_machine() {
        let ddg = small_kernel();
        let fabric = DspFabric::two_level(4, 4, 4);
        let res = run_hca(&ddg, &fabric, &HcaConfig::default()).unwrap();
        assert!(res.is_legal(), "{:?}", res.coherency);
        // 16 single-issue CNs for 24 instructions: MII at least 2.
        assert!(res.mii.final_mii >= 2);
    }

    #[test]
    fn empty_ddg_is_trivially_legal() {
        let ddg = Ddg::new();
        let fabric = DspFabric::standard(4, 4, 4);
        let res = run_hca(&ddg, &fabric, &HcaConfig::default()).unwrap();
        assert!(res.is_legal());
        assert_eq!(res.final_program.ddg.num_nodes(), 0);
        assert_eq!(res.mii.final_mii, 1);
    }

    #[test]
    fn single_node() {
        let mut b = DdgBuilder::default();
        b.node(Opcode::Add);
        let ddg = b.finish();
        let fabric = DspFabric::standard(8, 8, 8);
        let res = run_hca(&ddg, &fabric, &HcaConfig::default()).unwrap();
        assert!(res.is_legal());
        assert_eq!(res.mii.final_mii, 1);
        assert_eq!(res.stats.wires, 0);
    }

    #[test]
    fn strict_validation_accepts_legal_runs() {
        let ddg = small_kernel();
        let fabric = DspFabric::standard(8, 8, 8);
        let res = run_hca(&ddg, &fabric, &HcaConfig::strict()).unwrap();
        assert!(res.is_legal());
        assert_eq!(res.placement.len(), ddg.num_nodes());
    }

    #[test]
    fn validation_off_skips_the_checker() {
        let ddg = small_kernel();
        let fabric = DspFabric::standard(8, 8, 8);
        let cfg = HcaConfig {
            validation: ValidationLevel::Off,
            ..HcaConfig::default()
        };
        let res = run_hca(&ddg, &fabric, &cfg).unwrap();
        // The report is vacuously empty — Off means "trust me".
        assert!(res.coherency.violations.is_empty());
        assert!(res.coherency.topology_errors.is_empty());
    }

    #[test]
    fn portfolio_exact_small_never_worse_and_deterministic() {
        let ddg = small_kernel();
        let fabric = DspFabric::two_level(4, 4, 4);
        let beam = run_hca(&ddg, &fabric, &HcaConfig::strict()).unwrap();
        let cfg = HcaConfig {
            portfolio: PortfolioConfig::exact_small(),
            ..HcaConfig::strict()
        };
        let a = run_hca(&ddg, &fabric, &cfg).unwrap();
        let b = run_hca(&ddg, &fabric, &cfg).unwrap();
        assert!(a.is_legal(), "{:?}", a.coherency);
        assert!(
            a.mii.final_mii <= beam.mii.final_mii,
            "portfolio MII {} worse than beam-alone {}",
            a.mii.final_mii,
            beam.mii.final_mii
        );
        // ExactSmall never arms the deadline: bit-identical replays.
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.mii, b.mii);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn portfolio_counters_reach_the_observer() {
        let ddg = small_kernel();
        let fabric = DspFabric::standard(8, 8, 8);
        let cfg = HcaConfig {
            portfolio: PortfolioConfig::race(),
            ..HcaConfig::strict()
        };
        let obs = Obs::enabled();
        let res = run_hca_obs(&ddg, &fabric, &cfg, &obs).unwrap();
        let m = res.metrics.expect("enabled observer snapshots metrics");
        assert!(m.counter("portfolio.bounds_computed").unwrap_or(0) > 0);
        // Every small sub-problem either bound-exits the tier ladder or
        // reaches the exact backend.
        let engaged = m.counter("portfolio.exact_runs").unwrap_or(0)
            + m.counter("portfolio.bound_exits").unwrap_or(0);
        assert!(engaged > 0, "portfolio never engaged: {:?}", m.counters);
    }

    #[test]
    fn beam_only_computes_no_bounds() {
        let ddg = small_kernel();
        let fabric = DspFabric::standard(8, 8, 8);
        let obs = Obs::enabled();
        let res = run_hca_obs(&ddg, &fabric, &HcaConfig::strict(), &obs).unwrap();
        let m = res.metrics.expect("enabled observer snapshots metrics");
        assert_eq!(m.counter("portfolio.bounds_computed"), None);
        assert_eq!(m.counter("portfolio.exact_runs"), None);
    }

    #[test]
    fn ill_formed_ddg_rejected() {
        let mut g = Ddg::new();
        let a = g.add_node(Opcode::Add, None);
        let c = g.add_node(Opcode::Add, None);
        g.add_edge(a, c, 1, 0);
        g.add_edge(c, a, 1, 0);
        let fabric = DspFabric::standard(8, 8, 8);
        match run_hca(&g, &fabric, &HcaConfig::default()) {
            Err(HcaError::Analysis(DdgError::ZeroDistanceCycle)) => {}
            other => panic!("expected analysis error, got {other:?}"),
        }
    }
}
