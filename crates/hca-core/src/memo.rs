//! Cross-sub-problem memoisation of solved subtrees — shared, sharded,
//! byte-budgeted and persistent.
//!
//! The decomposition tree frequently contains *isomorphic* sub-problems:
//! symmetric kernels split into structurally identical children, a
//! portfolio run re-solves whole subtrees whenever two variants agree on
//! the solving context, and a long-running `hca serve` daemon sees the same
//! kernels (or near-duplicates) over and over across requests. This module
//! caches each solved [`SubResult`] under a **renumbering-equivariant
//! canonical key** so an isomorphic sub-problem is answered by rehydrating
//! the cached subtree instead of re-searching.
//!
//! ## Soundness of the key
//!
//! A cache hit must imply that a fresh solve would produce the bit-identical
//! result. The key therefore encodes *everything* the solver reads:
//!
//! * the machine itself — every [`LevelSpec`](hca_arch::LevelSpec) field of
//!   the fabric, the DMA model and the copy latency. The per-level PG and
//!   constraints are pure functions of (fabric, depth, ILI), so with the
//!   fabric in the key one [`Memo`] may outlive any single run and serve
//!   requests against *different* machines;
//! * the full solving context — every result-affecting
//!   [`SeeConfig`](hca_see::SeeConfig) field (the escalation tiers are pure
//!   functions of it; result-transparent fields like `batched_scoring`,
//!   `scalar_cutoff`, `lane_width` and `mii_bound` are deliberately
//!   exempt — they are pinned bit-identical by the determinism suite), the
//!   issue-cap slack, validation level, the full
//!   [`PortfolioConfig`](crate::PortfolioConfig) (mode, exact size/budget
//!   caps and the deadline — a deadline-raced entry must never answer a
//!   deterministic run), the unified-machine theoretical MII, `MIIRec`,
//!   the *effective* dominance flag (config AND environment), and the
//!   hierarchy depth;
//! * the working set in canonical numbering (nodes renumbered by sorted
//!   `NodeId` rank; externals by first appearance), including the *given*
//!   working-set order, per-node opcodes, and full pred/succ edge lists in
//!   adjacency order with latencies and distances;
//! * the ILI wire structure, wire by wire, value by value;
//! * the per-node analysis scalars the engine consumes (ASAP, ALAP,
//!   height, canonical SCC rank, relative topological rank) for every
//!   referenced node — externals included, since edge slack reads both
//!   endpoints;
//! * the relative raw-`NodeId` order of all referenced nodes. Every
//!   id-based tie-break in the pipeline (priority sorting, the mapper's
//!   `sort_by_key(|f| f.value)`, working-set sorts) is an *order*
//!   comparison, so it behaves identically on two sub-problems exactly
//!   when this permutation matches.
//!
//! The key is the full encoding (a `Vec<u64>` compared by `Eq`), not a
//! digest — hash collisions cannot produce false hits. The key contains no
//! per-process state (no addresses, no hashes, no iteration order of
//! unordered containers), which is what makes an on-disk snapshot written
//! by one process sound when loaded by another.
//!
//! The key deliberately encodes no `PartialState` internals: it is built
//! from the sub-problem *inputs* (DDG slice, ILI, context), never from the
//! engine's in-flight search state, so representation changes inside
//! `hca-see` cannot drift the key. Determinism of the cached *values* is
//! covered by `tests/memo_equivalence.rs`.
//!
//! ## Concurrency, bounds and crash safety
//!
//! The map is split into [`NUM_SHARDS`] shards, each behind its own mutex,
//! selected by the key's hash — concurrent requests from an `hca serve`
//! worker set contend per shard, not globally. Every lock acquisition
//! recovers from poisoning (`PoisonError::into_inner`): the cache only ever
//! holds plain data whose invariants are restored before the guard drops,
//! so a worker that panicked *while not holding the lock* — the only way a
//! panic escapes a request — must not permanently disable caching for the
//! rest of a long-running daemon.
//!
//! Each shard keeps an intrusive LRU list and a byte account (the same
//! accounting [`Memo::approx_bytes`] reports). Inserting beyond the
//! per-shard budget evicts least-recently-used entries first; an entry
//! larger than a whole shard's budget is simply not cached. Eviction can
//! only turn hits into misses — a miss re-solves and reproduces the
//! identical result — so the budget bounds memory without affecting output
//! (pinned by `tests/memo_equivalence.rs`).
//!
//! [`Memo::save`] / [`Memo::load`] persist the canonical entry table as a
//! versioned JSON snapshot ([`SNAPSHOT_VERSION`]): `hca serve` snapshots on
//! shutdown and reloads on start, and a snapshot whose version does not
//! match the running binary is *discarded*, never trusted.

use crate::driver::{HcaConfig, SubResult};
use crate::problem::Subproblem;
use hca_arch::{DspFabric, GroupPath, GroupTopology};
use hca_ddg::{Ddg, DdgAnalysis, NodeId};
use rustc_hash::{FxHashMap, FxHasher};
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Renumbering-equivariant canonical key of a sub-problem (full encoding,
/// collision-free by construction).
#[derive(PartialEq, Eq, Hash, Serialize, Deserialize)]
pub(crate) struct MemoKey(Vec<u64>);

/// A solved subtree in canonical form (see the module docs).
#[derive(Clone, Serialize, Deserialize)]
pub(crate) struct CanonSub {
    /// `(canonical node, CN-path suffix below the sub-problem)`.
    placement: Vec<(u64, Vec<usize>)>,
    /// Route ops, same encoding as `placement`.
    route_ops: Vec<(u64, Vec<usize>)>,
    /// Group topologies keyed by path suffix, wire values canonicalised.
    groups: Vec<(Vec<usize>, GroupTopology)>,
    stats: crate::driver::HcaStats,
    ini_mii: u32,
}

/// Shards of the concurrent map. A power of two so the shard index is a
/// mask; 16 comfortably out-ships the worker counts `hca-par` spawns.
const NUM_SHARDS: usize = 16;

/// Snapshot schema version. Bump whenever the key encoding or the canonical
/// value layout changes: [`Memo::load`] rejects (discards) any snapshot
/// whose version differs, because keys from an older encoding could alias
/// current ones and rehydrate stale results.
pub const SNAPSHOT_VERSION: u32 = 2;

/// Sentinel for "no LRU neighbour".
const NIL: usize = usize::MAX;

/// One cached entry: the canonical value plus its intrusive LRU links.
struct Entry {
    key: Arc<MemoKey>,
    sub: CanonSub,
    /// Accounted heap footprint of key + value (see [`entry_bytes`]).
    bytes: usize,
    /// Towards more-recently-used.
    prev: usize,
    /// Towards less-recently-used.
    next: usize,
}

/// One lock's worth of the cache: hash map + slab-backed LRU list.
#[derive(Default)]
struct Shard {
    /// Key → slab slot.
    map: FxHashMap<Arc<MemoKey>, usize>,
    /// Slot storage; `None` slots are on the free list.
    slab: Vec<Option<Entry>>,
    free: Vec<usize>,
    /// Most-recently-used slot, or [`NIL`].
    head: usize,
    /// Least-recently-used slot, or [`NIL`].
    tail: usize,
    /// Accounted bytes of all live entries.
    bytes: usize,
}

impl Shard {
    fn new() -> Self {
        Shard {
            head: NIL,
            tail: NIL,
            ..Shard::default()
        }
    }

    /// Unlink `slot` from the LRU list (it stays in the slab).
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = {
            let e = self.slab[slot].as_ref().expect("live slot");
            (e.prev, e.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slab[p].as_mut().expect("live prev").next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].as_mut().expect("live next").prev = prev,
        }
    }

    /// Link `slot` at the most-recently-used end.
    fn push_front(&mut self, slot: usize) {
        {
            let e = self.slab[slot].as_mut().expect("live slot");
            e.prev = NIL;
            e.next = self.head;
        }
        match self.head {
            NIL => self.tail = slot,
            h => self.slab[h].as_mut().expect("live head").prev = slot,
        }
        self.head = slot;
    }

    /// Move an existing slot to the most-recently-used position.
    fn touch(&mut self, slot: usize) {
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
    }

    /// Remove the least-recently-used entry; returns its byte account.
    fn evict_tail(&mut self) -> Option<usize> {
        let slot = self.tail;
        if slot == NIL {
            return None;
        }
        self.unlink(slot);
        let entry = self.slab[slot].take().expect("live tail");
        self.map.remove(entry.key.as_ref());
        self.free.push(slot);
        self.bytes -= entry.bytes;
        Some(entry.bytes)
    }

    /// Insert a fresh entry at the MRU position.
    fn insert(&mut self, key: Arc<MemoKey>, sub: CanonSub, bytes: usize) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s] = Some(Entry {
                    key: key.clone(),
                    sub,
                    bytes,
                    prev: NIL,
                    next: NIL,
                });
                s
            }
            None => {
                self.slab.push(Some(Entry {
                    key: key.clone(),
                    sub,
                    bytes,
                    prev: NIL,
                    next: NIL,
                }));
                self.slab.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.bytes += bytes;
        self.push_front(slot);
    }
}

/// The shared sub-problem cache: sharded, byte-budgeted, LRU-evicting,
/// poison-recovering, and snapshot-persistent. One `Memo` may be scoped to
/// a single run, shared across a portfolio, or owned by a long-running
/// `hca serve` daemon and shared across every request it ever handles —
/// the canonical key encodes the fabric and the full solving context, so
/// cross-request reuse happens exactly when a fresh solve would reproduce
/// the cached bits.
pub struct Memo {
    shards: Vec<Mutex<Shard>>,
    /// Total byte budget across all shards (0 = cache nothing).
    budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
}

/// Recover a shard guard even when a previous holder panicked: the cache's
/// invariants are re-established before every unlock, so the data behind a
/// poisoned lock is still consistent — continuing is strictly better than
/// turning one dead worker into a permanently dead cache.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Memo {
    /// Default byte budget (64 MiB): generous for single runs, bounded for
    /// daemons. Override per run via `HcaConfig::memo_budget` or per daemon
    /// via `hca serve --memo-budget-mb`.
    pub const DEFAULT_BUDGET: usize = 64 << 20;

    /// Fresh empty cache with a total byte budget. The cache is
    /// DDG-independent: requests against any kernel/fabric pair may share
    /// it (the key disambiguates).
    pub fn new(budget_bytes: usize) -> Self {
        Memo {
            shards: (0..NUM_SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            budget: budget_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
        }
    }

    /// The configured total byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Lifetime cache hits (across every run sharing this cache).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime cache misses.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lifetime LRU evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Lifetime insertions (entries ever cached).
    pub fn insertions(&self) -> u64 {
        self.insertions.load(Ordering::Relaxed)
    }

    fn shard_of(&self, key: &MemoKey) -> &Mutex<Shard> {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & (NUM_SHARDS - 1)]
    }

    pub(crate) fn lookup(&self, key: &MemoKey) -> Option<CanonSub> {
        let mut shard = lock_recover(self.shard_of(key));
        match shard.map.get(key).copied() {
            Some(slot) => {
                shard.touch(slot);
                let sub = shard.slab[slot].as_ref().expect("live slot").sub.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(sub)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// First writer wins; by the key contract any two writers hold
    /// identical canonical content, so the race is benign. Evicts
    /// least-recently-used entries when the shard's share of the byte
    /// budget overflows; an entry that alone exceeds that share is not
    /// cached at all (caching it would immediately evict everything else).
    pub(crate) fn insert(&self, key: MemoKey, sub: CanonSub) {
        let shard_budget = self.budget / NUM_SHARDS;
        let bytes = entry_bytes(&key, &sub);
        if bytes > shard_budget {
            return;
        }
        let mutex = self.shard_of(&key);
        let mut shard = lock_recover(mutex);
        if let Some(&slot) = shard.map.get(&key) {
            shard.touch(slot);
            return;
        }
        let mut evicted = 0u64;
        while shard.bytes + bytes > shard_budget && shard.evict_tail().is_some() {
            evicted += 1;
        }
        shard.insert(Arc::new(key), sub, bytes);
        drop(shard);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of cached canonical sub-problems.
    pub fn entries(&self) -> usize {
        self.shards.iter().map(|s| lock_recover(s).map.len()).sum()
    }

    /// Approximate heap footprint of the cache: the full `u64` key
    /// encodings plus canonical placements, route ops and group
    /// topologies. Feeds the `driver.memo_bytes` high-water counter and is
    /// the same accounting the LRU budget enforces.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .shards
                .iter()
                .map(|s| lock_recover(s).bytes)
                .sum::<usize>()
    }

    /// Write a versioned snapshot of every cached entry to `path`
    /// (least-recently-used first, so a reload reproduces the recency
    /// order). Returns the number of entries written.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<usize> {
        let mut entries: Vec<SnapshotEntry> = Vec::new();
        for mutex in &self.shards {
            let shard = lock_recover(mutex);
            // Walk tail → head: oldest first.
            let mut slot = shard.tail;
            while slot != NIL {
                let e = shard.slab[slot].as_ref().expect("live slot");
                entries.push(SnapshotEntry {
                    key: e.key.0.clone(),
                    sub: e.sub.clone(),
                });
                slot = e.prev;
            }
        }
        let count = entries.len();
        let snap = Snapshot {
            version: SNAPSHOT_VERSION,
            entries,
        };
        let body = serde_json::to_string(&snap)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        // Write-then-rename so a crash mid-write never truncates a good
        // snapshot into an unparsable one.
        let tmp = path.as_ref().with_extension("tmp");
        std::fs::write(&tmp, body)?;
        std::fs::rename(&tmp, path.as_ref())?;
        Ok(count)
    }

    /// Load a snapshot into a fresh cache with the given budget. Errors
    /// (unreadable file, malformed JSON, version mismatch) mean the caller
    /// should start cold — a stale snapshot is discarded, never trusted.
    pub fn load(path: impl AsRef<Path>, budget_bytes: usize) -> Result<Memo, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("{}: {e}", path.as_ref().display()))?;
        let snap: Snapshot = serde_json::from_str(&text)
            .map_err(|e| format!("{}: malformed snapshot: {e}", path.as_ref().display()))?;
        if snap.version != SNAPSHOT_VERSION {
            return Err(format!(
                "{}: snapshot version {} does not match {} — discarding",
                path.as_ref().display(),
                snap.version,
                SNAPSHOT_VERSION
            ));
        }
        let memo = Memo::new(budget_bytes);
        for e in snap.entries {
            memo.insert(MemoKey(e.key), e.sub);
        }
        // Loading is bookkeeping, not traffic: start the counters clean so
        // a daemon's stats reflect what it served, not what it loaded.
        memo.hits.store(0, Ordering::Relaxed);
        memo.misses.store(0, Ordering::Relaxed);
        memo.evictions.store(0, Ordering::Relaxed);
        memo.insertions.store(0, Ordering::Relaxed);
        Ok(memo)
    }

    /// Deliberately poison every shard lock (a panic while the guard is
    /// held), for tests that pin the poison-recovery behaviour.
    #[cfg(test)]
    fn poison_all_shards(&self) {
        for mutex in &self.shards {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _guard = mutex.lock().unwrap();
                panic!("poison this shard");
            }));
        }
    }
}

/// On-disk snapshot schema (one JSON object).
#[derive(Serialize, Deserialize)]
struct Snapshot {
    version: u32,
    entries: Vec<SnapshotEntry>,
}

#[derive(Serialize, Deserialize)]
struct SnapshotEntry {
    key: Vec<u64>,
    sub: CanonSub,
}

/// Accounted heap footprint of one entry — key encoding plus canonical
/// placements, route ops and group topologies.
fn entry_bytes(key: &MemoKey, sub: &CanonSub) -> usize {
    use std::mem::{size_of, size_of_val};
    let mut bytes = size_of::<MemoKey>() + key.0.len() * size_of::<u64>();
    bytes += size_of::<CanonSub>();
    for (_, p) in sub.placement.iter().chain(&sub.route_ops) {
        bytes += size_of::<(u64, Vec<usize>)>() + p.len() * size_of::<usize>();
    }
    for (sfx, g) in &sub.groups {
        bytes += size_of::<(Vec<usize>, GroupTopology)>() + sfx.len() * size_of::<usize>();
        for w in &g.wires {
            bytes += size_of_val(w) + w.values.len() * size_of::<NodeId>();
        }
    }
    bytes
}

/// Intern `v` into the canonical numbering, appending new externals.
fn intern(canon: &mut FxHashMap<NodeId, u64>, canon2raw: &mut Vec<NodeId>, v: NodeId) -> u64 {
    *canon.entry(v).or_insert_with(|| {
        canon2raw.push(v);
        (canon2raw.len() - 1) as u64
    })
}

/// Build the canonical key of `sp` plus the canonical→raw node table the
/// capture/rehydrate pair shares. `topo_pos` maps each DDG node to its
/// position in the run's topological order (the cache itself is
/// DDG-independent, so the run supplies this per-DDG table).
pub(crate) fn canonicalise(
    topo_pos: &[usize],
    ddg: &Ddg,
    analysis: &DdgAnalysis,
    config: &HcaConfig,
    theo_mii: u32,
    fabric: &DspFabric,
    sp: &Subproblem,
) -> (MemoKey, Vec<NodeId>) {
    let s = &config.see;
    let mut enc: Vec<u64> = Vec::with_capacity(48 + sp.working_set.len() * 16);
    // The machine: one cache may serve runs against different fabrics, so
    // the key pins every machine parameter the solver reads (PG shape and
    // constraints are pure functions of fabric + depth + ILI).
    enc.push(fabric.levels.len() as u64);
    for l in &fabric.levels {
        enc.extend_from_slice(&[
            l.arity as u64,
            l.in_wires as u64,
            l.out_wires as u64,
            l.glue_in as u64,
            l.glue_out as u64,
        ]);
    }
    enc.extend_from_slice(&[
        u64::from(fabric.dma.ports),
        u64::from(fabric.dma.latency),
        u64::from(fabric.copy_latency),
    ]);
    enc.extend_from_slice(&[
        s.beam_width as u64,
        s.branch_factor as u64,
        s.candidate_margin.to_bits(),
        s.weights.copy.to_bits(),
        s.weights.pressure.to_bits(),
        s.weights.balance.to_bits(),
        s.weights.critical.to_bits(),
        s.weights.recurrence.to_bits(),
        s.weights.route.to_bits(),
        s.priority as u64,
        u64::from(s.enable_router),
        s.max_route_hops as u64,
        s.issue_cap.map_or(u64::MAX, u64::from),
        u64::from(s.dominance && std::env::var_os("HCA_NO_DOMINANCE").is_none()),
        config.issue_cap_slack.map_or(u64::MAX, u64::from),
        config.validation as u64,
        // Portfolio context: the exact backend can change a cached subtree
        // (placements, stats), and a Race entry is deadline-dependent —
        // the shared `hca serve` cache must never cross-contaminate
        // solver configurations.
        config.portfolio.mode as u64,
        config.portfolio.exact_max_nodes as u64,
        config.portfolio.exact_node_budget,
        config.portfolio.exact_deadline_ms,
        u64::from(theo_mii),
        u64::from(analysis.mii_rec),
        sp.depth() as u64,
        sp.working_set.len() as u64,
        sp.ili.inputs.len() as u64,
        sp.ili.outputs.len() as u64,
    ]);

    // Canonical numbering: working-set nodes by sorted-id rank …
    let mut canon2raw: Vec<NodeId> = sp.working_set.clone();
    canon2raw.sort_unstable();
    let mut canon: FxHashMap<NodeId, u64> = canon2raw
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i as u64))
        .collect();
    // … and the given working-set order on top of it (the search consumes
    // the set in this order).
    for &n in &sp.working_set {
        enc.push(canon[&n]);
    }

    // Per-node structure in canonical order. Iterate by index: `canon2raw`
    // only ever grows (interning appends externals), indices are stable.
    for i in 0..sp.working_set.len() {
        let n = canon2raw[i];
        enc.push(ddg.node(n).op as u64);
        let preds: Vec<_> = ddg.pred_edges(n).collect();
        enc.push(preds.len() as u64);
        for (_, e) in preds {
            enc.push(intern(&mut canon, &mut canon2raw, e.src));
            enc.push(u64::from(e.latency));
            enc.push(u64::from(e.distance));
        }
        let succs: Vec<_> = ddg.succ_edges(n).collect();
        enc.push(succs.len() as u64);
        for (_, e) in succs {
            enc.push(intern(&mut canon, &mut canon2raw, e.dst));
            enc.push(u64::from(e.latency));
            enc.push(u64::from(e.distance));
        }
    }
    for wire in sp.ili.inputs.iter().chain(&sp.ili.outputs) {
        enc.push(wire.values.len() as u64);
        for &v in &wire.values {
            enc.push(intern(&mut canon, &mut canon2raw, v));
        }
    }

    // Analysis scalars for every referenced node, externals included.
    let lv = &analysis.levels;
    for &n in &canon2raw {
        enc.push(u64::from(lv.asap[n.index()]));
        enc.push(u64::from(lv.alap[n.index()]));
        enc.push(u64::from(lv.height[n.index()]));
    }
    let mut scc_rank: FxHashMap<u32, u64> = FxHashMap::default();
    for &n in &canon2raw {
        let next = scc_rank.len() as u64;
        enc.push(*scc_rank.entry(analysis.scc[n.index()]).or_insert(next));
    }
    let mut topo_rank = vec![0u64; canon2raw.len()];
    let mut by_topo: Vec<usize> = (0..canon2raw.len()).collect();
    by_topo.sort_by_key(|&i| topo_pos[canon2raw[i].index()]);
    for (r, &i) in by_topo.iter().enumerate() {
        topo_rank[i] = r as u64;
    }
    enc.extend_from_slice(&topo_rank);
    // Relative raw-id order (see module docs: id tie-breaks are order
    // comparisons, so matching ranks ⇒ identical tie-break behaviour).
    let mut id_rank = vec![0u64; canon2raw.len()];
    let mut by_id: Vec<usize> = (0..canon2raw.len()).collect();
    by_id.sort_by_key(|&i| canon2raw[i]);
    for (r, &i) in by_id.iter().enumerate() {
        id_rank[i] = r as u64;
    }
    enc.extend_from_slice(&id_rank);

    (MemoKey(enc), canon2raw)
}

/// Convert a freshly solved subtree into canonical form. Returns `None`
/// (don't cache) if anything falls outside the canonical universe — a
/// value the key never saw, or a CN path outside this sub-problem's
/// subtree; both would make rehydration unsound.
pub(crate) fn capture(
    res: &SubResult,
    canon2raw: &[NodeId],
    prefix: &GroupPath,
    fabric: &DspFabric,
) -> Option<CanonSub> {
    let raw2canon: FxHashMap<NodeId, u64> = canon2raw
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i as u64))
        .collect();
    let strip = |path: Vec<usize>| -> Option<Vec<usize>> {
        path.strip_prefix(prefix.as_slice()).map(<[usize]>::to_vec)
    };
    let conv = |items: &[(NodeId, hca_arch::CnId)]| -> Option<Vec<(u64, Vec<usize>)>> {
        items
            .iter()
            .map(|&(n, cn)| Some((*raw2canon.get(&n)?, strip(fabric.cn_path(cn))?)))
            .collect()
    };
    Some(CanonSub {
        placement: conv(&res.placement)?,
        route_ops: conv(&res.route_ops)?,
        groups: res
            .groups
            .iter()
            .map(|(path, g)| {
                let mut g = g.clone();
                for w in &mut g.wires {
                    for v in &mut w.values {
                        *v = NodeId(u32::try_from(*raw2canon.get(v)?).ok()?);
                    }
                }
                Some((strip(path.clone())?, g))
            })
            .collect::<Option<Vec<_>>>()?,
        stats: res.stats,
        ini_mii: res.ini_mii,
    })
}

/// Instantiate a cached subtree at `prefix` under this sub-problem's
/// canonical→raw table — the exact inverse of [`capture`] modulo renaming.
pub(crate) fn rehydrate(
    sub: &CanonSub,
    canon2raw: &[NodeId],
    prefix: &GroupPath,
    fabric: &DspFabric,
) -> SubResult {
    let join = |suffix: &[usize]| {
        let mut p = prefix.clone();
        p.extend_from_slice(suffix);
        p
    };
    SubResult {
        placement: sub
            .placement
            .iter()
            .map(|(c, sfx)| (canon2raw[*c as usize], fabric.cn_of_path(&join(sfx))))
            .collect(),
        route_ops: sub
            .route_ops
            .iter()
            .map(|(c, sfx)| (canon2raw[*c as usize], fabric.cn_of_path(&join(sfx))))
            .collect(),
        groups: sub
            .groups
            .iter()
            .map(|(sfx, g)| {
                let mut g = g.clone();
                for w in &mut g.wires {
                    for v in &mut w.values {
                        *v = canon2raw[v.index()];
                    }
                }
                (join(sfx), g)
            })
            .collect(),
        stats: sub.stats,
        ini_mii: sub.ini_mii,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A key with a controllable payload size.
    fn key(tag: u64, words: usize) -> MemoKey {
        let mut v = vec![tag];
        v.resize(words.max(1), tag ^ 0x5bd1_e995);
        MemoKey(v)
    }

    fn sub(tag: u64) -> CanonSub {
        CanonSub {
            placement: vec![(tag, vec![0, 1])],
            route_ops: Vec::new(),
            groups: Vec::new(),
            stats: crate::driver::HcaStats::default(),
            ini_mii: 1,
        }
    }

    #[test]
    fn lookup_hits_and_misses_are_counted() {
        let m = Memo::new(Memo::DEFAULT_BUDGET);
        m.insert(key(1, 8), sub(1));
        assert!(m.lookup(&key(1, 8)).is_some());
        assert!(m.lookup(&key(2, 8)).is_none());
        assert_eq!(m.hits(), 1);
        assert_eq!(m.misses(), 1);
        assert_eq!(m.entries(), 1);
        assert_eq!(m.insertions(), 1);
    }

    #[test]
    fn first_writer_wins() {
        let m = Memo::new(Memo::DEFAULT_BUDGET);
        m.insert(key(1, 8), sub(10));
        m.insert(key(1, 8), sub(20));
        assert_eq!(m.entries(), 1);
        let got = m.lookup(&key(1, 8)).unwrap();
        assert_eq!(got.placement[0].0, 10, "second writer must not replace");
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        // Budget small enough that shards hold ~2 entries each; all keys
        // below hash to various shards, so drive one shard deterministically
        // by inserting keys until evictions happen.
        let m = Memo::new(64 * 1024);
        let per_entry = entry_bytes(&key(0, 256), &sub(0));
        // Enough entries to overflow every shard several times.
        let n = (64 * 1024 / per_entry) * 4;
        for i in 0..n as u64 {
            m.insert(key(i, 256), sub(i));
        }
        assert!(m.evictions() > 0, "budget never triggered eviction");
        assert!(
            m.approx_bytes() <= 64 * 1024 + std::mem::size_of::<Memo>(),
            "cache exceeded its byte budget: {} bytes",
            m.approx_bytes()
        );
        // Recently inserted entries survive; the very first ones are gone.
        assert!(m.lookup(&key(n as u64 - 1, 256)).is_some());
    }

    #[test]
    fn zero_budget_caches_nothing() {
        let m = Memo::new(0);
        m.insert(key(1, 8), sub(1));
        assert_eq!(m.entries(), 0);
        assert!(m.lookup(&key(1, 8)).is_none());
    }

    #[test]
    fn oversized_entry_is_not_cached() {
        let m = Memo::new(4096);
        // One entry far larger than a shard's share of 4 KiB.
        m.insert(key(1, 10_000), sub(1));
        assert_eq!(m.entries(), 0);
        assert_eq!(m.evictions(), 0, "oversized insert must not thrash");
    }

    #[test]
    fn lru_touch_on_lookup_protects_hot_entries() {
        // Single-shard-sized experiment: keep looking up entry A while
        // inserting pressure; A must outlive colder entries.
        let m = Memo::new(NUM_SHARDS * entry_bytes(&key(0, 64), &sub(0)) * 3);
        m.insert(key(1, 64), sub(1));
        for i in 100..400u64 {
            let _ = m.lookup(&key(1, 64)); // keep A hot
            m.insert(key(i, 64), sub(i));
        }
        assert!(
            m.lookup(&key(1, 64)).is_some(),
            "hot entry evicted despite LRU touches"
        );
    }

    #[test]
    fn poisoned_shard_still_serves_lookups_and_inserts() {
        let m = Memo::new(Memo::DEFAULT_BUDGET);
        m.insert(key(7, 8), sub(7));
        m.poison_all_shards();
        // Every operation must recover the guard instead of propagating.
        assert!(m.lookup(&key(7, 8)).is_some(), "poisoned lookup failed");
        m.insert(key(8, 8), sub(8));
        assert!(m.lookup(&key(8, 8)).is_some(), "poisoned insert failed");
        assert_eq!(m.entries(), 2);
        let _ = m.approx_bytes();
    }

    #[test]
    fn snapshot_round_trip_preserves_entries() {
        let dir = std::env::temp_dir().join("hca_memo_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let m = Memo::new(Memo::DEFAULT_BUDGET);
        for i in 0..20u64 {
            m.insert(key(i, 16), sub(i));
        }
        let written = m.save(&path).unwrap();
        assert_eq!(written, 20);
        let back = Memo::load(&path, Memo::DEFAULT_BUDGET).unwrap();
        assert_eq!(back.entries(), 20);
        for i in 0..20u64 {
            let got = back.lookup(&key(i, 16)).unwrap();
            assert_eq!(got.placement[0].0, i);
        }
        // Counters start clean after a load (minus the lookups just made).
        assert_eq!(back.misses(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_snapshot_version_is_discarded() {
        let dir = std::env::temp_dir().join("hca_memo_stale_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stale.json");
        let body = format!("{{\"version\":{},\"entries\":[]}}", SNAPSHOT_VERSION + 1);
        std::fs::write(&path, body).unwrap();
        let err = match Memo::load(&path, Memo::DEFAULT_BUDGET) {
            Err(e) => e,
            Ok(_) => panic!("stale snapshot accepted"),
        };
        assert!(err.contains("version"), "unexpected error: {err}");
        // Malformed JSON is discarded the same way.
        std::fs::write(&path, "not json").unwrap();
        assert!(Memo::load(&path, Memo::DEFAULT_BUDGET).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_reload_respects_smaller_budget() {
        let dir = std::env::temp_dir().join("hca_memo_budget_reload");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let m = Memo::new(Memo::DEFAULT_BUDGET);
        for i in 0..200u64 {
            m.insert(key(i, 128), sub(i));
        }
        m.save(&path).unwrap();
        let per_entry = entry_bytes(&key(0, 128), &sub(0));
        let tiny = Memo::load(&path, per_entry * NUM_SHARDS * 2).unwrap();
        assert!(tiny.entries() < 200, "budget ignored on reload");
        assert!(tiny.approx_bytes() <= per_entry * NUM_SHARDS * 2 + std::mem::size_of::<Memo>());
        std::fs::remove_file(&path).ok();
    }
}
