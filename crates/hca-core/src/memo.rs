//! Cross-sub-problem memoisation of solved subtrees.
//!
//! The decomposition tree frequently contains *isomorphic* sub-problems:
//! symmetric kernels split into structurally identical children, and a
//! portfolio run re-solves whole subtrees whenever two variants agree on
//! the solving context. This module caches each solved [`SubResult`] under
//! a **renumbering-equivariant canonical key** so an isomorphic sub-problem
//! is answered by rehydrating the cached subtree instead of re-searching.
//!
//! ## Soundness of the key
//!
//! A cache hit must imply that a fresh solve would produce the bit-identical
//! result. The key therefore encodes *everything* the solver reads:
//!
//! * the full solving context — every [`SeeConfig`](hca_see::SeeConfig)
//!   field (the escalation tiers are pure functions of it), the issue-cap
//!   slack, validation level, the unified-machine theoretical MII,
//!   `MIIRec`, the *effective* dominance flag (config AND environment), and
//!   the hierarchy depth (the PG and constraints are functions of depth +
//!   ILI for one fabric, and a [`Memo`] never outlives its fabric);
//! * the working set in canonical numbering (nodes renumbered by sorted
//!   `NodeId` rank; externals by first appearance), including the *given*
//!   working-set order, per-node opcodes, and full pred/succ edge lists in
//!   adjacency order with latencies and distances;
//! * the ILI wire structure, wire by wire, value by value;
//! * the per-node analysis scalars the engine consumes (ASAP, ALAP,
//!   height, canonical SCC rank, relative topological rank) for every
//!   referenced node — externals included, since edge slack reads both
//!   endpoints;
//! * the relative raw-`NodeId` order of all referenced nodes. Every
//!   id-based tie-break in the pipeline (priority sorting, the mapper's
//!   `sort_by_key(|f| f.value)`, working-set sorts) is an *order*
//!   comparison, so it behaves identically on two sub-problems exactly
//!   when this permutation matches.
//!
//! The key is the full encoding (a `Vec<u64>` compared by `Eq`), not a
//! digest — hash collisions cannot produce false hits.
//!
//! The key deliberately encodes no `PartialState` internals: it is built
//! from the sub-problem *inputs* (DDG slice, ILI, context), never from the
//! engine's in-flight search state, so representation changes inside
//! `hca-see` — e.g. the arc-indexed copy table and lane-major load block
//! replacing the original hash maps — cannot drift the key. Determinism of
//! the cached *values* is covered by `tests/memo_equivalence.rs`.
//!
//! Cached values store placements as (canonical node, CN-path *suffix*
//! below the sub-problem) and group topologies with canonicalised wire
//! values, so rehydration at a different tree position or under a value
//! renaming is exact. The cached [`HcaStats`] merge precisely as a fresh
//! solve's would, which keeps run statistics memo- and thread-invariant;
//! only the observability counters (`driver.memo_hits`/`_misses`) reveal
//! that a cache was involved.

use crate::driver::{HcaConfig, SubResult};
use crate::problem::Subproblem;
use hca_arch::{DspFabric, GroupPath, GroupTopology};
use hca_ddg::{Ddg, DdgAnalysis, NodeId};
use rustc_hash::FxHashMap;
use std::sync::Mutex;

/// Renumbering-equivariant canonical key of a sub-problem (full encoding,
/// collision-free by construction).
#[derive(PartialEq, Eq, Hash)]
pub(crate) struct MemoKey(Vec<u64>);

/// A solved subtree in canonical form (see the module docs).
#[derive(Clone)]
pub(crate) struct CanonSub {
    /// `(canonical node, CN-path suffix below the sub-problem)`.
    placement: Vec<(u64, Vec<usize>)>,
    /// Route ops, same encoding as `placement`.
    route_ops: Vec<(u64, Vec<usize>)>,
    /// Group topologies keyed by path suffix, wire values canonicalised.
    groups: Vec<(Vec<usize>, GroupTopology)>,
    stats: crate::driver::HcaStats,
    ini_mii: u32,
}

/// The per-run (or per-portfolio) sub-problem cache. Shared by reference
/// across `hca-par` workers; the map is behind a mutex, lookups clone out.
pub(crate) struct Memo {
    /// Topological position per DDG node, for relative-order encoding.
    topo_pos: Vec<usize>,
    map: Mutex<FxHashMap<MemoKey, CanonSub>>,
}

impl Memo {
    /// Fresh cache for one DDG/fabric pairing.
    pub(crate) fn new(num_nodes: usize, analysis: &DdgAnalysis) -> Self {
        let mut topo_pos = vec![usize::MAX; num_nodes];
        for (i, &n) in analysis.topo.iter().enumerate() {
            topo_pos[n.index()] = i;
        }
        Memo {
            topo_pos,
            map: Mutex::new(FxHashMap::default()),
        }
    }

    pub(crate) fn lookup(&self, key: &MemoKey) -> Option<CanonSub> {
        self.map.lock().unwrap().get(key).cloned()
    }

    /// First writer wins; by the key contract any two writers hold
    /// identical canonical content, so the race is benign.
    pub(crate) fn insert(&self, key: MemoKey, sub: CanonSub) {
        self.map.lock().unwrap().entry(key).or_insert(sub);
    }

    /// Number of cached canonical sub-problems.
    pub(crate) fn entries(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Approximate heap footprint of the cache: the full `u64` key
    /// encodings plus canonical placements, route ops and group
    /// topologies. Feeds the `driver.memo_bytes` high-water counter.
    pub(crate) fn approx_bytes(&self) -> usize {
        use std::mem::{size_of, size_of_val};
        let map = self.map.lock().unwrap();
        let mut bytes = size_of::<Self>() + self.topo_pos.len() * size_of::<usize>();
        for (k, v) in map.iter() {
            bytes += size_of::<MemoKey>() + k.0.len() * size_of::<u64>();
            bytes += size_of::<CanonSub>();
            for (_, p) in v.placement.iter().chain(&v.route_ops) {
                bytes += size_of::<(u64, Vec<usize>)>() + p.len() * size_of::<usize>();
            }
            for (sfx, g) in &v.groups {
                bytes += size_of::<(Vec<usize>, GroupTopology)>() + sfx.len() * size_of::<usize>();
                for w in &g.wires {
                    bytes += size_of_val(w) + w.values.len() * size_of::<NodeId>();
                }
            }
        }
        bytes
    }
}

/// Intern `v` into the canonical numbering, appending new externals.
fn intern(canon: &mut FxHashMap<NodeId, u64>, canon2raw: &mut Vec<NodeId>, v: NodeId) -> u64 {
    *canon.entry(v).or_insert_with(|| {
        canon2raw.push(v);
        (canon2raw.len() - 1) as u64
    })
}

/// Build the canonical key of `sp` plus the canonical→raw node table the
/// capture/rehydrate pair shares.
pub(crate) fn canonicalise(
    memo: &Memo,
    ddg: &Ddg,
    analysis: &DdgAnalysis,
    config: &HcaConfig,
    theo_mii: u32,
    sp: &Subproblem,
) -> (MemoKey, Vec<NodeId>) {
    let s = &config.see;
    let mut enc: Vec<u64> = Vec::with_capacity(40 + sp.working_set.len() * 16);
    enc.extend_from_slice(&[
        s.beam_width as u64,
        s.branch_factor as u64,
        s.candidate_margin.to_bits(),
        s.weights.copy.to_bits(),
        s.weights.pressure.to_bits(),
        s.weights.balance.to_bits(),
        s.weights.critical.to_bits(),
        s.weights.recurrence.to_bits(),
        s.weights.route.to_bits(),
        s.priority as u64,
        u64::from(s.enable_router),
        s.max_route_hops as u64,
        s.issue_cap.map_or(u64::MAX, u64::from),
        u64::from(s.dominance && std::env::var_os("HCA_NO_DOMINANCE").is_none()),
        config.issue_cap_slack.map_or(u64::MAX, u64::from),
        config.validation as u64,
        u64::from(theo_mii),
        u64::from(analysis.mii_rec),
        sp.depth() as u64,
        sp.working_set.len() as u64,
        sp.ili.inputs.len() as u64,
        sp.ili.outputs.len() as u64,
    ]);

    // Canonical numbering: working-set nodes by sorted-id rank …
    let mut canon2raw: Vec<NodeId> = sp.working_set.clone();
    canon2raw.sort_unstable();
    let mut canon: FxHashMap<NodeId, u64> = canon2raw
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i as u64))
        .collect();
    // … and the given working-set order on top of it (the search consumes
    // the set in this order).
    for &n in &sp.working_set {
        enc.push(canon[&n]);
    }

    // Per-node structure in canonical order. Iterate by index: `canon2raw`
    // only ever grows (interning appends externals), indices are stable.
    for i in 0..sp.working_set.len() {
        let n = canon2raw[i];
        enc.push(ddg.node(n).op as u64);
        let preds: Vec<_> = ddg.pred_edges(n).collect();
        enc.push(preds.len() as u64);
        for (_, e) in preds {
            enc.push(intern(&mut canon, &mut canon2raw, e.src));
            enc.push(u64::from(e.latency));
            enc.push(u64::from(e.distance));
        }
        let succs: Vec<_> = ddg.succ_edges(n).collect();
        enc.push(succs.len() as u64);
        for (_, e) in succs {
            enc.push(intern(&mut canon, &mut canon2raw, e.dst));
            enc.push(u64::from(e.latency));
            enc.push(u64::from(e.distance));
        }
    }
    for wire in sp.ili.inputs.iter().chain(&sp.ili.outputs) {
        enc.push(wire.values.len() as u64);
        for &v in &wire.values {
            enc.push(intern(&mut canon, &mut canon2raw, v));
        }
    }

    // Analysis scalars for every referenced node, externals included.
    let lv = &analysis.levels;
    for &n in &canon2raw {
        enc.push(u64::from(lv.asap[n.index()]));
        enc.push(u64::from(lv.alap[n.index()]));
        enc.push(u64::from(lv.height[n.index()]));
    }
    let mut scc_rank: FxHashMap<u32, u64> = FxHashMap::default();
    for &n in &canon2raw {
        let next = scc_rank.len() as u64;
        enc.push(*scc_rank.entry(analysis.scc[n.index()]).or_insert(next));
    }
    let mut topo_rank = vec![0u64; canon2raw.len()];
    let mut by_topo: Vec<usize> = (0..canon2raw.len()).collect();
    by_topo.sort_by_key(|&i| memo.topo_pos[canon2raw[i].index()]);
    for (r, &i) in by_topo.iter().enumerate() {
        topo_rank[i] = r as u64;
    }
    enc.extend_from_slice(&topo_rank);
    // Relative raw-id order (see module docs: id tie-breaks are order
    // comparisons, so matching ranks ⇒ identical tie-break behaviour).
    let mut id_rank = vec![0u64; canon2raw.len()];
    let mut by_id: Vec<usize> = (0..canon2raw.len()).collect();
    by_id.sort_by_key(|&i| canon2raw[i]);
    for (r, &i) in by_id.iter().enumerate() {
        id_rank[i] = r as u64;
    }
    enc.extend_from_slice(&id_rank);

    (MemoKey(enc), canon2raw)
}

/// Convert a freshly solved subtree into canonical form. Returns `None`
/// (don't cache) if anything falls outside the canonical universe — a
/// value the key never saw, or a CN path outside this sub-problem's
/// subtree; both would make rehydration unsound.
pub(crate) fn capture(
    res: &SubResult,
    canon2raw: &[NodeId],
    prefix: &GroupPath,
    fabric: &DspFabric,
) -> Option<CanonSub> {
    let raw2canon: FxHashMap<NodeId, u64> = canon2raw
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i as u64))
        .collect();
    let strip = |path: Vec<usize>| -> Option<Vec<usize>> {
        path.strip_prefix(prefix.as_slice()).map(<[usize]>::to_vec)
    };
    let conv = |items: &[(NodeId, hca_arch::CnId)]| -> Option<Vec<(u64, Vec<usize>)>> {
        items
            .iter()
            .map(|&(n, cn)| Some((*raw2canon.get(&n)?, strip(fabric.cn_path(cn))?)))
            .collect()
    };
    Some(CanonSub {
        placement: conv(&res.placement)?,
        route_ops: conv(&res.route_ops)?,
        groups: res
            .groups
            .iter()
            .map(|(path, g)| {
                let mut g = g.clone();
                for w in &mut g.wires {
                    for v in &mut w.values {
                        *v = NodeId(u32::try_from(*raw2canon.get(v)?).ok()?);
                    }
                }
                Some((strip(path.clone())?, g))
            })
            .collect::<Option<Vec<_>>>()?,
        stats: res.stats,
        ini_mii: res.ini_mii,
    })
}

/// Instantiate a cached subtree at `prefix` under this sub-problem's
/// canonical→raw table — the exact inverse of [`capture`] modulo renaming.
pub(crate) fn rehydrate(
    sub: &CanonSub,
    canon2raw: &[NodeId],
    prefix: &GroupPath,
    fabric: &DspFabric,
) -> SubResult {
    let join = |suffix: &[usize]| {
        let mut p = prefix.clone();
        p.extend_from_slice(suffix);
        p
    };
    SubResult {
        placement: sub
            .placement
            .iter()
            .map(|(c, sfx)| (canon2raw[*c as usize], fabric.cn_of_path(&join(sfx))))
            .collect(),
        route_ops: sub
            .route_ops
            .iter()
            .map(|(c, sfx)| (canon2raw[*c as usize], fabric.cn_of_path(&join(sfx))))
            .collect(),
        groups: sub
            .groups
            .iter()
            .map(|(sfx, g)| {
                let mut g = g.clone();
                for w in &mut g.wires {
                    for v in &mut w.values {
                        *v = canon2raw[v.index()];
                    }
                }
                (join(sfx), g)
            })
            .collect(),
        stats: sub.stats,
        ini_mii: sub.ini_mii,
    }
}
