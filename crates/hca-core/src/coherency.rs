//! The coherency checker (paper §4.1, end): "a coherency checker verifies if
//! the DDG is compatible with the topology itself. More precisely it checks
//! for the presence of a communication path on the final architecture
//! between each pair of clusters that contains dependent nodes of the DDG."
//!
//! Reachability over the configured hierarchy is defined by mutual
//! recursion:
//!
//! * `can_emit(m)` — value `v` can be driven onto member `m`'s output wires:
//!   `m` is the producing CN, a non-producing CN that received `v`, or a
//!   group whose child topology carries `v` up on a `to_parent` wire;
//! * `delivered(m)` — `v` enters `m` from its parent group: some configured
//!   wire there carries `v`, lists `m` as receiver, and is itself properly
//!   sourced (a sibling that can emit, or a glue wire from above).
//!
//! Cycles (mutual pass-through claims with no real source) resolve to
//! *unreachable* via an in-progress marker.

use hca_arch::topology::WireSource;
use hca_arch::{CnId, DspFabric, Topology};
use hca_ddg::{Ddg, EdgeId, NodeId};
use rustc_hash::FxHashMap;
use std::fmt;

/// One unsatisfied dependence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The dependence edge whose value never arrives.
    pub edge: EdgeId,
    /// Producer CN.
    pub src: CnId,
    /// Consumer CN.
    pub dst: CnId,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "edge {:?}: value does not reach {} from {}",
            self.edge, self.dst, self.src
        )
    }
}

/// Checker outcome.
#[derive(Clone, Debug, Default)]
pub struct CoherencyReport {
    /// Budget violations reported by [`Topology::validate`], as text.
    pub topology_errors: Vec<String>,
    /// Dependences whose value is not routed.
    pub violations: Vec<Violation>,
}

impl CoherencyReport {
    /// Is the clusterisation legal?
    pub fn is_legal(&self) -> bool {
        self.topology_errors.is_empty() && self.violations.is_empty()
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Query {
    CanEmit,
    Delivered,
}

struct Reach<'a> {
    fabric: &'a DspFabric,
    topo: &'a Topology,
    value: NodeId,
    producer: Vec<usize>,
    memo: FxHashMap<(Vec<usize>, Query), Option<bool>>,
}

impl Reach<'_> {
    fn can_emit(&mut self, m_path: &[usize]) -> bool {
        if m_path == self.producer.as_slice() {
            return true;
        }
        let key = (m_path.to_vec(), Query::CanEmit);
        match self.memo.get(&key) {
            Some(Some(b)) => return *b,
            Some(None) => return false, // in progress: cyclic claim
            None => {}
        }
        self.memo.insert(key.clone(), None);
        let result = if m_path.len() == self.fabric.depth() {
            // A CN that is not the producer can only re-emit what it received.
            self.delivered(m_path)
        } else {
            let mut ok = false;
            if let Some(g) = self.topo.group(m_path) {
                let candidates: Vec<WireSource> = g
                    .wires
                    .iter()
                    .filter(|w| w.to_parent && w.carries(self.value))
                    .map(|w| w.src)
                    .collect();
                for src in candidates {
                    match src {
                        WireSource::Member(s) => {
                            let mut child = m_path.to_vec();
                            child.push(s);
                            if self.can_emit(&child) {
                                ok = true;
                                break;
                            }
                        }
                        WireSource::Parent => {
                            // MUX pass-through: down into the group and back up.
                            if self.delivered(m_path) {
                                ok = true;
                                break;
                            }
                        }
                    }
                }
            }
            ok
        };
        self.memo.insert(key, Some(result));
        result
    }

    fn delivered(&mut self, m_path: &[usize]) -> bool {
        if m_path.is_empty() {
            return false; // the root has no parent to receive from
        }
        let key = (m_path.to_vec(), Query::Delivered);
        match self.memo.get(&key) {
            Some(Some(b)) => return *b,
            Some(None) => return false,
            None => {}
        }
        self.memo.insert(key.clone(), None);
        let (g_path, m) = (&m_path[..m_path.len() - 1], m_path[m_path.len() - 1]);
        let mut result = false;
        if let Some(g) = self.topo.group(g_path) {
            let candidates: Vec<WireSource> = g
                .wires
                .iter()
                .filter(|w| w.carries(self.value) && w.receivers.contains(&m))
                .map(|w| w.src)
                .collect();
            for src in candidates {
                match src {
                    WireSource::Member(s) => {
                        let mut sib = g_path.to_vec();
                        sib.push(s);
                        if self.can_emit(&sib) {
                            result = true;
                            break;
                        }
                    }
                    WireSource::Parent => {
                        if self.delivered(g_path) {
                            result = true;
                            break;
                        }
                    }
                }
            }
        }
        self.memo.insert(key, Some(result));
        result
    }
}

/// Does value `v`, produced on CN `src`, arrive at CN `dst` over the
/// configured topology (multi-hop forwarding included)?
pub fn value_delivered(
    fabric: &DspFabric,
    topo: &Topology,
    v: NodeId,
    src: CnId,
    dst: CnId,
) -> bool {
    if src == dst {
        return true;
    }
    let mut r = Reach {
        fabric,
        topo,
        value: v,
        producer: fabric.cn_path(src),
        memo: FxHashMap::default(),
    };
    let dst_path = fabric.cn_path(dst);
    r.delivered(&dst_path)
}

/// Run the full coherency check over every dependence of `ddg`.
///
/// `placement` maps each DDG node to its CN (the post-pass output covers
/// machine-inserted nodes too, but checking the *original* DDG suffices: the
/// recv nodes sit on the consumer's CN by construction).
pub fn check_coherency(
    fabric: &DspFabric,
    topo: &Topology,
    ddg: &Ddg,
    placement: &dyn Fn(NodeId) -> CnId,
) -> CoherencyReport {
    let mut report = CoherencyReport::default();
    if let Err(e) = topo.validate(fabric) {
        report.topology_errors.push(e.to_string());
    }
    for eid in ddg.edge_ids() {
        let e = ddg.edge(eid);
        if ddg.node(e.src).op == hca_ddg::Opcode::Const {
            continue; // constants are replicated at configuration time
        }
        let (cu, cw) = (placement(e.src), placement(e.dst));
        if cu == cw {
            continue;
        }
        if !value_delivered(fabric, topo, e.src, cu, cw) {
            report.violations.push(Violation {
                edge: eid,
                src: cu,
                dst: cw,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_arch::topology::ConfiguredWire;
    use hca_ddg::{DdgBuilder, Opcode};

    fn wire(src: WireSource, rec: &[usize], up: bool, vals: &[u32]) -> ConfiguredWire {
        ConfiguredWire {
            src,
            receivers: rec.to_vec(),
            to_parent: up,
            values: vals.iter().map(|&v| NodeId(v)).collect(),
        }
    }

    #[test]
    fn sibling_delivery() {
        let f = DspFabric::standard(8, 8, 8);
        let mut t = Topology::new();
        t.group_mut(&[0, 0])
            .wires
            .push(wire(WireSource::Member(0), &[2], false, &[7]));
        let src = f.cn_of_path(&[0, 0, 0]);
        assert!(value_delivered(
            &f,
            &t,
            NodeId(7),
            src,
            f.cn_of_path(&[0, 0, 2])
        ));
        assert!(!value_delivered(
            &f,
            &t,
            NodeId(7),
            src,
            f.cn_of_path(&[0, 0, 1])
        ));
        assert!(!value_delivered(
            &f,
            &t,
            NodeId(8),
            src,
            f.cn_of_path(&[0, 0, 2])
        ));
    }

    #[test]
    fn full_cross_set_chain() {
        let f = DspFabric::standard(8, 8, 8);
        let v = NodeId(3);
        let mut t = Topology::new();
        t.group_mut(&[0, 0])
            .wires
            .push(wire(WireSource::Member(0), &[], true, &[3]));
        t.group_mut(&[0])
            .wires
            .push(wire(WireSource::Member(0), &[], true, &[3]));
        t.group_mut(&[])
            .wires
            .push(wire(WireSource::Member(0), &[1], false, &[3]));
        t.group_mut(&[1])
            .wires
            .push(wire(WireSource::Parent, &[2], false, &[3]));
        t.group_mut(&[1, 2])
            .wires
            .push(wire(WireSource::Parent, &[3], false, &[3]));
        let src = f.cn_of_path(&[0, 0, 0]);
        assert!(value_delivered(&f, &t, v, src, f.cn_of_path(&[1, 2, 3])));
        // Break one link and delivery fails.
        let mut t2 = t.clone();
        t2.group_mut(&[1]).wires.clear();
        assert!(!value_delivered(&f, &t2, v, src, f.cn_of_path(&[1, 2, 3])));
    }

    #[test]
    fn forwarded_value_via_sibling_cn() {
        // Producer CN 0 → sibling CN 1 (which forwards) → CN 2. Delivery to
        // CN 2 must route through CN 1's re-emission.
        let f = DspFabric::standard(8, 8, 8);
        let v = NodeId(5);
        let mut t = Topology::new();
        let g = t.group_mut(&[0, 0]);
        g.wires.push(wire(WireSource::Member(0), &[1], false, &[5]));
        g.wires.push(wire(WireSource::Member(1), &[2], false, &[5]));
        let src = f.cn_of_path(&[0, 0, 0]);
        assert!(value_delivered(&f, &t, v, src, f.cn_of_path(&[0, 0, 2])));
    }

    #[test]
    fn cyclic_claims_resolve_to_unreachable() {
        // CN 1 claims to emit v because CN 2 sends it, and vice versa — but
        // nobody actually produces v in this group.
        let f = DspFabric::standard(8, 8, 8);
        let v = NodeId(9);
        let mut t = Topology::new();
        let g = t.group_mut(&[0, 0]);
        g.wires
            .push(wire(WireSource::Member(1), &[2, 3], false, &[9]));
        g.wires.push(wire(WireSource::Member(2), &[1], false, &[9]));
        // Producer sits in a different cluster with no wires at all.
        let src = f.cn_of_path(&[3, 3, 3]);
        assert!(!value_delivered(&f, &t, v, src, f.cn_of_path(&[0, 0, 3])));
    }

    #[test]
    fn check_coherency_reports_violations() {
        let f = DspFabric::standard(8, 8, 8);
        let mut b = DdgBuilder::default();
        let u = b.node(Opcode::Add);
        let w = b.node(Opcode::Add);
        b.flow(u, w);
        let ddg = b.finish();
        let (ca, cb) = (f.cn_of_path(&[0, 0, 0]), f.cn_of_path(&[0, 0, 1]));
        let placement = move |n: NodeId| if n == u { ca } else { cb };

        // No wires at all: one violation.
        let t = Topology::new();
        let rep = check_coherency(&f, &t, &ddg, &placement);
        assert!(!rep.is_legal());
        assert_eq!(rep.violations.len(), 1);
        assert_eq!(rep.violations[0].dst, cb);

        // Configure the wire: legal.
        let mut t2 = Topology::new();
        t2.group_mut(&[0, 0])
            .wires
            .push(wire(WireSource::Member(0), &[1], false, &[0]));
        let rep2 = check_coherency(&f, &t2, &ddg, &placement);
        assert!(rep2.is_legal(), "{:?}", rep2);
    }

    #[test]
    fn check_coherency_surfaces_budget_errors() {
        let f = DspFabric::standard(8, 8, 8);
        let ddg = DdgBuilder::default().finish();
        let mut t = Topology::new();
        // CN leaf groups allow 2 input ports; use 3.
        for s in 1..=3usize {
            t.group_mut(&[0, 0])
                .wires
                .push(wire(WireSource::Member(s), &[0], false, &[s as u32]));
        }
        let rep = check_coherency(&f, &t, &ddg, &|_| CnId(0));
        assert!(!rep.is_legal());
        assert_eq!(rep.topology_errors.len(), 1);
    }
}
