//! The MII cost model (paper §4.2 and Table 1).
//!
//! `MII = max(iniMII, maxClsMII)` where `iniMII` is the estimate at level 0
//! of HCA and `maxClsMII` the worst per-cluster MII after the full
//! decomposition, "computed by considering the maximum between the MII given
//! by data constraints, MIIRec, and the MII given \[by\] resource constraints
//! MIIRes, also taking into account a term of copy pressure".

use crate::post::FinalProgram;
use hca_arch::{DspFabric, Topology};
use hca_ddg::{analysis, Ddg, ResourceClass};
use serde::Serialize;

/// All the MII ingredients of one clusterisation, for reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct MiiReport {
    /// Recurrence-constrained MII of the *source* DDG.
    pub mii_rec: u32,
    /// Resource-constrained MII on the equivalent unified machine
    /// (issue width = all CNs, DMA ports shared) — Table 1's `MIIRes`.
    pub mii_res: u32,
    /// `max(mii_rec, mii_res)`: the unified-machine theoretical optimum the
    /// paper compares against in §5.
    pub theoretical: u32,
    /// SEE estimate at level 0 of the hierarchy (`iniMII`).
    pub ini_mii: u32,
    /// Worst per-CN MII after HCA (instructions + receives + routes on a
    /// single-issue CN).
    pub max_cls_mii: u32,
    /// Worst per-wire copy pressure (each value on a wire consumes one
    /// transport slot per iteration).
    pub wire_mii: u32,
    /// Recurrence MII of the *final* DDG (transport latencies included).
    pub final_mii_rec: u32,
    /// The final MII lower bound for modulo scheduling.
    pub final_mii: u32,
}

/// Resource-constrained MII on the equivalent unified machine:
/// `max(ceil(ops / CNs), ceil(memory ops / DMA ports))`.
pub fn mii_res_unified(ddg: &Ddg, fabric: &DspFabric) -> u32 {
    let cns = fabric.num_cns() as u32;
    let ops = ddg.num_nodes() as u32;
    let issue = if cns == 0 {
        u32::MAX
    } else {
        ops.div_ceil(cns)
    };
    issue.max(fabric.dma.mii_res_mem(ddg)).max(1)
}

/// The §5 "theoretical optimum computed on an equivalent issue width unified
/// bank machine": `max(MIIRec, MIIRes)`.
pub fn theoretical_mii(mii_rec: u32, ddg: &Ddg, fabric: &DspFabric) -> u32 {
    mii_rec.max(mii_res_unified(ddg, fabric))
}

/// Assemble the full report from the finished clusterisation.
pub fn mii_report(
    ddg: &Ddg,
    mii_rec: u32,
    fabric: &DspFabric,
    final_program: &FinalProgram,
    topology: &Topology,
    ini_mii: u32,
) -> MiiReport {
    let mii_res = mii_res_unified(ddg, fabric);

    // Per-CN pressure: single-issue CNs with one ALU and one AG each.
    let mut issue = vec![0u32; fabric.num_cns()];
    let mut alu = vec![0u32; fabric.num_cns()];
    let mut ag = vec![0u32; fabric.num_cns()];
    for n in final_program.ddg.node_ids() {
        let cn = final_program.placement[n.index()].index();
        issue[cn] += 1;
        match final_program.ddg.node(n).op.resource_class() {
            ResourceClass::Alu => alu[cn] += 1,
            ResourceClass::AddrGen => ag[cn] += 1,
            ResourceClass::Receive => {}
        }
    }
    let max_cls_mii = (0..fabric.num_cns())
        .map(|c| issue[c].max(alu[c]).max(ag[c]))
        .max()
        .unwrap_or(0)
        .max(1);

    let wire_mii = topology.max_wire_pressure().max(1);
    let dma_mii = fabric.dma.mii_res_mem(ddg);
    let final_mii_rec = analysis::mii_rec(&final_program.ddg).unwrap_or(u32::MAX);

    let final_mii = ini_mii
        .max(max_cls_mii)
        .max(wire_mii)
        .max(dma_mii)
        .max(final_mii_rec);

    MiiReport {
        mii_rec,
        mii_res,
        theoretical: mii_rec.max(mii_res),
        ini_mii,
        max_cls_mii,
        wire_mii,
        final_mii_rec,
        final_mii,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_ddg::{DdgBuilder, Opcode};

    #[test]
    fn unified_mii_res_uses_issue_and_dma() {
        let f = DspFabric::standard(8, 8, 8); // 64 CNs, 8 DMA ports
        let mut b = DdgBuilder::default();
        for _ in 0..10 {
            b.node(Opcode::Load);
        }
        for _ in 0..47 {
            b.node(Opcode::Add);
        }
        let ddg = b.finish();
        // 57 ops / 64 CNs = 1, but 10 loads / 8 ports = 2.
        assert_eq!(mii_res_unified(&ddg, &f), 2);
    }

    #[test]
    fn unified_mii_res_issue_bound() {
        let f = DspFabric::standard(8, 8, 8);
        let mut b = DdgBuilder::default();
        for _ in 0..214 {
            b.node(Opcode::Add);
        }
        let ddg = b.finish();
        assert_eq!(mii_res_unified(&ddg, &f), 4); // ceil(214/64)
    }

    #[test]
    fn theoretical_takes_max() {
        let f = DspFabric::standard(8, 8, 8);
        let mut b = DdgBuilder::default();
        let acc = b.node(Opcode::Mul);
        b.carried(acc, acc, 1);
        let ddg = b.finish();
        let rec = analysis::mii_rec(&ddg).unwrap();
        assert_eq!(rec, 2);
        assert_eq!(theoretical_mii(rec, &ddg, &f), 2);
    }
}
