//! The flat (non-hierarchical) ICA baseline.
//!
//! The paper motivates HCA by the intractability of treating DSPFabric as
//! one flat K₆₄ graph: "it is necessary that the ICA keep trace of the
//! internal logic of the hierarchy of MUXes … the number of parallel paths
//! grows with the capacities of the MUXes as multiplication factors" (§4).
//! This baseline does exactly that naive thing — a single SEE run over the
//! complete Pattern Graph of all CNs — and exists so the scaling experiment
//! (DESIGN.md S2) can measure the blow-up HCA avoids.

use hca_arch::{DspFabric, ResourceTable};
use hca_ddg::{Ddg, DdgAnalysis};
use hca_pg::{ArchConstraints, Pg};
use hca_see::{See, SeeConfig, SeeError, SeeOutcome};

/// Run flat ICA over the whole machine: one complete PG with one node per
/// CN, constrained by the *leaf* input-port budget (each CN still has only
/// two incoming wires). Path multiplicity through the MUX hierarchy is not
/// modelled — which is exactly why the result may be unmappable onto the
/// real machine; the paper's argument for HCA.
pub fn run_flat(
    ddg: &Ddg,
    analysis: &DdgAnalysis,
    fabric: &DspFabric,
    config: SeeConfig,
) -> Result<SeeOutcome, SeeError> {
    let leaf = fabric.level(fabric.depth() - 1);
    let pg = Pg::complete(fabric.num_cns(), ResourceTable::CN);
    let constraints = ArchConstraints {
        max_in_neighbors: leaf.in_wires as u32,
        max_out_neighbors: None,
        out_node_max_in: 1,
        copy_latency: fabric.copy_latency,
    };
    See::new(ddg, analysis, &pg, constraints, config).run(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_ddg::{DdgBuilder, Opcode};

    #[test]
    fn flat_assigns_small_kernel() {
        let mut b = DdgBuilder::default();
        for _ in 0..4 {
            let x = b.node(Opcode::Load);
            let y = b.op_with(Opcode::Mul, &[x]);
            let z = b.op_with(Opcode::Add, &[y]);
            let _ = b.op_with(Opcode::Store, &[z]);
        }
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let fabric = DspFabric::two_level(2, 4, 4); // 8 CNs
        let out = run_flat(&ddg, &an, &fabric, SeeConfig::default()).unwrap();
        for n in ddg.node_ids() {
            assert!(out.assigned.cluster_of(n).is_some());
        }
        assert!(out.est_mii >= 2); // 16 ops on 8 single-issue CNs
    }

    #[test]
    fn flat_pg_size_tracks_machine() {
        let fabric = DspFabric::standard(8, 8, 8);
        let pg = Pg::complete(fabric.num_cns(), ResourceTable::CN);
        assert_eq!(pg.num_nodes(), 64);
        // Complete graph: the state the flat search must track is quadratic.
        assert_eq!(pg.potential_succs(hca_pg::PgNodeId(0)).len(), 63);
    }
}
