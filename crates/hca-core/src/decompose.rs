//! Problem decomposition (paper §4.1).

use hca_arch::{DspFabric, LevelSpec};
use hca_ddg::NodeId;
use hca_pg::{ArchConstraints, AssignedPg, Ili, Pg};

/// Pattern Graph of a DSPFabric group at hierarchy depth `d`, completed with
/// the special nodes of `ili` (Figure 10b): members form a complete graph
/// (the MUXes make every sibling potentially reachable, Figure 7), each with
/// the resource table of the CNs it embraces (Figure 8).
pub fn level_pg(fabric: &DspFabric, d: usize, ili: &Ili) -> Pg {
    let spec = fabric.level(d);
    let mut pg = Pg::complete(spec.arity, fabric.member_rt(d));
    pg.attach_ili(ili);
    pg
}

/// Constraints of the SEE run at depth `d`, with the input budget clamped to
/// what the level *below* can actually accept (the crossbar takes only K of
/// the wires incoming from level 1, §2.2) — otherwise the Mapper would hand
/// a child more glue-in wires than its budget.
pub fn level_constraints(fabric: &DspFabric, d: usize) -> ArchConstraints {
    let mut cons = ArchConstraints::for_dspfabric_level(fabric, d);
    cons.max_in_neighbors = effective_spec(fabric, d).in_wires as u32;
    cons
}

/// The wire budgets the Mapper must respect at depth `d`: the level's own
/// spec with `in_wires` clamped to (i) the child level's `glue_in` (the
/// crossbar intake, §2.2) and (ii) the child's recursive *chain-absorption
/// capacity* — a member can only usefully listen to as many wires as the
/// CNs inside it can still bind, directly or through a relay chain. Without
/// this clamp the upper levels drown the leaf groups in glue wires and the
/// leaf SEE dead-ends on its two-port CNs.
pub fn effective_spec(fabric: &DspFabric, d: usize) -> LevelSpec {
    let mut spec = fabric.level(d);
    if d + 1 < fabric.depth() {
        spec.in_wires = spec
            .in_wires
            .min(fabric.level(d + 1).glue_in)
            .min(port_headroom(fabric, d + 1));
    }
    spec
}

/// Chain-absorption capacity of one group at depth `d`: the number of
/// incoming glue wires a relay chain through its members can still consume
/// (the head may fill all its ports, everyone else keeps one for the
/// chain). This is exactly what the completion fallbacks can absorb, so
/// clamping the parent's per-member input budget to it keeps every
/// sub-problem solvable.
fn port_headroom(fabric: &DspFabric, d: usize) -> usize {
    let spec = fabric.level(d);
    let member_in = if d + 1 < fabric.depth() {
        spec.in_wires
            .min(fabric.level(d + 1).glue_in)
            .min(port_headroom(fabric, d + 1))
    } else {
        spec.in_wires
    };
    (member_in + (spec.arity - 1) * member_in.saturating_sub(1)).max(1)
}

/// The working sets of the child sub-problems:
/// `WS(DDG…i,j) = { x ∈ DDG…i | DDG̅…i(x) = j }` — the instructions the
/// parent assigned to member `j`. Returned indexed by member.
pub fn child_working_sets(
    assigned: &AssignedPg,
    parent_ws: &[NodeId],
    arity: usize,
) -> Vec<Vec<NodeId>> {
    let mut out = vec![Vec::new(); arity];
    for &n in parent_ws {
        if let Some(c) = assigned.cluster_of(n) {
            if assigned.pg.node(c).kind.is_cluster() {
                out[assigned.pg.member_of(c)].push(n);
            }
        }
    }
    for ws in &mut out {
        ws.sort_unstable();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_arch::ResourceTable;
    use hca_ddg::{DdgBuilder, Opcode};
    use hca_pg::{IliWire, PgNodeId};

    #[test]
    fn level_pg_matches_figure8() {
        let f = DspFabric::standard(8, 8, 8);
        let pg0 = level_pg(&f, 0, &Ili::root());
        assert_eq!(pg0.num_nodes(), 4);
        assert_eq!(pg0.node(PgNodeId(0)).rt, ResourceTable::of_cns(16));
        let pg2 = level_pg(&f, 2, &Ili::root());
        assert_eq!(pg2.node(PgNodeId(0)).rt, ResourceTable::CN);
    }

    #[test]
    fn level_pg_attaches_ili() {
        let f = DspFabric::standard(8, 8, 8);
        let mut b = DdgBuilder::default();
        let x = b.node(Opcode::Add);
        let _ = b.finish();
        let ili = Ili {
            inputs: vec![IliWire::new(vec![x])],
            outputs: vec![],
        };
        let pg = level_pg(&f, 1, &ili);
        assert_eq!(pg.num_nodes(), 5);
        assert!(pg.input_carrying(x).is_some());
    }

    #[test]
    fn effective_spec_clamps_to_child_glue() {
        // M = 8 but the crossbar only takes K = 2 wires: mapping at depth 1
        // must not hand a leaf more than 2 glue-in wires per member.
        let f = DspFabric::standard(8, 8, 2);
        // Leaf chain capacity: 2 + 3·1 = 5, but the crossbar only takes
        // K = 2 wires → eff_in(1) = 2.
        assert_eq!(effective_spec(&f, 1).in_wires, 2);
        // Level-1 groups absorb 2 + 3·1 = 5 wires → level-0 eff_in = 5.
        assert_eq!(effective_spec(&f, 0).in_wires, 5);
        assert_eq!(effective_spec(&f, 2).in_wires, 2); // leaf unchanged (CN ports)
        assert_eq!(level_constraints(&f, 1).max_in_neighbors, 2);
        // With generous MUXes: leaf chain capacity 5 → eff_in(1) = 5;
        // level-1 chain capacity 5 + 3·4 = 17 → level-0 eff_in = 8 (own N).
        let g = DspFabric::standard(8, 8, 8);
        assert_eq!(effective_spec(&g, 1).in_wires, 5);
        assert_eq!(effective_spec(&g, 0).in_wires, 8);
    }

    #[test]
    fn child_working_sets_follow_assignment() {
        let mut b = DdgBuilder::default();
        let n0 = b.node(Opcode::Add);
        let n1 = b.node(Opcode::Add);
        let n2 = b.node(Opcode::Add);
        let _ = b.finish();
        let pg = Pg::complete(2, ResourceTable::of_cns(4));
        let mut apg = AssignedPg::new(pg);
        apg.assign(n0, PgNodeId(1));
        apg.assign(n1, PgNodeId(0));
        apg.assign(n2, PgNodeId(1));
        let ws = child_working_sets(&apg, &[n0, n1, n2], 2);
        assert_eq!(ws[0], vec![n1]);
        assert_eq!(ws[1], vec![n0, n2]);
    }

    #[test]
    fn external_values_excluded_from_children() {
        let mut b = DdgBuilder::default();
        let ext = b.node(Opcode::Add);
        let n = b.node(Opcode::Add);
        b.flow(ext, n);
        let _ = b.finish();
        let mut pg = Pg::complete(2, ResourceTable::of_cns(4));
        pg.attach_ili(&Ili {
            inputs: vec![IliWire::new(vec![ext])],
            outputs: vec![],
        });
        let inp = pg.input_carrying(ext).unwrap();
        let mut apg = AssignedPg::new(pg);
        apg.assign(ext, inp);
        apg.assign(n, PgNodeId(0));
        // ext is bound to the input node, not to a member: children never
        // list it in a working set.
        let ws = child_working_sets(&apg, &[n], 2);
        assert_eq!(ws[0], vec![n]);
        assert!(ws[1].is_empty());
    }
}
