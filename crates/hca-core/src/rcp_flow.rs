//! The RCP flow — ICA on the paper's *non-hierarchical* machine (§2.1).
//!
//! RCP needs no decomposition: its Pattern Graph is the ring's
//! potential-connection graph and one SEE run is the whole cluster
//! assignment. What remains is the §2.1-specific lowering: turn the real
//! communication patterns into configured ring wires, check them against
//! the machine's input-port budget (Figure 1b's feasibility), and verify
//! flow conservation.

use hca_arch::Rcp;
use hca_ddg::{Ddg, DdgAnalysis, NodeId};
use hca_pg::{ArchConstraints, AssignedPg, Pg, PgNodeKind};
use hca_see::{See, SeeConfig, SeeError};
use rustc_hash::FxHashMap;

/// Result of the RCP flow.
#[derive(Clone, Debug)]
pub struct RcpResult {
    /// The assigned Pattern Graph.
    pub assigned: AssignedPg,
    /// Configured ring wires `(src cluster, dst cluster)`, deduplicated.
    pub wires: Vec<(usize, usize)>,
    /// Estimated MII of the assignment.
    pub est_mii: u32,
    /// Did the configured wires pass [`Rcp::check_topology`] and flow
    /// conservation?
    pub legal: bool,
    /// Any legality diagnostics.
    pub diagnostics: Vec<String>,
}

/// Map `ddg` onto an RCP ring.
pub fn run_rcp(ddg: &Ddg, rcp: &Rcp, config: SeeConfig) -> Result<RcpResult, SeeError> {
    let analysis =
        DdgAnalysis::compute(ddg).map_err(|_| SeeError::NoCandidates { node: NodeId(0) })?;
    let pg = Pg::from_rcp(rcp);
    let constraints = ArchConstraints::for_rcp(rcp);
    let see = See::new(ddg, &analysis, &pg, constraints, config);
    let outcome = see.run(None)?;

    // Lower real patterns to ring wires.
    let member: FxHashMap<_, _> = outcome
        .assigned
        .pg
        .cluster_ids()
        .map(|c| (c, outcome.assigned.pg.member_of(c)))
        .collect();
    let mut wires: Vec<(usize, usize)> = outcome
        .assigned
        .copies
        .iter()
        .filter(|(_, vs)| !vs.is_empty())
        .filter_map(|(&(s, d), _)| {
            match (
                outcome.assigned.pg.node(s).kind.clone(),
                outcome.assigned.pg.node(d).kind.clone(),
            ) {
                (PgNodeKind::Cluster { .. }, PgNodeKind::Cluster { .. }) => {
                    Some((member[&s], member[&d]))
                }
                _ => None,
            }
        })
        .collect();
    wires.sort_unstable();
    wires.dedup();

    let mut diagnostics = Vec::new();
    if let Err(e) = rcp.check_topology(&wires) {
        diagnostics.push(e);
    }
    let ws: Vec<NodeId> = ddg.node_ids().collect();
    diagnostics.extend(outcome.assigned.check_flow(ddg, &ws));
    Ok(RcpResult {
        est_mii: outcome.est_mii,
        legal: diagnostics.is_empty(),
        assigned: outcome.assigned,
        wires,
        diagnostics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_ddg::{DdgBuilder, Opcode};

    fn stream_kernel(chains: usize) -> Ddg {
        let mut b = DdgBuilder::default();
        for _ in 0..chains {
            let p = b.node(Opcode::AddrAdd);
            b.carried(p, p, 1);
            let x = b.op_with(Opcode::Load, &[p]);
            let y = b.op_with(Opcode::Mul, &[x]);
            let z = b.op_with(Opcode::Add, &[y]);
            b.op_with(Opcode::Store, &[z, p]);
        }
        b.finish()
    }

    #[test]
    fn rcp_flow_is_legal_on_figure1_machine() {
        let rcp = Rcp::figure1();
        let res = run_rcp(&stream_kernel(3), &rcp, SeeConfig::default()).unwrap();
        assert!(res.legal, "{:?}", res.diagnostics);
        // Every configured wire is a potential ring connection.
        for &(s, d) in &res.wires {
            assert!(rcp.can_connect(s, d), "{s}->{d}");
        }
    }

    #[test]
    fn heterogeneity_respected() {
        // Memory ops land only on memory-capable (even) clusters.
        let rcp = Rcp::figure1();
        let ddg = stream_kernel(4);
        let res = run_rcp(&ddg, &rcp, SeeConfig::default()).unwrap();
        for n in ddg.node_ids() {
            if ddg.node(n).op.is_memory() {
                let c = res.assigned.cluster_of(n).unwrap();
                let m = res.assigned.pg.member_of(c);
                assert!(rcp.mem_capable[m], "{n} on non-memory cluster {m}");
            }
        }
    }

    #[test]
    fn homogeneous_ring_takes_wide_kernels() {
        let rcp = Rcp::new(8, 2, 2, |_| true);
        let res = run_rcp(&stream_kernel(8), &rcp, SeeConfig::default()).unwrap();
        assert!(res.legal, "{:?}", res.diagnostics);
        assert!(res.est_mii >= 4, "8 chains × 4+ ops on 8 clusters");
    }
}
