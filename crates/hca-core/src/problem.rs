//! The hierarchical sub-problem (paper §4.1, Figure 8a).
//!
//! "Each sub-problem is fully described by a DDG, a Working Set (WS), a
//! constrained PG and an Inter Level Interface (ILI), and it is identified
//! by a unique sequence of indexes, representative of its level of nesting."

use hca_arch::GroupPath;
use hca_ddg::NodeId;
use hca_pg::Ili;

/// One node of the problem-decomposition tree.
#[derive(Clone, Debug)]
pub struct Subproblem {
    /// The nesting indexes — `[]` for the root problem, `[0, 2]` for the
    /// paper's "subproblem 0,2".
    pub path: GroupPath,
    /// The DDG nodes this sub-problem must assign.
    pub working_set: Vec<NodeId>,
    /// The interface to the father problem (empty at the root).
    pub ili: Ili,
}

impl Subproblem {
    /// The root problem: whole DDG, no parent interface.
    pub fn root(working_set: Vec<NodeId>) -> Self {
        Subproblem {
            path: Vec::new(),
            working_set,
            ili: Ili::root(),
        }
    }

    /// Hierarchy depth of this sub-problem (0 = root).
    pub fn depth(&self) -> usize {
        self.path.len()
    }

    /// Human-readable problem id, e.g. `"0,2"` (root: `"⊤"`).
    pub fn id(&self) -> String {
        if self.path.is_empty() {
            "⊤".to_string()
        } else {
            self.path
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(",")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_problem() {
        let p = Subproblem::root(vec![NodeId(0), NodeId(1)]);
        assert_eq!(p.depth(), 0);
        assert_eq!(p.id(), "⊤");
        assert!(p.ili.is_empty());
    }

    #[test]
    fn nested_id() {
        let p = Subproblem {
            path: vec![0, 2],
            working_set: vec![],
            ili: Ili::root(),
        };
        assert_eq!(p.depth(), 2);
        assert_eq!(p.id(), "0,2");
    }
}
