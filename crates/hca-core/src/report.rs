//! Table-1 style reporting.

use crate::driver::HcaResult;
use hca_ddg::Ddg;
use hca_obs::RunMetrics;
use serde::Serialize;
use std::fmt;

/// One row of the paper's Table 1: "HCA test on four multimedia application
/// loops".
#[derive(Clone, Debug, Serialize)]
pub struct Table1Row {
    /// Loop name.
    pub loop_name: String,
    /// `N_Instr`: instruction count of the source DDG.
    pub n_instr: usize,
    /// `MIIRec`.
    pub mii_rec: u32,
    /// `MIIRes` (unified machine).
    pub mii_res: u32,
    /// "Legal clusterization".
    pub legal: bool,
    /// `Final MII`.
    pub final_mii: u32,
    /// Observability snapshot of the producing run, when it was observed.
    pub metrics: Option<RunMetrics>,
}

impl Table1Row {
    /// Build the row from a finished HCA run.
    pub fn from_result(name: impl Into<String>, ddg: &Ddg, result: &HcaResult) -> Self {
        Table1Row {
            loop_name: name.into(),
            n_instr: ddg.num_nodes(),
            mii_rec: result.mii.mii_rec,
            mii_res: result.mii.mii_res,
            legal: result.is_legal(),
            final_mii: result.mii.final_mii,
            metrics: result.metrics.clone(),
        }
    }

    /// Render a set of rows as the paper's table.
    pub fn render_table(rows: &[Table1Row]) -> String {
        let mut s = String::new();
        s.push_str("| Loop | N_Instr | MIIRec | MIIRes | Legal clusterization | Final MII |\n");
        s.push_str("|---|---|---|---|---|---|\n");
        for r in rows {
            s.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} |\n",
                r.loop_name,
                r.n_instr,
                r.mii_rec,
                r.mii_res,
                if r.legal { "yes" } else { "no" },
                r.final_mii
            ));
        }
        s
    }
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} {:>7} {:>6} {:>6} {:>5} {:>9}",
            self.loop_name,
            self.n_instr,
            self.mii_rec,
            self.mii_res,
            if self.legal { "yes" } else { "no" },
            self.final_mii
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown_table() {
        let rows = vec![Table1Row {
            loop_name: "fir2dim".into(),
            n_instr: 57,
            mii_rec: 3,
            mii_res: 2,
            legal: true,
            final_mii: 3,
            metrics: None,
        }];
        let t = Table1Row::render_table(&rows);
        assert!(t.contains("| fir2dim | 57 | 3 | 2 | yes | 3 |"), "{t}");
    }
}
