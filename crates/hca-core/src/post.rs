//! Post-processing (paper §4.1, end): "a post processing pass exploits the
//! informations held at the leaves of the problem hierarchy, in order to
//! build the final DDG. Each DDG node is assigned to a CN and receive
//! primitives are added as new DDG nodes, which perform the migration of the
//! operands between different CNs."

use hca_arch::{CnId, DspFabric};
use hca_ddg::{Ddg, NodeId, Opcode};
use rustc_hash::FxHashMap;

/// The fully lowered program: the original instructions plus the
/// machine-inserted `recv`/`route` primitives, each placed on a CN.
#[derive(Clone, Debug)]
pub struct FinalProgram {
    /// The final DDG. The first `num_original` nodes are the input DDG's
    /// nodes with unchanged ids; `recv` and `route` nodes follow.
    pub ddg: Ddg,
    /// Placement of every final-DDG node.
    pub placement: Vec<CnId>,
    /// `(value, destination CN, iteration distance) → recv node`.
    pub recv_nodes: FxHashMap<(NodeId, CnId, u32), NodeId>,
    /// Route (pass-through forward) nodes, with the value each re-emits.
    pub route_nodes: Vec<(NodeId, NodeId)>,
    /// Node count of the original DDG.
    pub num_original: usize,
}

impl FinalProgram {
    /// Number of `recv` primitives inserted.
    pub fn num_recvs(&self) -> usize {
        self.recv_nodes.len()
    }

    /// Issue load (instruction count) per CN.
    pub fn issue_load(&self, fabric: &DspFabric) -> Vec<u32> {
        let mut load = vec![0u32; fabric.num_cns()];
        for n in self.ddg.node_ids() {
            load[self.placement[n.index()].index()] += 1;
        }
        load
    }
}

/// Transport latency (in copy-latency units) between two CNs: one hop per
/// hierarchy boundary crossed upward plus one per boundary downward, plus
/// the crossing at the meeting level — `2·(depth − common) − 1` hops.
pub fn transport_hops(fabric: &DspFabric, a: CnId, b: CnId) -> u32 {
    if a == b {
        return 0;
    }
    let common = fabric.common_depth(a, b);
    (2 * (fabric.depth() - common) - 1) as u32
}

/// Build the final DDG from the leaf placements.
///
/// For every dependence `u → w` whose endpoints sit on different CNs, a
/// `recv` node is inserted on `w`'s CN (shared by all consumers of the same
/// value/distance there): `u → recv` keeps the original latency and
/// distance; `recv → w` carries the transport latency
/// `copy_latency · hops`. Pass-through forwards become `route` nodes on
/// their forwarding CN.
pub fn build_final_program(
    ddg: &Ddg,
    fabric: &DspFabric,
    placement: &FxHashMap<NodeId, CnId>,
    route_ops: &[(NodeId, CnId)],
) -> FinalProgram {
    let mut out = Ddg::new();
    let mut place: Vec<CnId> = Vec::with_capacity(ddg.num_nodes());
    for n in ddg.node_ids() {
        let node = ddg.node(n);
        let id = out.add_node(node.op, node.name.clone());
        debug_assert_eq!(id, n, "original ids preserved");
        place.push(
            *placement
                .get(&n)
                .unwrap_or_else(|| panic!("{n} was never placed on a CN")),
        );
    }

    let mut recv_nodes: FxHashMap<(NodeId, CnId, u32), NodeId> = FxHashMap::default();
    for e in ddg.edges() {
        let (cu, cw) = (place[e.src.index()], place[e.dst.index()]);
        if cu == cw || ddg.node(e.src).op == Opcode::Const {
            // Same CN, or a configuration-time-replicated constant: the
            // value is already in the consumer's register file.
            out.add_edge(e.src, e.dst, e.latency, e.distance);
            continue;
        }
        let hops = transport_hops(fabric, cu, cw);
        let recv = *recv_nodes
            .entry((e.src, cw, e.distance))
            .or_insert_with(|| {
                let r = out.add_node(Opcode::Recv, Some(format!("rcv {} @{cw}", e.src)));
                place.push(cw);
                out.add_edge(e.src, r, e.latency, e.distance);
                r
            });
        out.add_edge(recv, e.dst, fabric.copy_latency * hops, 0);
    }

    let mut route_nodes = Vec::with_capacity(route_ops.len());
    for &(v, cn) in route_ops {
        let producer_latency = ddg.succ_edges(v).map(|(_, e)| e.latency).max().unwrap_or(1);
        let r = out.add_node(Opcode::Route, Some(format!("rt {v} @{cn}")));
        place.push(cn);
        out.add_edge(v, r, producer_latency, 0);
        route_nodes.push((r, v));
    }

    FinalProgram {
        ddg: out,
        placement: place,
        recv_nodes,
        route_nodes,
        num_original: ddg.num_nodes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_ddg::DdgBuilder;

    fn place_map(pairs: &[(NodeId, CnId)]) -> FxHashMap<NodeId, CnId> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn transport_hops_by_level() {
        let f = DspFabric::standard(8, 8, 8);
        let a = f.cn_of_path(&[0, 0, 0]);
        assert_eq!(transport_hops(&f, a, a), 0);
        assert_eq!(transport_hops(&f, a, f.cn_of_path(&[0, 0, 1])), 1);
        assert_eq!(transport_hops(&f, a, f.cn_of_path(&[0, 1, 0])), 3);
        assert_eq!(transport_hops(&f, a, f.cn_of_path(&[1, 0, 0])), 5);
    }

    #[test]
    fn same_cn_edges_untouched() {
        let mut b = DdgBuilder::default();
        let u = b.node(Opcode::Add);
        let w = b.node(Opcode::Add);
        b.flow(u, w);
        let ddg = b.finish();
        let f = DspFabric::standard(8, 8, 8);
        let cn = f.cn_of_path(&[1, 2, 3]);
        let fp = build_final_program(&ddg, &f, &place_map(&[(u, cn), (w, cn)]), &[]);
        assert_eq!(fp.ddg.num_nodes(), 2);
        assert_eq!(fp.num_recvs(), 0);
        assert_eq!(fp.placement, vec![cn, cn]);
    }

    #[test]
    fn cross_cn_edge_gets_recv() {
        let mut b = DdgBuilder::default();
        let u = b.node(Opcode::Mul); // latency 2
        let w = b.node(Opcode::Add);
        b.flow(u, w);
        let ddg = b.finish();
        let f = DspFabric::standard(8, 8, 8);
        let (ca, cb) = (f.cn_of_path(&[0, 0, 0]), f.cn_of_path(&[0, 0, 1]));
        let fp = build_final_program(&ddg, &f, &place_map(&[(u, ca), (w, cb)]), &[]);
        assert_eq!(fp.ddg.num_nodes(), 3);
        assert_eq!(fp.num_recvs(), 1);
        let r = fp.recv_nodes[&(u, cb, 0)];
        assert_eq!(fp.placement[r.index()], cb);
        assert_eq!(fp.ddg.node(r).op, Opcode::Recv);
        // u -> r keeps the producer latency, r -> w carries the transport.
        let (_, e_ur) = fp.ddg.pred_edges(r).next().unwrap();
        assert_eq!(e_ur.latency, 2);
        let (_, e_rw) = fp.ddg.pred_edges(w).next().unwrap();
        assert_eq!(e_rw.src, r);
        assert_eq!(e_rw.latency, f.copy_latency); // 1 hop inside leaf group
    }

    #[test]
    fn consumers_share_recv_per_distance() {
        let mut b = DdgBuilder::default();
        let u = b.node(Opcode::Add);
        let w1 = b.node(Opcode::Add);
        let w2 = b.node(Opcode::Add);
        let w3 = b.node(Opcode::Add);
        b.flow(u, w1);
        b.flow(u, w2);
        b.edge(u, w3, 1, 1); // loop-carried: separate value instance
        let ddg = b.finish();
        let f = DspFabric::standard(8, 8, 8);
        let (ca, cb) = (f.cn_of_path(&[0, 0, 0]), f.cn_of_path(&[2, 1, 0]));
        let fp = build_final_program(
            &ddg,
            &f,
            &place_map(&[(u, ca), (w1, cb), (w2, cb), (w3, cb)]),
            &[],
        );
        // One recv for the distance-0 consumers, one for the carried one.
        assert_eq!(fp.num_recvs(), 2);
        assert!(fp.recv_nodes.contains_key(&(u, cb, 0)));
        assert!(fp.recv_nodes.contains_key(&(u, cb, 1)));
        // Cross-set hop count: 2·(3−0)−1 = 5 transport hops.
        let r = fp.recv_nodes[&(u, cb, 0)];
        let (_, e_rw) = fp.ddg.pred_edges(w1).next().unwrap();
        assert_eq!(e_rw.src, r);
        assert_eq!(e_rw.latency, 5 * f.copy_latency);
    }

    #[test]
    fn route_ops_materialise() {
        let mut b = DdgBuilder::default();
        let u = b.node(Opcode::Add);
        let w = b.node(Opcode::Add);
        b.flow(u, w);
        let ddg = b.finish();
        let f = DspFabric::standard(8, 8, 8);
        let (ca, cb, cfwd) = (
            f.cn_of_path(&[0, 0, 0]),
            f.cn_of_path(&[1, 0, 0]),
            f.cn_of_path(&[0, 1, 0]),
        );
        let fp = build_final_program(&ddg, &f, &place_map(&[(u, ca), (w, cb)]), &[(u, cfwd)]);
        assert_eq!(fp.route_nodes.len(), 1);
        let (r, v) = fp.route_nodes[0];
        assert_eq!(v, u);
        assert_eq!(fp.ddg.node(r).op, Opcode::Route);
        assert_eq!(fp.placement[r.index()], cfwd);
    }

    #[test]
    #[should_panic(expected = "never placed")]
    fn unplaced_node_panics() {
        let mut b = DdgBuilder::default();
        let u = b.node(Opcode::Add);
        let _ = u;
        let ddg = b.finish();
        let f = DspFabric::standard(8, 8, 8);
        build_final_program(&ddg, &f, &FxHashMap::default(), &[]);
    }
}
