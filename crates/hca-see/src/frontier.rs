//! Frontier deduplication and dominance pruning.
//!
//! The beam is represented *virtually* in the engine: a vector of distinct
//! [`PartialState`]s plus a slot vector mapping each beam position to its
//! distinct state. Bit-identical states then cost one scoring pass and one
//! materialisation instead of one per slot, while every per-slot statistic
//! and the stable sort/truncation boundaries of the original materialised
//! beam are reproduced exactly — the search outcome is bit-identical to the
//! naive engine by construction.
//!
//! This module provides the two passes:
//!
//! * [`content_merge`] — fold bit-identical states behind a scalar-key
//!   prefilter (cost bits, copy counts — free to read, and necessarily
//!   equal for identical states) and full field-by-field verification, so
//!   two different states can never merge;
//! * [`prune_dominated`] — drop states strictly dominated by a sibling.
//!   Dominance here is deliberately narrow: identical assignment and arc
//!   structure, no-worse on every path-dependent score scalar. Anything
//!   broader is unsound — copies are free-ride assets for future routing,
//!   the critical penalty depends on creation-time slack, and removing a
//!   state reshapes the beam for everyone else — so this only fires on
//!   states that differ in scoring history alone. It is still a heuristic
//!   (the pruned state's descendants vanish from the beam), which is why
//!   the engine keeps it behind `SeeConfig::dominance`/`HCA_NO_DOMINANCE`.
//!
//! Both passes run on signature-sorted dense index slices (no hashing of
//! state content), and both hand every folded/pruned state back through a
//! `recycle` vector so the engine's state arena can reuse its buffers.

use crate::state::PartialState;
use smallvec::SmallVec;

/// Free-to-read per-state key that is necessarily equal for bit-identical
/// states — the [`content_merge`] prefilter. Walking a state's maps to
/// hash them would cost more than the merge saves on frontiers with no
/// duplicates (the common case), so the prefilter reads only cached
/// scalars (cost bits, copy counts) plus the incrementally maintained
/// structure signature, and the full comparison runs just on key
/// collisions.
fn scalar_key(st: &PartialState) -> (u64, u64, u32, u32, u32, u64) {
    (
        st.struct_sig,
        st.cost.to_bits(),
        st.total_copies,
        st.recurrence_copies,
        st.routed_hops,
        st.critical_penalty.to_bits(),
    )
}

/// Full bit-exact equality (floats compared by bit pattern) — the collision
/// check behind the [`scalar_key`] prefilter. The structure signature leads
/// as a reject-only screen; everything is still verified field by field
/// behind a signature match, so collisions cannot merge different states.
pub(crate) fn states_identical(a: &PartialState, b: &PartialState) -> bool {
    a.struct_sig == b.struct_sig
        && a.cost.to_bits() == b.cost.to_bits()
        && a.total_copies == b.total_copies
        && a.routed_hops == b.routed_hops
        && a.recurrence_copies == b.recurrence_copies
        && a.critical_penalty.to_bits() == b.critical_penalty.to_bits()
        && a.loads == b.loads
        && a.forwards == b.forwards
        && a.assignment == b.assignment
        && a.copies == b.copies
        && a.in_neighbors == b.in_neighbors
        && a.out_neighbors == b.out_neighbors
}

/// Fold bit-identical entries of `states`, remapping `slots` (each entry an
/// index into `states`) onto the surviving representatives — always the
/// first occurrence, so the result is deterministic. Folded states are
/// pushed onto `recycle` for the arena instead of dropped. Returns how many
/// states were folded away.
pub(crate) fn content_merge(
    states: &mut Vec<PartialState>,
    slots: &mut [usize],
    recycle: &mut Vec<PartialState>,
) -> usize {
    let n = states.len();
    if n < 2 {
        return 0;
    }
    // Debug builds re-derive every signature from scratch: any mutator that
    // forgot to maintain `struct_sig` trips here long before a missed merge
    // or prune could silently cost performance.
    debug_assert!(
        states
            .iter()
            .all(|st| st.struct_sig == st.compute_struct_sig()),
        "struct_sig out of sync with state content"
    );
    // Sort indices by (scalar key, original index): possible duplicates now
    // sit in contiguous equal-key runs, in first-occurrence order — a dense
    // slice scan instead of hash-map bucketing. Each state is verified only
    // against the earlier keeps of its own run, and the earliest identical
    // state always wins, exactly as the bucketed fold did.
    let keys: Vec<_> = states.iter().map(scalar_key).collect();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_unstable_by(|&a, &b| keys[a].cmp(&keys[b]).then(a.cmp(&b)));
    let mut remap: Vec<usize> = (0..n).collect();
    let mut folded = 0usize;
    let mut run_start = 0;
    while run_start < n {
        let key = &keys[idx[run_start]];
        let mut run_end = run_start + 1;
        while run_end < n && keys[idx[run_end]] == *key {
            run_end += 1;
        }
        let run = &idx[run_start..run_end];
        run_start = run_end;
        if run.len() < 2 {
            continue;
        }
        let mut kept_in_run: SmallVec<[usize; 2]> = SmallVec::new();
        kept_in_run.push(run[0]);
        for &i in &run[1..] {
            let dup = kept_in_run
                .iter()
                .copied()
                .find(|&k| states_identical(&states[k], &states[i]));
            match dup {
                Some(k) => {
                    remap[i] = k;
                    folded += 1;
                }
                None => kept_in_run.push(i),
            }
        }
    }
    if folded == 0 {
        return 0;
    }
    let mut new_idx = vec![usize::MAX; n];
    let mut kept = 0usize;
    for (i, &r) in remap.iter().enumerate() {
        if r == i {
            new_idx[i] = kept;
            kept += 1;
        }
    }
    let old = std::mem::take(states);
    for (i, st) in old.into_iter().enumerate() {
        if new_idx[i] != usize::MAX {
            states.push(st);
        } else {
            recycle.push(st);
        }
    }
    for s in slots.iter_mut() {
        *s = new_idx[remap[*s]];
    }
    folded
}

/// Identical assignment/copy/port/load structure — the equality half of
/// dominance: both states offer future steps the exact same resources. The
/// incrementally maintained structure signature leads as a one-word reject
/// screen (structurally different siblings — the overwhelmingly common
/// case — fall out here); the maps are still compared field by field
/// behind a signature match, so a hash collision can never prune.
fn same_structure(a: &PartialState, b: &PartialState) -> bool {
    a.struct_sig == b.struct_sig
        && a.total_copies == b.total_copies
        && a.loads == b.loads
        && a.forwards == b.forwards
        && a.assignment == b.assignment
        && a.copies == b.copies
        && a.in_neighbors == b.in_neighbors
        && a.out_neighbors == b.out_neighbors
}

/// Componentwise no-worse path-dependent score scalars — the order half of
/// dominance.
fn scalars_no_worse(a: &PartialState, b: &PartialState) -> bool {
    a.mii_issue <= b.mii_issue
        && a.mii_arc <= b.mii_arc
        && a.recurrence_copies <= b.recurrence_copies
        && a.routed_hops <= b.routed_hops
        && a.util_sq_sum.total_cmp(&b.util_sq_sum).is_le()
        && a.critical_penalty.total_cmp(&b.critical_penalty).is_le()
        && a.cost.total_cmp(&b.cost).is_le()
}

/// Does `a` strictly dominate `b`? Requires identical assignment/copy/port
/// structure (so both states offer future steps the exact same resources)
/// and componentwise no-worse score scalars. Mutual domination is
/// impossible after [`content_merge`]: two-way `<=` on every compared field
/// means the states are bit-identical and would already have been folded.
#[cfg_attr(not(test), allow(dead_code))] // executable spec; the prune pass composes the two halves
pub(crate) fn dominates(a: &PartialState, b: &PartialState) -> bool {
    same_structure(a, b) && scalars_no_worse(a, b)
}

/// Remove every state dominated by some sibling, dropping its beam slots.
/// Pruned states are pushed onto `recycle` for the arena. Returns the
/// number of *slots* removed (the engine's virtual accounting).
///
/// Dominance needs identical structure, and identical structure implies an
/// identical structure signature — so candidate pairs only ever live inside
/// a run of equal signatures. Sorting indices by signature and working
/// run-by-run replaces the naive all-pairs scan, whose O(n²) loop overhead
/// alone (hundreds of distinct states per step on wide portfolio beams ×
/// one step per placed node) dominated the engine's wall clock. Within a
/// run, states partition into structural-equality classes (one full
/// comparison per state per class representative); the cheap scalar chain
/// then runs only among class members. The computed dominated set is
/// exactly the pairwise one: `dominates(j, i)` ⟺ same class ∧ scalar
/// no-worse — which state ends up in which run position cannot change it.
pub(crate) fn prune_dominated(
    states: &mut Vec<PartialState>,
    slots: &mut Vec<usize>,
    recycle: &mut Vec<PartialState>,
) -> usize {
    let n = states.len();
    if n < 2 {
        return 0;
    }
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_unstable_by_key(|&i| states[i].struct_sig);
    let mut dominated = vec![false; n];
    let mut run_start = 0;
    while run_start < n {
        let sig = states[idx[run_start]].struct_sig;
        let mut run_end = run_start + 1;
        while run_end < n && states[idx[run_end]].struct_sig == sig {
            run_end += 1;
        }
        let run = &idx[run_start..run_end];
        run_start = run_end;
        if run.len() < 2 {
            continue;
        }
        // Structural-equality classes within the equal-sig run.
        let mut class_of = vec![usize::MAX; run.len()];
        let mut reps: Vec<usize> = Vec::new();
        for (a, &i) in run.iter().enumerate() {
            match reps
                .iter()
                .position(|&r| same_structure(&states[run[r]], &states[i]))
            {
                Some(k) => class_of[a] = k,
                None => {
                    class_of[a] = reps.len();
                    reps.push(a);
                }
            }
        }
        if reps.len() == run.len() {
            continue; // every class is a singleton — nothing is comparable
        }
        for a in 0..run.len() {
            for b in 0..run.len() {
                if a != b
                    && class_of[a] == class_of[b]
                    && scalars_no_worse(&states[run[b]], &states[run[a]])
                {
                    dominated[run[a]] = true;
                    break;
                }
            }
        }
    }
    if !dominated.iter().any(|&d| d) {
        return 0;
    }
    let mut new_idx = vec![usize::MAX; n];
    let mut kept = 0usize;
    for (i, &dom) in dominated.iter().enumerate() {
        if !dom {
            new_idx[i] = kept;
            kept += 1;
        }
    }
    let before = slots.len();
    slots.retain(|&di| !dominated[di]);
    let removed = before - slots.len();
    for s in slots.iter_mut() {
        *s = new_idx[*s];
    }
    let old = std::mem::take(states);
    for (i, st) in old.into_iter().enumerate() {
        if !dominated[i] {
            states.push(st);
        } else {
            recycle.push(st);
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostWeights;
    use crate::state::SeeContext;
    use hca_arch::ResourceTable;
    use hca_ddg::{DdgAnalysis, DdgBuilder, Opcode};
    use hca_pg::{ArchConstraints, Pg, PgNodeId};

    fn fixture() -> (hca_ddg::Ddg, Pg) {
        let mut b = DdgBuilder::default();
        let p = b.node(Opcode::Add);
        let q = b.node(Opcode::Add);
        b.flow(p, q);
        (b.finish(), Pg::complete(3, ResourceTable::of_cns(4)))
    }

    fn mk_ctx<'a>(ddg: &'a hca_ddg::Ddg, an: &'a DdgAnalysis, pg: &'a Pg) -> SeeContext<'a> {
        SeeContext {
            ddg,
            analysis: an,
            pg,
            constraints: ArchConstraints {
                max_in_neighbors: 4,
                max_out_neighbors: None,
                out_node_max_in: 1,
                copy_latency: 1,
            },
            weights: CostWeights::default(),
            issue_cap: None,
            statics: crate::statics::PgStatics::build(pg),
        }
    }

    #[test]
    fn identical_states_merge_different_states_do_not() {
        let (ddg, pg) = fixture();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let ctx = mk_ctx(&ddg, &an, &pg);
        let mut a = PartialState::initial(&ctx, &[]);
        a.apply_assign(&ctx, hca_ddg::NodeId(0), PgNodeId(0));
        let b = a.clone();
        let mut c = PartialState::initial(&ctx, &[]);
        c.apply_assign(&ctx, hca_ddg::NodeId(0), PgNodeId(1));

        assert_eq!(scalar_key(&a), scalar_key(&b));
        assert!(states_identical(&a, &b));
        assert!(!states_identical(&a, &c));

        let mut states = vec![a, b, c];
        let mut slots = vec![0usize, 1, 2];
        let mut recycle = Vec::new();
        let folded = content_merge(&mut states, &mut slots, &mut recycle);
        assert_eq!(folded, 1);
        assert_eq!(states.len(), 2);
        assert_eq!(slots, vec![0, 0, 1]);
        assert_eq!(recycle.len(), 1, "folded state handed to the arena");
    }

    #[test]
    fn equality_ignores_map_iteration_order() {
        // Build the same logical state along two different mutation orders:
        // the maps' internal layouts differ, the comparison must not care.
        let (ddg, pg) = fixture();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let ctx = mk_ctx(&ddg, &an, &pg);
        let (p, q) = (hca_ddg::NodeId(0), hca_ddg::NodeId(1));
        let mut a = PartialState::initial(&ctx, &[]);
        a.apply_assign(&ctx, p, PgNodeId(0));
        a.apply_assign(&ctx, q, PgNodeId(1));
        let mut b = PartialState::initial(&ctx, &[]);
        b.apply_assign(&ctx, q, PgNodeId(1));
        b.apply_assign(&ctx, p, PgNodeId(0));
        // Same logical content, but the costs were accumulated in different
        // orders — align the cached scalars before comparing.
        b.cost = a.cost;
        b.critical_penalty = a.critical_penalty;
        if states_identical(&a, &b) {
            assert_eq!(scalar_key(&a), scalar_key(&b));
            let mut states = vec![a, b];
            let mut slots = vec![0usize, 1];
            let mut recycle = Vec::new();
            assert_eq!(content_merge(&mut states, &mut slots, &mut recycle), 1);
        }
    }

    #[test]
    fn dominance_requires_equal_structure() {
        let (ddg, pg) = fixture();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let ctx = mk_ctx(&ddg, &an, &pg);
        let mut a = PartialState::initial(&ctx, &[]);
        a.apply_assign(&ctx, hca_ddg::NodeId(0), PgNodeId(0));
        // b: same structure, strictly worse path-dependent scalars.
        let mut b = a.clone();
        b.critical_penalty += 1.0;
        b.cost += 1.0;
        b.routed_hops += 2;
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
        // c: different placement — never comparable.
        let mut c = PartialState::initial(&ctx, &[]);
        c.apply_assign(&ctx, hca_ddg::NodeId(0), PgNodeId(1));
        assert!(!dominates(&a, &c));
        assert!(!dominates(&c, &a));

        let mut states = vec![a.clone(), b, c];
        let mut slots = vec![0usize, 1, 2, 1];
        let mut recycle = Vec::new();
        let removed = prune_dominated(&mut states, &mut slots, &mut recycle);
        assert_eq!(removed, 2, "both slots of the dominated state go");
        assert_eq!(states.len(), 2);
        assert_eq!(slots, vec![0, 1]);
        assert!(states_identical(&states[0], &a));
        assert_eq!(recycle.len(), 1, "pruned state handed to the arena");
    }
}
