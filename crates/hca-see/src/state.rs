//! Partial-solution state of the beam search.
//!
//! Each node of the exploration space (paper Figure 5) is a *partial
//! solution*: an assignment of a prefix of the priority list plus the copy
//! flow it induces. The state keeps incremental statistics (per-cluster
//! resource usage, receive counts, arc pressures, in-neighbour sets) so that
//! evaluating one more assignment is O(degree), not O(graph).

use crate::cost::CostWeights;
use hca_ddg::{Ddg, DdgAnalysis, NodeId};
use hca_pg::{ArchConstraints, AssignedPg, Pg, PgNodeId, PgNodeKind};
use rustc_hash::{FxHashMap, FxHashSet};
use smallvec::SmallVec;

/// Immutable context shared by every state of one SEE run.
pub struct SeeContext<'a> {
    /// The loop's DDG.
    pub ddg: &'a Ddg,
    /// Pre-computed analyses (levels, SCCs, MIIRec).
    pub analysis: &'a DdgAnalysis,
    /// The Pattern Graph of this sub-problem.
    pub pg: &'a Pg,
    /// Reconfiguration constraints at this level.
    pub constraints: ArchConstraints,
    /// Objective-function weights.
    pub weights: CostWeights,
    /// Optional hard cap on per-issue-slot load (a target-II ceiling); used
    /// by `isAssignable` to reject pathological imbalance early.
    pub issue_cap: Option<u32>,
}

/// A partial cluster assignment plus its incremental statistics.
#[derive(Clone, Debug)]
pub struct PartialState {
    /// `DDG̅` so far (includes pre-assigned external producers on input nodes).
    pub assignment: FxHashMap<NodeId, PgNodeId>,
    /// Values on each real arc.
    pub copies: FxHashMap<(PgNodeId, PgNodeId), SmallVec<[NodeId; 2]>>,
    /// Issue-slot load per PG node (instructions + receives).
    pub issue_load: Vec<u32>,
    /// ALU ops per PG node.
    pub alu_ops: Vec<u32>,
    /// Address-generator ops per PG node.
    pub ag_ops: Vec<u32>,
    /// Receive primitives per PG node.
    pub recv_load: Vec<u32>,
    /// Distinct real in-neighbours per PG node.
    pub in_neighbors: Vec<FxHashSet<PgNodeId>>,
    /// Distinct real out-neighbours per PG node.
    pub out_neighbors: Vec<FxHashSet<PgNodeId>>,
    /// Total (value, destination) copy pairs.
    pub total_copies: u32,
    /// Copies whose endpoints sit in one SCC (they stretch a recurrence).
    pub recurrence_copies: u32,
    /// Accumulated critical-path penalty (copies on low-slack edges).
    pub critical_penalty: f64,
    /// Route-through hops added by the Route Allocator.
    pub routed_hops: u32,
    /// Pass-through forwards performed at this level: an external value
    /// entering on a glue-in wire and leaving on a glue-out wire is re-emitted
    /// by the named cluster (one issue slot for the `Route` op).
    pub forwards: Vec<(NodeId, PgNodeId)>,
    /// Cached objective value.
    pub cost: f64,
}

impl PartialState {
    /// Initial state: nothing assigned except the PG's own special input
    /// nodes, to which the externally-produced values are bound (so that the
    /// generic copy machinery treats "receive from the father" exactly like
    /// "receive from a sibling cluster", §4.1).
    ///
    /// `working_set` lists the nodes this sub-problem will assign itself:
    /// a value that is *produced here* must never be sourced from an input
    /// wire, even when a merged parent wire happens to carry it back in —
    /// doing so creates a circular cross-level dependency (the parent wire's
    /// content ultimately comes from this very group's emission).
    pub fn initial(ctx: &SeeContext<'_>, working_set: &[NodeId]) -> Self {
        let n = ctx.pg.num_nodes();
        let mut st = PartialState {
            assignment: FxHashMap::default(),
            copies: FxHashMap::default(),
            issue_load: vec![0; n],
            alu_ops: vec![0; n],
            ag_ops: vec![0; n],
            recv_load: vec![0; n],
            in_neighbors: vec![FxHashSet::default(); n],
            out_neighbors: vec![FxHashSet::default(); n],
            total_copies: 0,
            recurrence_copies: 0,
            critical_penalty: 0.0,
            routed_hops: 0,
            forwards: Vec::new(),
            cost: 0.0,
        };
        let ws: FxHashSet<NodeId> = working_set.iter().copied().collect();
        for id in ctx.pg.input_ids() {
            if let PgNodeKind::Input { values, .. } = &ctx.pg.node(id).kind {
                for &v in values {
                    if !ws.contains(&v) {
                        st.assignment.insert(v, id);
                    }
                }
            }
        }
        st
    }

    /// Cluster currently holding `n`, if assigned.
    #[inline]
    pub fn cluster_of(&self, n: NodeId) -> Option<PgNodeId> {
        self.assignment.get(&n).copied()
    }

    /// Pressure (value count) of the real arc `src → dst`.
    #[inline]
    pub fn arc_pressure(&self, src: PgNodeId, dst: PgNodeId) -> u32 {
        self.copies.get(&(src, dst)).map_or(0, |v| v.len() as u32)
    }

    /// How many of `c`'s in-neighbours are glue-in (special input) nodes.
    pub fn glue_in_neighbors(&self, ctx: &SeeContext<'_>, c: PgNodeId) -> usize {
        self.in_neighbors[c.index()]
            .iter()
            .filter(|&&s| !ctx.pg.node(s).kind.is_cluster())
            .count()
    }

    /// Per-cluster cap on *directly bound* glue-in wires: half the input
    /// ports, rounded down but at least one. Hoarding the other half for
    /// sibling arcs keeps relay aggregation possible — without this, a
    /// cluster that binds both of its ports to parent wires walls itself off
    /// from the rest of the group and the search dead-ends.
    pub fn glue_in_cap(ctx: &SeeContext<'_>) -> usize {
        ((ctx.constraints.max_in_neighbors as usize) / 2).max(1)
    }

    /// Record value `v` on arc `src → dst` (no-op when already present).
    /// Updates receive counts, in-neighbour sets and copy statistics.
    ///
    /// `via_edge_slack`/`in_recurrence` carry the DDG-edge context used by
    /// the cost criteria; pass `None` for routing hops that correspond to no
    /// DDG edge.
    pub fn add_copy(
        &mut self,
        ctx: &SeeContext<'_>,
        v: NodeId,
        src: PgNodeId,
        dst: PgNodeId,
        via_edge_slack: Option<u32>,
        in_recurrence: bool,
    ) -> bool {
        let entry = self.copies.entry((src, dst)).or_default();
        if entry.contains(&v) {
            return false;
        }
        entry.push(v);
        self.total_copies += 1;
        self.in_neighbors[dst.index()].insert(src);
        self.out_neighbors[src.index()].insert(dst);
        // Receiving a value costs one issue slot on the destination cluster
        // (the rcv primitive, §2.2) — but only on real clusters: special
        // output nodes model the parent boundary and execute nothing.
        if ctx.pg.node(dst).kind.is_cluster() {
            self.recv_load[dst.index()] += 1;
            self.issue_load[dst.index()] += 1;
        }
        if in_recurrence {
            self.recurrence_copies += 1;
        }
        if let Some(slack) = via_edge_slack {
            // A copy on a tight edge stretches the schedule: weigh it by how
            // little slack the edge has to absorb the transport latency.
            let lat = f64::from(ctx.constraints.copy_latency);
            let room = f64::from(slack);
            self.critical_penalty += (lat / (1.0 + room)).min(lat);
        }
        true
    }

    /// Book `n` onto cluster `c` and charge its resources — without creating
    /// any copies. The Route Allocator uses this directly and routes the
    /// flows itself; everyone else goes through [`apply_assign`].
    ///
    /// [`apply_assign`]: PartialState::apply_assign
    pub fn place(&mut self, ctx: &SeeContext<'_>, n: NodeId, c: PgNodeId) {
        debug_assert!(
            ctx.pg.node(c).kind.is_cluster(),
            "assigning to special node"
        );
        debug_assert!(!self.assignment.contains_key(&n), "{n} already assigned");
        self.assignment.insert(n, c);
        self.issue_load[c.index()] += 1;
        match ctx.ddg.node(n).op.resource_class() {
            hca_ddg::ResourceClass::Alu => self.alu_ops[c.index()] += 1,
            hca_ddg::ResourceClass::AddrGen => self.ag_ops[c.index()] += 1,
            hca_ddg::ResourceClass::Receive => {}
        }
    }

    /// Assign DDG node `n` to cluster `c`, creating every induced copy:
    /// from each assigned producer of `n`'s operands, towards each assigned
    /// consumer of `n`'s value, and towards output special nodes listing it.
    ///
    /// The caller must have verified assignability; this method only applies.
    pub fn apply_assign(&mut self, ctx: &SeeContext<'_>, n: NodeId, c: PgNodeId) {
        self.place(ctx, n, c);
        let scc = &ctx.analysis.scc;
        // Operand flows into n. Constants never travel: the configuration
        // loader replicates them into every register file before the loop
        // starts (§2.2's reconfiguration phase), so they cost neither a wire
        // nor a receive.
        for (_, e) in ctx.ddg.pred_edges(n) {
            if ctx.ddg.node(e.src).op == hca_ddg::Opcode::Const {
                continue;
            }
            if let Some(cp) = self.cluster_of(e.src) {
                if cp != c {
                    let slack = edge_slack(ctx, e);
                    let rec = scc[e.src.index()] == scc[e.dst.index()]
                        && ctx.pg.node(cp).kind.is_cluster();
                    self.add_copy(ctx, e.src, cp, c, Some(slack), rec);
                }
            }
        }
        // n's value flows to already-assigned consumers.
        if ctx.ddg.node(n).op != hca_ddg::Opcode::Const {
            for (_, e) in ctx.ddg.succ_edges(n) {
                if e.dst == n {
                    continue; // self recurrence needs no transport
                }
                if let Some(cs) = self.cluster_of(e.dst) {
                    if cs != c && ctx.pg.node(cs).kind.is_cluster() {
                        let slack = edge_slack(ctx, e);
                        let rec = scc[e.src.index()] == scc[e.dst.index()];
                        self.add_copy(ctx, n, c, cs, Some(slack), rec);
                    }
                }
            }
        }
        // n's value flows up through every output wire listing it.
        for o in ctx.pg.outputs_carrying(n) {
            self.add_copy(ctx, n, c, o, None, false);
        }
        self.cost = crate::cost::objective(ctx, self);
    }

    /// Estimated final MII of the partial solution (§4.2): the max of the
    /// DDG's MIIRec, the per-cluster issue pressure (instructions plus
    /// receives over issue slots, and per-class pressure), and the worst arc
    /// pressure (every value on one pattern consumes a transport slot).
    pub fn estimated_mii(&self, ctx: &SeeContext<'_>) -> u32 {
        let mut mii = ctx.analysis.mii_rec;
        for id in ctx.pg.cluster_ids() {
            let rt = ctx.pg.node(id).rt;
            let i = id.index();
            if rt.issue > 0 {
                mii = mii.max(self.issue_load[i].div_ceil(rt.issue));
            }
            if rt.alu > 0 {
                mii = mii.max(self.alu_ops[i].div_ceil(rt.alu));
            }
            if rt.addr_gen > 0 {
                mii = mii.max(self.ag_ops[i].div_ceil(rt.addr_gen));
            } else if self.ag_ops[i] > 0 {
                return u32::MAX;
            }
        }
        for arcs in self.copies.values() {
            mii = mii.max(arcs.len() as u32);
        }
        mii.max(1)
    }

    /// Highest per-issue-slot utilisation across clusters.
    pub fn max_utilization(&self, ctx: &SeeContext<'_>) -> f64 {
        let mut worst: f64 = 0.0;
        for id in ctx.pg.cluster_ids() {
            let rt = ctx.pg.node(id).rt;
            if rt.issue > 0 {
                worst = worst.max(f64::from(self.issue_load[id.index()]) / f64::from(rt.issue));
            }
        }
        worst
    }

    /// Mean *squared* per-issue-slot utilisation — the load-balance
    /// criterion. Convexity matters: below the recurrence-MII bound the
    /// pressure term is flat (packing one cluster and spreading both meet
    /// MIIRec), but concentrated placements explode into receive storms and
    /// port contention one hierarchy level down. The squared term keeps a
    /// spreading gradient alive everywhere.
    pub fn utilization_sq_mean(&self, ctx: &SeeContext<'_>) -> f64 {
        let mut sum = 0.0;
        let mut count = 0u32;
        for id in ctx.pg.cluster_ids() {
            let rt = ctx.pg.node(id).rt;
            if rt.issue > 0 {
                let u = f64::from(self.issue_load[id.index()]) / f64::from(rt.issue);
                sum += u * u;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / f64::from(count)
        }
    }

    /// Freeze into the [`AssignedPg`] handed to the Mapper.
    pub fn into_assigned(self, pg: &Pg) -> AssignedPg {
        let mut copies = hca_pg::CopyMap::default();
        for ((s, d), vs) in self.copies {
            copies.insert((s, d), vs.into_vec());
        }
        AssignedPg {
            pg: pg.clone(),
            assignment: self.assignment,
            copies,
            forwards: self.forwards,
        }
    }
}

/// Slack of a dependence edge: how many cycles of transport latency the edge
/// can absorb without stretching the schedule. Intra-iteration edges use the
/// ALAP/ASAP slack of the consumer; loop-carried edges get slack
/// proportional to `II · distance` headroom (approximated with MIIRec).
fn edge_slack(ctx: &SeeContext<'_>, e: hca_ddg::DdgEdge) -> u32 {
    if e.distance == 0 {
        let lv = &ctx.analysis.levels;
        lv.alap[e.dst.index()].saturating_sub(lv.asap[e.src.index()] + e.latency)
    } else {
        (ctx.analysis.mii_rec * e.distance).saturating_sub(e.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_arch::ResourceTable;
    use hca_ddg::{DdgBuilder, Opcode};
    use hca_pg::{Ili, IliWire};

    fn ctx_fixture(ddg: &Ddg, _pg: &Pg) -> (DdgAnalysis, ArchConstraints) {
        let an = DdgAnalysis::compute(ddg).unwrap();
        let cons = ArchConstraints {
            max_in_neighbors: 4,
            max_out_neighbors: None,
            out_node_max_in: 1,
            copy_latency: 1,
        };
        (an, cons)
    }

    #[test]
    fn initial_state_binds_input_values() {
        let mut b = DdgBuilder::default();
        let ext = b.node(Opcode::Load);
        let _ = b.node(Opcode::Add);
        let ddg = b.finish();
        let mut pg = Pg::complete(2, ResourceTable::of_cns(4));
        pg.attach_ili(&Ili {
            inputs: vec![IliWire::new(vec![ext])],
            outputs: vec![],
        });
        let (an, cons) = ctx_fixture(&ddg, &pg);
        let ctx = SeeContext {
            ddg: &ddg,
            analysis: &an,
            pg: &pg,
            constraints: cons,
            weights: CostWeights::default(),
            issue_cap: None,
        };
        let st = PartialState::initial(&ctx, &[]);
        let inp = pg.input_ids().next().unwrap();
        assert_eq!(st.cluster_of(ext), Some(inp));
    }

    #[test]
    fn apply_assign_creates_copies_and_recv() {
        let mut b = DdgBuilder::default();
        let p = b.node(Opcode::Add);
        let q = b.node(Opcode::Add);
        b.flow(p, q);
        let ddg = b.finish();
        let pg = Pg::complete(2, ResourceTable::of_cns(4));
        let (an, cons) = ctx_fixture(&ddg, &pg);
        let ctx = SeeContext {
            ddg: &ddg,
            analysis: &an,
            pg: &pg,
            constraints: cons,
            weights: CostWeights::default(),
            issue_cap: None,
        };
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, p, PgNodeId(0));
        assert_eq!(st.total_copies, 0);
        st.apply_assign(&ctx, q, PgNodeId(1));
        assert_eq!(st.total_copies, 1);
        assert_eq!(st.arc_pressure(PgNodeId(0), PgNodeId(1)), 1);
        // q's cluster pays the receive issue slot on top of its own op.
        assert_eq!(st.issue_load[1], 2);
        assert_eq!(st.recv_load[1], 1);
        assert!(st.in_neighbors[1].contains(&PgNodeId(0)));
    }

    #[test]
    fn copies_deduplicate_per_value_and_arc() {
        // p feeds two consumers on the same remote cluster: one copy.
        let mut b = DdgBuilder::default();
        let p = b.node(Opcode::Add);
        let q1 = b.node(Opcode::Add);
        let q2 = b.node(Opcode::Add);
        b.flow(p, q1);
        b.flow(p, q2);
        let ddg = b.finish();
        let pg = Pg::complete(2, ResourceTable::of_cns(4));
        let (an, cons) = ctx_fixture(&ddg, &pg);
        let ctx = SeeContext {
            ddg: &ddg,
            analysis: &an,
            pg: &pg,
            constraints: cons,
            weights: CostWeights::default(),
            issue_cap: None,
        };
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, p, PgNodeId(0));
        st.apply_assign(&ctx, q1, PgNodeId(1));
        st.apply_assign(&ctx, q2, PgNodeId(1));
        assert_eq!(st.total_copies, 1);
        assert_eq!(st.recv_load[1], 1);
    }

    #[test]
    fn recurrence_copies_counted() {
        let mut b = DdgBuilder::default();
        let a = b.node(Opcode::Add);
        let c = b.node(Opcode::Add);
        b.flow(a, c);
        b.carried(c, a, 1);
        let ddg = b.finish();
        let pg = Pg::complete(2, ResourceTable::of_cns(4));
        let (an, cons) = ctx_fixture(&ddg, &pg);
        let ctx = SeeContext {
            ddg: &ddg,
            analysis: &an,
            pg: &pg,
            constraints: cons,
            weights: CostWeights::default(),
            issue_cap: None,
        };
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, a, PgNodeId(0));
        st.apply_assign(&ctx, c, PgNodeId(1));
        // Both the a→c and the carried c→a flow cross clusters inside one SCC.
        assert_eq!(st.total_copies, 2);
        assert_eq!(st.recurrence_copies, 2);
    }

    #[test]
    fn estimated_mii_tracks_issue_pressure() {
        let mut b = DdgBuilder::default();
        let nodes: Vec<NodeId> = (0..6).map(|_| b.node(Opcode::Add)).collect();
        let ddg = b.finish();
        let pg = Pg::complete(2, ResourceTable::of_cns(1)); // single-issue
        let (an, cons) = ctx_fixture(&ddg, &pg);
        let ctx = SeeContext {
            ddg: &ddg,
            analysis: &an,
            pg: &pg,
            constraints: cons,
            weights: CostWeights::default(),
            issue_cap: None,
        };
        let mut st = PartialState::initial(&ctx, &[]);
        for (i, &n) in nodes.iter().enumerate() {
            st.apply_assign(&ctx, n, PgNodeId((i % 2) as u32));
        }
        assert_eq!(st.estimated_mii(&ctx), 3); // 3 ops per single-issue CN
        assert!((st.max_utilization(&ctx) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn output_node_copy_has_no_recv_cost() {
        let mut b = DdgBuilder::default();
        let k = b.node(Opcode::Add);
        let ddg = b.finish();
        let mut pg = Pg::complete(2, ResourceTable::of_cns(4));
        pg.attach_ili(&Ili {
            inputs: vec![],
            outputs: vec![IliWire::new(vec![k])],
        });
        let (an, cons) = ctx_fixture(&ddg, &pg);
        let ctx = SeeContext {
            ddg: &ddg,
            analysis: &an,
            pg: &pg,
            constraints: cons,
            weights: CostWeights::default(),
            issue_cap: None,
        };
        let out = pg.output_ids().next().unwrap();
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, k, PgNodeId(0));
        assert_eq!(st.arc_pressure(PgNodeId(0), out), 1);
        assert_eq!(st.recv_load[out.index()], 0);
        assert_eq!(st.issue_load[out.index()], 0);
    }
}
