//! Partial-solution state of the beam search.
//!
//! Each node of the exploration space (paper Figure 5) is a *partial
//! solution*: an assignment of a prefix of the priority list plus the copy
//! flow it induces. The state keeps incremental statistics (per-cluster
//! resource usage, receive counts, arc pressures, in-neighbour sets) so that
//! evaluating one more assignment is O(degree), not O(graph).
//!
//! The containers are struct-of-arrays over dense ids: the copy table is an
//! arc-indexed slot array ([`ArcVals`]), the per-node resource counters one
//! contiguous lane-major block ([`Loads`]), and the neighbour sets flat bit
//! matrices. A state clone is therefore a handful of `memcpy`s, equality a
//! handful of slice compares, and the engine's arena can recycle a freed
//! state's buffers via `clone_from` without reallocating.

use crate::cost::CostWeights;
use crate::neighbors::NeighborSets;
use crate::statics::ArcIndex;
use hca_ddg::{Ddg, DdgAnalysis, NodeId};
use hca_pg::{ArchConstraints, AssignedPg, Pg, PgNodeId, PgNodeKind};
use rustc_hash::FxHashSet;
use smallvec::SmallVec;
use std::sync::Arc;

/// Site tags for [`sig_entry`]: each structural container hashes its entries
/// under its own tag so an `(n, c)` assignment can never cancel against a
/// same-bits neighbour entry.
const SIG_ASSIGN: u8 = 0;
const SIG_COPY: u8 = 1;
const SIG_IN: u8 = 2;
const SIG_OUT: u8 = 3;
const SIG_FORWARD: u8 = 4;

/// Hash of one structural entry for the XOR-multiset signature. Ordered
/// containers (`copies` value lists, `forwards`) include the entry's
/// position, so the signature distinguishes orderings; unordered maps/sets
/// rely on XOR commutativity alone.
#[inline]
fn sig_entry<T: std::hash::Hash>(tag: u8, entry: T) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = rustc_hash::FxHasher::default();
    (tag, entry).hash(&mut h);
    h.finish()
}

/// Immutable context shared by every state of one SEE run.
pub struct SeeContext<'a> {
    /// The loop's DDG.
    pub ddg: &'a Ddg,
    /// Pre-computed analyses (levels, SCCs, MIIRec).
    pub analysis: &'a DdgAnalysis,
    /// The Pattern Graph of this sub-problem.
    pub pg: &'a Pg,
    /// Reconfiguration constraints at this level.
    pub constraints: ArchConstraints,
    /// Objective-function weights.
    pub weights: CostWeights,
    /// Optional hard cap on per-issue-slot load (a target-II ceiling); used
    /// by `isAssignable` to reject pathological imbalance early.
    pub issue_cap: Option<u32>,
    /// O(1) lookups (arc potential, output wires) over the immutable `pg`.
    pub statics: crate::statics::PgStatics,
}

/// Inline value slots per arc. Real copy flows almost never put more than
/// two distinct values on one pattern before the arc-pressure cost term
/// dominates; deeper lists overflow into the sorted [`ArcVals`] spill.
pub const ARC_CAP: usize = 2;

/// Sentinel filling unused inline slots, so two tables with the same logical
/// content are bytewise equal regardless of push/pop history.
const EMPTY_SLOT: NodeId = NodeId(u32::MAX);

/// Spill/sort key of an arc: `src` in the high word, `dst` in the low.
#[inline]
fn arc_key(src: PgNodeId, dst: PgNodeId) -> u64 {
    (u64::from(src.0) << 32) | u64::from(dst.0)
}

/// Values on each real arc, as a flat arc-indexed slot table.
///
/// The PG's potential arcs are numbered once per run ([`ArcIndex`], shared
/// behind an [`Arc`]); arc `id` owns `ARC_CAP` inline slots in `slots` and a
/// length in `lens`. The rare deeper lists — and the defensive case of a
/// copy on a *non*-potential arc — live in `spill`, a small vec sorted by
/// [`arc_key`]. The representation is canonical: unused inline slots hold
/// [`EMPTY_SLOT`], and a spill entry exists iff the arc's values exceed its
/// inline capacity — so `PartialEq` is three slice/vec compares and no
/// mutation-history noise can leak into frontier dedup.
///
/// Value lists are LIFO: the journals only ever pop the most recent push,
/// which is what keeps the canonical form O(1) to maintain.
#[derive(Debug)]
pub struct ArcVals {
    index: Arc<ArcIndex>,
    slots: Vec<NodeId>,
    lens: Vec<u16>,
    spill: Vec<(u64, Vec<NodeId>)>,
}

impl Clone for ArcVals {
    fn clone(&self) -> Self {
        ArcVals {
            index: Arc::clone(&self.index),
            slots: self.slots.clone(),
            lens: self.lens.clone(),
            spill: self.spill.clone(),
        }
    }

    /// Reuse the existing buffers (the engine's state arena recycles freed
    /// states, so same-shape clones must not reallocate).
    fn clone_from(&mut self, src: &Self) {
        self.index = Arc::clone(&src.index);
        self.slots.clone_from(&src.slots);
        self.lens.clone_from(&src.lens);
        self.spill.clone_from(&src.spill);
    }
}

impl PartialEq for ArcVals {
    /// Content equality; states of one run share one `ArcIndex`, so the
    /// numbering never differs and only the value payload is compared.
    fn eq(&self, other: &Self) -> bool {
        self.lens == other.lens && self.slots == other.slots && self.spill == other.spill
    }
}
impl Eq for ArcVals {}

impl ArcVals {
    /// Empty table over `index`'s arc numbering.
    pub fn new(index: Arc<ArcIndex>) -> Self {
        let n = index.num_arcs();
        ArcVals {
            slots: vec![EMPTY_SLOT; n * ARC_CAP],
            lens: vec![0; n],
            spill: Vec::new(),
            index,
        }
    }

    #[inline]
    fn spill_pos(&self, key: u64) -> Result<usize, usize> {
        self.spill.binary_search_by_key(&key, |e| e.0)
    }

    /// Number of values on arc `src → dst`.
    #[inline]
    pub fn len(&self, src: PgNodeId, dst: PgNodeId) -> usize {
        match self.index.arc_id(src, dst) {
            Some(id) => usize::from(self.lens[id as usize]),
            None => self
                .spill_pos(arc_key(src, dst))
                .map_or(0, |i| self.spill[i].1.len()),
        }
    }

    /// Is arc `src → dst` empty?
    #[inline]
    pub fn is_empty(&self, src: PgNodeId, dst: PgNodeId) -> bool {
        self.len(src, dst) == 0
    }

    /// Number of values on the *indexed* arc `id` — the column accessor the
    /// batched scorer's gather pass uses once it holds an arc id from
    /// [`ArcIndex::ids_row`], skipping the id-matrix lookup and the
    /// off-index spill fallback of [`ArcVals::len`].
    #[inline]
    pub fn len_by_id(&self, id: u32) -> usize {
        usize::from(self.lens[id as usize])
    }

    /// Does the *indexed* arc `id` carry value `v`? Equivalent to
    /// [`ArcVals::contains`] on the arc's endpoints, minus the id lookup.
    #[inline]
    pub fn contains_by_id(&self, id: u32, v: NodeId) -> bool {
        let idx = id as usize;
        let len = usize::from(self.lens[idx]);
        let inline = &self.slots[idx * ARC_CAP..idx * ARC_CAP + len.min(ARC_CAP)];
        if inline.contains(&v) {
            return true;
        }
        len > ARC_CAP && {
            let (src, dst) = self.index.pair(id);
            self.spill_pos(arc_key(src, dst))
                .is_ok_and(|i| self.spill[i].1.contains(&v))
        }
    }

    /// Does arc `src → dst` carry value `v`?
    #[inline]
    pub fn contains(&self, src: PgNodeId, dst: PgNodeId, v: NodeId) -> bool {
        match self.index.arc_id(src, dst) {
            Some(id) => {
                let idx = id as usize;
                let len = usize::from(self.lens[idx]);
                let inline = &self.slots[idx * ARC_CAP..idx * ARC_CAP + len.min(ARC_CAP)];
                if inline.contains(&v) {
                    return true;
                }
                len > ARC_CAP
                    && self
                        .spill_pos(arc_key(src, dst))
                        .is_ok_and(|i| self.spill[i].1.contains(&v))
            }
            None => self
                .spill_pos(arc_key(src, dst))
                .is_ok_and(|i| self.spill[i].1.contains(&v)),
        }
    }

    /// Append `v` to arc `src → dst` (caller guarantees it is not already
    /// present) and return its position — the arc's length before the push,
    /// which is what the structure signature signs.
    fn push(&mut self, src: PgNodeId, dst: PgNodeId, v: NodeId) -> u32 {
        match self.index.arc_id(src, dst) {
            Some(id) => {
                let idx = id as usize;
                let len = usize::from(self.lens[idx]);
                if len < ARC_CAP {
                    self.slots[idx * ARC_CAP + len] = v;
                } else {
                    let key = arc_key(src, dst);
                    match self.spill_pos(key) {
                        Ok(i) => self.spill[i].1.push(v),
                        Err(i) => self.spill.insert(i, (key, vec![v])),
                    }
                }
                self.lens[idx] = (len + 1) as u16;
                len as u32
            }
            None => {
                let key = arc_key(src, dst);
                match self.spill_pos(key) {
                    Ok(i) => {
                        let vs = &mut self.spill[i].1;
                        vs.push(v);
                        (vs.len() - 1) as u32
                    }
                    Err(i) => {
                        self.spill.insert(i, (key, vec![v]));
                        0
                    }
                }
            }
        }
    }

    /// Pop the most recent value of arc `src → dst` (journals unwind LIFO),
    /// returning `(value, new_len)` — `new_len` is the popped value's
    /// position, which the structure signature un-signs.
    fn pop_last(&mut self, src: PgNodeId, dst: PgNodeId) -> (NodeId, u32) {
        match self.index.arc_id(src, dst) {
            Some(id) => {
                let idx = id as usize;
                let len = usize::from(self.lens[idx]);
                debug_assert!(len > 0, "pop from empty arc {src}->{dst}");
                let v = if len > ARC_CAP {
                    let i = self
                        .spill_pos(arc_key(src, dst))
                        .expect("overflowing arc has a spill entry");
                    let v = self.spill[i].1.pop().expect("spill entry is non-empty");
                    if self.spill[i].1.is_empty() {
                        self.spill.remove(i);
                    }
                    v
                } else {
                    std::mem::replace(&mut self.slots[idx * ARC_CAP + len - 1], EMPTY_SLOT)
                };
                self.lens[idx] = (len - 1) as u16;
                (v, (len - 1) as u32)
            }
            None => {
                let i = self
                    .spill_pos(arc_key(src, dst))
                    .expect("journalled arc exists");
                let v = self.spill[i].1.pop().expect("journalled copy exists");
                let new_len = self.spill[i].1.len();
                if new_len == 0 {
                    self.spill.remove(i);
                }
                (v, new_len as u32)
            }
        }
    }

    /// Visit every non-empty arc with its values in insertion order. Arc
    /// visiting order is unspecified (indexed arcs first, then off-index
    /// spill arcs) — the cold-path callers sort or XOR. The slice passed for
    /// an overflowing arc is assembled in a scratch buffer.
    pub fn for_each_arc<F: FnMut(PgNodeId, PgNodeId, &[NodeId])>(&self, mut f: F) {
        let mut buf: SmallVec<[NodeId; 8]> = SmallVec::new();
        for id in 0..self.index.num_arcs() {
            let len = usize::from(self.lens[id]);
            if len == 0 {
                continue;
            }
            let (src, dst) = self.index.pair(id as u32);
            let inline = &self.slots[id * ARC_CAP..id * ARC_CAP + len.min(ARC_CAP)];
            if len <= ARC_CAP {
                f(src, dst, inline);
            } else {
                buf.clear();
                buf.extend_from_slice(inline);
                let i = self
                    .spill_pos(arc_key(src, dst))
                    .expect("overflowing arc has a spill entry");
                buf.extend_from_slice(&self.spill[i].1);
                f(src, dst, &buf);
            }
        }
        for (key, vs) in &self.spill {
            let (src, dst) = (PgNodeId((key >> 32) as u32), PgNodeId(*key as u32));
            if self.index.arc_id(src, dst).is_none() {
                f(src, dst, vs);
            }
        }
    }

    /// Heap bytes held by this state's table (the shared `ArcIndex` is
    /// accounted once per run as `see.arc_table_bytes`, not per state).
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.slots.len() * size_of::<NodeId>()
            + self.lens.len() * size_of::<u16>()
            + self
                .spill
                .iter()
                .map(|(_, vs)| size_of::<(u64, Vec<NodeId>)>() + vs.len() * size_of::<NodeId>())
                .sum::<usize>()
    }
}

/// Per-PG-node resource counters as one lane-major contiguous block:
/// `[issue | alu | ag | recv]`, `n` words per lane. One allocation, so a
/// state clone copies all four former `Vec<u32>` columns in a single
/// `memcpy` and `clone_from` into an arena-recycled state reallocates
/// nothing.
#[derive(Debug, PartialEq, Eq)]
pub struct Loads {
    words: Vec<u32>,
    n: usize,
}

impl Clone for Loads {
    fn clone(&self) -> Self {
        Loads {
            words: self.words.clone(),
            n: self.n,
        }
    }

    fn clone_from(&mut self, src: &Self) {
        self.words.clone_from(&src.words);
        self.n = src.n;
    }
}

macro_rules! loads_lane {
    ($lane:expr, $get:ident, $get_mut:ident, $all:ident) => {
        #[doc = concat!("Lane `", stringify!($get), "` of PG node `i`.")]
        #[inline]
        pub fn $get(&self, i: usize) -> u32 {
            self.words[$lane * self.n + i]
        }

        #[doc = concat!("Mutable lane `", stringify!($get), "` of PG node `i`.")]
        #[inline]
        pub fn $get_mut(&mut self, i: usize) -> &mut u32 {
            &mut self.words[$lane * self.n + i]
        }

        #[doc = concat!("The whole `", stringify!($get), "` lane, dense over PG node ids.")]
        #[inline]
        pub fn $all(&self) -> &[u32] {
            &self.words[$lane * self.n..($lane + 1) * self.n]
        }
    };
}

impl Loads {
    /// Zeroed counters for a PG with `n` nodes.
    pub fn new(n: usize) -> Self {
        Loads {
            words: vec![0; 4 * n],
            n,
        }
    }

    loads_lane!(0, issue, issue_mut, issue_all);
    loads_lane!(1, alu, alu_mut, alu_all);
    loads_lane!(2, ag, ag_mut, ag_all);
    loads_lane!(3, recv, recv_mut, recv_all);

    /// Heap bytes held by the counter block.
    #[inline]
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u32>()
    }
}

/// A partial cluster assignment plus its incremental statistics.
///
/// Every mutation goes through [`place`], [`add_copy`] / [`charge_issue`] —
/// they maintain the incremental aggregates (`mii_issue`, `mii_arc`,
/// `util_sq_sum`) that make [`estimated_mii`] and the objective O(1)
/// instead of an O(clusters + arcs) rebuild per candidate. Loads only ever
/// grow, so the aggregates are running maxima/sums; [`undo_assign`] restores
/// them from a snapshot taken by [`apply_assign_logged`].
///
/// [`place`]: PartialState::place
/// [`add_copy`]: PartialState::add_copy
/// [`charge_issue`]: PartialState::charge_issue
/// [`estimated_mii`]: PartialState::estimated_mii
/// [`undo_assign`]: PartialState::undo_assign
/// [`apply_assign_logged`]: PartialState::apply_assign_logged
#[derive(Debug)]
pub struct PartialState {
    /// `DDG̅` so far (includes pre-assigned external producers on input
    /// nodes), dense over the DDG's node ids: `assignment[n]` is the cluster
    /// holding `n`. A flat vector keeps [`cluster_of`] — the single hottest
    /// read in `is_assignable` — one array load, and makes a state clone a
    /// `memcpy` instead of a hash-table rebuild.
    ///
    /// [`cluster_of`]: PartialState::cluster_of
    pub assignment: Vec<Option<PgNodeId>>,
    /// Values on each real arc (flat arc-indexed slot table).
    pub copies: ArcVals,
    /// Per-node resource counters (issue slots incl. receives, ALU ops,
    /// address-generator ops, receive primitives) in one contiguous block.
    pub loads: Loads,
    /// Distinct real in-neighbours per PG node (flat bit matrix: one
    /// allocation, memcpy clone, O(1) membership).
    pub in_neighbors: NeighborSets,
    /// Distinct real out-neighbours per PG node.
    pub out_neighbors: NeighborSets,
    /// Total (value, destination) copy pairs.
    pub total_copies: u32,
    /// Copies whose endpoints sit in one SCC (they stretch a recurrence).
    pub recurrence_copies: u32,
    /// Accumulated critical-path penalty (copies on low-slack edges).
    pub critical_penalty: f64,
    /// Route-through hops added by the Route Allocator.
    pub routed_hops: u32,
    /// Pass-through forwards performed at this level: an external value
    /// entering on a glue-in wire and leaving on a glue-out wire is re-emitted
    /// by the named cluster (one issue slot for the `Route` op). Mutate only
    /// through [`push_forward`](PartialState::push_forward) (and the txn
    /// rollback), which maintain [`struct_sig`](PartialState::struct_sig).
    pub forwards: Vec<(NodeId, PgNodeId)>,
    /// Cached objective value.
    pub cost: f64,
    /// XOR-multiset hash of the structural content (assignment, copies,
    /// neighbour sets, forwards), maintained in O(1) by every mutator.
    /// Identical content implies identical signature regardless of mutation
    /// history: XOR is order-independent, and every mutation path adds or
    /// removes the same site-tagged entry hash for the same entry. The
    /// frontier uses it as a reject-only prefilter for its structural
    /// comparisons — full equality is always verified behind a signature
    /// match, so hash collisions stay harmless.
    pub(crate) struct_sig: u64,
    /// Running max of per-cluster resource-pressure ceilings (issue, ALU,
    /// address-gen). `u32::MAX` poisons states that put AG work on an
    /// AG-less cluster. Maintained by the mutators; never decreases.
    pub(crate) mii_issue: u32,
    /// Running max of per-arc value pressure (every value on one pattern
    /// consumes a transport slot).
    pub(crate) mii_arc: u32,
    /// Running Σ (issue_load / issue_slots)² over issue-capable clusters.
    pub(crate) util_sq_sum: f64,
    /// Number of issue-capable clusters (constant per context; cached at
    /// [`PartialState::initial`] so the mean stays O(1)).
    pub(crate) util_clusters: u32,
}

impl Clone for PartialState {
    fn clone(&self) -> Self {
        PartialState {
            assignment: self.assignment.clone(),
            copies: self.copies.clone(),
            loads: self.loads.clone(),
            in_neighbors: self.in_neighbors.clone(),
            out_neighbors: self.out_neighbors.clone(),
            total_copies: self.total_copies,
            recurrence_copies: self.recurrence_copies,
            critical_penalty: self.critical_penalty,
            routed_hops: self.routed_hops,
            forwards: self.forwards.clone(),
            cost: self.cost,
            struct_sig: self.struct_sig,
            mii_issue: self.mii_issue,
            mii_arc: self.mii_arc,
            util_sq_sum: self.util_sq_sum,
            util_clusters: self.util_clusters,
        }
    }

    /// Overwrite an arena-recycled state in place: every container
    /// `clone_from`s into its existing buffer (same-shape states of one run
    /// reallocate nothing).
    fn clone_from(&mut self, src: &Self) {
        self.assignment.clone_from(&src.assignment);
        self.copies.clone_from(&src.copies);
        self.loads.clone_from(&src.loads);
        self.in_neighbors.clone_from(&src.in_neighbors);
        self.out_neighbors.clone_from(&src.out_neighbors);
        self.total_copies = src.total_copies;
        self.recurrence_copies = src.recurrence_copies;
        self.critical_penalty = src.critical_penalty;
        self.routed_hops = src.routed_hops;
        self.forwards.clone_from(&src.forwards);
        self.cost = src.cost;
        self.struct_sig = src.struct_sig;
        self.mii_issue = src.mii_issue;
        self.mii_arc = src.mii_arc;
        self.util_sq_sum = src.util_sq_sum;
        self.util_clusters = src.util_clusters;
    }
}

/// Undo record of one copy created by [`PartialState::apply_assign_logged`].
#[derive(Debug)]
struct CopyUndo {
    /// The arc the value was pushed onto.
    arc: (PgNodeId, PgNodeId),
    /// Did this copy open the `src → dst` in-neighbour entry?
    new_in_neighbor: bool,
    /// Did this copy open the `src → dst` out-neighbour entry?
    new_out_neighbor: bool,
    /// Did the destination (a real cluster) pay the receive issue slot?
    charged_recv: bool,
}

/// One reversible mutation recorded by a [`StateTxn`].
#[derive(Debug)]
enum TxnOp {
    /// A [`PartialState::place`] call (node, cluster).
    Place(NodeId, PgNodeId),
    /// A copy creation ([`PartialState::add_copy_logged`] returned `Some`).
    Copy(CopyUndo),
    /// A bare [`PartialState::charge_issue`] call (cluster, slots).
    Charge(PgNodeId, u32),
}

/// Open-ended transaction journal for the Route Allocator's trial mutations.
///
/// [`AssignUndo`] reverts exactly one `apply_assign_logged`; routing instead
/// performs an arbitrary interleaving of placements, copies and issue
/// charges while probing a candidate cluster, then either keeps or discards
/// the whole attempt. The journal records each mutation plus a snapshot of
/// every scalar aggregate (including `routed_hops` and the floats, where
/// `(a + x) - x` is not guaranteed to equal `a`), so
/// [`PartialState::txn_rollback`] restores the pre-trial state bit-exactly —
/// this is what replaces the per-candidate `st.clone()` in the route paths.
#[derive(Debug)]
pub struct StateTxn {
    ops: Vec<TxnOp>,
    forwards_len: usize,
    total_copies: u32,
    recurrence_copies: u32,
    critical_penalty: f64,
    routed_hops: u32,
    mii_issue: u32,
    mii_arc: u32,
    util_sq_sum: f64,
    cost: f64,
}

/// Journal reverting one [`PartialState::apply_assign_logged`] call.
///
/// Collections are rolled back operation by operation (each copy pops the
/// value it pushed); the scalar aggregates — including the floats, where
/// `(a + x) - x` is not guaranteed to equal `a` — are restored from a
/// snapshot, so an apply→undo round-trip is bit-exact.
#[derive(Debug)]
pub struct AssignUndo {
    node: NodeId,
    cluster: PgNodeId,
    copies: SmallVec<[CopyUndo; 4]>,
    total_copies: u32,
    recurrence_copies: u32,
    critical_penalty: f64,
    mii_issue: u32,
    mii_arc: u32,
    util_sq_sum: f64,
    cost: f64,
}

impl PartialState {
    /// Initial state: nothing assigned except the PG's own special input
    /// nodes, to which the externally-produced values are bound (so that the
    /// generic copy machinery treats "receive from the father" exactly like
    /// "receive from a sibling cluster", §4.1).
    ///
    /// `working_set` lists the nodes this sub-problem will assign itself:
    /// a value that is *produced here* must never be sourced from an input
    /// wire, even when a merged parent wire happens to carry it back in —
    /// doing so creates a circular cross-level dependency (the parent wire's
    /// content ultimately comes from this very group's emission).
    pub fn initial(ctx: &SeeContext<'_>, working_set: &[NodeId]) -> Self {
        let n = ctx.pg.num_nodes();
        // Dense assignment capacity: every DDG node, plus any id carried on
        // a glue wire (defensive — wire values normally are DDG nodes).
        let mut ddg_cap = ctx.ddg.num_nodes();
        for id in ctx.pg.input_ids().chain(ctx.pg.output_ids()) {
            match &ctx.pg.node(id).kind {
                PgNodeKind::Input { values, .. } | PgNodeKind::Output { values, .. } => {
                    for &v in values {
                        ddg_cap = ddg_cap.max(v.index() + 1);
                    }
                }
                _ => {}
            }
        }
        let util_clusters = ctx
            .pg
            .cluster_ids()
            .filter(|&id| ctx.pg.node(id).rt.issue > 0)
            .count() as u32;
        let mut st = PartialState {
            assignment: vec![None; ddg_cap],
            copies: ArcVals::new(Arc::clone(ctx.statics.arc_index())),
            loads: Loads::new(n),
            in_neighbors: NeighborSets::new(n),
            out_neighbors: NeighborSets::new(n),
            total_copies: 0,
            recurrence_copies: 0,
            critical_penalty: 0.0,
            routed_hops: 0,
            forwards: Vec::new(),
            cost: 0.0,
            struct_sig: 0,
            mii_issue: 0,
            mii_arc: 0,
            util_sq_sum: 0.0,
            util_clusters,
        };
        let ws: FxHashSet<NodeId> = working_set.iter().copied().collect();
        for id in ctx.pg.input_ids() {
            if let PgNodeKind::Input { values, .. } = &ctx.pg.node(id).kind {
                for &v in values {
                    if !ws.contains(&v) {
                        st.assignment[v.index()] = Some(id);
                        st.struct_sig ^= sig_entry(SIG_ASSIGN, (v, id));
                    }
                }
            }
        }
        debug_assert_eq!(st.struct_sig, st.compute_struct_sig());
        st
    }

    /// Recompute [`struct_sig`](Self) from scratch by walking every
    /// structural container. Used once per state family (`initial`) and by
    /// the frontier's debug assertions that validate the incremental
    /// maintenance; the hot path never calls this.
    pub(crate) fn compute_struct_sig(&self) -> u64 {
        let mut sig = 0u64;
        for (i, &slot) in self.assignment.iter().enumerate() {
            if let Some(c) = slot {
                sig ^= sig_entry(SIG_ASSIGN, (NodeId(i as u32), c));
            }
        }
        self.copies.for_each_arc(|src, dst, vs| {
            for (pos, &v) in vs.iter().enumerate() {
                sig ^= sig_entry(SIG_COPY, (src, dst, pos as u32, v));
            }
        });
        for i in 0..self.in_neighbors.num_rows() {
            for src in self.in_neighbors.iter(i) {
                sig ^= sig_entry(SIG_IN, (i as u32, src));
            }
        }
        for i in 0..self.out_neighbors.num_rows() {
            for dst in self.out_neighbors.iter(i) {
                sig ^= sig_entry(SIG_OUT, (i as u32, dst));
            }
        }
        for (pos, &(v, c)) in self.forwards.iter().enumerate() {
            sig ^= sig_entry(SIG_FORWARD, (pos as u32, v, c));
        }
        sig
    }

    /// Append a pass-through forward, maintaining the structure signature.
    /// `forwards` is ordered and only ever grows at the tail (the txn
    /// rollback truncates from the tail), so entries sign by position.
    pub fn push_forward(&mut self, v: NodeId, c: PgNodeId) {
        self.struct_sig ^= sig_entry(SIG_FORWARD, (self.forwards.len() as u32, v, c));
        self.forwards.push((v, c));
    }

    /// Cluster currently holding `n`, if assigned.
    #[inline]
    pub fn cluster_of(&self, n: NodeId) -> Option<PgNodeId> {
        self.assignment.get(n.index()).copied().flatten()
    }

    /// Pressure (value count) of the real arc `src → dst`.
    #[inline]
    pub fn arc_pressure(&self, src: PgNodeId, dst: PgNodeId) -> u32 {
        self.copies.len(src, dst) as u32
    }

    /// How many of `c`'s in-neighbours are glue-in (special input) nodes.
    pub fn glue_in_neighbors(&self, ctx: &SeeContext<'_>, c: PgNodeId) -> usize {
        self.in_neighbors
            .iter(c.index())
            .filter(|&s| !ctx.pg.node(s).kind.is_cluster())
            .count()
    }

    /// Per-cluster cap on *directly bound* glue-in wires: half the input
    /// ports, rounded down but at least one. Hoarding the other half for
    /// sibling arcs keeps relay aggregation possible — without this, a
    /// cluster that binds both of its ports to parent wires walls itself off
    /// from the rest of the group and the search dead-ends.
    pub fn glue_in_cap(ctx: &SeeContext<'_>) -> usize {
        ((ctx.constraints.max_in_neighbors as usize) / 2).max(1)
    }

    /// Record value `v` on arc `src → dst` (no-op when already present).
    /// Updates receive counts, in-neighbour sets and copy statistics.
    ///
    /// `via_edge_slack`/`in_recurrence` carry the DDG-edge context used by
    /// the cost criteria; pass `None` for routing hops that correspond to no
    /// DDG edge.
    pub fn add_copy(
        &mut self,
        ctx: &SeeContext<'_>,
        v: NodeId,
        src: PgNodeId,
        dst: PgNodeId,
        via_edge_slack: Option<u32>,
        in_recurrence: bool,
    ) -> bool {
        self.add_copy_logged(ctx, v, src, dst, via_edge_slack, in_recurrence)
            .is_some()
    }

    /// [`add_copy`](PartialState::add_copy), returning the undo record the
    /// delta-scoring engine journals (`None` when the copy already existed).
    fn add_copy_logged(
        &mut self,
        ctx: &SeeContext<'_>,
        v: NodeId,
        src: PgNodeId,
        dst: PgNodeId,
        via_edge_slack: Option<u32>,
        in_recurrence: bool,
    ) -> Option<CopyUndo> {
        if self.copies.contains(src, dst, v) {
            return None;
        }
        let pos = self.copies.push(src, dst, v);
        self.mii_arc = self.mii_arc.max(pos + 1);
        self.struct_sig ^= sig_entry(SIG_COPY, (src, dst, pos, v));
        self.total_copies += 1;
        let new_in_neighbor = self.in_neighbors.insert(dst.index(), src);
        if new_in_neighbor {
            self.struct_sig ^= sig_entry(SIG_IN, (dst.index() as u32, src));
        }
        let new_out_neighbor = self.out_neighbors.insert(src.index(), dst);
        if new_out_neighbor {
            self.struct_sig ^= sig_entry(SIG_OUT, (src.index() as u32, dst));
        }
        // Receiving a value costs one issue slot on the destination cluster
        // (the rcv primitive, §2.2) — but only on real clusters: special
        // output nodes model the parent boundary and execute nothing.
        let charged_recv = ctx.pg.node(dst).kind.is_cluster();
        if charged_recv {
            *self.loads.recv_mut(dst.index()) += 1;
            self.charge_issue(ctx, dst, 1);
        }
        if in_recurrence {
            self.recurrence_copies += 1;
        }
        if let Some(slack) = via_edge_slack {
            // A copy on a tight edge stretches the schedule: weigh it by how
            // little slack the edge has to absorb the transport latency.
            let lat = f64::from(ctx.constraints.copy_latency);
            let room = f64::from(slack);
            self.critical_penalty += (lat / (1.0 + room)).min(lat);
        }
        Some(CopyUndo {
            arc: (src, dst),
            new_in_neighbor,
            new_out_neighbor,
            charged_recv,
        })
    }

    /// Pop the journalled copy `cu` (shared by [`undo_assign`] and
    /// [`txn_rollback`]): pop the arc's last value, un-sign it, close any
    /// neighbour entries the copy opened and refund the receive charge.
    ///
    /// [`undo_assign`]: PartialState::undo_assign
    /// [`txn_rollback`]: PartialState::txn_rollback
    fn undo_copy(&mut self, cu: &CopyUndo) {
        let (src, dst) = cu.arc;
        let (v, new_len) = self.copies.pop_last(src, dst);
        self.struct_sig ^= sig_entry(SIG_COPY, (src, dst, new_len, v));
        if cu.new_in_neighbor {
            self.in_neighbors.remove(dst.index(), src);
            self.struct_sig ^= sig_entry(SIG_IN, (dst.index() as u32, src));
        }
        if cu.new_out_neighbor {
            self.out_neighbors.remove(src.index(), dst);
            self.struct_sig ^= sig_entry(SIG_OUT, (src.index() as u32, dst));
        }
        if cu.charged_recv {
            *self.loads.recv_mut(dst.index()) -= 1;
            *self.loads.issue_mut(dst.index()) -= 1;
        }
    }

    /// Reverse one [`place`](PartialState::place) (shared by the journals).
    fn undo_place(&mut self, ctx: &SeeContext<'_>, n: NodeId, c: PgNodeId) {
        self.assignment[n.index()] = None;
        self.struct_sig ^= sig_entry(SIG_ASSIGN, (n, c));
        let i = c.index();
        *self.loads.issue_mut(i) -= 1;
        match ctx.ddg.node(n).op.resource_class() {
            hca_ddg::ResourceClass::Alu => *self.loads.alu_mut(i) -= 1,
            hca_ddg::ResourceClass::AddrGen => *self.loads.ag_mut(i) -= 1,
            hca_ddg::ResourceClass::Receive => {}
        }
    }

    /// Charge `slots` extra issue slots on cluster `c`, maintaining the
    /// incremental MII and utilisation aggregates. Every issue-load mutation
    /// outside [`place`](PartialState::place) must go through here.
    pub fn charge_issue(&mut self, ctx: &SeeContext<'_>, c: PgNodeId, slots: u32) {
        let i = c.index();
        let rt = ctx.pg.node(c).rt;
        let old = self.loads.issue(i);
        let new = old + slots;
        *self.loads.issue_mut(i) = new;
        if rt.issue > 0 {
            self.mii_issue = self.mii_issue.max(new.div_ceil(rt.issue));
            let denom = f64::from(rt.issue);
            let ou = f64::from(old) / denom;
            let nu = f64::from(new) / denom;
            self.util_sq_sum += nu * nu - ou * ou;
        }
    }

    /// Book `n` onto cluster `c` and charge its resources — without creating
    /// any copies. The Route Allocator uses this directly and routes the
    /// flows itself; everyone else goes through [`apply_assign`].
    ///
    /// [`apply_assign`]: PartialState::apply_assign
    pub fn place(&mut self, ctx: &SeeContext<'_>, n: NodeId, c: PgNodeId) {
        debug_assert!(
            ctx.pg.node(c).kind.is_cluster(),
            "assigning to special node"
        );
        debug_assert!(self.assignment[n.index()].is_none(), "{n} already assigned");
        self.assignment[n.index()] = Some(c);
        self.struct_sig ^= sig_entry(SIG_ASSIGN, (n, c));
        self.charge_issue(ctx, c, 1);
        let i = c.index();
        let rt = ctx.pg.node(c).rt;
        match ctx.ddg.node(n).op.resource_class() {
            hca_ddg::ResourceClass::Alu => {
                let ops = self.loads.alu_mut(i);
                *ops += 1;
                let ops = *ops;
                if rt.alu > 0 {
                    self.mii_issue = self.mii_issue.max(ops.div_ceil(rt.alu));
                }
            }
            hca_ddg::ResourceClass::AddrGen => {
                let ops = self.loads.ag_mut(i);
                *ops += 1;
                let ops = *ops;
                if rt.addr_gen > 0 {
                    self.mii_issue = self.mii_issue.max(ops.div_ceil(rt.addr_gen));
                } else {
                    // AG work on an AG-less cluster: infeasible, poison.
                    self.mii_issue = u32::MAX;
                }
            }
            hca_ddg::ResourceClass::Receive => {}
        }
    }

    /// Assign DDG node `n` to cluster `c`, creating every induced copy:
    /// from each assigned producer of `n`'s operands, towards each assigned
    /// consumer of `n`'s value, and towards output special nodes listing it.
    ///
    /// The caller must have verified assignability; this method only applies.
    pub fn apply_assign(&mut self, ctx: &SeeContext<'_>, n: NodeId, c: PgNodeId) {
        let _ = self.apply_assign_logged(ctx, n, c);
    }

    /// [`apply_assign`](PartialState::apply_assign), returning the journal
    /// that [`undo_assign`](PartialState::undo_assign) reverts. This is the
    /// delta-scoring hot path: the engine applies a candidate to the live
    /// frontier state, reads `cost`, and undoes — no clone per trial.
    pub fn apply_assign_logged(
        &mut self,
        ctx: &SeeContext<'_>,
        n: NodeId,
        c: PgNodeId,
    ) -> AssignUndo {
        let mut undo = AssignUndo {
            node: n,
            cluster: c,
            copies: SmallVec::new(),
            total_copies: self.total_copies,
            recurrence_copies: self.recurrence_copies,
            critical_penalty: self.critical_penalty,
            mii_issue: self.mii_issue,
            mii_arc: self.mii_arc,
            util_sq_sum: self.util_sq_sum,
            cost: self.cost,
        };
        self.place(ctx, n, c);
        let scc = &ctx.analysis.scc;
        // Operand flows into n. Constants never travel: the configuration
        // loader replicates them into every register file before the loop
        // starts (§2.2's reconfiguration phase), so they cost neither a wire
        // nor a receive.
        for (_, e) in ctx.ddg.pred_edges(n) {
            if ctx.ddg.node(e.src).op == hca_ddg::Opcode::Const {
                continue;
            }
            if let Some(cp) = self.cluster_of(e.src) {
                if cp != c {
                    let slack = edge_slack(ctx, e);
                    let rec = scc[e.src.index()] == scc[e.dst.index()]
                        && ctx.pg.node(cp).kind.is_cluster();
                    undo.copies
                        .extend(self.add_copy_logged(ctx, e.src, cp, c, Some(slack), rec));
                }
            }
        }
        // n's value flows to already-assigned consumers.
        if ctx.ddg.node(n).op != hca_ddg::Opcode::Const {
            for (_, e) in ctx.ddg.succ_edges(n) {
                if e.dst == n {
                    continue; // self recurrence needs no transport
                }
                if let Some(cs) = self.cluster_of(e.dst) {
                    if cs != c && ctx.pg.node(cs).kind.is_cluster() {
                        let slack = edge_slack(ctx, e);
                        let rec = scc[e.src.index()] == scc[e.dst.index()];
                        undo.copies
                            .extend(self.add_copy_logged(ctx, n, c, cs, Some(slack), rec));
                    }
                }
            }
        }
        // n's value flows up through every output wire listing it.
        for &o in ctx.statics.outputs_carrying(n) {
            undo.copies
                .extend(self.add_copy_logged(ctx, n, c, o, None, false));
        }
        self.cost = crate::cost::objective(ctx, self);
        undo
    }

    /// Revert one [`apply_assign_logged`](PartialState::apply_assign_logged)
    /// (the most recent — journals must unwind LIFO). Collections roll back
    /// op by op; scalar aggregates restore from the snapshot, so the state
    /// is bit-identical to before the apply.
    pub fn undo_assign(&mut self, ctx: &SeeContext<'_>, undo: AssignUndo) {
        for cu in undo.copies.iter().rev() {
            self.undo_copy(cu);
        }
        self.undo_place(ctx, undo.node, undo.cluster);
        self.total_copies = undo.total_copies;
        self.recurrence_copies = undo.recurrence_copies;
        self.critical_penalty = undo.critical_penalty;
        self.mii_issue = undo.mii_issue;
        self.mii_arc = undo.mii_arc;
        self.util_sq_sum = undo.util_sq_sum;
        self.cost = undo.cost;
    }

    /// Open a routing transaction: snapshot every scalar aggregate of the
    /// current state. Mutations made through the `*_txn` methods are
    /// journalled into it; [`txn_rollback`](PartialState::txn_rollback)
    /// reverts them LIFO and restores the snapshot bit-exactly.
    pub fn txn_begin(&self) -> StateTxn {
        StateTxn {
            ops: Vec::new(),
            forwards_len: self.forwards.len(),
            total_copies: self.total_copies,
            recurrence_copies: self.recurrence_copies,
            critical_penalty: self.critical_penalty,
            routed_hops: self.routed_hops,
            mii_issue: self.mii_issue,
            mii_arc: self.mii_arc,
            util_sq_sum: self.util_sq_sum,
            cost: self.cost,
        }
    }

    /// Journalled [`place`](PartialState::place).
    pub fn place_txn(&mut self, ctx: &SeeContext<'_>, n: NodeId, c: PgNodeId, txn: &mut StateTxn) {
        self.place(ctx, n, c);
        txn.ops.push(TxnOp::Place(n, c));
    }

    /// Journalled [`add_copy`](PartialState::add_copy). Returns `true` when
    /// a new copy was created (`false` = the value was already on the arc).
    pub fn add_copy_txn(
        &mut self,
        ctx: &SeeContext<'_>,
        v: NodeId,
        src: PgNodeId,
        dst: PgNodeId,
        via_edge_slack: Option<u32>,
        in_recurrence: bool,
        txn: &mut StateTxn,
    ) -> bool {
        match self.add_copy_logged(ctx, v, src, dst, via_edge_slack, in_recurrence) {
            Some(cu) => {
                txn.ops.push(TxnOp::Copy(cu));
                true
            }
            None => false,
        }
    }

    /// Journalled [`charge_issue`](PartialState::charge_issue).
    pub fn charge_issue_txn(
        &mut self,
        ctx: &SeeContext<'_>,
        c: PgNodeId,
        slots: u32,
        txn: &mut StateTxn,
    ) {
        self.charge_issue(ctx, c, slots);
        txn.ops.push(TxnOp::Charge(c, slots));
    }

    /// Revert every mutation journalled since
    /// [`txn_begin`](PartialState::txn_begin) (LIFO) and restore the scalar
    /// snapshot. The state is bit-identical to before the transaction.
    ///
    /// Direct scalar mutations made during the trial (`routed_hops`, `cost`)
    /// need no journal entries — they are covered by the snapshot.
    pub fn txn_rollback(&mut self, ctx: &SeeContext<'_>, txn: StateTxn) {
        for op in txn.ops.into_iter().rev() {
            match op {
                TxnOp::Place(n, c) => self.undo_place(ctx, n, c),
                TxnOp::Copy(cu) => self.undo_copy(&cu),
                TxnOp::Charge(c, slots) => {
                    *self.loads.issue_mut(c.index()) -= slots;
                }
            }
        }
        let mut fwd_delta = 0u64;
        for (pos, &(v, c)) in self.forwards.iter().enumerate().skip(txn.forwards_len) {
            fwd_delta ^= sig_entry(SIG_FORWARD, (pos as u32, v, c));
        }
        self.struct_sig ^= fwd_delta;
        self.forwards.truncate(txn.forwards_len);
        self.total_copies = txn.total_copies;
        self.recurrence_copies = txn.recurrence_copies;
        self.critical_penalty = txn.critical_penalty;
        self.routed_hops = txn.routed_hops;
        self.mii_issue = txn.mii_issue;
        self.mii_arc = txn.mii_arc;
        self.util_sq_sum = txn.util_sq_sum;
        self.cost = txn.cost;
    }

    /// The objective's aggregate inputs as currently accumulated — the
    /// bridge between this state and [`crate::cost::objective_from_parts`].
    #[inline]
    pub(crate) fn cost_inputs(&self) -> crate::cost::CostInputs {
        crate::cost::CostInputs {
            total_copies: self.total_copies,
            recurrence_copies: self.recurrence_copies,
            critical_penalty: self.critical_penalty,
            routed_hops: self.routed_hops,
            mii_issue: self.mii_issue,
            mii_arc: self.mii_arc,
            util_sq_sum: self.util_sq_sum,
            util_clusters: self.util_clusters,
        }
    }

    /// Estimated final MII of the partial solution (§4.2): the max of the
    /// DDG's MIIRec, the per-cluster issue pressure (instructions plus
    /// receives over issue slots, and per-class pressure), and the worst arc
    /// pressure (every value on one pattern consumes a transport slot).
    ///
    /// O(1): reads the running aggregates the mutators maintain. Loads and
    /// arc pressures only ever grow within one state's lifetime, so running
    /// maxima are exact; AG work on an AG-less cluster poisons `mii_issue`
    /// to `u32::MAX`.
    pub fn estimated_mii(&self, ctx: &SeeContext<'_>) -> u32 {
        ctx.analysis
            .mii_rec
            .max(self.mii_issue)
            .max(self.mii_arc)
            .max(1)
    }

    /// Highest per-issue-slot utilisation across clusters.
    pub fn max_utilization(&self, ctx: &SeeContext<'_>) -> f64 {
        let mut worst: f64 = 0.0;
        for id in ctx.pg.cluster_ids() {
            let rt = ctx.pg.node(id).rt;
            if rt.issue > 0 {
                worst = worst.max(f64::from(self.loads.issue(id.index())) / f64::from(rt.issue));
            }
        }
        worst
    }

    /// Mean *squared* per-issue-slot utilisation — the load-balance
    /// criterion. Convexity matters: below the recurrence-MII bound the
    /// pressure term is flat (packing one cluster and spreading both meet
    /// MIIRec), but concentrated placements explode into receive storms and
    /// port contention one hierarchy level down. The squared term keeps a
    /// spreading gradient alive everywhere.
    #[inline]
    pub fn utilization_sq_mean(&self, _ctx: &SeeContext<'_>) -> f64 {
        // O(1): `util_sq_sum` is maintained incrementally by `charge_issue`.
        if self.util_clusters == 0 {
            0.0
        } else {
            self.util_sq_sum / f64::from(self.util_clusters)
        }
    }

    /// Approximate heap footprint of this state in bytes — used by the
    /// engine to track peak frontier memory for the throughput benches.
    /// Counts element payloads plus a flat per-container overhead; exactness
    /// is not the point, comparability across beam widths is.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut bytes = size_of::<Self>();
        bytes += self.assignment.len() * size_of::<Option<PgNodeId>>();
        bytes += self.copies.heap_bytes();
        bytes += self.loads.heap_bytes();
        bytes += self.in_neighbors.heap_bytes() + self.out_neighbors.heap_bytes();
        bytes += self.forwards.len() * size_of::<(NodeId, PgNodeId)>();
        bytes
    }

    /// Freeze into the [`AssignedPg`] handed to the Mapper.
    pub fn into_assigned(self, pg: &Pg) -> AssignedPg {
        let mut copies = hca_pg::CopyMap::default();
        self.copies.for_each_arc(|s, d, vs| {
            copies.insert((s, d), vs.to_vec());
        });
        let assignment = self
            .assignment
            .iter()
            .enumerate()
            .filter_map(|(i, &slot)| slot.map(|c| (NodeId(i as u32), c)))
            .collect();
        AssignedPg {
            pg: pg.clone(),
            assignment,
            copies,
            forwards: self.forwards,
        }
    }
}

/// Slack of a dependence edge: how many cycles of transport latency the edge
/// can absorb without stretching the schedule. Intra-iteration edges use the
/// ALAP/ASAP slack of the consumer; loop-carried edges get slack
/// proportional to `II · distance` headroom (approximated with MIIRec).
pub(crate) fn edge_slack(ctx: &SeeContext<'_>, e: hca_ddg::DdgEdge) -> u32 {
    if e.distance == 0 {
        let lv = &ctx.analysis.levels;
        lv.alap[e.dst.index()].saturating_sub(lv.asap[e.src.index()] + e.latency)
    } else {
        (ctx.analysis.mii_rec * e.distance).saturating_sub(e.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_arch::ResourceTable;
    use hca_ddg::{DdgBuilder, Opcode};
    use hca_pg::{Ili, IliWire};

    fn ctx_fixture(ddg: &Ddg, _pg: &Pg) -> (DdgAnalysis, ArchConstraints) {
        let an = DdgAnalysis::compute(ddg).unwrap();
        let cons = ArchConstraints {
            max_in_neighbors: 4,
            max_out_neighbors: None,
            out_node_max_in: 1,
            copy_latency: 1,
        };
        (an, cons)
    }

    #[test]
    fn initial_state_binds_input_values() {
        let mut b = DdgBuilder::default();
        let ext = b.node(Opcode::Load);
        let _ = b.node(Opcode::Add);
        let ddg = b.finish();
        let mut pg = Pg::complete(2, ResourceTable::of_cns(4));
        pg.attach_ili(&Ili {
            inputs: vec![IliWire::new(vec![ext])],
            outputs: vec![],
        });
        let (an, cons) = ctx_fixture(&ddg, &pg);
        let ctx = SeeContext {
            ddg: &ddg,
            analysis: &an,
            pg: &pg,
            constraints: cons,
            weights: CostWeights::default(),
            issue_cap: None,
            statics: crate::statics::PgStatics::build(&pg),
        };
        let st = PartialState::initial(&ctx, &[]);
        let inp = pg.input_ids().next().unwrap();
        assert_eq!(st.cluster_of(ext), Some(inp));
    }

    #[test]
    fn apply_assign_creates_copies_and_recv() {
        let mut b = DdgBuilder::default();
        let p = b.node(Opcode::Add);
        let q = b.node(Opcode::Add);
        b.flow(p, q);
        let ddg = b.finish();
        let pg = Pg::complete(2, ResourceTable::of_cns(4));
        let (an, cons) = ctx_fixture(&ddg, &pg);
        let ctx = SeeContext {
            ddg: &ddg,
            analysis: &an,
            pg: &pg,
            constraints: cons,
            weights: CostWeights::default(),
            issue_cap: None,
            statics: crate::statics::PgStatics::build(&pg),
        };
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, p, PgNodeId(0));
        assert_eq!(st.total_copies, 0);
        st.apply_assign(&ctx, q, PgNodeId(1));
        assert_eq!(st.total_copies, 1);
        assert_eq!(st.arc_pressure(PgNodeId(0), PgNodeId(1)), 1);
        // q's cluster pays the receive issue slot on top of its own op.
        assert_eq!(st.loads.issue(1), 2);
        assert_eq!(st.loads.recv(1), 1);
        assert!(st.in_neighbors.contains(1, PgNodeId(0)));
    }

    #[test]
    fn copies_deduplicate_per_value_and_arc() {
        // p feeds two consumers on the same remote cluster: one copy.
        let mut b = DdgBuilder::default();
        let p = b.node(Opcode::Add);
        let q1 = b.node(Opcode::Add);
        let q2 = b.node(Opcode::Add);
        b.flow(p, q1);
        b.flow(p, q2);
        let ddg = b.finish();
        let pg = Pg::complete(2, ResourceTable::of_cns(4));
        let (an, cons) = ctx_fixture(&ddg, &pg);
        let ctx = SeeContext {
            ddg: &ddg,
            analysis: &an,
            pg: &pg,
            constraints: cons,
            weights: CostWeights::default(),
            issue_cap: None,
            statics: crate::statics::PgStatics::build(&pg),
        };
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, p, PgNodeId(0));
        st.apply_assign(&ctx, q1, PgNodeId(1));
        st.apply_assign(&ctx, q2, PgNodeId(1));
        assert_eq!(st.total_copies, 1);
        assert_eq!(st.loads.recv(1), 1);
    }

    #[test]
    fn recurrence_copies_counted() {
        let mut b = DdgBuilder::default();
        let a = b.node(Opcode::Add);
        let c = b.node(Opcode::Add);
        b.flow(a, c);
        b.carried(c, a, 1);
        let ddg = b.finish();
        let pg = Pg::complete(2, ResourceTable::of_cns(4));
        let (an, cons) = ctx_fixture(&ddg, &pg);
        let ctx = SeeContext {
            ddg: &ddg,
            analysis: &an,
            pg: &pg,
            constraints: cons,
            weights: CostWeights::default(),
            issue_cap: None,
            statics: crate::statics::PgStatics::build(&pg),
        };
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, a, PgNodeId(0));
        st.apply_assign(&ctx, c, PgNodeId(1));
        // Both the a→c and the carried c→a flow cross clusters inside one SCC.
        assert_eq!(st.total_copies, 2);
        assert_eq!(st.recurrence_copies, 2);
    }

    #[test]
    fn estimated_mii_tracks_issue_pressure() {
        let mut b = DdgBuilder::default();
        let nodes: Vec<NodeId> = (0..6).map(|_| b.node(Opcode::Add)).collect();
        let ddg = b.finish();
        let pg = Pg::complete(2, ResourceTable::of_cns(1)); // single-issue
        let (an, cons) = ctx_fixture(&ddg, &pg);
        let ctx = SeeContext {
            ddg: &ddg,
            analysis: &an,
            pg: &pg,
            constraints: cons,
            weights: CostWeights::default(),
            issue_cap: None,
            statics: crate::statics::PgStatics::build(&pg),
        };
        let mut st = PartialState::initial(&ctx, &[]);
        for (i, &n) in nodes.iter().enumerate() {
            st.apply_assign(&ctx, n, PgNodeId((i % 2) as u32));
        }
        assert_eq!(st.estimated_mii(&ctx), 3); // 3 ops per single-issue CN
        assert!((st.max_utilization(&ctx) - 3.0).abs() < 1e-9);
    }

    /// Field-by-field equality, with floats compared bit-for-bit: undo
    /// restores scalar snapshots, so even rounding noise must vanish.
    fn assert_states_identical(a: &PartialState, b: &PartialState) {
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.copies, b.copies);
        assert_eq!(a.loads, b.loads);
        assert_eq!(a.in_neighbors, b.in_neighbors);
        assert_eq!(a.out_neighbors, b.out_neighbors);
        assert_eq!(a.total_copies, b.total_copies);
        assert_eq!(a.recurrence_copies, b.recurrence_copies);
        assert_eq!(a.critical_penalty.to_bits(), b.critical_penalty.to_bits());
        assert_eq!(a.routed_hops, b.routed_hops);
        assert_eq!(a.forwards, b.forwards);
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        assert_eq!(a.mii_issue, b.mii_issue);
        assert_eq!(a.mii_arc, b.mii_arc);
        assert_eq!(a.util_sq_sum.to_bits(), b.util_sq_sum.to_bits());
        assert_eq!(a.util_clusters, b.util_clusters);
        // The structure signature must both round-trip and agree with a
        // from-scratch recomputation — the incremental maintenance is exact.
        assert_eq!(a.struct_sig, b.struct_sig);
        assert_eq!(b.struct_sig, b.compute_struct_sig());
    }

    #[test]
    fn apply_undo_round_trips_exactly() {
        // A shape that exercises every journal entry: cross-cluster flows
        // (copies + recv loads), a carried edge (recurrence copies), and a
        // shared producer (copy dedup) — then trial-assign each remaining
        // node on each cluster and undo, demanding the pre-trial state back
        // bit-for-bit.
        let mut b = DdgBuilder::default();
        let p = b.node(Opcode::Add);
        let q1 = b.node(Opcode::Add);
        let q2 = b.node(Opcode::Add);
        let r = b.node(Opcode::Add);
        b.flow(p, q1);
        b.flow(p, q2);
        b.flow(q1, r);
        b.carried(r, p, 1);
        let ddg = b.finish();
        let pg = Pg::complete(3, ResourceTable::of_cns(2));
        let (an, cons) = ctx_fixture(&ddg, &pg);
        let ctx = SeeContext {
            ddg: &ddg,
            analysis: &an,
            pg: &pg,
            constraints: cons,
            weights: CostWeights::default(),
            issue_cap: None,
            statics: crate::statics::PgStatics::build(&pg),
        };
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, p, PgNodeId(0));
        st.apply_assign(&ctx, q1, PgNodeId(1));

        for node in [q2, r] {
            for cluster in 0..3u32 {
                let before = st.clone();
                let undo = st.apply_assign_logged(&ctx, node, PgNodeId(cluster));
                assert!(st.cluster_of(node).is_some(), "trial assignment landed");
                st.undo_assign(&ctx, undo);
                assert_states_identical(&before, &st);
            }
            // Commit one for real so the next node's trials see deeper state.
            st.apply_assign(&ctx, node, PgNodeId(2));
        }
        assert_eq!(st.total_copies, 4);
    }

    #[test]
    fn arc_overflow_spills_and_round_trips() {
        // Push one value past the inline arc capacity so the spill path runs,
        // then unwind back through it: the canonical form (sentinel slots,
        // spill entry iff len > cap) must make the round-trip bit-exact.
        let mut b = DdgBuilder::default();
        let producers: Vec<NodeId> = (0..ARC_CAP as u32 + 1)
            .map(|_| b.node(Opcode::Add))
            .collect();
        let q = b.node(Opcode::Add);
        for &p in &producers {
            b.flow(p, q);
        }
        let ddg = b.finish();
        let pg = Pg::complete(2, ResourceTable::of_cns(4));
        let (an, cons) = ctx_fixture(&ddg, &pg);
        let ctx = SeeContext {
            ddg: &ddg,
            analysis: &an,
            pg: &pg,
            constraints: cons,
            weights: CostWeights::default(),
            issue_cap: None,
            statics: crate::statics::PgStatics::build(&pg),
        };
        let mut st = PartialState::initial(&ctx, &[]);
        for &p in &producers {
            st.apply_assign(&ctx, p, PgNodeId(0));
        }
        let before = st.clone();
        let undo = st.apply_assign_logged(&ctx, q, PgNodeId(1));
        // All producers copy onto the single 0→1 arc: one value deep in spill.
        let arc = (PgNodeId(0), PgNodeId(1));
        assert_eq!(st.arc_pressure(arc.0, arc.1), ARC_CAP as u32 + 1);
        for &p in &producers {
            assert!(st.copies.contains(arc.0, arc.1, p), "{p} on the arc");
        }
        assert_eq!(st.mii_arc, ARC_CAP as u32 + 1);
        let mut seen = Vec::new();
        st.copies.for_each_arc(|s, d, vs| {
            assert_eq!((s, d), arc);
            seen = vs.to_vec();
        });
        assert_eq!(seen, producers, "insertion order preserved across spill");
        st.undo_assign(&ctx, undo);
        assert_states_identical(&before, &st);
    }

    #[test]
    fn txn_rollback_round_trips_exactly() {
        // A routing-flavoured trial: place a node, thread a value through an
        // intermediate hop (two copies), charge a forward slot, bump the
        // scalar hop counter and overwrite the cached cost — then roll back
        // and demand the pre-trial state bit-for-bit.
        let mut b = DdgBuilder::default();
        let p = b.node(Opcode::Add);
        let q = b.node(Opcode::Add);
        b.flow(p, q);
        let ddg = b.finish();
        let pg = Pg::complete(3, ResourceTable::of_cns(2));
        let (an, cons) = ctx_fixture(&ddg, &pg);
        let ctx = SeeContext {
            ddg: &ddg,
            analysis: &an,
            pg: &pg,
            constraints: cons,
            weights: CostWeights::default(),
            issue_cap: None,
            statics: crate::statics::PgStatics::build(&pg),
        };
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, p, PgNodeId(0));
        let before = st.clone();

        let mut txn = st.txn_begin();
        st.place_txn(&ctx, q, PgNodeId(2), &mut txn);
        assert!(st.add_copy_txn(&ctx, p, PgNodeId(0), PgNodeId(1), None, false, &mut txn));
        assert!(st.add_copy_txn(&ctx, p, PgNodeId(1), PgNodeId(2), None, false, &mut txn));
        // Re-adding the same value on the same arc is a no-op …
        assert!(!st.add_copy_txn(&ctx, p, PgNodeId(0), PgNodeId(1), None, false, &mut txn));
        st.charge_issue_txn(&ctx, PgNodeId(1), 1, &mut txn);
        st.push_forward(p, PgNodeId(1));
        st.routed_hops += 1;
        st.cost = crate::cost::objective(&ctx, &st);
        assert_ne!(st.total_copies, before.total_copies);

        st.txn_rollback(&ctx, txn);
        assert_states_identical(&before, &st);
    }

    #[test]
    fn clone_from_reuses_and_matches() {
        // The arena overwrites recycled states with `clone_from`; the result
        // must be indistinguishable from a fresh clone, whatever divergent
        // content the recycled state accumulated.
        let mut b = DdgBuilder::default();
        let p = b.node(Opcode::Add);
        let q = b.node(Opcode::Add);
        let r = b.node(Opcode::Add);
        b.flow(p, q);
        b.flow(q, r);
        let ddg = b.finish();
        let pg = Pg::complete(3, ResourceTable::of_cns(2));
        let (an, cons) = ctx_fixture(&ddg, &pg);
        let ctx = SeeContext {
            ddg: &ddg,
            analysis: &an,
            pg: &pg,
            constraints: cons,
            weights: CostWeights::default(),
            issue_cap: None,
            statics: crate::statics::PgStatics::build(&pg),
        };
        let mut a = PartialState::initial(&ctx, &[]);
        a.apply_assign(&ctx, p, PgNodeId(0));
        a.apply_assign(&ctx, q, PgNodeId(1));
        let mut recycled = PartialState::initial(&ctx, &[]);
        recycled.apply_assign(&ctx, p, PgNodeId(2));
        recycled.apply_assign(&ctx, r, PgNodeId(0));
        recycled.clone_from(&a);
        assert_states_identical(&a, &recycled);
    }

    #[test]
    fn output_node_copy_has_no_recv_cost() {
        let mut b = DdgBuilder::default();
        let k = b.node(Opcode::Add);
        let ddg = b.finish();
        let mut pg = Pg::complete(2, ResourceTable::of_cns(4));
        pg.attach_ili(&Ili {
            inputs: vec![],
            outputs: vec![IliWire::new(vec![k])],
        });
        let (an, cons) = ctx_fixture(&ddg, &pg);
        let ctx = SeeContext {
            ddg: &ddg,
            analysis: &an,
            pg: &pg,
            constraints: cons,
            weights: CostWeights::default(),
            issue_cap: None,
            statics: crate::statics::PgStatics::build(&pg),
        };
        let out = pg.output_ids().next().unwrap();
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, k, PgNodeId(0));
        assert_eq!(st.arc_pressure(PgNodeId(0), out), 1);
        assert_eq!(st.loads.recv(out.index()), 0);
        assert_eq!(st.loads.issue(out.index()), 0);
    }
}
