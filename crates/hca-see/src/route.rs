//! The Route Allocator — the configurable *no-candidates action* (paper §3,
//! Figure 6b).
//!
//! "When no candidates can be found a no candidates action is performed in
//! order to escape from the impasse. A possible action can be the invocation
//! of the configurable Route Allocator, which tries to assign the current
//! DDG node to a convenient cluster, then routing the copies from/to its
//! predecessors/successors … where available paths are used to route a copy
//! from i to n passing through intermediate clusters."
//!
//! Routing reuses already-real arcs for free and only opens new arcs where
//! the destination still has a spare input port; each intermediate hop
//! executes a receive, so routed values pay issue slots along the way —
//! which the objective function then prices via `routed_hops`.

use crate::state::{PartialState, SeeContext};
use hca_ddg::NodeId;
use hca_pg::PgNodeId;
use rustc_hash::FxHashMap;
use std::collections::VecDeque;

/// Find the cheapest cluster for `n`, routing all its operand/result flows
/// through intermediate clusters where direct patterns are unavailable.
///
/// Returns the new state, or `None` when no cluster admits a complete
/// routing within `max_hops` intermediate hops.
pub fn route_assign(
    ctx: &SeeContext<'_>,
    st: &PartialState,
    n: NodeId,
    max_hops: usize,
) -> Option<PartialState> {
    let mut best: Option<PartialState> = None;
    for c in ctx.pg.cluster_ids() {
        if !ctx.pg.node(c).rt.can_execute(ctx.ddg.node(n).op) {
            continue;
        }
        if let Some(candidate) = try_route_to(ctx, st, n, c, max_hops) {
            if best.as_ref().is_none_or(|b| candidate.cost < b.cost) {
                best = Some(candidate);
            }
        }
    }
    best
}

/// Attempt to place `n` on `c`, routing every flow. Tries per-operand
/// routing first; when the target's ports cannot take one wire per operand,
/// falls back to funnelling all remote operands through a single shared
/// relay cluster (whose one output wire then carries them all to `c`).
fn try_route_to(
    ctx: &SeeContext<'_>,
    st: &PartialState,
    n: NodeId,
    c: PgNodeId,
    max_hops: usize,
) -> Option<PartialState> {
    let direct = route_operands_individually(ctx, st, n, c, max_hops);
    let result = match direct {
        Some(w) => Some(w),
        None => route_operands_via_relay(ctx, st, n, c, max_hops),
    };
    let mut work = result?;

    // Route the result towards assigned consumers.
    for (_, e) in ctx.ddg.succ_edges(n) {
        if e.dst == n {
            continue;
        }
        let Some(cs) = work.cluster_of(e.dst) else {
            continue;
        };
        if cs == c || !ctx.pg.node(cs).kind.is_cluster() {
            continue;
        }
        route_value(ctx, &mut work, n, c, cs, max_hops)?;
    }
    // Output special nodes: direct arcs only (they model the glue wire); the
    // unary fan-in must hold.
    for o in ctx.pg.outputs_carrying(n) {
        let ins = &work.in_neighbors[o.index()];
        let would_be = ins.len() + usize::from(!ins.contains(&c));
        if would_be > ctx.constraints.out_node_max_in as usize {
            return None;
        }
        work.add_copy(ctx, n, c, o, None, false);
    }
    work.cost = crate::cost::objective(ctx, &work);
    Some(work)
}

/// Place `n` on `c` and route each remote operand on its own cheapest path.
fn route_operands_individually(
    ctx: &SeeContext<'_>,
    st: &PartialState,
    n: NodeId,
    c: PgNodeId,
    max_hops: usize,
) -> Option<PartialState> {
    let mut work = st.clone();
    work.place(ctx, n, c);
    for (_, e) in ctx.ddg.pred_edges(n) {
        if ctx.ddg.node(e.src).op == hca_ddg::Opcode::Const {
            continue; // constants are preloaded, not transported
        }
        let Some(cp) = work.cluster_of(e.src) else {
            continue;
        };
        if cp == c {
            continue;
        }
        route_value(ctx, &mut work, e.src, cp, c, max_hops)?;
    }
    Some(work)
}

/// Place `n` on `c` and funnel every remote operand through one relay
/// cluster: the relay receives each value (possibly multi-hop), re-emits
/// them on its single output wire, and `c` spends only one input port.
fn route_operands_via_relay(
    ctx: &SeeContext<'_>,
    st: &PartialState,
    n: NodeId,
    c: PgNodeId,
    max_hops: usize,
) -> Option<PartialState> {
    let preds: Vec<NodeId> = ctx
        .ddg
        .pred_edges(n)
        .filter_map(|(_, e)| {
            if ctx.ddg.node(e.src).op == hca_ddg::Opcode::Const {
                return None; // preloaded
            }
            let cp = st.cluster_of(e.src)?;
            (cp != c).then_some(e.src)
        })
        .collect();
    if preds.len() < 2 {
        return None; // a relay cannot beat the direct attempt
    }
    let mut best: Option<PartialState> = None;
    for relay in ctx.pg.cluster_ids() {
        if relay == c || !ctx.pg.is_potential(relay, c) {
            continue;
        }
        let mut work = st.clone();
        work.place(ctx, n, c);
        let mut ok = true;
        for &v in &preds {
            let cp = work.cluster_of(v).expect("checked above");
            if cp == relay {
                continue; // already at the relay
            }
            if route_value(ctx, &mut work, v, cp, relay, max_hops).is_none() {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        // Relay → target: one wire carries every funnelled value.
        for &v in &preds {
            if !arc_admissible(ctx, &work, v, relay, c) {
                ok = false;
                break;
            }
            work.add_copy(ctx, v, relay, c, None, false);
            work.routed_hops += 1;
        }
        if !ok {
            continue;
        }
        work.cost = crate::cost::objective(ctx, &work);
        if best.as_ref().is_none_or(|b| work.cost < b.cost) {
            best = Some(work);
        }
    }
    best
}

/// Route value `v` from `src` to `dst` along potential arcs, preferring
/// already-real arcs, and apply the copies. Fails when no admissible path of
/// at most `max_hops` intermediate clusters exists.
pub(crate) fn route_value(
    ctx: &SeeContext<'_>,
    work: &mut PartialState,
    v: NodeId,
    src: PgNodeId,
    dst: PgNodeId,
    max_hops: usize,
) -> Option<()> {
    let path = shortest_admissible_path(ctx, work, v, src, dst, max_hops + 1)?;
    debug_assert!(path.len() >= 2);
    let extra_hops = (path.len() - 2) as u32;
    for w in path.windows(2) {
        let (a, b) = (w[0], w[1]);
        // Re-verify admission: earlier segments may have consumed the port.
        if !arc_admissible(ctx, work, v, a, b) {
            return None;
        }
        work.add_copy(ctx, v, a, b, None, false);
    }
    work.routed_hops += extra_hops;
    Some(())
}

/// Can value `v` be put on arc `a → b` right now?
fn arc_admissible(
    ctx: &SeeContext<'_>,
    st: &PartialState,
    v: NodeId,
    a: PgNodeId,
    b: PgNodeId,
) -> bool {
    if !ctx.pg.is_potential(a, b) {
        return false;
    }
    if st.copies.get(&(a, b)).is_some_and(|vs| vs.contains(&v)) {
        return true; // already there — free
    }
    if st.in_neighbors[b.index()].contains(&a) {
        return true;
    }
    st.in_neighbors[b.index()].len() < ctx.constraints.max_in_neighbors as usize
}

/// Cheapest admissible path `src → dst` (at most `max_edges` arcs).
/// Dijkstra over `(new_ports, hops)`: hops that reuse an already-configured
/// arc are free port-wise, so the router prefers piggybacking on existing
/// connections over opening fresh ones — that keeps scarce input ports for
/// the flows that really need them. Intermediate nodes must be real
/// clusters — special nodes never forward.
fn shortest_admissible_path(
    ctx: &SeeContext<'_>,
    st: &PartialState,
    v: NodeId,
    src: PgNodeId,
    dst: PgNodeId,
    max_edges: usize,
) -> Option<Vec<PgNodeId>> {
    // Tiny graphs (≤ a few dozen nodes): a sorted frontier is plenty.
    let mut parent: FxHashMap<PgNodeId, PgNodeId> = FxHashMap::default();
    let mut cost: FxHashMap<PgNodeId, (usize, usize)> = FxHashMap::default();
    let mut frontier: VecDeque<PgNodeId> = VecDeque::new();
    cost.insert(src, (0, 0));
    frontier.push_back(src);
    while let Some(cur) = frontier.pop_front() {
        let (ports, hops) = cost[&cur];
        if hops >= max_edges {
            continue;
        }
        for &next in ctx.pg.potential_succs(cur) {
            if next != dst && !ctx.pg.node(next).kind.is_cluster() {
                continue;
            }
            if !arc_admissible(ctx, st, v, cur, next) {
                continue;
            }
            let new_port = usize::from(!st.in_neighbors[next.index()].contains(&cur));
            let cand = (ports + new_port, hops + 1);
            if cost.get(&next).is_none_or(|&c| cand < c) {
                cost.insert(next, cand);
                parent.insert(next, cur);
                frontier.push_back(next);
            }
        }
    }
    if !cost.contains_key(&dst) || dst == src {
        return (dst == src).then(|| vec![src]);
    }
    let mut path = vec![dst];
    let mut at = dst;
    while at != src {
        at = parent[&at];
        path.push(at);
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignable::is_assignable;
    use crate::cost::CostWeights;
    use hca_arch::{Rcp, ResourceTable};
    use hca_ddg::{Ddg, DdgAnalysis, DdgBuilder, Opcode};
    use hca_pg::{ArchConstraints, Pg};

    fn mk_ctx<'a>(ddg: &'a Ddg, an: &'a DdgAnalysis, pg: &'a Pg, max_in: u32) -> SeeContext<'a> {
        SeeContext {
            ddg,
            analysis: an,
            pg,
            constraints: ArchConstraints {
                max_in_neighbors: max_in,
                max_out_neighbors: None,
                out_node_max_in: 1,
                copy_latency: 1,
            },
            weights: CostWeights::default(),
            issue_cap: None,
        }
    }

    #[test]
    fn routes_across_ring_when_direct_pattern_missing() {
        // RCP ring with reach 1: cluster 0 cannot reach cluster 2 directly.
        let rcp = Rcp::new(4, 1, 2, |_| true);
        let pg = Pg::from_rcp(&rcp);
        let mut b = DdgBuilder::default();
        let i = b.node(Opcode::Add);
        let n = b.node(Opcode::Add);
        b.flow(i, n);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let ctx = mk_ctx(&ddg, &an, &pg, 2);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, i, PgNodeId(0));

        // Force the impasse: pretend the engine wants n on cluster 2.
        assert!(!is_assignable(&ctx, &st, n, PgNodeId(2)));
        let routed = try_route_to(&ctx, &st, n, PgNodeId(2), 3).unwrap();
        // The value of i hops through 1 or 3.
        assert_eq!(routed.routed_hops, 1);
        let via1 = routed.arc_pressure(PgNodeId(0), PgNodeId(1)) == 1
            && routed.arc_pressure(PgNodeId(1), PgNodeId(2)) == 1;
        let via3 = routed.arc_pressure(PgNodeId(0), PgNodeId(3)) == 1
            && routed.arc_pressure(PgNodeId(3), PgNodeId(2)) == 1;
        assert!(via1 || via3);
    }

    #[test]
    fn route_assign_picks_direct_placement_when_cheaper() {
        let rcp = Rcp::new(4, 1, 2, |_| true);
        let pg = Pg::from_rcp(&rcp);
        let mut b = DdgBuilder::default();
        let i = b.node(Opcode::Add);
        let n = b.node(Opcode::Add);
        b.flow(i, n);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let ctx = mk_ctx(&ddg, &an, &pg, 2);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, i, PgNodeId(0));
        let out = route_assign(&ctx, &st, n, 3).unwrap();
        // Same cluster as the operand: zero copies, zero hops.
        assert_eq!(out.cluster_of(n), Some(PgNodeId(0)));
        assert_eq!(out.total_copies, 0);
    }

    #[test]
    fn routing_respects_port_budget() {
        // Complete 3-cluster PG but max_in = 0: no routing can ever land.
        let pg = Pg::complete(3, ResourceTable::of_cns(4));
        let mut b = DdgBuilder::default();
        let i = b.node(Opcode::Add);
        let n = b.node(Opcode::Add);
        b.flow(i, n);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let ctx = mk_ctx(&ddg, &an, &pg, 0);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, i, PgNodeId(0));
        // Only co-location works; any cross-cluster route fails.
        assert!(try_route_to(&ctx, &st, n, PgNodeId(1), 3).is_none());
        let out = route_assign(&ctx, &st, n, 3).unwrap();
        assert_eq!(out.cluster_of(n), Some(PgNodeId(0)));
    }

    #[test]
    fn hop_limit_bounds_search() {
        // Line-of-sight ring, need 2 intermediate hops, allow only 1.
        let rcp = Rcp::new(6, 1, 2, |_| true);
        let pg = Pg::from_rcp(&rcp);
        let mut b = DdgBuilder::default();
        let i = b.node(Opcode::Add);
        let n = b.node(Opcode::Add);
        b.flow(i, n);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let ctx = mk_ctx(&ddg, &an, &pg, 2);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, i, PgNodeId(0));
        assert!(try_route_to(&ctx, &st, n, PgNodeId(3), 1).is_none());
        assert!(try_route_to(&ctx, &st, n, PgNodeId(3), 2).is_some());
    }

    #[test]
    fn routes_result_to_consumers() {
        let rcp = Rcp::new(4, 1, 2, |_| true);
        let pg = Pg::from_rcp(&rcp);
        let mut b = DdgBuilder::default();
        let n = b.node(Opcode::Add);
        let s = b.node(Opcode::Add);
        b.flow(n, s);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let ctx = mk_ctx(&ddg, &an, &pg, 2);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, s, PgNodeId(2));
        let routed = try_route_to(&ctx, &st, n, PgNodeId(0), 3).unwrap();
        assert_eq!(routed.routed_hops, 1);
        assert!(routed.total_copies >= 2); // two hops carry the value
    }
}
