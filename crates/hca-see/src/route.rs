//! The Route Allocator — the configurable *no-candidates action* (paper §3,
//! Figure 6b).
//!
//! "When no candidates can be found a no candidates action is performed in
//! order to escape from the impasse. A possible action can be the invocation
//! of the configurable Route Allocator, which tries to assign the current
//! DDG node to a convenient cluster, then routing the copies from/to its
//! predecessors/successors … where available paths are used to route a copy
//! from i to n passing through intermediate clusters."
//!
//! Routing reuses already-real arcs for free and only opens new arcs where
//! the destination still has a spare input port; each intermediate hop
//! executes a receive, so routed values pay issue slots along the way —
//! which the objective function then prices via `routed_hops`.
//!
//! Performance shape (bit-exact with the naive implementation): candidate
//! clusters are pre-screened against the static [`RouteTable`] (a flow whose
//! endpoints are statically too far can never be routed, whatever the port
//! state), each trial mutates the live state through a [`StateTxn`] journal
//! instead of cloning it, and the path search runs on thread-local
//! epoch-stamped scratch arrays instead of fresh hash maps per query. The
//! winning candidate is committed in place ([`route_assign_commit`]) — the
//! engine's rescue path performs zero state clones.

use crate::route_table::RouteTable;
use crate::state::{PartialState, SeeContext, StateTxn};
use hca_ddg::NodeId;
use hca_pg::PgNodeId;
use std::cell::RefCell;
use std::collections::VecDeque;

/// Find the cheapest cluster for `n`, routing all its operand/result flows
/// through intermediate clusters where direct patterns are unavailable.
///
/// Clone-then-commit wrapper over [`route_assign_commit`] for callers that
/// need the input state kept; the engine's rescue path commits directly into
/// frontier states it is about to discard anyway and never clones.
pub fn route_assign(
    ctx: &SeeContext<'_>,
    rt: &RouteTable,
    st: &PartialState,
    n: NodeId,
    max_hops: usize,
) -> Option<PartialState> {
    let mut out = st.clone();
    route_assign_commit(ctx, rt, &mut out, n, max_hops).then_some(out)
}

/// [`route_assign`], committing the winning routing into `st` in place.
///
/// Trials run on the live state (journalled and rolled back bit-exactly);
/// the winning candidate is then re-routed deterministically and *kept
/// applied*. Returns `true` on success; on `false` (no cluster admits a
/// complete routing within `max_hops` intermediate hops) `st` is
/// bit-identical to on entry.
pub(crate) fn route_assign_commit(
    ctx: &SeeContext<'_>,
    rt: &RouteTable,
    st: &mut PartialState,
    n: NodeId,
    max_hops: usize,
) -> bool {
    let mut best: Option<(f64, PgNodeId)> = None;
    for c in ctx.pg.cluster_ids() {
        if !ctx.pg.node(c).rt.can_execute(ctx.ddg.node(n).op) {
            continue;
        }
        if !statically_routable(ctx, rt, st, n, c, max_hops) {
            rt.count_hit();
            continue;
        }
        if let Some(txn) = try_route_to(ctx, rt, st, n, c, max_hops) {
            let cost = st.cost;
            st.txn_rollback(ctx, txn);
            if best.is_none_or(|(b, _)| cost < b) {
                best = Some((cost, c));
            }
        }
    }
    let Some((_, c)) = best else {
        return false;
    };
    try_route_to(ctx, rt, st, n, c, max_hops)
        .expect("winning candidate re-routes deterministically");
    true
}

/// Static feasibility screen for placing `n` on `c`, answered entirely from
/// the [`RouteTable`] — no search, no state mutation. Exact in one
/// direction: a `false` here means [`try_route_to`] is *guaranteed* to fail
/// (the static hop distance lower-bounds every dynamic path: operands may
/// travel at most `max_hops + 1` arcs directly or `max_hops + 2` via a
/// relay, results at most `max_hops + 1`), so skipping the trial cannot
/// change the outcome. A `true` decides nothing — the trial still runs.
fn statically_routable(
    ctx: &SeeContext<'_>,
    rt: &RouteTable,
    st: &PartialState,
    n: NodeId,
    c: PgNodeId,
    max_hops: usize,
) -> bool {
    for (_, e) in ctx.ddg.pred_edges(n) {
        if ctx.ddg.node(e.src).op == hca_ddg::Opcode::Const {
            continue;
        }
        let Some(cp) = st.cluster_of(e.src) else {
            continue;
        };
        if cp == c {
            continue;
        }
        if !rt
            .hop_dist(cp, c)
            .is_some_and(|d| d as usize <= max_hops + 2)
        {
            return false;
        }
    }
    for (_, e) in ctx.ddg.succ_edges(n) {
        if e.dst == n {
            continue;
        }
        let Some(cs) = st.cluster_of(e.dst) else {
            continue;
        };
        if cs == c || !ctx.pg.node(cs).kind.is_cluster() {
            continue;
        }
        if !rt
            .hop_dist(c, cs)
            .is_some_and(|d| d as usize <= max_hops + 1)
        {
            return false;
        }
    }
    // Output wires take direct arcs only and must keep their unary fan-in —
    // known from the current in-neighbour sets, which operand routing cannot
    // touch (it only opens arcs into clusters).
    for &o in ctx.statics.outputs_carrying(n) {
        let would_be =
            st.in_neighbors.len(o.index()) + usize::from(!st.in_neighbors.contains(o.index(), c));
        if would_be > ctx.constraints.out_node_max_in as usize {
            return false;
        }
    }
    true
}

/// Attempt to place `n` on `c`, routing every flow — in place, journalled.
/// Tries per-operand routing first; when the target's ports cannot take one
/// wire per operand, falls back to funnelling all remote operands through a
/// single shared relay cluster (whose one output wire then carries them all
/// to `c`).
///
/// On success the mutations stay applied (with `st.cost` updated) and the
/// journal is returned for the caller to keep or roll back; on failure `st`
/// is already restored and `None` is returned.
fn try_route_to(
    ctx: &SeeContext<'_>,
    rt: &RouteTable,
    st: &mut PartialState,
    n: NodeId,
    c: PgNodeId,
    max_hops: usize,
) -> Option<StateTxn> {
    let mut txn = match route_operands_individually(ctx, rt, st, n, c, max_hops) {
        Some(txn) => txn,
        None => route_operands_via_relay(ctx, rt, st, n, c, max_hops)?,
    };

    // Route the result towards assigned consumers.
    for (_, e) in ctx.ddg.succ_edges(n) {
        if e.dst == n {
            continue;
        }
        let Some(cs) = st.cluster_of(e.dst) else {
            continue;
        };
        if cs == c || !ctx.pg.node(cs).kind.is_cluster() {
            continue;
        }
        if route_value(ctx, rt, st, n, c, cs, max_hops, &mut txn).is_none() {
            st.txn_rollback(ctx, txn);
            return None;
        }
    }
    // Output special nodes: direct arcs only (they model the glue wire); the
    // unary fan-in must hold.
    for &o in ctx.statics.outputs_carrying(n) {
        let would_be =
            st.in_neighbors.len(o.index()) + usize::from(!st.in_neighbors.contains(o.index(), c));
        if would_be > ctx.constraints.out_node_max_in as usize {
            st.txn_rollback(ctx, txn);
            return None;
        }
        st.add_copy_txn(ctx, n, c, o, None, false, &mut txn);
    }
    st.cost = crate::cost::objective(ctx, st);
    Some(txn)
}

/// Place `n` on `c` and route each remote operand on its own cheapest path.
/// Journalled; rolls `st` back itself on failure.
fn route_operands_individually(
    ctx: &SeeContext<'_>,
    rt: &RouteTable,
    st: &mut PartialState,
    n: NodeId,
    c: PgNodeId,
    max_hops: usize,
) -> Option<StateTxn> {
    let mut txn = st.txn_begin();
    st.place_txn(ctx, n, c, &mut txn);
    for (_, e) in ctx.ddg.pred_edges(n) {
        if ctx.ddg.node(e.src).op == hca_ddg::Opcode::Const {
            continue; // constants are preloaded, not transported
        }
        let Some(cp) = st.cluster_of(e.src) else {
            continue;
        };
        if cp == c {
            continue;
        }
        if route_value(ctx, rt, st, e.src, cp, c, max_hops, &mut txn).is_none() {
            st.txn_rollback(ctx, txn);
            return None;
        }
    }
    Some(txn)
}

/// Place `n` on `c` and funnel every remote operand through one relay
/// cluster: the relay receives each value (possibly multi-hop), re-emits
/// them on its single output wire, and `c` spends only one input port.
/// Journalled; each relay is trialled in place and rolled back, then the
/// cheapest one is re-applied and its journal returned.
fn route_operands_via_relay(
    ctx: &SeeContext<'_>,
    rt: &RouteTable,
    st: &mut PartialState,
    n: NodeId,
    c: PgNodeId,
    max_hops: usize,
) -> Option<StateTxn> {
    let preds: Vec<NodeId> = ctx
        .ddg
        .pred_edges(n)
        .filter_map(|(_, e)| {
            if ctx.ddg.node(e.src).op == hca_ddg::Opcode::Const {
                return None; // preloaded
            }
            let cp = st.cluster_of(e.src)?;
            (cp != c).then_some(e.src)
        })
        .collect();
    if preds.len() < 2 {
        return None; // a relay cannot beat the direct attempt
    }
    let mut best: Option<(f64, PgNodeId)> = None;
    for relay in ctx.pg.cluster_ids() {
        if relay == c || !ctx.statics.is_potential(relay, c) {
            continue;
        }
        let Some(txn) = try_relay(ctx, rt, st, n, c, relay, &preds, max_hops) else {
            continue;
        };
        let cost = st.cost;
        st.txn_rollback(ctx, txn);
        if best.is_none_or(|(b, _)| cost < b) {
            best = Some((cost, relay));
        }
    }
    let (_, relay) = best?;
    let txn = try_relay(ctx, rt, st, n, c, relay, &preds, max_hops)
        .expect("winning relay re-routes deterministically");
    Some(txn)
}

/// One relay trial: place `n` on `c`, funnel `preds` through `relay`, price
/// the result. Applied in place; `None` means `st` was already rolled back.
#[allow(clippy::too_many_arguments)]
fn try_relay(
    ctx: &SeeContext<'_>,
    rt: &RouteTable,
    st: &mut PartialState,
    n: NodeId,
    c: PgNodeId,
    relay: PgNodeId,
    preds: &[NodeId],
    max_hops: usize,
) -> Option<StateTxn> {
    let mut txn = st.txn_begin();
    st.place_txn(ctx, n, c, &mut txn);
    for &v in preds {
        let cp = st.cluster_of(v).expect("checked above");
        if cp == relay {
            continue; // already at the relay
        }
        if route_value(ctx, rt, st, v, cp, relay, max_hops, &mut txn).is_none() {
            st.txn_rollback(ctx, txn);
            return None;
        }
    }
    // Relay → target: one wire carries every funnelled value.
    for &v in preds {
        if !arc_admissible(ctx, st, v, relay, c) {
            st.txn_rollback(ctx, txn);
            return None;
        }
        st.add_copy_txn(ctx, v, relay, c, None, false, &mut txn);
        st.routed_hops += 1;
    }
    st.cost = crate::cost::objective(ctx, st);
    Some(txn)
}

/// Route value `v` from `src` to `dst` along potential arcs, preferring
/// already-real arcs, and apply the copies into `txn`. Fails when no
/// admissible path of at most `max_hops` intermediate clusters exists — the
/// caller must then roll back the transaction (partial segments of a failed
/// path stay journalled until it does).
#[allow(clippy::too_many_arguments)]
pub(crate) fn route_value(
    ctx: &SeeContext<'_>,
    rt: &RouteTable,
    work: &mut PartialState,
    v: NodeId,
    src: PgNodeId,
    dst: PgNodeId,
    max_hops: usize,
    txn: &mut StateTxn,
) -> Option<()> {
    let path = shortest_admissible_path(ctx, rt, work, v, src, dst, max_hops + 1)?;
    debug_assert!(path.len() >= 2);
    let extra_hops = (path.len() - 2) as u32;
    for w in path.windows(2) {
        let (a, b) = (w[0], w[1]);
        // Re-verify admission: earlier segments may have consumed the port.
        if !arc_admissible(ctx, work, v, a, b) {
            return None;
        }
        work.add_copy_txn(ctx, v, a, b, None, false, txn);
    }
    work.routed_hops += extra_hops;
    Some(())
}

/// Can value `v` be put on arc `a → b` right now?
fn arc_admissible(
    ctx: &SeeContext<'_>,
    st: &PartialState,
    v: NodeId,
    a: PgNodeId,
    b: PgNodeId,
) -> bool {
    if !ctx.statics.is_potential(a, b) {
        return false;
    }
    if st.copies.contains(a, b, v) {
        return true; // already there — free
    }
    if st.in_neighbors.contains(b.index(), a) {
        return true;
    }
    st.in_neighbors.len(b.index()) < ctx.constraints.max_in_neighbors as usize
}

/// Reusable per-thread search buffers for [`shortest_admissible_path`].
/// Epoch-stamping makes clearing O(1): a slot is valid only when its stamp
/// equals the current epoch, so "reset" is one increment (with a full wipe
/// on the u32 wrap).
#[derive(Default)]
struct Scratch {
    epoch: u32,
    stamp: Vec<u32>,
    parent: Vec<PgNodeId>,
    ports: Vec<usize>,
    hops: Vec<usize>,
    queue: VecDeque<PgNodeId>,
}

impl Scratch {
    fn reset(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.parent.resize(n, PgNodeId(0));
            self.ports.resize(n, 0);
            self.hops.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.queue.clear();
    }
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Cheapest admissible path `src → dst` (at most `max_edges` arcs).
/// Label-correcting search over the lexicographic cost `(new_ports, hops)`:
/// hops that reuse an already-configured arc are free port-wise, so the
/// router prefers piggybacking on existing connections over opening fresh
/// ones — that keeps scarce input ports for the flows that really need
/// them. Intermediate nodes must be real clusters — special nodes never
/// forward.
///
/// The static table answers the trivial cases without a search and prunes
/// successors that cannot reach `dst` at all; both are outcome-preserving
/// (see [`RouteTable`]). Note the hop *budget* is enforced only at
/// expansion time, exactly as in the original implementation — a static
/// `hops + dist > budget` cut would be unsound under lexicographic costs.
fn shortest_admissible_path(
    ctx: &SeeContext<'_>,
    rt: &RouteTable,
    st: &PartialState,
    v: NodeId,
    src: PgNodeId,
    dst: PgNodeId,
    max_edges: usize,
) -> Option<Vec<PgNodeId>> {
    if src == dst {
        rt.count_hit();
        return Some(vec![src]);
    }
    match rt.hop_dist(src, dst) {
        Some(d) if d as usize <= max_edges => {}
        _ => {
            // Statically unreachable or too far even on the unconstrained
            // graph: the dynamic search cannot do better.
            rt.count_hit();
            return None;
        }
    }
    // Fast path: an already-configured direct arc costs (0 new ports,
    // 1 hop), which is lexicographically unbeatable — every competing path
    // spends at least 2 hops at no fewer ports, and no other 1-hop path
    // exists. The static table plus one membership test answers the query
    // with the exact path the search would return.
    if max_edges >= 1
        && ctx.statics.is_potential(src, dst)
        && st.in_neighbors.contains(dst.index(), src)
        && arc_admissible(ctx, st, v, src, dst)
    {
        rt.count_hit();
        return Some(vec![src, dst]);
    }
    rt.count_bfs();
    SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        let s = &mut *scratch;
        s.reset(rt.num_nodes());
        let e = s.epoch;
        s.stamp[src.index()] = e;
        s.ports[src.index()] = 0;
        s.hops[src.index()] = 0;
        s.queue.push_back(src);
        while let Some(cur) = s.queue.pop_front() {
            let (ports, hops) = (s.ports[cur.index()], s.hops[cur.index()]);
            if hops >= max_edges {
                continue;
            }
            for &next in ctx.pg.potential_succs(cur) {
                if next != dst && !ctx.pg.node(next).kind.is_cluster() {
                    continue;
                }
                if !rt.reachable(next, dst) {
                    continue; // dead branch: statically cut off from dst
                }
                if !arc_admissible(ctx, st, v, cur, next) {
                    continue;
                }
                let new_port = usize::from(!st.in_neighbors.contains(next.index(), cur));
                let cand = (ports + new_port, hops + 1);
                let i = next.index();
                if s.stamp[i] != e || cand < (s.ports[i], s.hops[i]) {
                    s.stamp[i] = e;
                    s.ports[i] = cand.0;
                    s.hops[i] = cand.1;
                    s.parent[i] = cur;
                    s.queue.push_back(next);
                }
            }
        }
        if s.stamp[dst.index()] != e {
            return None;
        }
        let mut path = vec![dst];
        let mut at = dst;
        while at != src {
            at = s.parent[at.index()];
            path.push(at);
        }
        path.reverse();
        Some(path)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignable::is_assignable;
    use crate::cost::CostWeights;
    use hca_arch::{Rcp, ResourceTable};
    use hca_ddg::{Ddg, DdgAnalysis, DdgBuilder, Opcode};
    use hca_pg::{ArchConstraints, Pg};

    fn mk_ctx<'a>(ddg: &'a Ddg, an: &'a DdgAnalysis, pg: &'a Pg, max_in: u32) -> SeeContext<'a> {
        SeeContext {
            ddg,
            analysis: an,
            pg,
            constraints: ArchConstraints {
                max_in_neighbors: max_in,
                max_out_neighbors: None,
                out_node_max_in: 1,
                copy_latency: 1,
            },
            weights: CostWeights::default(),
            issue_cap: None,
            statics: crate::statics::PgStatics::build(pg),
        }
    }

    /// Clone-based shim keeping the original test surface: route onto a
    /// fresh copy, return it on success.
    fn try_route_clone(
        ctx: &SeeContext<'_>,
        rt: &RouteTable,
        st: &PartialState,
        n: hca_ddg::NodeId,
        c: PgNodeId,
        max_hops: usize,
    ) -> Option<PartialState> {
        let mut work = st.clone();
        try_route_to(ctx, rt, &mut work, n, c, max_hops).map(|_| work)
    }

    /// The observable fields trials must restore (floats bit-for-bit).
    fn assert_logically_equal(a: &PartialState, b: &PartialState) {
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.copies, b.copies);
        assert_eq!(a.loads, b.loads);
        assert_eq!(a.in_neighbors, b.in_neighbors);
        assert_eq!(a.out_neighbors, b.out_neighbors);
        assert_eq!(a.total_copies, b.total_copies);
        assert_eq!(a.routed_hops, b.routed_hops);
        assert_eq!(a.forwards, b.forwards);
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
    }

    #[test]
    fn routes_across_ring_when_direct_pattern_missing() {
        // RCP ring with reach 1: cluster 0 cannot reach cluster 2 directly.
        let rcp = Rcp::new(4, 1, 2, |_| true);
        let pg = Pg::from_rcp(&rcp);
        let rt = RouteTable::build(&pg);
        let mut b = DdgBuilder::default();
        let i = b.node(Opcode::Add);
        let n = b.node(Opcode::Add);
        b.flow(i, n);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let ctx = mk_ctx(&ddg, &an, &pg, 2);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, i, PgNodeId(0));

        // Force the impasse: pretend the engine wants n on cluster 2.
        assert!(!is_assignable(&ctx, &st, n, PgNodeId(2)));
        let routed = try_route_clone(&ctx, &rt, &st, n, PgNodeId(2), 3).unwrap();
        // The value of i hops through 1 or 3.
        assert_eq!(routed.routed_hops, 1);
        let via1 = routed.arc_pressure(PgNodeId(0), PgNodeId(1)) == 1
            && routed.arc_pressure(PgNodeId(1), PgNodeId(2)) == 1;
        let via3 = routed.arc_pressure(PgNodeId(0), PgNodeId(3)) == 1
            && routed.arc_pressure(PgNodeId(3), PgNodeId(2)) == 1;
        assert!(via1 || via3);
    }

    #[test]
    fn route_assign_picks_direct_placement_when_cheaper() {
        let rcp = Rcp::new(4, 1, 2, |_| true);
        let pg = Pg::from_rcp(&rcp);
        let rt = RouteTable::build(&pg);
        let mut b = DdgBuilder::default();
        let i = b.node(Opcode::Add);
        let n = b.node(Opcode::Add);
        b.flow(i, n);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let ctx = mk_ctx(&ddg, &an, &pg, 2);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, i, PgNodeId(0));
        let out = route_assign(&ctx, &rt, &st, n, 3).unwrap();
        // Same cluster as the operand: zero copies, zero hops.
        assert_eq!(out.cluster_of(n), Some(PgNodeId(0)));
        assert_eq!(out.total_copies, 0);
    }

    #[test]
    fn route_assign_trials_leave_input_state_untouched() {
        // The in-place trial machinery must hand back `st` bit-identical —
        // otherwise the beam's other candidates see phantom copies.
        let rcp = Rcp::new(6, 1, 2, |_| true);
        let pg = Pg::from_rcp(&rcp);
        let rt = RouteTable::build(&pg);
        let mut b = DdgBuilder::default();
        let i1 = b.node(Opcode::Add);
        let i2 = b.node(Opcode::Add);
        let n = b.node(Opcode::Add);
        let s = b.node(Opcode::Add);
        b.flow(i1, n);
        b.flow(i2, n);
        b.flow(n, s);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let ctx = mk_ctx(&ddg, &an, &pg, 2);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, i1, PgNodeId(0));
        st.apply_assign(&ctx, i2, PgNodeId(1));
        st.apply_assign(&ctx, s, PgNodeId(3));
        let before = st.clone();
        let routed = route_assign(&ctx, &rt, &st, n, 3);
        assert!(routed.is_some());
        assert_logically_equal(&before, &st);
    }

    #[test]
    fn routing_respects_port_budget() {
        // Complete 3-cluster PG but max_in = 0: no routing can ever land.
        let pg = Pg::complete(3, ResourceTable::of_cns(4));
        let rt = RouteTable::build(&pg);
        let mut b = DdgBuilder::default();
        let i = b.node(Opcode::Add);
        let n = b.node(Opcode::Add);
        b.flow(i, n);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let ctx = mk_ctx(&ddg, &an, &pg, 0);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, i, PgNodeId(0));
        // Only co-location works; any cross-cluster route fails.
        assert!(try_route_clone(&ctx, &rt, &st, n, PgNodeId(1), 3).is_none());
        let out = route_assign(&ctx, &rt, &st, n, 3).unwrap();
        assert_eq!(out.cluster_of(n), Some(PgNodeId(0)));
    }

    #[test]
    fn hop_limit_bounds_search() {
        // Line-of-sight ring, need 2 intermediate hops, allow only 1.
        let rcp = Rcp::new(6, 1, 2, |_| true);
        let pg = Pg::from_rcp(&rcp);
        let rt = RouteTable::build(&pg);
        let mut b = DdgBuilder::default();
        let i = b.node(Opcode::Add);
        let n = b.node(Opcode::Add);
        b.flow(i, n);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let ctx = mk_ctx(&ddg, &an, &pg, 2);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, i, PgNodeId(0));
        assert!(try_route_clone(&ctx, &rt, &st, n, PgNodeId(3), 1).is_none());
        assert!(try_route_clone(&ctx, &rt, &st, n, PgNodeId(3), 2).is_some());
    }

    #[test]
    fn static_screen_rejects_before_any_search() {
        // Same shape as `hop_limit_bounds_search`, but watch the counters:
        // the infeasible budget must be rejected purely from the table.
        let rcp = Rcp::new(6, 1, 2, |_| true);
        let pg = Pg::from_rcp(&rcp);
        let rt = RouteTable::build(&pg);
        let mut b = DdgBuilder::default();
        let i = b.node(Opcode::Add);
        let n = b.node(Opcode::Add);
        b.flow(i, n);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let ctx = mk_ctx(&ddg, &an, &pg, 2);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, i, PgNodeId(0));
        let _ = rt.take_counters();
        // dist(0, 3) = 3 on the reach-1 ring of 6 > max_hops(0) + 2.
        assert!(!statically_routable(&ctx, &rt, &st, n, PgNodeId(3), 0));
        assert!(try_route_clone(&ctx, &rt, &st, n, PgNodeId(3), 0).is_none());
        let (bfs, hits) = rt.take_counters();
        assert_eq!(bfs, 0, "the doomed trial must not reach the search");
        assert!(hits > 0, "the table must have answered");
    }

    #[test]
    fn routes_result_to_consumers() {
        let rcp = Rcp::new(4, 1, 2, |_| true);
        let pg = Pg::from_rcp(&rcp);
        let rt = RouteTable::build(&pg);
        let mut b = DdgBuilder::default();
        let n = b.node(Opcode::Add);
        let s = b.node(Opcode::Add);
        b.flow(n, s);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let ctx = mk_ctx(&ddg, &an, &pg, 2);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, s, PgNodeId(2));
        let routed = try_route_clone(&ctx, &rt, &st, n, PgNodeId(0), 3).unwrap();
        assert_eq!(routed.routed_hops, 1);
        assert!(routed.total_copies >= 2); // two hops carry the value
    }
}
