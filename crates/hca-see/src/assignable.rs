//! The `isAssignable` interface (paper §3).
//!
//! "For each node c of the PG, SEE checks if the current node n is
//! Assignable to c, by taking into account the resource consumption and the
//! availability of communication patterns."
//!
//! The implementation mirrors the paper's example policy: a cluster is a
//! valid candidate only when every already-assigned neighbour can reach it
//! *directly* over a potential pattern without violating the MUX input
//! budgets; the escape hatch for over-constrained situations is the Route
//! Allocator (the no-candidates action), not this check.

use crate::state::{PartialState, SeeContext};
use hca_ddg::NodeId;
use hca_pg::PgNodeId;
use smallvec::SmallVec;

/// The parts of the `isAssignable` query that depend only on `(state, n)`,
/// not on the candidate cluster. The engine probes every cluster of the PG
/// against the same state, so walking the DDG's pred/succ edges and reading
/// `cluster_of` once per state — instead of once per (state, candidate) —
/// takes the O(clusters · degree) edge traffic out of the hottest loop.
pub struct NodeView {
    /// `(producer cluster, value)` for each assigned non-const operand edge,
    /// in DDG edge order.
    producers: SmallVec<[(PgNodeId, NodeId); 4]>,
    /// Consumer cluster for each assigned real-cluster result edge (empty
    /// for constants — they are replicated at configuration time), in DDG
    /// edge order.
    consumers: SmallVec<[PgNodeId; 4]>,
}

/// Collect the candidate-independent operand/result placements of `n` in
/// `st` (see [`NodeView`]).
pub fn node_view(ctx: &SeeContext<'_>, st: &PartialState, n: NodeId) -> NodeView {
    let mut view = NodeView {
        producers: SmallVec::new(),
        consumers: SmallVec::new(),
    };
    for (_, e) in ctx.ddg.pred_edges(n) {
        if ctx.ddg.node(e.src).op == hca_ddg::Opcode::Const {
            continue; // constants are preloaded, not transported
        }
        if let Some(cp) = st.cluster_of(e.src) {
            view.producers.push((cp, e.src));
        }
    }
    if ctx.ddg.node(n).op != hca_ddg::Opcode::Const {
        for (_, e) in ctx.ddg.succ_edges(n) {
            if e.dst == n {
                continue;
            }
            let Some(cs) = st.cluster_of(e.dst) else {
                continue;
            };
            if ctx.pg.node(cs).kind.is_cluster() {
                view.consumers.push(cs);
            }
        }
    }
    view
}

/// Can `n` be assigned to `c` in state `st` without breaking resources or
/// reconfiguration constraints?
pub fn is_assignable(ctx: &SeeContext<'_>, st: &PartialState, n: NodeId, c: PgNodeId) -> bool {
    is_assignable_from(ctx, st, &node_view(ctx, st, n), n, c)
}

/// [`is_assignable`] against a prebuilt [`NodeView`] of the same `(st, n)` —
/// the engine's per-candidate entry point.
pub fn is_assignable_from(
    ctx: &SeeContext<'_>,
    st: &PartialState,
    view: &NodeView,
    n: NodeId,
    c: PgNodeId,
) -> bool {
    let pg = ctx.pg;
    let node = pg.node(c);
    // (i) The target must be a real cluster able to execute the opcode —
    // e.g. RCP clusters without an address generator reject memory ops.
    if !node.kind.is_cluster() || !node.rt.can_execute(ctx.ddg.node(n).op) {
        return false;
    }

    let max_in = ctx.constraints.max_in_neighbors as usize;

    // (ii) Operand availability: every assigned producer must reach c
    // directly; count the *new* in-neighbours and values this would add.
    let mut new_in_c: SmallVec<[PgNodeId; 4]> = SmallVec::new();
    let mut new_values_to_c = 0u32;
    for &(cp, src) in &view.producers {
        if cp == c {
            continue;
        }
        if !ctx.statics.is_potential(cp, c) {
            return false;
        }
        let on_arc = st.copies.get(&(cp, c));
        if on_arc.map_or(true, |vs| vs.is_empty())
            && !st.in_neighbors.contains(c.index(), cp)
            && !new_in_c.contains(&cp)
        {
            new_in_c.push(cp);
        }
        if !on_arc.is_some_and(|vs| vs.contains(&src)) {
            new_values_to_c += 1;
        }
    }
    if st.in_neighbors.len(c.index()) + new_in_c.len() > max_in {
        return false;
    }

    // (iii) Result availability: every assigned consumer's cluster must be
    // reachable from c, with a spare input port where the arc is new.
    let mut new_out: SmallVec<[PgNodeId; 4]> = SmallVec::new();
    for &cs in &view.consumers {
        if cs == c {
            continue;
        }
        if !ctx.statics.is_potential(c, cs) {
            return false;
        }
        if !st.in_neighbors.contains(cs.index(), c) {
            if st.in_neighbors.len(cs.index()) + 1 > max_in {
                return false;
            }
            if !new_out.contains(&cs) {
                new_out.push(cs);
            }
        }
    }

    // (iv) Optional out-neighbour budget (unlimited on DSPFabric: broadcast).
    if let Some(limit) = ctx.constraints.max_out_neighbors {
        let outs = st.out_neighbors.len(c.index())
            + new_out
                .iter()
                .filter(|&&d| !st.out_neighbors.contains(c.index(), d))
                .count();
        if outs > limit as usize {
            return false;
        }
    }

    // (v) Output special nodes listing n's value: unary fan-in
    // (`outNode_MaxIn`) — the wire can be fed by c only if every value
    // already on it comes from c too (Figure 10c forces co-location).
    for &o in ctx.statics.outputs_carrying(n) {
        let would_be =
            st.in_neighbors.len(o.index()) + usize::from(!st.in_neighbors.contains(o.index(), c));
        if would_be > ctx.constraints.out_node_max_in as usize {
            return false;
        }
    }

    // (vi) Optional issue-pressure ceiling: the op itself plus the receives
    // it forces on c must stay under `cap · issue_slots`.
    if let Some(cap) = ctx.issue_cap {
        let budget = cap.saturating_mul(node.rt.issue);
        if st.issue_load[c.index()] + 1 + new_values_to_c > budget {
            return false;
        }
    }

    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostWeights;
    use hca_arch::{Rcp, ResourceTable};
    use hca_ddg::{Ddg, DdgAnalysis, DdgBuilder, Opcode};
    use hca_pg::{ArchConstraints, Ili, IliWire, Pg};

    fn mk_ctx<'a>(ddg: &'a Ddg, an: &'a DdgAnalysis, pg: &'a Pg, max_in: u32) -> SeeContext<'a> {
        SeeContext {
            ddg,
            analysis: an,
            pg,
            constraints: ArchConstraints {
                max_in_neighbors: max_in,
                max_out_neighbors: None,
                out_node_max_in: 1,
                copy_latency: 1,
            },
            weights: CostWeights::default(),
            issue_cap: None,
            statics: crate::statics::PgStatics::build(pg),
        }
    }

    #[test]
    fn rejects_special_nodes_and_missing_resources() {
        let mut b = DdgBuilder::default();
        let ld = b.node(Opcode::Load);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        // RCP: odd clusters have no AG.
        let rcp = Rcp::figure1();
        let pg = Pg::from_rcp(&rcp);
        let ctx = mk_ctx(&ddg, &an, &pg, 2);
        let st = PartialState::initial(&ctx, &[]);
        assert!(is_assignable(&ctx, &st, ld, PgNodeId(0)));
        assert!(!is_assignable(&ctx, &st, ld, PgNodeId(1))); // no AG
    }

    #[test]
    fn figure6_no_candidates_scenario() {
        // Figure 6a in spirit: every cluster's input budget is exhausted by
        // already-instantiated connections (C_k listens to C_{k+2}), and the
        // new node n has operands on C0 and C1 — so every candidate would
        // need an input arc that no cluster can still afford.
        let mut b = DdgBuilder::default();
        let senders: Vec<_> = (0..4).map(|_| b.node(Opcode::Add)).collect();
        let receivers: Vec<_> = (0..4).map(|_| b.node(Opcode::Add)).collect();
        for k in 0..4 {
            b.flow(senders[k], receivers[k]);
        }
        let n = b.node(Opcode::Add);
        b.flow(receivers[0], n); // operand i on C0
        b.flow(receivers[1], n); // operand j on C1
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(4, ResourceTable::of_cns(4));
        let ctx = mk_ctx(&ddg, &an, &pg, 1);
        let mut st = PartialState::initial(&ctx, &[]);
        for k in 0..4u32 {
            st.apply_assign(&ctx, senders[k as usize], PgNodeId((k + 2) % 4));
            st.apply_assign(&ctx, receivers[k as usize], PgNodeId(k));
        }
        // Each cluster now listens to exactly one source: its port is full.
        for k in 0..4 {
            assert_eq!(st.in_neighbors.len(k), 1);
        }
        for c in pg.cluster_ids() {
            assert!(!is_assignable(&ctx, &st, n, c), "cluster {c}");
        }
    }

    #[test]
    fn existing_arc_does_not_consume_new_port() {
        let mut b = DdgBuilder::default();
        let p = b.node(Opcode::Add);
        let q1 = b.node(Opcode::Add);
        let q2 = b.node(Opcode::Add);
        b.flow(p, q1);
        b.flow(p, q2);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(2, ResourceTable::of_cns(4));
        let ctx = mk_ctx(&ddg, &an, &pg, 1);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, p, PgNodeId(0));
        st.apply_assign(&ctx, q1, PgNodeId(1));
        // Arc 0→1 is already real; q2 re-uses it.
        assert!(is_assignable(&ctx, &st, q2, PgNodeId(1)));
    }

    #[test]
    fn successor_port_budget_checked() {
        let mut b = DdgBuilder::default();
        let a = b.node(Opcode::Add);
        let z = b.node(Opcode::Add);
        let n = b.node(Opcode::Add);
        b.flow(a, z);
        b.flow(n, z);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(3, ResourceTable::of_cns(4));
        let ctx = mk_ctx(&ddg, &an, &pg, 1);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, a, PgNodeId(0));
        st.apply_assign(&ctx, z, PgNodeId(1)); // consumes 1's only port for 0
                                               // Assigning n to cluster 2 would need a second in-neighbour on 1.
        assert!(!is_assignable(&ctx, &st, n, PgNodeId(2)));
        // Assigning n next to z is fine (no copy at all)…
        assert!(is_assignable(&ctx, &st, n, PgNodeId(1)));
        // …and so is joining the producer cluster 0 (arc 0→1 already real).
        assert!(is_assignable(&ctx, &st, n, PgNodeId(0)));
    }

    #[test]
    fn out_node_unary_fanin_blocks_second_cluster() {
        let mut b = DdgBuilder::default();
        let k = b.node(Opcode::Add);
        let h = b.node(Opcode::Add);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let mut pg = Pg::complete(2, ResourceTable::of_cns(4));
        pg.attach_ili(&Ili {
            inputs: vec![],
            outputs: vec![IliWire::new(vec![k, h])],
        });
        let ctx = mk_ctx(&ddg, &an, &pg, 4);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, k, PgNodeId(0));
        // h must co-locate with k (Figure 10c).
        assert!(is_assignable(&ctx, &st, h, PgNodeId(0)));
        assert!(!is_assignable(&ctx, &st, h, PgNodeId(1)));
    }

    #[test]
    fn issue_cap_limits_pile_up() {
        let mut b = DdgBuilder::default();
        let xs: Vec<_> = (0..3).map(|_| b.node(Opcode::Add)).collect();
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(2, ResourceTable::of_cns(1));
        let mut ctx = mk_ctx(&ddg, &an, &pg, 4);
        ctx.issue_cap = Some(2);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, xs[0], PgNodeId(0));
        st.apply_assign(&ctx, xs[1], PgNodeId(0));
        assert!(!is_assignable(&ctx, &st, xs[2], PgNodeId(0)));
        assert!(is_assignable(&ctx, &st, xs[2], PgNodeId(1)));
    }

    #[test]
    fn max_out_neighbors_enforced_when_set() {
        let mut b = DdgBuilder::default();
        let p = b.node(Opcode::Add);
        let q1 = b.node(Opcode::Add);
        let q2 = b.node(Opcode::Add);
        b.flow(p, q1);
        b.flow(p, q2);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(3, ResourceTable::of_cns(4));
        let mut ctx = mk_ctx(&ddg, &an, &pg, 4);
        ctx.constraints.max_out_neighbors = Some(1);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, q1, PgNodeId(1));
        st.apply_assign(&ctx, q2, PgNodeId(2));
        // p on cluster 0 would need two out-neighbours.
        assert!(!is_assignable(&ctx, &st, p, PgNodeId(0)));
        assert!(is_assignable(&ctx, &st, p, PgNodeId(1)));
    }
}
