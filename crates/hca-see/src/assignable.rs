//! The `isAssignable` interface (paper §3).
//!
//! "For each node c of the PG, SEE checks if the current node n is
//! Assignable to c, by taking into account the resource consumption and the
//! availability of communication patterns."
//!
//! The implementation mirrors the paper's example policy: a cluster is a
//! valid candidate only when every already-assigned neighbour can reach it
//! *directly* over a potential pattern without violating the MUX input
//! budgets; the escape hatch for over-constrained situations is the Route
//! Allocator (the no-candidates action), not this check.
//!
//! The query is split in two. [`node_view`] folds everything that depends
//! only on `(state, n)` — not on the candidate — into a *candidate bitmask*
//! (one `u64` word block over PG node ids): executability of the opcode,
//! reachability from every assigned producer, reachability to every assigned
//! consumer, and the output-wire co-location rule are each one bulk AND of
//! precomputed rows. [`assignable_dynamic`] then checks only the genuinely
//! per-candidate arithmetic (port counting, issue pressure) for the
//! candidates that survive the mask.

use crate::filters::{CandList, LaneStats};
use crate::state::{PartialState, SeeContext};
use hca_ddg::NodeId;
use hca_pg::PgNodeId;
use smallvec::SmallVec;

/// The parts of the `isAssignable` query that depend only on `(state, n)`,
/// not on the candidate cluster. The engine probes every cluster of the PG
/// against the same state, so walking the DDG's pred/succ edges and reading
/// `cluster_of` once per state — instead of once per (state, candidate) —
/// takes the O(clusters · degree) edge traffic out of the hottest loop, and
/// the candidate bitmask removes the per-candidate reachability probes too.
pub struct NodeView {
    /// One entry per assigned non-const operand edge, in DDG edge order,
    /// carrying everything the per-candidate copy bookkeeping needs: the
    /// producer's cluster, the travelling value, and the edge's slack and
    /// recurrence flags (candidate-independent, so computed once here
    /// instead of once per cluster probe).
    producers: SmallVec<[ProducerEdge; 4]>,
    /// One entry per assigned real-cluster result edge (empty for constants
    /// — they are replicated at configuration time), in DDG edge order.
    consumers: SmallVec<[ConsumerEdge; 4]>,
    /// Candidate bitmask over PG node ids: bit `c` survives iff `c` passes
    /// every candidate-independent check (executability, producer/consumer
    /// reachability, output co-location). Always a subset of the cluster
    /// ids, so iterating its set bits visits candidates in ascending order.
    mask: SmallVec<[u64; 4]>,
    /// Producer-side aggregates for the scorer's fast path (`None` when two
    /// producers carry the same value over the same arc, which would make
    /// the trial's dedup observable). See [`score_if_assignable`].
    fast: Option<ProdFast>,
}

/// Candidate-independent producer totals: when a candidate has no existing
/// traffic from any producer cluster, every operand induces exactly one
/// fresh copy, so the trial's whole producer pass reduces to these numbers.
struct ProdFast {
    /// Distinct producer clusters with their multiplicities, in first-seen
    /// (DDG edge) order.
    distinct: SmallVec<[(PgNodeId, u32); 4]>,
    /// One entry per producer edge, in DDG edge order: the index of its
    /// cluster in `distinct` (= its arc group), the travelling value and
    /// the recurrence flag — the batched gather's per-candidate
    /// created/position probes read these.
    edges: SmallVec<[(u8, NodeId, bool); 4]>,
    /// Critical-path term of each producer edge's copy
    /// (`(lat / (1 + slack)).min(lat)`), in edge order — the same terms the
    /// `critical` fold consumed, kept for the batched flush's per-lane
    /// masked fold.
    crit_terms: SmallVec<[f64; 4]>,
    /// Largest multiplicity — the arc position count (`mii_arc`) a fresh
    /// arc would reach.
    max_group: u32,
    /// Number of producers (= copies created on the fast path).
    copies: u32,
    /// How many of those copies sit inside a recurrence.
    recurrence: u32,
    /// `st.critical_penalty` folded with every producer's latency term in
    /// edge order — the exact value the trial's sequential `+=` reaches,
    /// precomputed once per view instead of once per candidate.
    critical: f64,
}

/// Candidate-independent context of one assigned operand edge.
#[derive(Clone, Copy)]
pub(crate) struct ProducerEdge {
    /// Cluster holding the producer.
    pub cluster: PgNodeId,
    /// The value that would travel (the producer DDG node).
    pub value: NodeId,
    /// [`crate::state::edge_slack`] of the DDG edge.
    pub slack: u32,
    /// Copy would sit inside a recurrence SCC (and the producer is a real
    /// cluster) — exactly the `rec` flag `apply_assign_logged` computes.
    pub recurrence: bool,
}

/// Candidate-independent context of one assigned result edge.
#[derive(Clone, Copy)]
pub(crate) struct ConsumerEdge {
    /// Cluster holding the consumer.
    pub cluster: PgNodeId,
    /// [`crate::state::edge_slack`] of the DDG edge.
    pub slack: u32,
    /// Copy would sit inside a recurrence SCC.
    pub recurrence: bool,
}

impl NodeView {
    /// Does candidate `c` survive the static mask?
    #[inline]
    pub fn allows(&self, c: PgNodeId) -> bool {
        let bit = c.index();
        self.mask[bit / 64] & (1u64 << (bit % 64)) != 0
    }

    /// Surviving candidates, in ascending cluster-id order (the same order
    /// the engine used to probe `cluster_ids()` in).
    pub fn candidates(&self) -> impl Iterator<Item = PgNodeId> + '_ {
        self.mask.iter().enumerate().flat_map(|(wi, &w)| {
            let base = (wi * 64) as u32;
            std::iter::successors((w != 0).then_some(w), |&rest| {
                let rest = rest & (rest - 1);
                (rest != 0).then_some(rest)
            })
            .map(move |w| PgNodeId(base + w.trailing_zeros()))
        })
    }
}

/// AND `row | extra_bit` into `mask` — "candidate c is fine if the row
/// allows it, or if c *is* the node itself" (a producer/consumer on c needs
/// no arc at all).
#[inline]
fn and_row_with_self(mask: &mut [u64], row: &[u64], this: PgNodeId) {
    let bit = this.index();
    for (wi, (m, &r)) in mask.iter_mut().zip(row).enumerate() {
        let own = if bit / 64 == wi {
            1u64 << (bit % 64)
        } else {
            0
        };
        *m &= r | own;
    }
}

/// Collect the candidate-independent operand/result placements of `n` in
/// `st` and fold them into the candidate bitmask (see [`NodeView`]).
pub fn node_view(ctx: &SeeContext<'_>, st: &PartialState, n: NodeId) -> NodeView {
    // (i) Executability: real cluster, issue slots, the opcode's resource
    // class present — all static per PG, precomputed as one mask row.
    let mut mask: SmallVec<[u64; 4]> = ctx
        .statics
        .exec_mask(ctx.ddg.node(n).op.resource_class())
        .iter()
        .copied()
        .collect();
    let mut view = NodeView {
        producers: SmallVec::new(),
        consumers: SmallVec::new(),
        mask: SmallVec::new(),
        fast: None,
    };
    let scc = &ctx.analysis.scc;
    for (_, e) in ctx.ddg.pred_edges(n) {
        if ctx.ddg.node(e.src).op == hca_ddg::Opcode::Const {
            continue; // constants are preloaded, not transported
        }
        if let Some(cp) = st.cluster_of(e.src) {
            // (ii, static part) every assigned producer must reach the
            // candidate directly — or already live on it.
            and_row_with_self(&mut mask, ctx.statics.potential_row_words(cp), cp);
            view.producers.push(ProducerEdge {
                cluster: cp,
                value: e.src,
                slack: crate::state::edge_slack(ctx, e),
                recurrence: scc[e.src.index()] == scc[e.dst.index()]
                    && ctx.pg.node(cp).kind.is_cluster(),
            });
        }
    }
    if ctx.ddg.node(n).op != hca_ddg::Opcode::Const {
        for (_, e) in ctx.ddg.succ_edges(n) {
            if e.dst == n {
                continue;
            }
            let Some(cs) = st.cluster_of(e.dst) else {
                continue;
            };
            if ctx.pg.node(cs).kind.is_cluster() {
                // (iii, static part) the candidate must reach every assigned
                // consumer — or be that consumer's cluster.
                and_row_with_self(&mut mask, ctx.statics.potential_in_row_words(cs), cs);
                view.consumers.push(ConsumerEdge {
                    cluster: cs,
                    slack: crate::state::edge_slack(ctx, e),
                    recurrence: scc[e.src.index()] == scc[e.dst.index()],
                });
            }
        }
    }
    // (v) Output special nodes listing n's value: unary fan-in
    // (`outNode_MaxIn`) — the wire can be fed by c only if every value
    // already on it comes from c too (Figure 10c forces co-location).
    for &o in ctx.statics.outputs_carrying(n) {
        let len = st.in_neighbors.len(o.index());
        let cap = ctx.constraints.out_node_max_in as usize;
        if len > cap {
            // Already over budget: no candidate can feed this wire.
            mask.iter_mut().for_each(|w| *w = 0);
        } else if len == cap {
            // Budget exhausted: only the wire's existing feeders survive.
            for (m, &r) in mask.iter_mut().zip(st.in_neighbors.row_words(o.index())) {
                *m &= r;
            }
        }
        // len < cap: one more feeder always fits — no constraint.
    }
    view.mask = mask;
    view.fast = prod_fast(ctx, st, &view.producers);
    view
}

/// Fold the producer edges into [`ProdFast`] aggregates, or `None` when two
/// producers would push the same `(cluster, value)` pair (the one case
/// where the trial's arc-level dedup changes the outcome).
fn prod_fast(
    ctx: &SeeContext<'_>,
    st: &PartialState,
    producers: &[ProducerEdge],
) -> Option<ProdFast> {
    let mut f = ProdFast {
        distinct: SmallVec::new(),
        edges: SmallVec::new(),
        crit_terms: SmallVec::new(),
        max_group: 0,
        copies: producers.len() as u32,
        recurrence: 0,
        critical: st.critical_penalty,
    };
    let lat = f64::from(ctx.constraints.copy_latency);
    for (idx, p) in producers.iter().enumerate() {
        if producers[..idx]
            .iter()
            .any(|q| q.cluster == p.cluster && q.value == p.value)
        {
            return None;
        }
        let group = match f.distinct.iter().position(|&(cp, _)| cp == p.cluster) {
            Some(g) => {
                f.distinct[g].1 += 1;
                g
            }
            None => {
                f.distinct.push((p.cluster, 1));
                f.distinct.len() - 1
            }
        };
        f.edges.push((group as u8, p.value, p.recurrence));
        if p.recurrence {
            f.recurrence += 1;
        }
        let room = f64::from(p.slack);
        let term = (lat / (1.0 + room)).min(lat);
        f.crit_terms.push(term);
        f.critical += term;
    }
    f.max_group = f.distinct.iter().map(|&(_, g)| g).max().unwrap_or(0);
    Some(f)
}

/// Can `n` be assigned to `c` in state `st` without breaking resources or
/// reconfiguration constraints?
pub fn is_assignable(ctx: &SeeContext<'_>, st: &PartialState, n: NodeId, c: PgNodeId) -> bool {
    is_assignable_from(ctx, st, &node_view(ctx, st, n), n, c)
}

/// [`is_assignable`] against a prebuilt [`NodeView`] of the same `(st, n)`:
/// the static candidate mask first, then the per-candidate arithmetic.
pub fn is_assignable_from(
    ctx: &SeeContext<'_>,
    st: &PartialState,
    view: &NodeView,
    n: NodeId,
    c: PgNodeId,
) -> bool {
    view.allows(c) && assignable_dynamic(ctx, st, view, n, c)
}

/// The per-candidate half of `isAssignable`: port counting and issue
/// pressure, for a candidate that already survived [`NodeView::allows`]
/// (which covers executability, reachability and output co-location).
pub fn assignable_dynamic(
    ctx: &SeeContext<'_>,
    st: &PartialState,
    view: &NodeView,
    _n: NodeId,
    c: PgNodeId,
) -> bool {
    let max_in = ctx.constraints.max_in_neighbors as usize;

    // (ii) Operand availability: count the *new* in-neighbours and values
    // assigning here would add to c.
    let mut new_in_c: SmallVec<[PgNodeId; 4]> = SmallVec::new();
    let mut new_values_to_c = 0u32;
    for p in &view.producers {
        let (cp, src) = (p.cluster, p.value);
        if cp == c {
            continue;
        }
        if st.copies.is_empty(cp, c)
            && !st.in_neighbors.contains(c.index(), cp)
            && !new_in_c.contains(&cp)
        {
            new_in_c.push(cp);
        }
        if !st.copies.contains(cp, c, src) {
            new_values_to_c += 1;
        }
    }
    if st.in_neighbors.len(c.index()) + new_in_c.len() > max_in {
        return false;
    }

    // (iii) Result availability: every assigned consumer's cluster needs a
    // spare input port where the arc is new.
    let mut new_out: SmallVec<[PgNodeId; 4]> = SmallVec::new();
    for s in &view.consumers {
        let cs = s.cluster;
        if cs == c {
            continue;
        }
        if !st.in_neighbors.contains(cs.index(), c) {
            if st.in_neighbors.len(cs.index()) + 1 > max_in {
                return false;
            }
            if !new_out.contains(&cs) {
                new_out.push(cs);
            }
        }
    }

    // (iv) Optional out-neighbour budget (unlimited on DSPFabric: broadcast).
    if let Some(limit) = ctx.constraints.max_out_neighbors {
        let outs = st.out_neighbors.len(c.index())
            + new_out
                .iter()
                .filter(|&&d| !st.out_neighbors.contains(c.index(), d))
                .count();
        if outs > limit as usize {
            return false;
        }
    }

    // (vi) Optional issue-pressure ceiling: the op itself plus the receives
    // it forces on c must stay under `cap · issue_slots`.
    if let Some(cap) = ctx.issue_cap {
        let budget = cap.saturating_mul(ctx.pg.node(c).rt.issue);
        if st.loads.issue(c.index()) + 1 + new_values_to_c > budget {
            return false;
        }
    }

    true
}

/// Trial-local aggregate accumulator behind [`score_assign`]: the objective
/// inputs a hypothetical assignment would produce, tracked in locals so the
/// state itself is never touched. Every floating-point operation replays the
/// exact sequence `apply_assign_logged` would execute (same operands, same
/// order), which is what makes the score bit-identical to apply-read-undo.
struct ScoreTrial {
    total_copies: u32,
    recurrence_copies: u32,
    critical_penalty: f64,
    mii_issue: u32,
    mii_arc: u32,
    util_sq_sum: f64,
    /// Issue loads of the clusters this trial has charged, `(node index,
    /// load)` — seeded lazily from the state on first touch.
    issue: SmallVec<[(u32, u32); 4]>,
    /// Copies this trial has created, `(src, dst, value)` in creation
    /// order — the dedup and position context `ArcVals::push` would have.
    added: SmallVec<[(PgNodeId, PgNodeId, NodeId); 8]>,
}

impl ScoreTrial {
    /// Mirror of [`PartialState::charge_issue`] over trial-local loads.
    fn charge_issue(&mut self, ctx: &SeeContext<'_>, st: &PartialState, c: PgNodeId, slots: u32) {
        let i = c.index();
        let rt = ctx.pg.node(c).rt;
        let slot = self.issue.iter().position(|&(ci, _)| ci == i as u32);
        let old = match slot {
            Some(s) => self.issue[s].1,
            None => st.loads.issue(i),
        };
        let new = old + slots;
        match slot {
            Some(s) => self.issue[s].1 = new,
            None => self.issue.push((i as u32, new)),
        }
        if rt.issue > 0 {
            self.mii_issue = self.mii_issue.max(new.div_ceil(rt.issue));
            let denom = f64::from(rt.issue);
            let ou = f64::from(old) / denom;
            let nu = f64::from(new) / denom;
            self.util_sq_sum += nu * nu - ou * ou;
        }
    }

    /// Mirror of `PartialState::add_copy_logged`, minus the structural
    /// bookkeeping (signature, neighbour sets, receive counters) that the
    /// objective never reads. Returns whether the value is absent from the
    /// arc *in the underlying state* — the quantity the issue-cap screen
    /// counts (deliberately ignoring trial-local dedup, exactly like
    /// `assignable_dynamic`'s `new_values_to_c` probe against `st`).
    fn add_copy(
        &mut self,
        ctx: &SeeContext<'_>,
        st: &PartialState,
        v: NodeId,
        src: PgNodeId,
        dst: PgNodeId,
        via_edge_slack: Option<u32>,
        in_recurrence: bool,
    ) -> bool {
        if st.copies.contains(src, dst, v) {
            return false; // already present: apply would have been a no-op
        }
        if self
            .added
            .iter()
            .any(|&(a, b, x)| a == src && b == dst && x == v)
        {
            return true; // new to the state, but this trial already added it
        }
        let pos = st.copies.len(src, dst)
            + self
                .added
                .iter()
                .filter(|&&(a, b, _)| a == src && b == dst)
                .count();
        self.added.push((src, dst, v));
        self.mii_arc = self.mii_arc.max(pos as u32 + 1);
        self.total_copies += 1;
        if ctx.pg.node(dst).kind.is_cluster() {
            self.charge_issue(ctx, st, dst, 1);
        }
        if in_recurrence {
            self.recurrence_copies += 1;
        }
        if let Some(slack) = via_edge_slack {
            let lat = f64::from(ctx.constraints.copy_latency);
            let room = f64::from(slack);
            self.critical_penalty += (lat / (1.0 + room)).min(lat);
        }
        true
    }
}

/// Fused dynamic screen + mutation-free scorer: the objective `n @ c`
/// would score in `st`, or `None` when `c` fails the per-candidate
/// screens — exactly the conditions [`assignable_dynamic`] checks. One
/// pass over the view's edges serves both: the port/budget counting and
/// the trial's copy bookkeeping share the producer/consumer iteration and
/// the copy-table probes, which is what the old
/// screen-then-apply-read-undo sequence paid for twice.
///
/// The accept/reject decision is bit-identical to `assignable_dynamic`
/// and the returned score is bit-identical to
/// `apply_assign_logged` + `cost` + `undo_assign`: the trial replays the
/// aggregate updates of `place` + every induced copy against trial-local
/// accumulators (same operations, same order). The engine asserts both
/// equivalences in debug builds. The caller must have screened `c`
/// through [`NodeView::allows`] first.
pub fn score_if_assignable(
    ctx: &SeeContext<'_>,
    st: &PartialState,
    view: &NodeView,
    n: NodeId,
    c: PgNodeId,
) -> Option<f64> {
    let max_in = ctx.constraints.max_in_neighbors as usize;
    let inputs = st.cost_inputs();
    let mut t = ScoreTrial {
        total_copies: inputs.total_copies,
        recurrence_copies: inputs.recurrence_copies,
        critical_penalty: inputs.critical_penalty,
        mii_issue: inputs.mii_issue,
        mii_arc: inputs.mii_arc,
        util_sq_sum: inputs.util_sq_sum,
        issue: SmallVec::new(),
        added: SmallVec::new(),
    };
    // `place`: one issue slot plus the class-specific op counter.
    t.charge_issue(ctx, st, c, 1);
    let i = c.index();
    let rt = ctx.pg.node(c).rt;
    match ctx.ddg.node(n).op.resource_class() {
        hca_ddg::ResourceClass::Alu => {
            let ops = st.loads.alu(i) + 1;
            if rt.alu > 0 {
                t.mii_issue = t.mii_issue.max(ops.div_ceil(rt.alu));
            }
        }
        hca_ddg::ResourceClass::AddrGen => {
            let ops = st.loads.ag(i) + 1;
            if rt.addr_gen > 0 {
                t.mii_issue = t.mii_issue.max(ops.div_ceil(rt.addr_gen));
            } else {
                t.mii_issue = u32::MAX; // AG work on an AG-less cluster
            }
        }
        hca_ddg::ResourceClass::Receive => {}
    }
    // (ii) Operand availability + operand copy bookkeeping, one pass: count
    // the *new* in-neighbours assigning here would add to c while recording
    // the copies the operands induce. Early rejects are safe mid-trial —
    // nothing was mutated, the trial is all locals.
    //
    // Fast path: when no producer sits on `c` and every producer arc into
    // `c` is still empty, every operand induces exactly one fresh copy at
    // position 0..group-1 of its arc, so the whole pass collapses to the
    // view's precomputed [`ProdFast`] totals — only the issue charges (whose
    // floats depend on `c`'s current load) are replayed. The slow loop below
    // stays the reference semantics for the leftover cases.
    let mut new_values_to_c = 0u32;
    let mut fast_done = false;
    if let Some(f) = &view.fast {
        let mut clean = true;
        let mut new_in = 0usize;
        for &(cp, _) in &f.distinct {
            if cp == c || !st.copies.is_empty(cp, c) {
                clean = false;
                break;
            }
            if !st.in_neighbors.contains(i, cp) {
                new_in += 1;
            }
        }
        if clean {
            fast_done = true;
            if st.in_neighbors.len(i) + new_in > max_in {
                return None;
            }
            for _ in 0..f.copies {
                t.charge_issue(ctx, st, c, 1);
            }
            t.mii_arc = t.mii_arc.max(f.max_group);
            t.total_copies += f.copies;
            t.recurrence_copies += f.recurrence;
            t.critical_penalty = f.critical;
            new_values_to_c = f.copies;
        }
    }
    if !fast_done {
        let mut new_in_c: SmallVec<[PgNodeId; 4]> = SmallVec::new();
        for p in &view.producers {
            let cp = p.cluster;
            if cp == c {
                continue;
            }
            if st.copies.is_empty(cp, c)
                && !st.in_neighbors.contains(c.index(), cp)
                && !new_in_c.contains(&cp)
            {
                new_in_c.push(cp);
            }
            if t.add_copy(ctx, st, p.value, cp, c, Some(p.slack), p.recurrence) {
                new_values_to_c += 1;
            }
        }
        if st.in_neighbors.len(c.index()) + new_in_c.len() > max_in {
            return None;
        }
    }
    // (vi) Optional issue-pressure ceiling: the op itself plus the receives
    // it forces on c.
    if let Some(cap) = ctx.issue_cap {
        let budget = cap.saturating_mul(rt.issue);
        if st.loads.issue(i) + 1 + new_values_to_c > budget {
            return None;
        }
    }
    // (iii) Result availability + result copy bookkeeping: every assigned
    // consumer's cluster needs a spare input port where the arc is new.
    let mut new_out: SmallVec<[PgNodeId; 4]> = SmallVec::new();
    for s in &view.consumers {
        let cs = s.cluster;
        if cs == c {
            continue;
        }
        if !st.in_neighbors.contains(cs.index(), c) {
            if st.in_neighbors.len(cs.index()) + 1 > max_in {
                return None;
            }
            if !new_out.contains(&cs) {
                new_out.push(cs);
            }
        }
        t.add_copy(ctx, st, n, c, cs, Some(s.slack), s.recurrence);
    }
    // (iv) Optional out-neighbour budget (unlimited on DSPFabric).
    if let Some(limit) = ctx.constraints.max_out_neighbors {
        let outs = st.out_neighbors.len(c.index())
            + new_out
                .iter()
                .filter(|&&d| !st.out_neighbors.contains(c.index(), d))
                .count();
        if outs > limit as usize {
            return None;
        }
    }
    // Output wires carry no screens here (the mask folded the fan-in rule).
    for &o in ctx.statics.outputs_carrying(n) {
        t.add_copy(ctx, st, n, c, o, None, false);
    }
    Some(crate::cost::objective_from_parts(
        ctx,
        &crate::cost::CostInputs {
            total_copies: t.total_copies,
            recurrence_copies: t.recurrence_copies,
            critical_penalty: t.critical_penalty,
            routed_hops: inputs.routed_hops,
            mii_issue: t.mii_issue,
            mii_arc: t.mii_arc,
            util_sq_sum: t.util_sq_sum,
            util_clusters: inputs.util_clusters,
        },
    ))
}

/// Lane width of the batched scorer: one candidate per lane, `[f64; LANES]`
/// accumulators. Four `f64` lanes fill one AVX2 register (or two NEON
/// registers), the widths stable Rust autovectorises reliably.
pub const LANES: usize = 4;

/// Candidate-count cutoff below which an expansion skips the batched
/// kernel entirely: with this few survivors of the static mask, the
/// per-node batch setup costs more than the lane fold saves. The built-in
/// default — override per run via [`crate::SeeConfig::scalar_cutoff`] or
/// the `HCA_SCALAR_CUTOFF` environment variable.
pub const SCALAR_CUTOFF: usize = 3;

/// Consumer-side terms of one `(state, node)` expansion, computed **once**
/// and shared by every candidate of the batch. The value each term would
/// add is candidate-independent — a consumer's cluster `cs` is charged at
/// most once per trial, always from the state's load (`cs != c` and
/// duplicate `(c, cs, n)` triples are trial-dups) — only *whether* a given
/// candidate folds the term in varies (the per-lane `created` bit).
struct ConsTerms {
    /// Utilisation increment of charging consumer `j`'s cluster
    /// (`nu² − ou²` over the state's issue load), `0.0` when the cluster
    /// has no issue slots (the scalar charge skips the float too).
    util: SmallVec<[f64; 8]>,
    /// Critical-path increment of consumer `j`'s copy
    /// (`(lat / (1 + slack)).min(lat)`).
    crit: SmallVec<[f64; 8]>,
    /// Issue-MII candidate of charging consumer `j`'s cluster
    /// (`⌈(load + 1) / issue⌉`), `0` when the cluster has no issue slots
    /// (`max` with 0 is the identity the scalar skip produces).
    mii: SmallVec<[u32; 8]>,
    /// Bit `j` set ⇔ consumer `j` is the first in edge order on its
    /// cluster. Later duplicates are trial-dups for *every* candidate —
    /// the predicate never involves `c` — so it hoists out of the gather.
    first: u32,
}

impl ConsTerms {
    fn build(ctx: &SeeContext<'_>, st: &PartialState, view: &NodeView) -> Self {
        let lat = f64::from(ctx.constraints.copy_latency);
        let mut t = ConsTerms {
            util: SmallVec::new(),
            crit: SmallVec::new(),
            mii: SmallVec::new(),
            first: 0,
        };
        for (j, s) in view.consumers.iter().enumerate() {
            let rt = ctx.pg.node(s.cluster).rt;
            let (util, mii) = if rt.issue > 0 {
                let old = st.loads.issue(s.cluster.index());
                let denom = f64::from(rt.issue);
                let ou = f64::from(old) / denom;
                let nu = f64::from(old + 1) / denom;
                (nu * nu - ou * ou, (old + 1).div_ceil(rt.issue))
            } else {
                (0.0, 0)
            };
            let room = f64::from(s.slack);
            t.util.push(util);
            t.crit.push((lat / (1.0 + room)).min(lat));
            t.mii.push(mii);
            if !view.consumers[..j].iter().any(|q| q.cluster == s.cluster) {
                t.first |= 1 << j;
            }
        }
        t
    }
}

/// Struct-of-arrays buffers of one lane batch: everything the float fold
/// reads, written in place by the gather pass as each candidate clears the
/// integer screens. Fixed-width columns keep the flush loops trivially
/// vectorisable and spare the per-candidate struct moves an AoS pending
/// list would pay.
struct LaneBuf {
    /// Gathered candidates so far (`0..=LANES`).
    len: usize,
    c: [PgNodeId; LANES],
    /// `st.loads.issue(c)` as `f64` (`u32 → f64` is exact).
    issue0: [f64; LANES],
    /// `f64::from(rt.issue)`; `1.0` dummy when the lane's charge floats are
    /// inactive, so the lane arithmetic stays finite.
    denom: [f64; LANES],
    /// `1.0` when `rt.issue > 0` (charge floats active), else `0.0`. Masked
    /// clusters always have issue slots, so this is defensive.
    active: [f64; LANES],
    /// Producer copies this candidate creates (operand values absent from
    /// their arc into the lane's cluster). Bounds the lane's charge fold:
    /// charges `0..=pcopies` are live, later ones masked out.
    pcopies: [u32; LANES],
    /// Bit `j` set ⇔ producer edge `j`'s copy is created by this candidate
    /// (the value is absent from its arc and the producer is off-cluster).
    pcreated: [u32; LANES],
    mii_issue: [u32; LANES],
    mii_arc: [u32; LANES],
    total_copies: [u32; LANES],
    recurrence_copies: [u32; LANES],
    /// Bit `j` set ⇔ consumer `j`'s copy is created by this candidate.
    created: [u32; LANES],
}

impl LaneBuf {
    fn new() -> Self {
        LaneBuf {
            len: 0,
            c: [PgNodeId(0); LANES],
            issue0: [0.0; LANES],
            denom: [1.0; LANES],
            active: [0.0; LANES],
            pcopies: [0; LANES],
            pcreated: [0; LANES],
            mii_issue: [0; LANES],
            mii_arc: [0; LANES],
            total_copies: [0; LANES],
            recurrence_copies: [0; LANES],
            created: [0; LANES],
        }
    }
}

/// Outcome of the gather pass for one candidate.
enum Gathered {
    /// All integer screens passed; the candidate occupies the next lane.
    Lane,
    /// An integer screen failed — `score_if_assignable` would return `None`.
    /// Rejected before the candidate occupies a lane.
    Rejected,
}

/// Candidate-independent context of one `(state, node)` batch, hoisted out
/// of the per-candidate gather: the producer aggregate, the consumer
/// terms, the output-wire list, the state's cost inputs, the dense arc-id
/// row of every distinct producer cluster, and the node's resource class.
struct NodeBatch<'a> {
    f: &'a ProdFast,
    /// Built lazily by the first gather that clears the producer screen:
    /// mid-search, many nodes bail every candidate at the port screens, and
    /// the consumer divisions would be pure waste there.
    cons: Option<ConsTerms>,
    outs: &'a [PgNodeId],
    inputs: crate::cost::CostInputs,
    /// `ids_row(cp)` of each entry of `f.distinct`, sliced once per node.
    prod_rows: SmallVec<[&'a [u32]; 4]>,
    /// `pcreated` of a clean candidate: every producer edge creates.
    full_pmask: u32,
    class: hca_ddg::ResourceClass,
    max_in: usize,
    n: NodeId,
}

impl NodeBatch<'_> {
    /// Gather pass of the batched scorer: replay every *integer* decision
    /// of [`score_if_assignable`] for candidate `c` — the port/budget
    /// screens (whose reject set must match [`assignable_dynamic`] exactly)
    /// and the order-insensitive integer aggregates (copy counts, arc
    /// positions, issue-MII maxima, the per-producer and per-consumer
    /// `created` predicates) — writing the accepted candidate into `buf`'s
    /// next lane. The only work left for the lane fold is the
    /// order-sensitive float arithmetic.
    fn gather(
        &mut self,
        ctx: &SeeContext<'_>,
        st: &PartialState,
        view: &NodeView,
        c: PgNodeId,
        buf: &mut LaneBuf,
    ) -> Gathered {
        let i = c.index();
        let rt = ctx.pg.node(c).rt;

        // (ii) operand port screen over the distinct producer clusters,
        // exactly the reference loop's `new_in_c` dedup: a cluster counts
        // as a new in-neighbour iff its arc into `c` is empty and the edge
        // is structurally absent. A producer arc into `c` is always
        // potential unless the producer sits *on* `c` (the mask ORs the
        // self bit), so the by-id probes are gated on `cp != c`.
        let mut new_in = 0usize;
        let mut clean = true;
        // Per group: `(arc id, state arc length + created copies so far)`,
        // `u32::MAX` id marking a producer sitting on `c` itself.
        let mut arcs: SmallVec<[(u32, u32); 4]> = SmallVec::new();
        for (&(cp, _), row_p) in self.f.distinct.iter().zip(&self.prod_rows) {
            if cp == c {
                clean = false;
                arcs.push((u32::MAX, 0)); // operand stays local: no copy, no port
                continue;
            }
            let id = row_p[i];
            debug_assert_ne!(id, u32::MAX, "masked candidate without potential arc");
            let len = st.copies.len_by_id(id) as u32;
            clean &= len == 0;
            arcs.push((id, len));
            if len == 0 && !st.in_neighbors.contains(i, cp) {
                new_in += 1;
            }
        }
        if st.in_neighbors.len(i) + new_in > self.max_in {
            return Gathered::Rejected;
        }
        // Per-edge created probes: an operand induces a fresh copy iff its
        // producer is off-cluster and its value is absent from the arc (the
        // trial's `add_copy` against the state — with a [`ProdFast`] view
        // no two producer edges share an `(arc, value)` pair, so state
        // probes and trial dedup coincide). Positions replay `ArcVals`
        // order: the state's length plus the created copies the candidate
        // already put on that arc. *Clean* candidates — every producer
        // off-cluster, every arc empty — skip the probes: all edges create,
        // so the per-edge aggregates collapse to the [`ProdFast`] totals.
        let mut pcopies = self.f.copies;
        let mut pcreated = self.full_pmask;
        let mut precurrence = self.f.recurrence;
        let mut mii_arc = self.inputs.mii_arc.max(self.f.max_group);
        if !clean {
            pcopies = 0;
            pcreated = 0;
            precurrence = 0;
            mii_arc = self.inputs.mii_arc;
            for (j, &(g, v, rec)) in self.f.edges.iter().enumerate() {
                let (id, pos) = &mut arcs[g as usize];
                if *id == u32::MAX {
                    continue; // producer on `c` itself
                }
                if !st.copies.contains_by_id(*id, v) {
                    pcreated |= 1 << j;
                    pcopies += 1;
                    *pos += 1;
                    mii_arc = mii_arc.max(*pos);
                    if rec {
                        precurrence += 1;
                    }
                }
            }
        }
        // (vi) issue-pressure ceiling (`new_values_to_c` = the created
        // producer copies).
        let issue0 = st.loads.issue(i);
        if let Some(cap) = ctx.issue_cap {
            let budget = cap.saturating_mul(rt.issue);
            if issue0 + 1 + pcopies > budget {
                return Gathered::Rejected;
            }
        }
        // Issue-MII from the place charge + the operand charges on `c`: the
        // per-charge `⌈new / issue⌉` maxima are monotone in `new`, so only
        // the final load matters.
        let mut mii_issue = self.inputs.mii_issue;
        if rt.issue > 0 {
            mii_issue = mii_issue.max((issue0 + 1 + pcopies).div_ceil(rt.issue));
        }
        match self.class {
            hca_ddg::ResourceClass::Alu => {
                if rt.alu > 0 {
                    mii_issue = mii_issue.max((st.loads.alu(i) + 1).div_ceil(rt.alu));
                }
            }
            hca_ddg::ResourceClass::AddrGen => {
                if rt.addr_gen > 0 {
                    mii_issue = mii_issue.max((st.loads.ag(i) + 1).div_ceil(rt.addr_gen));
                } else {
                    mii_issue = u32::MAX; // AG work on an AG-less cluster
                }
            }
            hca_ddg::ResourceClass::Receive => {}
        }

        // (iii) result ports + the consumer copies' integer bookkeeping.
        let cons = self
            .cons
            .get_or_insert_with(|| ConsTerms::build(ctx, st, view));
        let row = ctx.statics.arc_index().ids_row(c);
        let track_outs = ctx.constraints.max_out_neighbors.is_some();
        let mut created = 0u32;
        let mut total_copies = self.inputs.total_copies + pcopies;
        let mut recurrence_copies = self.inputs.recurrence_copies + precurrence;
        let mut new_out: SmallVec<[PgNodeId; 4]> = SmallVec::new();
        for (j, s) in view.consumers.iter().enumerate() {
            let cs = s.cluster;
            if cs == c {
                continue;
            }
            if !st.in_neighbors.contains(cs.index(), c) {
                if st.in_neighbors.len(cs.index()) + 1 > self.max_in {
                    return Gathered::Rejected;
                }
                if track_outs && !new_out.contains(&cs) {
                    new_out.push(cs);
                }
            }
            // `add_copy` semantics: a no-op when the state already carries
            // the value, a trial-dup when an earlier consumer shares the
            // cluster (same state-probe outcome, precomputed in
            // `cons.first`), a fresh copy otherwise.
            let id = row[cs.index()];
            debug_assert_ne!(id, u32::MAX, "masked candidate without potential arc");
            if cons.first & (1 << j) != 0 && !st.copies.contains_by_id(id, self.n) {
                created |= 1 << j;
                mii_arc = mii_arc.max(st.copies.len_by_id(id) as u32 + 1);
                total_copies += 1;
                mii_issue = mii_issue.max(cons.mii[j]);
                if s.recurrence {
                    recurrence_copies += 1;
                }
            }
        }
        // (iv) out-neighbour budget.
        if let Some(limit) = ctx.constraints.max_out_neighbors {
            let outs_cnt = st.out_neighbors.len(i)
                + new_out
                    .iter()
                    .filter(|&&d| !st.out_neighbors.contains(i, d))
                    .count();
            if outs_cnt > limit as usize {
                return Gathered::Rejected;
            }
        }
        // Output wires: integer-only copies (no cluster charge, no critical
        // term). Arcs to special nodes may be off-index, so the generic
        // probes stay; a wire listing `n` twice dedups like the trial would.
        for (oi, &o) in self.outs.iter().enumerate() {
            if st.copies.contains(c, o, self.n) || self.outs[..oi].contains(&o) {
                continue;
            }
            mii_arc = mii_arc.max(st.copies.len(c, o) as u32 + 1);
            total_copies += 1;
        }
        let l = buf.len;
        buf.c[l] = c;
        buf.issue0[l] = f64::from(issue0);
        buf.denom[l] = if rt.issue > 0 {
            f64::from(rt.issue)
        } else {
            1.0
        };
        buf.active[l] = if rt.issue > 0 { 1.0 } else { 0.0 };
        buf.pcopies[l] = pcopies;
        buf.pcreated[l] = pcreated;
        buf.mii_issue[l] = mii_issue;
        buf.mii_arc[l] = mii_arc;
        buf.total_copies[l] = total_copies;
        buf.recurrence_copies[l] = recurrence_copies;
        buf.created[l] = created;
        buf.len = l + 1;
        Gathered::Lane
    }

    /// Score the first `W` gathered lanes of `buf` — the vectorisable
    /// float fold. One *lane per candidate*, so each lane folds its
    /// candidate's float terms in exactly the scalar trial's order and the
    /// result is bit-identical to [`score_if_assignable`]:
    ///
    /// * the utilisation accumulator receives the `1 + pcopies` charges on
    ///   the candidate cluster (per-lane operands and per-lane charge
    ///   counts — lanes past their own `pcopies` mask the term to `+0.0`),
    ///   then the consumer terms in edge order (uniform values, per-lane
    ///   `created` masks);
    /// * the critical accumulator starts from the state's penalty and
    ///   receives the producer terms in edge order (per-lane `pcreated`
    ///   masks), then the consumer terms in the same edge order;
    /// * the scalar trial interleaves the two accumulators but never mixes
    ///   them, so folding each accumulator contiguously preserves its
    ///   per-candidate operation order.
    ///
    /// Masked adds are bit-safe here: every term is finite and `≥ 0`, every
    /// accumulator stays `≥ +0.0`, so `acc + t·1.0 ≡ acc + t` and
    /// `acc + t·0.0 ≡ acc + (+0.0) ≡ acc` bitwise.
    ///
    /// Lanes never interact, so monomorphising the fold at sub-`LANES`
    /// widths (the partial-batch remainder) reads the same buffer columns
    /// and produces the same bits per lane — without paying for lanes that
    /// hold no candidate.
    fn flush<const W: usize>(&self, ctx: &SeeContext<'_>, buf: &LaneBuf) -> [f64; W] {
        debug_assert!(W >= 1 && W <= LANES && buf.len >= W);
        let mut util = [self.inputs.util_sq_sum; W];
        // `1 + pcopies` charges on each lane's candidate cluster: charge `k`
        // moves the load from `issue0 + k` to `issue0 + k + 1` (exact f64
        // integers), each lane replaying the scalar `nu² − ou²` sequence —
        // up to its own `pcopies`; lanes with fewer copies mask the later
        // terms to `+0.0`. Charge `k`'s `ou` equals charge `k−1`'s `nu` —
        // the same division of the same exact-integer numerator — so
        // carrying it over halves the divisions without moving a bit (dead
        // lanes advance `ou` harmlessly: their terms are masked out).
        let max_pc = buf.pcopies[..W].iter().copied().max().unwrap_or(0);
        let mut ou: [f64; W] = std::array::from_fn(|l| buf.issue0[l] / buf.denom[l]);
        for k in 0..=max_pc {
            let kf = f64::from(k);
            for l in 0..W {
                let nu = (buf.issue0[l] + kf + 1.0) / buf.denom[l];
                let m = f64::from(u8::from(k <= buf.pcopies[l]));
                util[l] += (nu * nu - ou[l] * ou[l]) * (buf.active[l] * m);
                ou[l] = nu;
            }
        }
        let mut crit = [self.inputs.critical_penalty; W];
        for (j, &tc) in self.f.crit_terms.iter().enumerate() {
            for (l, cl) in crit.iter_mut().enumerate() {
                let m = f64::from((buf.pcreated[l] >> j) & 1);
                *cl += tc * m;
            }
        }
        let cons = self.cons.as_ref().expect("flush only runs after a gather");
        for (j, (&tu, &tc)) in cons.util.iter().zip(&cons.crit).enumerate() {
            for l in 0..W {
                let m = f64::from((buf.created[l] >> j) & 1);
                util[l] += tu * m;
                crit[l] += tc * m;
            }
        }
        let parts: [crate::cost::CostInputs; W] =
            std::array::from_fn(|l| crate::cost::CostInputs {
                total_copies: buf.total_copies[l],
                recurrence_copies: buf.recurrence_copies[l],
                critical_penalty: crit[l],
                routed_hops: self.inputs.routed_hops,
                mii_issue: buf.mii_issue[l],
                mii_arc: buf.mii_arc[l],
                util_sq_sum: util[l],
                util_clusters: self.inputs.util_clusters,
            });
        crate::cost::objective_from_lanes(ctx, &parts)
    }

    /// [`flush`](NodeBatch::flush) at a width chosen at runtime: dispatch
    /// to the monomorphised fold of that width. Each lane's bits are
    /// width-independent, so any width yields the same per-candidate
    /// scores.
    fn flush_dyn(&self, ctx: &SeeContext<'_>, buf: &LaneBuf, w: usize) -> SmallVec<[f64; LANES]> {
        match w {
            1 => self.flush::<1>(ctx, buf).into_iter().collect(),
            2 => self.flush::<2>(ctx, buf).into_iter().collect(),
            3 => self.flush::<3>(ctx, buf).into_iter().collect(),
            4 => self.flush::<4>(ctx, buf).into_iter().collect(),
            _ => unreachable!("widen this match alongside LANES"),
        }
    }
}

/// Batched sibling of [`score_if_assignable`]: score **every** surviving
/// candidate of `(st, n)` into `cands`, `LANES` at a time.
///
/// The gather pass walks the candidates in mask order, replays all integer
/// screens and aggregates scalarly (rejecting candidates before they occupy
/// a lane), and packs the accepted ones into contiguous lane buffers; each
/// full batch is scored by one pass of fixed-width `[f64; LANES]` folds.
/// Occupied producer arcs and producers sitting on the candidate are
/// expressed *inside* the lane shape (per-lane copy counts and created
/// masks); only expansions the shape cannot express at all — no
/// [`ProdFast`] aggregate on the view, more than 32 producer or consumer
/// edges, or too few candidates to amortise the setup — take the scalar
/// reference path (counted as `scalar_tail`). A sub-`LANES` remainder
/// flushes as one partial batch through the same fold monomorphised at its
/// real width (lanes never interact, so each lane's bits are
/// width-independent).
///
/// Every score pushed is **bit-identical** to the scalar
/// [`score_if_assignable`] (debug builds assert it per candidate) and the
/// accept/reject set matches [`assignable_dynamic`]; only the order of
/// `cands` may differ from the scalar loop (lane batches flush after scalar
/// fallbacks), which the candidate filter's total `(cost, cluster)` sort
/// erases.
///
/// [`ProdFast`]: NodeView
pub fn score_candidates_batched(
    ctx: &SeeContext<'_>,
    st: &PartialState,
    view: &NodeView,
    n: NodeId,
    cands: &mut CandList,
    stats: &mut LaneStats,
) {
    score_candidates_batched_tuned(ctx, st, view, n, cands, stats, SCALAR_CUTOFF, LANES);
}

/// [`score_candidates_batched`] with the batch-entry cutoff and flush width
/// chosen at runtime. Both knobs are **result-transparent** — every lane
/// score is bit-identical to the scalar trial regardless of where batches
/// are cut — so they may vary freely between runs (ROADMAP item 4's
/// re-measurement) without invalidating memoised results. `lane_width` is
/// clamped to `1..=LANES` ([`LANES`] is the buffer's compile-time
/// capacity).
#[allow(clippy::too_many_arguments)]
pub fn score_candidates_batched_tuned(
    ctx: &SeeContext<'_>,
    st: &PartialState,
    view: &NodeView,
    n: NodeId,
    cands: &mut CandList,
    stats: &mut LaneStats,
    scalar_cutoff: usize,
    lane_width: usize,
) {
    let lane_width = lane_width.clamp(1, LANES);
    // Expansions whose static mask leaves almost nothing to score cannot
    // amortise the batch setup (per-node hoists + gather bookkeeping), so
    // they take the scalar path wholesale. One popcount over the mask
    // words is far cheaper than the setup it skips.
    let cand_count: u32 = view.mask.iter().map(|w| w.count_ones()).sum();
    let fast = view.fast.as_ref().filter(|_| {
        view.consumers.len() <= 32
            && view.producers.len() <= 32
            && cand_count as usize > scalar_cutoff
    });
    let Some(f) = fast else {
        // No uniform producer shape (or a `created`/`pcreated` mask would
        // overflow): the whole candidate list takes the scalar reference
        // path.
        for c in view.candidates() {
            stats.scalar_tail += 1;
            if let Some(cost) = score_if_assignable(ctx, st, view, n, c) {
                cands.push((c, cost));
            }
        }
        return;
    };
    let arc = ctx.statics.arc_index();
    let mut batch = NodeBatch {
        f,
        cons: None,
        outs: ctx.statics.outputs_carrying(n),
        inputs: st.cost_inputs(),
        prod_rows: f.distinct.iter().map(|&(cp, _)| arc.ids_row(cp)).collect(),
        full_pmask: 1u32
            .checked_shl(f.edges.len() as u32)
            .map_or(u32::MAX, |v| v - 1),
        class: ctx.ddg.node(n).op.resource_class(),
        max_in: ctx.constraints.max_in_neighbors as usize,
        n,
    };
    let mut buf = LaneBuf::new();
    for c in view.candidates() {
        match batch.gather(ctx, st, view, c, &mut buf) {
            Gathered::Rejected => {
                debug_assert!(
                    !assignable_dynamic(ctx, st, view, n, c),
                    "gather rejected a candidate assignable_dynamic accepts: {n:?} @ {c:?}"
                );
            }
            Gathered::Lane => {
                if buf.len == lane_width {
                    let costs = batch.flush_dyn(ctx, &buf, lane_width);
                    for (l, &cost) in costs.iter().enumerate() {
                        #[cfg(debug_assertions)]
                        {
                            let scalar = score_if_assignable(ctx, st, view, n, buf.c[l]);
                            debug_assert_eq!(
                                Some(cost.to_bits()),
                                scalar.map(f64::to_bits),
                                "lane score diverges from scalar for {n:?} @ {:?}",
                                buf.c[l]
                            );
                        }
                        cands.push((buf.c[l], cost));
                    }
                    stats.lanes_scored += lane_width;
                    stats.lane_batches += 1;
                    buf.len = 0;
                }
            }
        }
    }
    // Partial-batch flush: fewer than `lane_width` gathered candidates
    // left. Monomorphising the fold at the remainder's real width scores
    // them in one pass without rescoring scalarly (which would double-pay
    // the gather) and without paying for empty lanes.
    if buf.len > 0 {
        let k = buf.len;
        debug_assert!(k < lane_width, "full batches flush inside the gather loop");
        let costs = batch.flush_dyn(ctx, &buf, k);
        for (l, &cost) in costs.iter().enumerate() {
            #[cfg(debug_assertions)]
            {
                let scalar = score_if_assignable(ctx, st, view, n, buf.c[l]);
                debug_assert_eq!(
                    Some(cost.to_bits()),
                    scalar.map(f64::to_bits),
                    "lane score diverges from scalar for {n:?} @ {:?}",
                    buf.c[l]
                );
            }
            cands.push((buf.c[l], cost));
        }
        stats.lanes_scored += k;
        stats.lane_batches += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostWeights;
    use hca_arch::{Rcp, ResourceTable};
    use hca_ddg::{Ddg, DdgAnalysis, DdgBuilder, Opcode};
    use hca_pg::{ArchConstraints, Ili, IliWire, Pg};

    fn mk_ctx<'a>(ddg: &'a Ddg, an: &'a DdgAnalysis, pg: &'a Pg, max_in: u32) -> SeeContext<'a> {
        SeeContext {
            ddg,
            analysis: an,
            pg,
            constraints: ArchConstraints {
                max_in_neighbors: max_in,
                max_out_neighbors: None,
                out_node_max_in: 1,
                copy_latency: 1,
            },
            weights: CostWeights::default(),
            issue_cap: None,
            statics: crate::statics::PgStatics::build(pg),
        }
    }

    #[test]
    fn rejects_special_nodes_and_missing_resources() {
        let mut b = DdgBuilder::default();
        let ld = b.node(Opcode::Load);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        // RCP: odd clusters have no AG.
        let rcp = Rcp::figure1();
        let pg = Pg::from_rcp(&rcp);
        let ctx = mk_ctx(&ddg, &an, &pg, 2);
        let st = PartialState::initial(&ctx, &[]);
        assert!(is_assignable(&ctx, &st, ld, PgNodeId(0)));
        assert!(!is_assignable(&ctx, &st, ld, PgNodeId(1))); // no AG
    }

    #[test]
    fn candidates_iterate_exactly_the_assignable_clusters() {
        // The mask + dynamic split must agree with probing every cluster.
        let mut b = DdgBuilder::default();
        let ld = b.node(Opcode::Load);
        let add = b.node(Opcode::Add);
        b.flow(ld, add);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let rcp = Rcp::figure1();
        let pg = Pg::from_rcp(&rcp);
        let ctx = mk_ctx(&ddg, &an, &pg, 2);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, ld, PgNodeId(0));
        let view = node_view(&ctx, &st, add);
        let via_mask: Vec<PgNodeId> = view
            .candidates()
            .filter(|&c| assignable_dynamic(&ctx, &st, &view, add, c))
            .collect();
        let via_probe: Vec<PgNodeId> = pg
            .cluster_ids()
            .filter(|&c| is_assignable(&ctx, &st, add, c))
            .collect();
        assert_eq!(via_mask, via_probe);
        assert!(!via_probe.is_empty(), "fixture should have candidates");
    }

    #[test]
    fn figure6_no_candidates_scenario() {
        // Figure 6a in spirit: every cluster's input budget is exhausted by
        // already-instantiated connections (C_k listens to C_{k+2}), and the
        // new node n has operands on C0 and C1 — so every candidate would
        // need an input arc that no cluster can still afford.
        let mut b = DdgBuilder::default();
        let senders: Vec<_> = (0..4).map(|_| b.node(Opcode::Add)).collect();
        let receivers: Vec<_> = (0..4).map(|_| b.node(Opcode::Add)).collect();
        for k in 0..4 {
            b.flow(senders[k], receivers[k]);
        }
        let n = b.node(Opcode::Add);
        b.flow(receivers[0], n); // operand i on C0
        b.flow(receivers[1], n); // operand j on C1
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(4, ResourceTable::of_cns(4));
        let ctx = mk_ctx(&ddg, &an, &pg, 1);
        let mut st = PartialState::initial(&ctx, &[]);
        for k in 0..4u32 {
            st.apply_assign(&ctx, senders[k as usize], PgNodeId((k + 2) % 4));
            st.apply_assign(&ctx, receivers[k as usize], PgNodeId(k));
        }
        // Each cluster now listens to exactly one source: its port is full.
        for k in 0..4 {
            assert_eq!(st.in_neighbors.len(k), 1);
        }
        for c in pg.cluster_ids() {
            assert!(!is_assignable(&ctx, &st, n, c), "cluster {c}");
        }
    }

    #[test]
    fn existing_arc_does_not_consume_new_port() {
        let mut b = DdgBuilder::default();
        let p = b.node(Opcode::Add);
        let q1 = b.node(Opcode::Add);
        let q2 = b.node(Opcode::Add);
        b.flow(p, q1);
        b.flow(p, q2);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(2, ResourceTable::of_cns(4));
        let ctx = mk_ctx(&ddg, &an, &pg, 1);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, p, PgNodeId(0));
        st.apply_assign(&ctx, q1, PgNodeId(1));
        // Arc 0→1 is already real; q2 re-uses it.
        assert!(is_assignable(&ctx, &st, q2, PgNodeId(1)));
    }

    #[test]
    fn successor_port_budget_checked() {
        let mut b = DdgBuilder::default();
        let a = b.node(Opcode::Add);
        let z = b.node(Opcode::Add);
        let n = b.node(Opcode::Add);
        b.flow(a, z);
        b.flow(n, z);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(3, ResourceTable::of_cns(4));
        let ctx = mk_ctx(&ddg, &an, &pg, 1);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, a, PgNodeId(0));
        st.apply_assign(&ctx, z, PgNodeId(1)); // consumes 1's only port for 0
                                               // Assigning n to cluster 2 would need a second in-neighbour on 1.
        assert!(!is_assignable(&ctx, &st, n, PgNodeId(2)));
        // Assigning n next to z is fine (no copy at all)…
        assert!(is_assignable(&ctx, &st, n, PgNodeId(1)));
        // …and so is joining the producer cluster 0 (arc 0→1 already real).
        assert!(is_assignable(&ctx, &st, n, PgNodeId(0)));
    }

    #[test]
    fn out_node_unary_fanin_blocks_second_cluster() {
        let mut b = DdgBuilder::default();
        let k = b.node(Opcode::Add);
        let h = b.node(Opcode::Add);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let mut pg = Pg::complete(2, ResourceTable::of_cns(4));
        pg.attach_ili(&Ili {
            inputs: vec![],
            outputs: vec![IliWire::new(vec![k, h])],
        });
        let ctx = mk_ctx(&ddg, &an, &pg, 4);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, k, PgNodeId(0));
        // h must co-locate with k (Figure 10c).
        assert!(is_assignable(&ctx, &st, h, PgNodeId(0)));
        assert!(!is_assignable(&ctx, &st, h, PgNodeId(1)));
    }

    #[test]
    fn issue_cap_limits_pile_up() {
        let mut b = DdgBuilder::default();
        let xs: Vec<_> = (0..3).map(|_| b.node(Opcode::Add)).collect();
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(2, ResourceTable::of_cns(1));
        let mut ctx = mk_ctx(&ddg, &an, &pg, 4);
        ctx.issue_cap = Some(2);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, xs[0], PgNodeId(0));
        st.apply_assign(&ctx, xs[1], PgNodeId(0));
        assert!(!is_assignable(&ctx, &st, xs[2], PgNodeId(0)));
        assert!(is_assignable(&ctx, &st, xs[2], PgNodeId(1)));
    }

    /// A small deterministic LCG so the fuzz sweep needs no RNG crate in
    /// this crate's dev-deps.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    /// The mutation-free scorer against the reference apply-read-undo
    /// sequence, over fuzzed DDGs (duplicate operand edges, recurrences,
    /// AG-less issue caps) and fuzzed partial states: the accept/reject
    /// decision must equal [`assignable_dynamic`] and every accepted score
    /// must be bit-identical to the post-apply cost. 120 seeds keeps both
    /// the fast producer path and the slow reference loop covered.
    #[test]
    fn scorer_matches_apply_read_undo_on_fuzzed_states() {
        for seed in 0..120u64 {
            let mut rng = Lcg(0x5EED_0000 ^ (seed.wrapping_mul(0x9E37_79B9)));
            let mut b = DdgBuilder::default();
            let n_nodes = 6 + (rng.next() % 18) as usize;
            let ids: Vec<_> = (0..n_nodes)
                .map(|_| {
                    b.node(match rng.next() % 4 {
                        0 => Opcode::Load,
                        1 => Opcode::Mul,
                        _ => Opcode::Add,
                    })
                })
                .collect();
            for j in 1..n_nodes {
                for _ in 0..=(rng.next() % 2) {
                    // Duplicate (src, dst) pairs are deliberate: two operand
                    // edges carrying the same value force the trial's
                    // arc-level dedup (the one case the fast path must bail
                    // on).
                    b.flow(ids[(rng.next() as usize) % j], ids[j]);
                }
                if rng.next().is_multiple_of(8) {
                    b.carried(ids[j], ids[(rng.next() as usize) % j], 1);
                }
            }
            let ddg = b.finish();
            let an = DdgAnalysis::compute(&ddg).unwrap();
            let clusters = 2 + (rng.next() % 5) as usize;
            let pg = Pg::complete(clusters, ResourceTable::of_cns(4));
            let mut ctx = mk_ctx(&ddg, &an, &pg, 2 + (rng.next() % 3) as u32);
            if rng.next().is_multiple_of(2) {
                ctx.issue_cap = Some(2 + (rng.next() % 3) as u32);
            }
            let order: Vec<_> = ddg.node_ids().collect();
            let mut st = PartialState::initial(&ctx, &order);
            for &n in &order {
                if rng.next().is_multiple_of(4) {
                    continue; // leave holes: unassigned producers/consumers
                }
                let view = node_view(&ctx, &st, n);
                let mut legal = Vec::new();
                for c in view.candidates() {
                    let scored = score_if_assignable(&ctx, &st, &view, n, c);
                    assert_eq!(
                        scored.is_some(),
                        assignable_dynamic(&ctx, &st, &view, n, c),
                        "seed {seed}: screen diverges for {n:?} @ {c:?}"
                    );
                    if let Some(cost) = scored {
                        let undo = st.apply_assign_logged(&ctx, n, c);
                        assert_eq!(
                            cost.to_bits(),
                            st.cost.to_bits(),
                            "seed {seed}: score diverges from apply for {n:?} @ {c:?}"
                        );
                        st.undo_assign(&ctx, undo);
                        legal.push(c);
                    }
                }
                if let Some(&c) = legal.get((rng.next() as usize) % legal.len().max(1)) {
                    st.apply_assign(&ctx, n, c);
                }
            }
        }
    }

    /// The batched lane kernel against the scalar reference, over the same
    /// fuzzed DDG/state space as the scorer fuzz above: for every (state,
    /// node) pair the batched kernel must accept exactly the scalar set and
    /// every score must be bit-identical. Also checks the [`LaneStats`]
    /// ledger: full batches account for `LANES` candidates each and every
    /// accepted candidate was counted exactly once.
    #[test]
    fn lane_batched_scores_match_scalar_on_fuzzed_states() {
        let seeds = if cfg!(miri) { 8 } else { 120u64 };
        let mut total = LaneStats::default();
        for seed in 0..seeds {
            let mut rng = Lcg(0xBA7C_4000 ^ (seed.wrapping_mul(0x9E37_79B9)));
            let mut b = DdgBuilder::default();
            let n_nodes = 6 + (rng.next() % 18) as usize;
            let ids: Vec<_> = (0..n_nodes)
                .map(|_| {
                    b.node(match rng.next() % 4 {
                        0 => Opcode::Load,
                        1 => Opcode::Mul,
                        _ => Opcode::Add,
                    })
                })
                .collect();
            for j in 1..n_nodes {
                for _ in 0..=(rng.next() % 2) {
                    b.flow(ids[(rng.next() as usize) % j], ids[j]);
                }
                if rng.next().is_multiple_of(8) {
                    b.carried(ids[j], ids[(rng.next() as usize) % j], 1);
                }
            }
            let ddg = b.finish();
            let an = DdgAnalysis::compute(&ddg).unwrap();
            // 5–9 clusters: candidate lists regularly exceed LANES, so full
            // batches AND scalar remainders both occur.
            let clusters = 5 + (rng.next() % 5) as usize;
            let pg = Pg::complete(clusters, ResourceTable::of_cns(4));
            let mut ctx = mk_ctx(&ddg, &an, &pg, 2 + (rng.next() % 3) as u32);
            if rng.next().is_multiple_of(2) {
                ctx.issue_cap = Some(2 + (rng.next() % 3) as u32);
            }
            let order: Vec<_> = ddg.node_ids().collect();
            let mut st = PartialState::initial(&ctx, &order);
            for &n in &order {
                if rng.next().is_multiple_of(4) {
                    continue;
                }
                let view = node_view(&ctx, &st, n);
                let mut scalar: Vec<(PgNodeId, u64)> = Vec::new();
                for c in view.candidates() {
                    if let Some(cost) = score_if_assignable(&ctx, &st, &view, n, c) {
                        scalar.push((c, cost.to_bits()));
                    }
                }
                let mut cands = CandList::new();
                let mut stats = LaneStats::default();
                score_candidates_batched(&ctx, &st, &view, n, &mut cands, &mut stats);
                let mut batched: Vec<(PgNodeId, u64)> =
                    cands.iter().map(|&(c, cost)| (c, cost.to_bits())).collect();
                scalar.sort();
                batched.sort();
                assert_eq!(
                    scalar, batched,
                    "seed {seed}: batched kernel diverges for {n:?}"
                );
                // Each batch scores 1..=LANES real lanes (partial batches
                // flush at their real width).
                assert!(
                    stats.lanes_scored <= stats.lane_batches * LANES
                        && stats.lanes_scored >= stats.lane_batches,
                    "seed {seed}: batch ledger broken for {n:?}"
                );
                // Every accepted candidate came through exactly one path;
                // the scalar tail additionally counts scalar-path rejects.
                assert!(
                    stats.lanes_scored + stats.scalar_tail >= cands.len(),
                    "seed {seed}: stats undercount candidates for {n:?}"
                );
                total.absorb(stats);
                if let Some(&(c, _)) = scalar.get((rng.next() as usize) % scalar.len().max(1)) {
                    st.apply_assign(&ctx, n, c);
                }
            }
        }
        // The sweep must exercise both the lane path and the scalar tail,
        // otherwise the equivalence above proves nothing about batching.
        assert!(total.lane_batches > 0, "no full lane batch ever flushed");
        assert!(total.scalar_tail > 0, "no scalar-tail candidate ever seen");
    }

    /// Candidate counts not divisible by `LANES` leave a sub-batch remainder
    /// that must flush as a width-monomorphised partial batch — and still
    /// score every candidate bit-identically.
    #[test]
    fn lane_remainder_flushes_partial_batch() {
        let mut b = DdgBuilder::default();
        let n = b.node(Opcode::Add);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        // 6 clusters, no producers: all 6 candidates gather; one full batch
        // of LANES=4 flushes plus a width-2 partial batch.
        let pg = Pg::complete(6, ResourceTable::of_cns(4));
        let ctx = mk_ctx(&ddg, &an, &pg, 4);
        let st = PartialState::initial(&ctx, &[]);
        let view = node_view(&ctx, &st, n);
        let mut cands = CandList::new();
        let mut stats = LaneStats::default();
        score_candidates_batched(&ctx, &st, &view, n, &mut cands, &mut stats);
        assert_eq!(cands.len(), 6);
        assert_eq!(stats.lane_batches, 2);
        assert_eq!(stats.lanes_scored, 6);
        assert_eq!(stats.scalar_tail, 0);
        for &(c, cost) in &cands {
            let scalar = score_if_assignable(&ctx, &st, &view, n, c).unwrap();
            assert_eq!(cost.to_bits(), scalar.to_bits(), "cluster {c:?}");
        }
    }

    /// Views without a uniform producer shape (duplicate operand edges make
    /// `ProdFast` bail) route the whole list through the scalar path.
    #[test]
    fn lane_gather_falls_back_without_fast_view() {
        let mut b = DdgBuilder::default();
        let p = b.node(Opcode::Add);
        let n = b.node(Opcode::Add);
        b.flow(p, n);
        b.flow(p, n); // duplicate (value, cluster) pair: no ProdFast
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(6, ResourceTable::of_cns(4));
        let ctx = mk_ctx(&ddg, &an, &pg, 4);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, p, PgNodeId(0));
        let view = node_view(&ctx, &st, n);
        assert!(view.fast.is_none(), "fixture must defeat the fast path");
        let mut cands = CandList::new();
        let mut stats = LaneStats::default();
        score_candidates_batched(&ctx, &st, &view, n, &mut cands, &mut stats);
        assert_eq!(stats.lane_batches, 0);
        assert_eq!(stats.lanes_scored, 0);
        assert!(stats.scalar_tail >= cands.len());
        assert!(!cands.is_empty());
    }

    #[test]
    fn max_out_neighbors_enforced_when_set() {
        let mut b = DdgBuilder::default();
        let p = b.node(Opcode::Add);
        let q1 = b.node(Opcode::Add);
        let q2 = b.node(Opcode::Add);
        b.flow(p, q1);
        b.flow(p, q2);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(3, ResourceTable::of_cns(4));
        let mut ctx = mk_ctx(&ddg, &an, &pg, 4);
        ctx.constraints.max_out_neighbors = Some(1);
        let mut st = PartialState::initial(&ctx, &[]);
        st.apply_assign(&ctx, q1, PgNodeId(1));
        st.apply_assign(&ctx, q2, PgNodeId(2));
        // p on cluster 0 would need two out-neighbours.
        assert!(!is_assignable(&ctx, &st, p, PgNodeId(0)));
        assert!(is_assignable(&ctx, &st, p, PgNodeId(1)));
    }
}
