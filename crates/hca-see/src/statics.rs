//! Precomputed static lookups over one sub-problem's Pattern Graph.
//!
//! `Pg` answers `is_potential` by scanning a small adjacency list and
//! `outputs_carrying` by walking every output node's value list into a
//! fresh `Vec` — fine for construction-time queries, but both sit on the
//! `isAssignable` / route-admissibility hot path, where they run once per
//! (state, candidate, edge). The PG is immutable for the whole SEE run, so
//! one build pass turns both into O(1) reads: a flat bit matrix for arc
//! potential and a dense per-value row table for output wires.
//!
//! On top of those, this module numbers the PG's potential arcs once
//! ([`ArcIndex`]) — the arc-indexed copy table in
//! [`PartialState`](crate::state::PartialState) stores per-arc value lists
//! in dense slots keyed by these ids — and precomputes per-resource-class
//! *candidate bitmasks* (one `u64` word block over PG node ids) that the
//! `isAssignable` probe ANDs in bulk before any per-candidate work.

use crate::neighbors::NeighborSets;
use hca_ddg::{NodeId, ResourceClass};
use hca_pg::{Pg, PgNodeId, PgNodeKind};
use smallvec::SmallVec;
use std::sync::Arc;

/// Dense numbering of the PG's potential arcs, fixed for one SEE run.
///
/// `ids` is an n×n matrix mapping `(src, dst)` to the arc's id
/// (`u32::MAX` = not a potential arc); `pairs[id]` maps back. Ids are
/// assigned in ascending `(src, dst)` order, so iterating arcs by id visits
/// them deterministically. Shared behind an [`Arc`] by every
/// [`PartialState`](crate::state::PartialState) of the run, so a state
/// clone bumps a refcount instead of copying the matrix.
#[derive(Debug)]
pub struct ArcIndex {
    n: usize,
    ids: Vec<u32>,
    pairs: Vec<(PgNodeId, PgNodeId)>,
}

impl ArcIndex {
    /// Number the potential arcs of `pg` in ascending `(src, dst)` order.
    fn build(pg: &Pg) -> Self {
        let n = pg.num_nodes();
        let mut ids = vec![u32::MAX; n * n];
        let mut pairs = Vec::new();
        for src in pg.node_ids() {
            let mut dsts: SmallVec<[PgNodeId; 16]> =
                pg.potential_succs(src).iter().copied().collect();
            dsts.sort_unstable();
            for dst in dsts {
                ids[src.index() * n + dst.index()] = pairs.len() as u32;
                pairs.push((src, dst));
            }
        }
        ArcIndex { n, ids, pairs }
    }

    /// Arc id of `src → dst`, or `None` when the arc is not potential.
    #[inline]
    pub fn arc_id(&self, src: PgNodeId, dst: PgNodeId) -> Option<u32> {
        let id = self.ids[src.index() * self.n + dst.index()];
        (id != u32::MAX).then_some(id)
    }

    /// Number of potential arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.pairs.len()
    }

    /// The dense arc-id row of `src`: entry `dst.index()` is the id of
    /// `src → dst`, or `u32::MAX` when the arc is not potential. The batched
    /// scorer's gather pass walks one candidate's outgoing arcs as plain
    /// slice indexing instead of per-probe [`ArcIndex::arc_id`] calls.
    #[inline]
    pub fn ids_row(&self, src: PgNodeId) -> &[u32] {
        &self.ids[src.index() * self.n..(src.index() + 1) * self.n]
    }

    /// The `(src, dst)` endpoints of arc `id`.
    #[inline]
    pub fn pair(&self, id: u32) -> (PgNodeId, PgNodeId) {
        self.pairs[id as usize]
    }

    /// Heap bytes held by the id matrix and the pair list.
    pub fn heap_bytes(&self) -> usize {
        self.ids.len() * std::mem::size_of::<u32>()
            + self.pairs.len() * std::mem::size_of::<(PgNodeId, PgNodeId)>()
    }
}

/// Bitmask word index/mask for PG node `id` at the given row stride.
#[inline]
fn bit_slot(id: PgNodeId) -> (usize, u64) {
    (id.index() / 64, 1u64 << (id.index() % 64))
}

/// O(1) views of the immutable PG topology, built once per SEE run and
/// shared (read-only) by every state of the search.
pub struct PgStatics {
    /// Potential-arc bit matrix: row = src, bit = dst.
    potential: NeighborSets,
    /// Transposed potential-arc matrix: row = dst, bit = src — the consumer
    /// half of the candidate-mask AND ("which clusters reach `cs`?").
    potential_in: NeighborSets,
    /// Output special nodes whose wire carries value `v`, indexed by
    /// `v.index()`; values past the table (never on any wire) read as empty.
    outputs_of: Vec<SmallVec<[PgNodeId; 2]>>,
    /// Dense numbering of the potential arcs (see [`ArcIndex`]).
    arcs: Arc<ArcIndex>,
    /// Per-resource-class executability mask over PG node ids: bit `c` set
    /// iff `c` is a real cluster whose resource table can execute ops of
    /// that class (`can_execute` is purely class-based, so this is exact).
    /// Indexed by [`class_lane`].
    exec_mask: [Vec<u64>; 3],
    /// Words per mask row (= `n.div_ceil(64).max(1)`).
    stride: usize,
}

/// Lane of [`PgStatics::exec_mask`] for a resource class.
#[inline]
pub(crate) fn class_lane(class: ResourceClass) -> usize {
    match class {
        ResourceClass::Alu => 0,
        ResourceClass::AddrGen => 1,
        ResourceClass::Receive => 2,
    }
}

impl PgStatics {
    /// Build the lookup tables from `pg`'s potential arcs and output wires.
    pub fn build(pg: &Pg) -> Self {
        let n = pg.num_nodes();
        let stride = n.div_ceil(64).max(1);
        let mut potential = NeighborSets::new(n);
        let mut potential_in = NeighborSets::new(n);
        for src in pg.node_ids() {
            for &dst in pg.potential_succs(src) {
                potential.insert(src.index(), dst);
                potential_in.insert(dst.index(), src);
            }
        }
        let mut outputs_of: Vec<SmallVec<[PgNodeId; 2]>> = Vec::new();
        for id in pg.output_ids() {
            if let PgNodeKind::Output { values, .. } = &pg.node(id).kind {
                for &v in values {
                    if outputs_of.len() <= v.index() {
                        outputs_of.resize(v.index() + 1, SmallVec::new());
                    }
                    outputs_of[v.index()].push(id);
                }
            }
        }
        let mut exec_mask = [vec![0u64; stride], vec![0u64; stride], vec![0u64; stride]];
        for c in pg.cluster_ids() {
            let node = pg.node(c);
            if !node.kind.is_cluster() || node.rt.issue == 0 {
                continue;
            }
            let (w, m) = bit_slot(c);
            for class in [
                ResourceClass::Alu,
                ResourceClass::AddrGen,
                ResourceClass::Receive,
            ] {
                if node.rt.capacity(class) > 0 {
                    exec_mask[class_lane(class)][w] |= m;
                }
            }
        }
        PgStatics {
            potential,
            potential_in,
            outputs_of,
            arcs: Arc::new(ArcIndex::build(pg)),
            exec_mask,
            stride,
        }
    }

    /// Is `src → dst` a potential pattern? (Bit test; equals
    /// [`Pg::is_potential`].)
    #[inline]
    pub fn is_potential(&self, src: PgNodeId, dst: PgNodeId) -> bool {
        self.potential.contains(src.index(), dst)
    }

    /// Output nodes whose wire must carry value `v`, in ascending node-id
    /// order (the same order [`Pg::outputs_carrying`] yields).
    #[inline]
    pub fn outputs_carrying(&self, v: NodeId) -> &[PgNodeId] {
        self.outputs_of.get(v.index()).map_or(&[], |row| row)
    }

    /// The run's shared potential-arc numbering.
    #[inline]
    pub fn arc_index(&self) -> &Arc<ArcIndex> {
        &self.arcs
    }

    /// Words per candidate-mask row.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Bit words of the clusters able to execute ops of `class`.
    #[inline]
    pub fn exec_mask(&self, class: ResourceClass) -> &[u64] {
        &self.exec_mask[class_lane(class)]
    }

    /// Bit words of `src`'s potential successors ("where can `src` send?").
    #[inline]
    pub fn potential_row_words(&self, src: PgNodeId) -> &[u64] {
        self.potential.row_words(src.index())
    }

    /// Bit words of `dst`'s potential predecessors ("who can reach `dst`?").
    #[inline]
    pub fn potential_in_row_words(&self, dst: PgNodeId) -> &[u64] {
        self.potential_in.row_words(dst.index())
    }

    /// Heap bytes of the arc table and candidate-mask machinery — reported
    /// as the `see.arc_table_bytes` counter.
    pub fn arc_table_bytes(&self) -> usize {
        self.arcs.heap_bytes()
            + self.potential.heap_bytes()
            + self.potential_in.heap_bytes()
            + self.exec_mask.iter().map(|m| m.len() * 8).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_arch::ResourceTable;
    use hca_pg::{Ili, IliWire};

    #[test]
    fn matches_pg_queries() {
        let mut pg = Pg::complete(4, ResourceTable::of_cns(2));
        pg.attach_ili(&Ili {
            inputs: vec![IliWire::new(vec![NodeId(9)])],
            outputs: vec![
                IliWire::new(vec![NodeId(3), NodeId(7)]),
                IliWire::new(vec![NodeId(7)]),
            ],
        });
        let st = PgStatics::build(&pg);
        for a in pg.node_ids() {
            for b in pg.node_ids() {
                assert_eq!(st.is_potential(a, b), pg.is_potential(a, b), "{a}->{b}");
            }
        }
        for v in 0..12u32 {
            let v = NodeId(v);
            assert_eq!(st.outputs_carrying(v), &pg.outputs_carrying(v)[..], "{v:?}");
        }
        // Out-of-table values read as empty instead of panicking.
        assert!(st.outputs_carrying(NodeId(1000)).is_empty());
    }

    #[test]
    fn arc_index_numbers_exactly_the_potential_arcs() {
        let mut pg = Pg::complete(4, ResourceTable::of_cns(2));
        pg.attach_ili(&Ili {
            inputs: vec![IliWire::new(vec![NodeId(9)])],
            outputs: vec![IliWire::new(vec![NodeId(3)])],
        });
        let st = PgStatics::build(&pg);
        let idx = st.arc_index();
        let mut count = 0usize;
        let mut last = None;
        for a in pg.node_ids() {
            for b in pg.node_ids() {
                match idx.arc_id(a, b) {
                    Some(id) => {
                        assert!(pg.is_potential(a, b), "{a}->{b} numbered but not potential");
                        assert_eq!(idx.pair(id), (a, b), "round-trip");
                        // Ids are assigned in ascending (src, dst) order.
                        assert!(last.is_none_or(|l| l < id), "id order broken at {a}->{b}");
                        last = Some(id);
                        count += 1;
                    }
                    None => assert!(!pg.is_potential(a, b), "{a}->{b} potential but unnumbered"),
                }
            }
        }
        assert_eq!(count, idx.num_arcs());
        assert!(st.arc_table_bytes() > 0);
    }

    #[test]
    fn exec_masks_match_can_execute() {
        use hca_arch::Rcp;
        // RCP: odd clusters have no address generator.
        let rcp = Rcp::figure1();
        let pg = Pg::from_rcp(&rcp);
        let st = PgStatics::build(&pg);
        for class in [
            ResourceClass::Alu,
            ResourceClass::AddrGen,
            ResourceClass::Receive,
        ] {
            let mask = st.exec_mask(class);
            for id in pg.node_ids() {
                let node = pg.node(id);
                let expect =
                    node.kind.is_cluster() && node.rt.issue > 0 && node.rt.capacity(class) > 0;
                let (w, m) = bit_slot(id);
                assert_eq!(mask[w] & m != 0, expect, "{id} class {class:?}");
            }
        }
    }
}
