//! Precomputed static lookups over one sub-problem's Pattern Graph.
//!
//! `Pg` answers `is_potential` by scanning a small adjacency list and
//! `outputs_carrying` by walking every output node's value list into a
//! fresh `Vec` — fine for construction-time queries, but both sit on the
//! `isAssignable` / route-admissibility hot path, where they run once per
//! (state, candidate, edge). The PG is immutable for the whole SEE run, so
//! one build pass turns both into O(1) reads: a flat bit matrix for arc
//! potential and a dense per-value row table for output wires.

use crate::neighbors::NeighborSets;
use hca_ddg::NodeId;
use hca_pg::{Pg, PgNodeId, PgNodeKind};
use smallvec::SmallVec;

/// O(1) views of the immutable PG topology, built once per SEE run and
/// shared (read-only) by every state of the search.
pub struct PgStatics {
    /// Potential-arc bit matrix: row = src, bit = dst.
    potential: NeighborSets,
    /// Output special nodes whose wire carries value `v`, indexed by
    /// `v.index()`; values past the table (never on any wire) read as empty.
    outputs_of: Vec<SmallVec<[PgNodeId; 2]>>,
}

impl PgStatics {
    /// Build the lookup tables from `pg`'s potential arcs and output wires.
    pub fn build(pg: &Pg) -> Self {
        let n = pg.num_nodes();
        let mut potential = NeighborSets::new(n);
        for src in pg.node_ids() {
            for &dst in pg.potential_succs(src) {
                potential.insert(src.index(), dst);
            }
        }
        let mut outputs_of: Vec<SmallVec<[PgNodeId; 2]>> = Vec::new();
        for id in pg.output_ids() {
            if let PgNodeKind::Output { values, .. } = &pg.node(id).kind {
                for &v in values {
                    if outputs_of.len() <= v.index() {
                        outputs_of.resize(v.index() + 1, SmallVec::new());
                    }
                    outputs_of[v.index()].push(id);
                }
            }
        }
        PgStatics {
            potential,
            outputs_of,
        }
    }

    /// Is `src → dst` a potential pattern? (Bit test; equals
    /// [`Pg::is_potential`].)
    #[inline]
    pub fn is_potential(&self, src: PgNodeId, dst: PgNodeId) -> bool {
        self.potential.contains(src.index(), dst)
    }

    /// Output nodes whose wire must carry value `v`, in ascending node-id
    /// order (the same order [`Pg::outputs_carrying`] yields).
    #[inline]
    pub fn outputs_carrying(&self, v: NodeId) -> &[PgNodeId] {
        self.outputs_of.get(v.index()).map_or(&[], |row| row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_arch::ResourceTable;
    use hca_pg::{Ili, IliWire};

    #[test]
    fn matches_pg_queries() {
        let mut pg = Pg::complete(4, ResourceTable::of_cns(2));
        pg.attach_ili(&Ili {
            inputs: vec![IliWire::new(vec![NodeId(9)])],
            outputs: vec![
                IliWire::new(vec![NodeId(3), NodeId(7)]),
                IliWire::new(vec![NodeId(7)]),
            ],
        });
        let st = PgStatics::build(&pg);
        for a in pg.node_ids() {
            for b in pg.node_ids() {
                assert_eq!(st.is_potential(a, b), pg.is_potential(a, b), "{a}->{b}");
            }
        }
        for v in 0..12u32 {
            let v = NodeId(v);
            assert_eq!(st.outputs_carrying(v), &pg.outputs_carrying(v)[..], "{v:?}");
        }
        // Out-of-table values read as empty instead of panicking.
        assert!(st.outputs_carrying(NodeId(1000)).is_empty());
    }
}
