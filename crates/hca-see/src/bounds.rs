//! Admissible lower bounds on the MII of one sub-problem.
//!
//! Computed *before* any search, these floors are shared between the two
//! portfolio backends (bound sharing):
//!
//! - the beam driver stops escalating tiers the moment a tier's winner
//!   matches the floor with zero copies (the score `16·MII + copies` is
//!   then at its global minimum, so no later tier can beat it — skipping
//!   the remaining tiers is provably output-preserving);
//! - the exact branch-and-bound uses the floor both to prune partial
//!   assignments and to stop the instant an incumbent reaches it
//!   (an absolute optimality proof).
//!
//! Every bound here is **admissible**: no legal complete assignment of the
//! working set onto the Pattern Graph can achieve a smaller estimated MII.
//! The argument for each floor is given at its computation site; all of
//! them rest on the fact that [`crate::state::PartialState`] only ever
//! *grows* its load and arc-pressure aggregates as nodes are placed.

use hca_ddg::{Ddg, DdgAnalysis, NodeId, Opcode, ResourceClass};
use hca_pg::{ArchConstraints, Pg, PgNodeKind};
use rustc_hash::FxHashSet;

/// The three admissible MII floors of one sub-problem, kept separate so
/// observability can attribute which floor was binding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MiiLowerBound {
    /// Critical-cycle (recurrence) floor: `RecMII` from the DDG analysis.
    /// Placement cannot shorten a dependence cycle, so no assignment beats
    /// it.
    pub rec: u32,
    /// Issue-slot / resource floor: working-set ops divided by the total
    /// slots of the matching class across all clusters. `u32::MAX` when a
    /// required resource class has no slots anywhere (every complete
    /// assignment poisons its MII).
    pub issue: u32,
    /// Arc-capacity floor from glue-wire fan-in: values that must ride one
    /// output wire divided by its unary fan-in (`outNode_MaxIn`), and
    /// input-wire values spread over every cluster.
    pub arc: u32,
}

impl MiiLowerBound {
    /// The combined floor: the largest individual floor, and at least 1
    /// (matching [`crate::state::PartialState::estimated_mii`]'s clamp).
    #[inline]
    pub fn overall(&self) -> u32 {
        self.rec.max(self.issue).max(self.arc).max(1)
    }
}

/// `ceil(num / den)`, saturating to `u32::MAX` when `den == 0` (the class
/// is required but no cluster provides it).
fn ceil_div_or_poison(num: u32, den: u32) -> u32 {
    if num == 0 {
        0
    } else if den == 0 {
        u32::MAX
    } else {
        num.div_ceil(den)
    }
}

/// Compute the admissible MII floors for assigning `working_set` (the whole
/// DDG when `None`) onto `pg` under `constraints`.
///
/// Runs in `O(|ws| + |pg| + Σ wire values)` — cheap enough to precede every
/// sub-problem search.
pub fn mii_lower_bound(
    ddg: &Ddg,
    analysis: &DdgAnalysis,
    pg: &Pg,
    constraints: &ArchConstraints,
    working_set: Option<&[NodeId]>,
) -> MiiLowerBound {
    let ws: Vec<NodeId> = match working_set {
        Some(ws) => ws.to_vec(),
        None => ddg.node_ids().collect(),
    };
    let ws_set: FxHashSet<NodeId> = ws.iter().copied().collect();

    // --- issue / resource floor -------------------------------------------
    // Every placement charges one issue slot on its cluster plus one slot of
    // its resource class; receives only ever *add* load on top. If each
    // cluster c keeps ceil(load_c / slots_c) <= k then Σ load <= k·Σ slots,
    // so k >= ceil(Σ load / Σ slots): dividing the class totals by the
    // fleet-wide slot totals is an admissible floor on max_c ceil(·).
    let (mut issue_slots, mut alu_slots, mut ag_slots) = (0u32, 0u32, 0u32);
    for c in pg.cluster_ids() {
        let rt = pg.node(c).rt;
        issue_slots += rt.issue;
        alu_slots += rt.alu;
        ag_slots += rt.addr_gen;
    }
    let (mut alu_ops, mut ag_ops) = (0u32, 0u32);
    for &n in &ws {
        match ddg.node(n).op.resource_class() {
            ResourceClass::Alu => alu_ops += 1,
            ResourceClass::AddrGen => ag_ops += 1,
            ResourceClass::Receive => {}
        }
    }
    let issue = ceil_div_or_poison(ws.len() as u32, issue_slots)
        .max(ceil_div_or_poison(ag_ops, ag_slots))
        .max(if alu_slots == 0 {
            // ALU ops on a 0-ALU cluster are rejected by executability, not
            // by MII poisoning — no sound MII conclusion, so no floor.
            0
        } else {
            ceil_div_or_poison(alu_ops, alu_slots)
        });

    // --- arc-capacity floor -----------------------------------------------
    // Output wires: every value on the wire that is produced in the working
    // set (or pass-through from an input wire) must reach the output node on
    // some feeder arc, and the wire accepts at most `out_node_max_in`
    // distinct feeders — so one feeder arc carries at least ceil(k / fan_in)
    // values. (Constants never travel: the configuration loader replicates
    // them, so they are excluded.)
    let mut arc = 0u32;
    let fan_in = constraints.out_node_max_in;
    for o in pg.output_ids() {
        if let PgNodeKind::Output { values, .. } = &pg.node(o).kind {
            let mut forced: FxHashSet<NodeId> = FxHashSet::default();
            for &v in values {
                if ddg.node(v).op == Opcode::Const {
                    continue;
                }
                if ws_set.contains(&v) || pg.input_carrying(v).is_some() {
                    forced.insert(v);
                }
            }
            arc = arc.max(ceil_div_or_poison(forced.len() as u32, fan_in));
        }
    }
    // Input wires: each externally produced value that the working set
    // consumes must leave its input node on at least one arc; the arcs out
    // of one input node go to at most `num_clusters` distinct clusters, so
    // some arc carries at least ceil(k / num_clusters) values. (Dividing by
    // *all* clusters, reachable or not, only weakens the floor — still
    // admissible.)
    let num_clusters = pg.cluster_ids().count() as u32;
    for inp in pg.input_ids() {
        if let PgNodeKind::Input { values, .. } = &pg.node(inp).kind {
            let consumed = values
                .iter()
                .filter(|&&v| {
                    !ws_set.contains(&v)
                        && ddg.node(v).op != Opcode::Const
                        && ddg.succs(v).any(|d| ws_set.contains(&d))
                })
                .count() as u32;
            arc = arc.max(ceil_div_or_poison(consumed, num_clusters));
        }
    }

    MiiLowerBound {
        rec: analysis.mii_rec,
        issue,
        arc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_arch::ResourceTable;
    use hca_ddg::{DdgBuilder, LatencyModel};
    use hca_pg::{Ili, IliWire};

    fn constraints(out_max_in: u32) -> ArchConstraints {
        ArchConstraints {
            max_in_neighbors: 4,
            max_out_neighbors: None,
            out_node_max_in: out_max_in,
            copy_latency: 1,
        }
    }

    #[test]
    fn issue_floor_counts_slots_across_clusters() {
        // 6 ALU ops on 2 single-issue clusters: at least 3 cycles.
        let mut b = DdgBuilder::new(LatencyModel::unit());
        for _ in 0..6 {
            b.node(Opcode::Add);
        }
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(2, ResourceTable::of_cns(1));
        let lb = mii_lower_bound(&ddg, &an, &pg, &constraints(1), None);
        assert_eq!(lb.issue, 3);
        assert_eq!(lb.overall(), 3);
    }

    #[test]
    fn addr_gen_floor_poisons_without_ag_slots() {
        let mut b = DdgBuilder::new(LatencyModel::unit());
        b.node(Opcode::Load);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(
            2,
            ResourceTable {
                issue: 1,
                alu: 1,
                addr_gen: 0,
            },
        );
        let lb = mii_lower_bound(&ddg, &an, &pg, &constraints(1), None);
        assert_eq!(lb.issue, u32::MAX);
    }

    #[test]
    fn rec_floor_is_the_analysis_recurrence_mii() {
        let mut b = DdgBuilder::new(LatencyModel::unit());
        let a = b.node(Opcode::Add);
        let m = b.node(Opcode::Mul);
        b.flow(a, m);
        b.carried(m, a, 1);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(4, ResourceTable::of_cns(2));
        let lb = mii_lower_bound(&ddg, &an, &pg, &constraints(1), None);
        assert_eq!(lb.rec, an.mii_rec);
        assert!(lb.overall() >= an.mii_rec.max(1));
    }

    #[test]
    fn output_wire_fan_in_floors_the_arc_pressure() {
        // Three working-set values forced onto one unary-fan-in output
        // wire: some feeder arc carries all three.
        let mut b = DdgBuilder::new(LatencyModel::unit());
        let n0 = b.node(Opcode::Add);
        let n1 = b.node(Opcode::Add);
        let n2 = b.node(Opcode::Add);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let mut pg = Pg::complete(4, ResourceTable::of_cns(2));
        pg.attach_ili(&Ili {
            inputs: vec![],
            outputs: vec![IliWire {
                values: vec![n0, n1, n2],
            }],
        });
        let lb = mii_lower_bound(&ddg, &an, &pg, &constraints(1), None);
        assert_eq!(lb.arc, 3);
        let lb2 = mii_lower_bound(&ddg, &an, &pg, &constraints(3), None);
        assert_eq!(lb2.arc, 1);
    }

    #[test]
    fn bounds_never_exceed_a_real_outcome() {
        // The floor must be admissible: run the beam on a small kernel and
        // check floor <= achieved MII.
        let mut b = DdgBuilder::new(LatencyModel::unit());
        let l0 = b.node(Opcode::Load);
        let l1 = b.node(Opcode::Load);
        let m = b.node(Opcode::Mul);
        let a = b.node(Opcode::Add);
        let s = b.node(Opcode::Store);
        b.flow(l0, m);
        b.flow(l1, m);
        b.flow(m, a);
        b.flow(a, s);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(2, ResourceTable::of_cns(1));
        let cons = constraints(1);
        let lb = mii_lower_bound(&ddg, &an, &pg, &cons, None);
        let see = crate::See::new(&ddg, &an, &pg, cons, crate::SeeConfig::default());
        let out = see.run(None).expect("beam finds an assignment");
        assert!(
            lb.overall() <= out.est_mii,
            "floor {} exceeds achieved MII {}",
            lb.overall(),
            out.est_mii
        );
    }
}
