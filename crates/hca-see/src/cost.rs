//! The objective function and its cost criteria (paper §3/§4.2).
//!
//! "The compiler performs the ICA pass by optimizing a global cost function,
//! built on a set of heuristic criteria" aimed at the best compromise
//! between parallelism and inter-cluster penalties. Since the paper's goal
//! function centres on the loop's Initiation Interval, the dominant term is
//! the estimated MII; the remaining terms are classical ICA criteria that
//! break ties towards fewer, cheaper copies.

use crate::state::{PartialState, SeeContext};

/// Weights of the objective-function criteria (lower objective = better).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostWeights {
    /// Per inter-cluster copy (a value-destination pair).
    pub copy: f64,
    /// Per unit of estimated MII — the paper's main cost factor.
    pub pressure: f64,
    /// Per unit of worst per-issue-slot utilisation (load balance).
    pub balance: f64,
    /// Critical-path stretch: accumulated transport latency landing on
    /// low-slack edges.
    pub critical: f64,
    /// Per copy inside a recurrence SCC (it inflates MIIRec directly).
    pub recurrence: f64,
    /// Per route-through hop inserted by the Route Allocator.
    pub route: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            copy: 1.0,
            pressure: 4.0,
            balance: 2.0,
            critical: 1.0,
            recurrence: 4.0,
            route: 2.0,
        }
    }
}

impl CostWeights {
    /// Weights that only count copies — the classical minimum-cut criterion,
    /// kept for the ablation benches.
    pub fn copies_only() -> Self {
        CostWeights {
            copy: 1.0,
            pressure: 0.0,
            balance: 0.0,
            critical: 0.0,
            recurrence: 0.0,
            route: 1.0,
        }
    }

    /// Weights that only track the MII estimate (pure pressure objective).
    pub fn pressure_only() -> Self {
        CostWeights {
            copy: 0.0,
            pressure: 1.0,
            balance: 0.0,
            critical: 0.0,
            recurrence: 0.0,
            route: 0.0,
        }
    }
}

/// The aggregate inputs of [`objective`], decoupled from [`PartialState`]
/// so the mutation-free candidate scorer ([`crate::assignable::score_assign`])
/// can evaluate the *same* formula over trial-local aggregates. Keeping one
/// arithmetic path is what makes the scorer bit-exact against the
/// apply-read-undo route.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CostInputs {
    pub total_copies: u32,
    pub recurrence_copies: u32,
    pub critical_penalty: f64,
    pub routed_hops: u32,
    pub mii_issue: u32,
    pub mii_arc: u32,
    pub util_sq_sum: f64,
    pub util_clusters: u32,
}

/// Evaluate the weighted objective from raw aggregates — the single
/// arithmetic path behind both [`objective`] and the mutation-free scorer.
pub(crate) fn objective_from_parts(ctx: &SeeContext<'_>, p: &CostInputs) -> f64 {
    let mii = ctx.analysis.mii_rec.max(p.mii_issue).max(p.mii_arc).max(1);
    let mii_term = if mii == u32::MAX {
        // Infeasible resource usage: poison the state without NaNs.
        1e12
    } else {
        f64::from(mii)
    };
    let balance = if p.util_clusters == 0 {
        0.0
    } else {
        p.util_sq_sum / f64::from(p.util_clusters)
    };
    let w = &ctx.weights;
    let cost = w.copy * f64::from(p.total_copies)
        + w.pressure * mii_term
        + w.balance * balance
        + w.critical * p.critical_penalty
        + w.recurrence * f64::from(p.recurrence_copies)
        + w.route * f64::from(p.routed_hops);
    // Degenerate weights (NaN or ±inf, e.g. from a sweep config) must not
    // leak non-finite costs into the beam: `total_cmp` sorts NaN *above*
    // +inf, but `best + margin` arithmetic and cost deltas would still turn
    // nondeterministic. Clamp to the same poison value as infeasible MII so
    // every state keeps a finite, totally ordered cost.
    if cost.is_finite() {
        cost
    } else {
        1e12
    }
}

/// Evaluate the weighted objective of a partial state.
pub fn objective(ctx: &SeeContext<'_>, st: &PartialState) -> f64 {
    objective_from_parts(ctx, &st.cost_inputs())
}

/// [`objective_from_parts`] over a fixed-width lane block — one candidate
/// per lane. Each lane runs the *same* scalar formula on its own inputs
/// (same operations, same order), so every lane's result is bit-identical
/// to the scalar call; the fixed trip count is what lets LLVM vectorise the
/// independent lanes.
pub(crate) fn objective_from_lanes<const N: usize>(
    ctx: &SeeContext<'_>,
    parts: &[CostInputs; N],
) -> [f64; N] {
    std::array::from_fn(|l| objective_from_parts(ctx, &parts[l]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_arch::ResourceTable;
    use hca_ddg::{DdgAnalysis, DdgBuilder, Opcode};
    use hca_pg::{ArchConstraints, Pg, PgNodeId};

    #[test]
    fn objective_prefers_fewer_copies() {
        let mut b = DdgBuilder::default();
        let p = b.node(Opcode::Add);
        let q = b.node(Opcode::Add);
        b.flow(p, q);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(2, ResourceTable::of_cns(4));
        let ctx = SeeContext {
            ddg: &ddg,
            analysis: &an,
            pg: &pg,
            constraints: ArchConstraints {
                max_in_neighbors: 4,
                max_out_neighbors: None,
                out_node_max_in: 1,
                copy_latency: 1,
            },
            weights: CostWeights::default(),
            issue_cap: None,
            statics: crate::statics::PgStatics::build(&pg),
        };
        let mut same = crate::state::PartialState::initial(&ctx, &[]);
        same.apply_assign(&ctx, p, PgNodeId(0));
        same.apply_assign(&ctx, q, PgNodeId(0));
        let mut split = crate::state::PartialState::initial(&ctx, &[]);
        split.apply_assign(&ctx, p, PgNodeId(0));
        split.apply_assign(&ctx, q, PgNodeId(1));
        assert!(same.cost < split.cost, "{} vs {}", same.cost, split.cost);
    }

    #[test]
    fn objective_is_finite_under_degenerate_weights() {
        let mut b = DdgBuilder::default();
        let p = b.node(Opcode::Add);
        let q = b.node(Opcode::Add);
        b.flow(p, q);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(2, ResourceTable::of_cns(4));
        for weights in [
            CostWeights {
                copy: f64::NAN,
                ..CostWeights::default()
            },
            CostWeights {
                pressure: f64::INFINITY,
                ..CostWeights::default()
            },
            CostWeights {
                balance: f64::NEG_INFINITY,
                ..CostWeights::default()
            },
        ] {
            let ctx = SeeContext {
                ddg: &ddg,
                analysis: &an,
                pg: &pg,
                constraints: ArchConstraints {
                    max_in_neighbors: 4,
                    max_out_neighbors: None,
                    out_node_max_in: 1,
                    copy_latency: 1,
                },
                weights,
                issue_cap: None,
                statics: crate::statics::PgStatics::build(&pg),
            };
            let mut st = crate::state::PartialState::initial(&ctx, &[]);
            st.apply_assign(&ctx, p, PgNodeId(0));
            st.apply_assign(&ctx, q, PgNodeId(1));
            assert!(st.cost.is_finite(), "cost {} for {weights:?}", st.cost);
        }
    }

    #[test]
    fn ablation_weights_differ() {
        assert_ne!(CostWeights::copies_only(), CostWeights::default());
        assert_eq!(CostWeights::pressure_only().copy, 0.0);
    }
}
