//! The SEE driver: beam search over partial assignments.

use crate::cost::CostWeights;
use crate::filters::{CandList, CandidateFilter, CandidatePruning, NodeFilter};
use crate::route::route_assign_commit;
use crate::route_table::RouteTable;
use crate::state::{PartialState, SeeContext};
use hca_ddg::{Ddg, DdgAnalysis, NodeId, PriorityOrder, PriorityPolicy};
use hca_pg::{ArchConstraints, AssignedPg, Pg, PgNodeId};
use std::fmt;
use std::time::Instant;

/// Tunables of one SEE run.
#[derive(Clone, Copy, Debug)]
pub struct SeeConfig {
    /// Frontier size kept by the node filter.
    pub beam_width: usize,
    /// Candidates kept per (state, node) by the candidate filter.
    pub branch_factor: usize,
    /// Candidate-filter cost margin over the best candidate.
    pub candidate_margin: f64,
    /// Objective-function weights.
    pub weights: CostWeights,
    /// Order in which unassigned nodes are consumed.
    pub priority: PriorityPolicy,
    /// Run the Route Allocator as the no-candidates action.
    pub enable_router: bool,
    /// Intermediate hops the Route Allocator may spend per flow.
    pub max_route_hops: usize,
    /// Optional per-issue-slot load ceiling (see [`SeeContext::issue_cap`]).
    pub issue_cap: Option<u32>,
    /// Prune frontier states that are strictly dominated by a sibling
    /// (identical assignment and arc structure, componentwise no-better
    /// scores). Heuristic — disable via this flag or the `HCA_NO_DOMINANCE`
    /// environment variable to compare outcomes.
    pub dominance: bool,
    /// Score candidates through the batched lane kernel
    /// ([`crate::assignable::score_candidates_batched`]) instead of one
    /// scalar trial per candidate. Output is bit-identical either way; the
    /// flag (or the `HCA_NO_BATCH` environment variable) exists so a
    /// suspected batching regression can be bisected in the field.
    pub batched_scoring: bool,
    /// Candidate-count cutoff below which an expansion skips the batched
    /// kernel (`None` = built-in default). Result-transparent; overridable
    /// per process via `HCA_SCALAR_CUTOFF` so ROADMAP item 4's
    /// re-measurement needs no rebuild.
    pub scalar_cutoff: Option<usize>,
    /// Lane-batch flush width, clamped to `1..=LANES` (`None` = the full
    /// [`crate::assignable::LANES`]). Result-transparent; overridable per
    /// process via `HCA_LANES`.
    pub lane_width: Option<usize>,
    /// Admissible MII floor shared by the portfolio driver
    /// ([`crate::bounds::mii_lower_bound`]). Purely observational inside
    /// the beam: when the winning state's MII reaches the floor with zero
    /// copies the run reports [`SeeStats::bound_exit`], and the *driver*
    /// skips the remaining escalation tiers (provably output-preserving —
    /// the score `16·MII + copies` is already at its global minimum).
    pub mii_bound: Option<u32>,
}

impl Default for SeeConfig {
    fn default() -> Self {
        SeeConfig {
            beam_width: 8,
            branch_factor: 3,
            candidate_margin: 16.0,
            weights: CostWeights::default(),
            priority: PriorityPolicy::DataflowOrder,
            enable_router: true,
            max_route_hops: 3,
            issue_cap: None,
            dominance: true,
            batched_scoring: true,
            scalar_cutoff: None,
            lane_width: None,
            mii_bound: None,
        }
    }
}

impl SeeConfig {
    /// Configuration for the exact backend's pass-through planner: no
    /// candidate-margin or branch-factor truncation and an effectively
    /// unbounded frontier, so [`See::run_exact`]'s root enumeration is
    /// complete. Never use for beam runs — the frontier would explode.
    pub fn exhaustive() -> Self {
        SeeConfig {
            beam_width: usize::MAX / 2,
            branch_factor: usize::MAX / 2,
            candidate_margin: f64::INFINITY,
            ..SeeConfig::default()
        }
    }
}

/// Why the SEE failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SeeError {
    /// Neither a direct candidate nor a routed placement exists for the node
    /// in any frontier state.
    NoCandidates {
        /// The node that could not be placed.
        node: NodeId,
    },
    /// The working set contains a node the DDG does not.
    UnknownNode {
        /// The offending id.
        node: NodeId,
    },
}

impl fmt::Display for SeeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeeError::NoCandidates { node } => {
                write!(f, "no candidate cluster for {node} (routing exhausted)")
            }
            SeeError::UnknownNode { node } => write!(f, "{node} not in the DDG"),
        }
    }
}

impl std::error::Error for SeeError {}

/// Arena of retired [`PartialState`]s, recycled into survivor
/// materialisation. Beam search retires states in bulk every step (beam
/// truncation, dedup folds, dominance prunes, moved-from parents) and
/// immediately allocates near-identical ones; `take_clone_of` turns that
/// churn into `clone_from` onto a retired state's buffers, so the steady
/// state of the main loop performs no state-sized allocations at all.
///
/// All arena traffic runs in the sequential sections of the engine, so the
/// high-water footprint (reported as `see.state_arena_bytes`) is
/// deterministic and thread-count invariant.
#[derive(Default)]
pub(crate) struct StatePool {
    free: Vec<PartialState>,
    /// `approx_bytes` of each pooled state, parallel to `free`.
    sizes: Vec<usize>,
    /// Current pooled footprint in bytes.
    bytes: usize,
    /// Peak pooled footprint over the run.
    high_water: usize,
}

impl StatePool {
    /// Retire `st` into the arena.
    fn put(&mut self, st: PartialState) {
        let b = st.approx_bytes();
        self.bytes += b;
        self.high_water = self.high_water.max(self.bytes);
        self.sizes.push(b);
        self.free.push(st);
    }

    /// Retire every state in `batch` (drained in place).
    fn put_all(&mut self, batch: &mut Vec<PartialState>) {
        for st in batch.drain(..) {
            self.put(st);
        }
    }

    /// A state bit-identical to `src`: recycled buffers when the arena has
    /// a retiree (`clone_from` — no fresh allocation when capacities fit),
    /// a plain deep clone otherwise.
    fn take_clone_of(&mut self, src: &PartialState) -> PartialState {
        match (self.free.pop(), self.sizes.pop()) {
            (Some(mut st), Some(b)) => {
                self.bytes -= b;
                st.clone_from(src);
                st
            }
            _ => src.clone(),
        }
    }
}

/// Cap on the per-step sample vectors kept in [`SeeStats`]
/// (`beam_occupancy`, `step_time_ns`): the first `STEP_SAMPLE_CAP`
/// placement steps are sampled, everything is *always* folded into the
/// exact running totals (`steps`, `beam_occupancy_sum`,
/// `step_time_total_ns`), so statistics stay bounded on arbitrarily large
/// DDGs without losing the aggregate invariants.
pub const STEP_SAMPLE_CAP: usize = 4096;

/// Run statistics, for the scaling/ablation experiments and the
/// observability layer (`hca-obs` run reports).
///
/// Counter invariant, checked by tests: every state materialised in the
/// main loop is either pruned by the node filter or survives into a
/// frontier, so `states_explored == states_pruned + beam_occupancy_sum`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SeeStats {
    /// Partial solutions materialised across the whole run.
    pub states_explored: usize,
    /// Partial solutions dropped by the node filter (beam truncation).
    pub states_pruned: usize,
    /// Candidates rejected by the candidate filter's cost margin.
    pub cand_rejected_margin: usize,
    /// Candidates rejected by branch-factor truncation.
    pub cand_rejected_branch: usize,
    /// Frontier states offered to the Route Allocator after a no-candidate
    /// step (each is one rescue retry).
    pub route_attempts: usize,
    /// Nodes placed through the Route Allocator.
    pub routed_nodes: usize,
    /// Total extra hops those placements cost.
    pub routed_hops: u32,
    /// Placement steps executed (exact, never truncated).
    pub steps: usize,
    /// Σ frontier width over *all* placement steps (exact; the right-hand
    /// side of the `explored == pruned + occupancy` invariant).
    pub beam_occupancy_sum: usize,
    /// Total wall-clock nanoseconds across all placement steps (exact).
    pub step_time_total_ns: u64,
    /// Frontier width after beam filtering — a *sample* of the first
    /// [`STEP_SAMPLE_CAP`] placement steps (one entry per step up to the
    /// cap). Use [`SeeStats::beam_occupancy_sum`] for exact totals.
    pub beam_occupancy: Vec<usize>,
    /// Wall-clock nanoseconds per placement step (expansion + filtering +
    /// materialisation) — a sample of the first [`STEP_SAMPLE_CAP`] steps.
    /// Use [`SeeStats::step_time_total_ns`] for the exact total.
    pub step_time_ns: Vec<u64>,
    /// Peak of Σ [`PartialState::approx_bytes`] over the post-filter
    /// frontiers — the search's working-set high-water mark.
    pub peak_frontier_bytes: usize,
    /// Approximate heap footprint of the run's static [`RouteTable`]
    /// (all-pairs distance matrix + counters).
    pub route_table_bytes: usize,
    /// Admissible-path searches actually executed by the Route Allocator.
    pub route_bfs_runs: usize,
    /// Routing queries answered (or candidates rejected) from the static
    /// [`RouteTable`] without running a search.
    pub route_cache_hits: usize,
    /// Duplicate frontier states folded by content dedup (each counts the
    /// scoring + materialisation work avoided for one redundant state).
    pub frontier_deduped: usize,
    /// Frontier states removed by dominance pruning.
    pub dominance_pruned: usize,
    /// Deep [`PartialState`] clones taken on *trial* paths (candidate
    /// scoring, rescue routing, forward planning). The journalled in-place
    /// trial machinery replaced every one of them, so this is structurally
    /// zero — tests assert it, making a reintroduced per-trial clone fail
    /// loudly. Arena misses during survivor materialisation are not trial
    /// clones and are excluded.
    pub state_clones: usize,
    /// Heap bytes of the run's static arc numbering and candidate-mask
    /// tables ([`PgStatics::arc_table_bytes`](crate::statics::PgStatics)).
    pub arc_table_bytes: usize,
    /// High-water heap footprint of the state arena (retired `PartialState`
    /// buffers awaiting reuse by survivor materialisation).
    pub state_arena_bytes: usize,
    /// Candidates scored through lane batches of the batched scoring
    /// kernel. Zero when batching is off (`SeeConfig::batched_scoring` /
    /// `HCA_NO_BATCH`).
    pub lanes_scored: usize,
    /// Lane batches flushed by the batched scoring kernel (each scores up
    /// to [`crate::assignable::LANES`] candidates in one pass; sub-width
    /// remainders flush as one partial batch at their real width).
    pub lane_batches: usize,
    /// Candidates scored by the scalar reference path while batching was
    /// on: views the lane fold cannot express, plus expansions too small
    /// to repay batch setup.
    pub scalar_tail: usize,
    /// The winning state's MII matched the shared admissible floor
    /// ([`SeeConfig::mii_bound`]) with zero copies: the result is provably
    /// optimal and the portfolio driver may skip every remaining
    /// escalation tier. Always `false` without a bound (beam-only mode).
    pub bound_exit: bool,
}

impl SeeStats {
    /// Fold one placement step into the stats: exact totals always, the
    /// per-step sample vectors only up to [`STEP_SAMPLE_CAP`] entries.
    pub fn record_step(&mut self, occupancy: usize, ns: u64) {
        self.steps += 1;
        self.beam_occupancy_sum += occupancy;
        self.step_time_total_ns += ns;
        if self.beam_occupancy.len() < STEP_SAMPLE_CAP {
            self.beam_occupancy.push(occupancy);
            self.step_time_ns.push(ns);
        }
    }
}

/// Result of a successful SEE run.
#[derive(Clone, Debug)]
pub struct SeeOutcome {
    /// The assigned Pattern Graph (`DDG̅` + `cpy` labels).
    pub assigned: AssignedPg,
    /// Final objective value.
    pub cost: f64,
    /// Estimated MII of the clusterised working set (§4.2):
    /// `max(mii_rec, mii_issue, mii_arc, 1)`. The component fields below
    /// say which constraint bound it — the basis of `hca explain`'s MII
    /// attribution.
    pub est_mii: u32,
    /// Issue-pressure component of the estimate (peak cluster issue load).
    pub mii_issue: u32,
    /// Arc/wire-pressure component of the estimate.
    pub mii_arc: u32,
    /// Search statistics.
    pub stats: SeeStats,
}

/// The Space Exploration Engine.
pub struct See<'a> {
    pub(crate) ctx: SeeContext<'a>,
    pub(crate) config: SeeConfig,
    /// Static all-pairs reachability of `ctx.pg`, shared by every routing
    /// query of the run (also owns the run's routing counters).
    pub(crate) rt: RouteTable,
    /// Search-trace recorder; disabled by default (one branch per step).
    tracer: hca_obs::SearchTracer,
}

impl<'a> See<'a> {
    /// Prepare a run over `ddg` (restricted later to a working set) against
    /// the Pattern Graph `pg` under `constraints`.
    pub fn new(
        ddg: &'a Ddg,
        analysis: &'a DdgAnalysis,
        pg: &'a Pg,
        constraints: ArchConstraints,
        config: SeeConfig,
    ) -> Self {
        let ctx = SeeContext {
            ddg,
            analysis,
            pg,
            constraints,
            weights: config.weights,
            issue_cap: config.issue_cap,
            statics: crate::statics::PgStatics::build(pg),
        };
        let rt = RouteTable::build(pg);
        See {
            ctx,
            config,
            rt,
            tracer: hca_obs::SearchTracer::disabled(),
        }
    }

    /// Attach a search-trace recorder (builder style). Every placement step
    /// of subsequent [`run`](See::run)s emits one
    /// [`TraceRecord`](hca_obs::TraceRecord); a disabled tracer keeps the
    /// hot loop at a single branch.
    pub fn with_tracer(mut self, tracer: hca_obs::SearchTracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Assign the `working_set` (the whole DDG when `None`).
    pub fn run(&self, working_set: Option<&[NodeId]>) -> Result<SeeOutcome, SeeError> {
        if let Some(ws) = working_set {
            for &n in ws {
                if n.index() >= self.ctx.ddg.num_nodes() {
                    return Err(SeeError::UnknownNode { node: n });
                }
            }
        }
        let order = PriorityOrder::compute(
            self.ctx.ddg,
            self.ctx.analysis,
            working_set,
            self.config.priority,
        );
        let cand_filter = CandidateFilter {
            branch_factor: self.config.branch_factor,
            margin: self.config.candidate_margin,
        };
        let node_filter = NodeFilter {
            beam_width: self.config.beam_width,
        };

        let ws_nodes: Vec<NodeId> = order.nodes().to_vec();
        let mut frontier = vec![PartialState::initial(&self.ctx, &ws_nodes)];
        let mut stats = SeeStats::default();
        // Routing counters are per-run: clear whatever an earlier (possibly
        // failed) run on this instance left behind.
        let _ = self.rt.take_counters();

        // Arena of retired states, recycled into materialisation; `freed` is
        // the reusable hand-off buffer the filter passes fill for it.
        let mut pool = StatePool::default();
        let mut freed: Vec<PartialState> = Vec::new();

        // Pass-through values are resolved *first*: routing an external value
        // to its forwarding cluster while every port is still free always
        // succeeds, and the unary fan-in constraint then steers the wire's
        // remaining (internal) values onto the same feeder during the main
        // loop. Resolving them last instead would find the feeder cluster
        // already walled in by unrelated port usage.
        frontier = self.resolve_forwards(frontier, &mut pool)?;
        node_filter.apply(&mut frontier);

        // The frontier is held *virtually* from here on: `distinct` owns one
        // copy of each distinct state, `slots` maps beam positions onto it.
        // All filtering boundaries, per-slot statistics and the final
        // arg-min run over beam positions in their original order, so the
        // search outcome is bit-identical to the materialised beam while
        // duplicate states are scored and expanded once.
        let mut distinct = frontier;
        let mut slots: Vec<usize> = (0..distinct.len()).collect();
        stats.frontier_deduped +=
            crate::frontier::content_merge(&mut distinct, &mut slots, &mut freed);
        pool.put_all(&mut freed);
        // Read the escape hatches once per run: a mid-run environment change
        // must not make one search internally inconsistent.
        let dominance_on = self.config.dominance && std::env::var_os("HCA_NO_DOMINANCE").is_none();
        let batched_on = self.config.batched_scoring && std::env::var_os("HCA_NO_BATCH").is_none();
        // Lane-kernel tuning knobs (result-transparent): environment beats
        // config beats built-in defaults; read once so a mid-run change
        // cannot make one search internally inconsistent.
        let env_usize = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        };
        let scalar_cutoff = env_usize("HCA_SCALAR_CUTOFF")
            .or(self.config.scalar_cutoff)
            .unwrap_or(crate::assignable::SCALAR_CUTOFF);
        let lane_width = env_usize("HCA_LANES")
            .or(self.config.lane_width)
            .unwrap_or(crate::assignable::LANES)
            .clamp(1, crate::assignable::LANES);
        let trace_on = self.tracer.is_enabled();

        for (step_idx, &n) in (0u32..).zip(order.nodes()) {
            let step_t0 = Instant::now();
            // Pre-step counter snapshot so the trace can report per-step
            // deltas; only taken when a tracer is attached.
            let pre = if trace_on {
                Some((
                    stats.states_explored,
                    stats.states_pruned,
                    stats.cand_rejected_margin,
                    stats.cand_rejected_branch,
                    stats.frontier_deduped,
                    stats.dominance_pruned,
                ))
            } else {
                None
            };
            let mut top_cands: Vec<(u32, f64)> = Vec::new();
            let mut rescued_step = false;
            // Score every (state, cluster) candidate *in place*: apply the
            // assignment, read the objective, undo — no clone per trial.
            // Distinct states are independent; each hca-par worker owns a
            // contiguous chunk and results come back in input order, so the
            // merge below is scheduling-independent.
            let scored: Vec<(CandList, CandidatePruning, crate::filters::LaneStats)> =
                hca_par::par_map_mut(&mut distinct, |st| {
                    // Operand/result placements are candidate-independent:
                    // read them once per state, not once per cluster probe.
                    // The view's bitmask AND already folded every static
                    // screen (executability, producer/consumer potential,
                    // output fan-in), so the scoring below touches only the
                    // clusters that survive it — in the same ascending id
                    // order the full probe scanned — and re-checks just the
                    // port/budget conditions that depend on mutable state.
                    let view = crate::assignable::node_view(&self.ctx, st, n);
                    let mut cands: CandList = CandList::new();
                    let mut lane_stats = crate::filters::LaneStats::default();
                    if batched_on {
                        // Batched lane kernel: gather the surviving
                        // candidates into contiguous lane buffers, score
                        // LANES per pass — bit-identical to the scalar
                        // trials (asserted per candidate in debug builds).
                        crate::assignable::score_candidates_batched_tuned(
                            &self.ctx,
                            st,
                            &view,
                            n,
                            &mut cands,
                            &mut lane_stats,
                            scalar_cutoff,
                            lane_width,
                        );
                    } else {
                        for c in view.candidates() {
                            // Mutation-free trial: one pass re-checks the
                            // dynamic screens and replays apply's aggregate
                            // arithmetic against locals, bit-exact with the
                            // journalled apply-read-undo path (asserted
                            // below).
                            let scored =
                                crate::assignable::score_if_assignable(&self.ctx, st, &view, n, c);
                            #[cfg(debug_assertions)]
                            {
                                debug_assert_eq!(
                                    scored.is_some(),
                                    crate::assignable::assignable_dynamic(
                                        &self.ctx,
                                        st,
                                        &view,
                                        n,
                                        c
                                    ),
                                    "fused screen disagrees with assignable_dynamic for {n:?} @ {c:?}"
                                );
                                if let Some(cost) = scored {
                                    let undo = st.apply_assign_logged(&self.ctx, n, c);
                                    debug_assert_eq!(
                                        cost.to_bits(),
                                        st.cost.to_bits(),
                                        "score_if_assignable diverged from apply for {n:?} @ {c:?}"
                                    );
                                    st.undo_assign(&self.ctx, undo);
                                }
                            }
                            let Some(cost) = scored else { continue };
                            cands.push((c, cost));
                        }
                    }
                    let pruning = cand_filter.apply(&mut cands);
                    (cands, pruning, lane_stats)
                });
            // Lane counters accrue once per *distinct* state (the lane work
            // ran once per distinct state too); `par_map_mut` returns in
            // input order, so the sums are thread-count invariant.
            for (_, _, ls) in &scored {
                stats.lanes_scored += ls.lanes_scored;
                stats.lane_batches += ls.lane_batches;
                stats.scalar_tail += ls.scalar_tail;
            }

            // Merge deterministically as (beam slot, cluster, cost) tuples,
            // in (beam order, per-state candidate order) — the exact
            // sequence the materialised beam forked in. Candidate-filter
            // rejections count once per *slot*: a deduplicated state prunes
            // on behalf of each beam position it stands in for.
            let mut merged: Vec<(usize, PgNodeId, f64)> = Vec::new();
            for (si, &di) in slots.iter().enumerate() {
                let (cands, pruning, _) = &scored[di];
                stats.cand_rejected_margin += pruning.by_margin;
                stats.cand_rejected_branch += pruning.by_branch;
                merged.extend(cands.iter().map(|&(c, cost)| (si, c, cost)));
            }

            if merged.is_empty() {
                // No-candidates action (paper §3): route from the best states.
                if !self.config.enable_router {
                    return Err(SeeError::NoCandidates { node: n });
                }
                stats.route_attempts += slots.len();
                // Trials run in place (journalled + rolled back) and the
                // winning candidate per distinct state is *committed* in
                // place — the parent was about to be discarded anyway, so
                // the rescue path performs zero state clones. A state the
                // router cannot rescue comes back bit-identical (rolled
                // back) and retires to the arena below.
                let ok: Vec<bool> = hca_par::par_map_mut(&mut distinct, |st| {
                    route_assign_commit(&self.ctx, &self.rt, st, n, self.config.max_route_hops)
                });
                let mut new_slots: Vec<usize> =
                    slots.iter().copied().filter(|&di| ok[di]).collect();
                if new_slots.is_empty() {
                    return Err(SeeError::NoCandidates { node: n });
                }
                stats.routed_nodes += new_slots.len();
                stats.states_explored += new_slots.len();
                // The node filter, virtually: the same stable sort over beam
                // positions, then beam-width truncation.
                new_slots.sort_by(|&a, &b| distinct[a].cost.total_cmp(&distinct[b].cost));
                if trace_on {
                    rescued_step = true;
                    top_cands = new_slots
                        .iter()
                        .take(hca_obs::trace::TOP_K)
                        .map(|&ci| {
                            let c = distinct[ci].cluster_of(n).map_or(u32::MAX, |c| c.0);
                            (c, distinct[ci].cost)
                        })
                        .collect();
                }
                let kept = new_slots.len().min(node_filter.beam_width);
                stats.states_pruned += new_slots.len() - kept;
                new_slots.truncate(kept);
                // Retire failed rescues and states that lost all their slots.
                let mut used = vec![false; distinct.len()];
                for &ci in &new_slots {
                    used[ci] = true;
                }
                let mut new_idx = vec![usize::MAX; distinct.len()];
                let old = std::mem::take(&mut distinct);
                for (i, st) in old.into_iter().enumerate() {
                    if used[i] {
                        new_idx[i] = distinct.len();
                        distinct.push(st);
                    } else {
                        pool.put(st);
                    }
                }
                for s in new_slots.iter_mut() {
                    *s = new_idx[*s];
                }
                slots = new_slots;
                // Rescues from different parents can converge on identical
                // states — fold them.
                stats.frontier_deduped +=
                    crate::frontier::content_merge(&mut distinct, &mut slots, &mut freed);
                pool.put_all(&mut freed);
            } else {
                // Beam-filter on the scored tuples (same stable sort the
                // node filter uses), then materialise *only* the survivors.
                stats.states_explored += merged.len();
                merged.sort_by(|a, b| a.2.total_cmp(&b.2));
                if trace_on {
                    top_cands = merged
                        .iter()
                        .take(hca_obs::trace::TOP_K)
                        .map(|&(_, c, cost)| (c.0, cost))
                        .collect();
                }
                let kept = merged.len().min(node_filter.beam_width);
                stats.states_pruned += merged.len() - kept;
                merged.truncate(kept);
                // Fold surviving forks that share a (parent, cluster) pair:
                // their children are bit-identical by construction, so each
                // pair is materialised once and its beam slots share it.
                let mut pairs: Vec<(usize, PgNodeId)> = Vec::new();
                let mut new_slots: Vec<usize> = Vec::with_capacity(merged.len());
                for &(si, c, _) in &merged {
                    let key = (slots[si], c);
                    let idx = match pairs.iter().position(|&p| p == key) {
                        Some(i) => i,
                        None => {
                            pairs.push(key);
                            pairs.len() - 1
                        }
                    };
                    new_slots.push(idx);
                }
                stats.frontier_deduped += merged.len() - pairs.len();
                // The last child of each parent takes it by move; earlier
                // children copy onto recycled arena states. Applying the
                // logged assignment replays the scored trial bit-exactly
                // (undo restored the parent state).
                let mut uses = vec![0usize; distinct.len()];
                for &(di, _) in &pairs {
                    uses[di] += 1;
                }
                let mut parents: Vec<Option<PartialState>> = distinct.drain(..).map(Some).collect();
                for (di, c) in pairs {
                    uses[di] -= 1;
                    let mut child = if uses[di] == 0 {
                        parents[di].take().expect("last use moves the parent")
                    } else {
                        pool.take_clone_of(
                            parents[di].as_ref().expect("parent live until last use"),
                        )
                    };
                    child.apply_assign(&self.ctx, n, c);
                    distinct.push(child);
                }
                // Parents whose every child was beam-pruned retire.
                for p in parents.into_iter().flatten() {
                    pool.put(p);
                }
                slots = new_slots;
                // Children of *different* parents can also converge on
                // identical states — fold those too.
                stats.frontier_deduped +=
                    crate::frontier::content_merge(&mut distinct, &mut slots, &mut freed);
                pool.put_all(&mut freed);
            }

            if dominance_on {
                let removed =
                    crate::frontier::prune_dominated(&mut distinct, &mut slots, &mut freed);
                pool.put_all(&mut freed);
                stats.dominance_pruned += removed;
                // Dominance removals count as pruned states so the
                // explored == pruned + Σ occupancy invariant keeps holding.
                stats.states_pruned += removed;
            }

            // Memory accounting stays in beam terms: each slot charges its
            // state's footprint, as the materialised beam would have.
            let sizes: Vec<usize> = distinct.iter().map(PartialState::approx_bytes).collect();
            let frontier_bytes: usize = slots.iter().map(|&di| sizes[di]).sum();
            stats.peak_frontier_bytes = stats.peak_frontier_bytes.max(frontier_bytes);
            let step_ns = u64::try_from(step_t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            stats.record_step(slots.len(), step_ns);
            if trace_on {
                let (e0, p0, m0, b0, d0, dom0) = pre.expect("snapshot taken when tracing");
                self.tracer.record(|| hca_obs::TraceRecord {
                    kind: hca_obs::trace::kind::STEP.to_string(),
                    step: step_idx,
                    node: n.0,
                    beam: slots.len() as u32,
                    explored: (stats.states_explored - e0) as u64,
                    pruned_beam: (stats.states_pruned - p0) as u64,
                    rej_margin: (stats.cand_rejected_margin - m0) as u64,
                    rej_branch: (stats.cand_rejected_branch - b0) as u64,
                    deduped: (stats.frontier_deduped - d0) as u64,
                    dominated: (stats.dominance_pruned - dom0) as u64,
                    rescued: rescued_step,
                    ns: step_ns,
                    cands: std::mem::take(&mut top_cands),
                    ..hca_obs::TraceRecord::default()
                });
            }
        }

        // First beam slot with minimal cost, exactly as `min_by` picked the
        // first minimum of the materialised frontier.
        let best_di = {
            let mut best: Option<usize> = None;
            for &di in &slots {
                let better = match best {
                    None => true,
                    Some(b) => distinct[di].cost.total_cmp(&distinct[b].cost).is_lt(),
                };
                if better {
                    best = Some(di);
                }
            }
            best.expect("frontier never empties after a successful loop")
        };
        let best = distinct.swap_remove(best_di);
        stats.routed_hops = best.routed_hops;
        // Fold the run's routing counters in. Each skip/search event happens
        // deterministically per candidate regardless of which worker
        // evaluates it, so these sums are thread-count invariant.
        let (bfs_runs, cache_hits) = self.rt.take_counters();
        stats.route_bfs_runs = bfs_runs;
        stats.route_cache_hits = cache_hits;
        stats.route_table_bytes = self.rt.approx_bytes();
        stats.arc_table_bytes = self.ctx.statics.arc_table_bytes();
        stats.state_arena_bytes = pool.high_water;
        let cost = best.cost;
        let est_mii = best.estimated_mii(&self.ctx);
        let (mii_issue, mii_arc) = (best.mii_issue, best.mii_arc);
        // Proven-bound early exit (bound sharing): MII at the admissible
        // floor with zero copies means the solution score is at its global
        // minimum — report the cut so the portfolio driver can skip the
        // remaining escalation tiers without changing any output.
        if let Some(bound) = self.config.mii_bound {
            stats.bound_exit = est_mii <= bound && best.total_copies == 0;
        }
        Ok(SeeOutcome {
            assigned: best.into_assigned(self.ctx.pg),
            cost,
            est_mii,
            mii_issue,
            mii_arc,
            stats,
        })
    }

    /// Deterministic *layered fallback*: the working set is cut into
    /// `arity` contiguous chunks of its SCC-condensation topological order
    /// (so all dataflow between chunks points forward), chunk `i` goes to
    /// the `i`-th cluster of a relay chain, glue wires are seated at (or
    /// before) their earliest consumer's chunk, and every value rides the
    /// chain forward to its consumers and output wires. Unlike
    /// [`chain_fallback`](See::chain_fallback) this spreads the issue load
    /// across all members; it fails (returns `None`) when a loop-carried
    /// dependence points backward across chunks or the wires cannot be
    /// seated — the caller then drops to the single-host chain.
    pub fn layered_fallback(&self, working_set: Option<&[NodeId]>) -> Option<SeeOutcome> {
        use hca_pg::PgNodeKind;
        let ctx = &self.ctx;
        let ws: Vec<NodeId> = match working_set {
            Some(w) => w.to_vec(),
            None => ctx.ddg.node_ids().collect(),
        };
        let chain: Vec<PgNodeId> = ctx.pg.cluster_ids().collect();
        let arity = chain.len();
        if arity == 0
            || chain
                .windows(2)
                .any(|w| !ctx.statics.is_potential(w[0], w[1]))
        {
            return None;
        }

        // SCC-contiguous topological order of the working set.
        let topo_pos: rustc_hash::FxHashMap<NodeId, usize> = ctx
            .analysis
            .topo
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect();
        let scc = &ctx.analysis.scc;
        let mut scc_first: rustc_hash::FxHashMap<u32, usize> = rustc_hash::FxHashMap::default();
        for &n in &ws {
            let e = scc_first.entry(scc[n.index()]).or_insert(usize::MAX);
            *e = (*e).min(topo_pos[&n]);
        }
        let mut ordered = ws.clone();
        ordered.sort_by_key(|&n| (scc_first[&scc[n.index()]], scc[n.index()], topo_pos[&n]));

        // Chunk without splitting SCCs; balanced by node count.
        let target = ordered.len().div_ceil(arity).max(1);
        let mut chunk_of: rustc_hash::FxHashMap<NodeId, usize> = rustc_hash::FxHashMap::default();
        let mut chunk = 0usize;
        let mut in_chunk = 0usize;
        for (i, &n) in ordered.iter().enumerate() {
            let scc_boundary = i == 0 || scc[n.index()] != scc[ordered[i - 1].index()];
            if in_chunk >= target && scc_boundary && chunk + 1 < arity {
                chunk += 1;
                in_chunk = 0;
            }
            if !ctx.pg.node(chain[chunk]).rt.can_execute(ctx.ddg.node(n).op) {
                return None; // heterogeneous machine: let the caller decide
            }
            chunk_of.insert(n, chunk);
            in_chunk += 1;
        }
        // Loop-carried dependences must not point backward across chunks.
        for e in ctx.ddg.edges() {
            if let (Some(&cu), Some(&cv)) = (chunk_of.get(&e.src), chunk_of.get(&e.dst)) {
                if cv < cu {
                    return None;
                }
            }
        }

        // Seat the consumed glue wires at (or before) their earliest
        // consumer's chunk. Port budget: one chain-in port everywhere but
        // the head.
        let ws_set: rustc_hash::FxHashSet<NodeId> = ws.iter().copied().collect();
        let max_in = ctx.constraints.max_in_neighbors as usize;
        let mut wires: Vec<(PgNodeId, Vec<NodeId>, usize)> = Vec::new(); // (input, values, earliest)
        for inp in ctx.pg.input_ids() {
            let PgNodeKind::Input { values, .. } = &ctx.pg.node(inp).kind else {
                unreachable!()
            };
            let mut needed = Vec::new();
            let mut earliest = arity - 1; // pass-through can exit anywhere
            for &v in values {
                if ws_set.contains(&v) {
                    continue; // produced here — never sourced from a wire
                }
                let consumed: Vec<usize> = ctx
                    .ddg
                    .succ_edges(v)
                    .filter(|(_, e)| ws_set.contains(&e.dst))
                    .map(|(_, e)| chunk_of[&e.dst])
                    .collect();
                let pass = !ctx.statics.outputs_carrying(v).is_empty();
                if consumed.is_empty() && !pass {
                    continue;
                }
                if let Some(&min) = consumed.iter().min() {
                    earliest = earliest.min(min);
                }
                needed.push(v);
            }
            if !needed.is_empty() {
                wires.push((inp, needed, earliest));
            }
        }
        wires.sort_by_key(|(_, _, e)| *e);
        let mut seat_load = vec![0usize; arity];
        let mut seats: Vec<usize> = Vec::with_capacity(wires.len());
        for (_, _, earliest) in &wires {
            let mut placed = None;
            for (i, load) in seat_load.iter_mut().enumerate().take(earliest + 1) {
                let cap = if i == 0 {
                    max_in
                } else {
                    max_in.saturating_sub(1)
                };
                if *load < cap {
                    *load += 1;
                    placed = Some(i);
                    break;
                }
            }
            seats.push(placed?);
        }

        // Apply: glue copies, chain forwarding, placements, outputs.
        let mut st = PartialState::initial(ctx, &ws);
        let mut avail: rustc_hash::FxHashMap<NodeId, usize> = rustc_hash::FxHashMap::default();
        for ((inp, values, _), &seat) in wires.iter().zip(&seats) {
            for &v in values {
                st.add_copy(ctx, v, *inp, chain[seat], None, false);
                avail.insert(v, seat);
            }
        }
        let carry_forward = |st: &mut PartialState,
                             avail: &mut rustc_hash::FxHashMap<NodeId, usize>,
                             v: NodeId,
                             to: usize| {
            let from = avail[&v];
            for k in from..to {
                st.add_copy(ctx, v, chain[k], chain[k + 1], None, false);
                st.routed_hops += 1;
            }
            if to > from {
                avail.insert(v, to);
            }
        };
        for &n in &ordered {
            let here = chunk_of[&n];
            st.place(ctx, n, chain[here]);
            for (_, e) in ctx.ddg.pred_edges(n) {
                if ctx.ddg.node(e.src).op == hca_ddg::Opcode::Const {
                    continue;
                }
                if let Some(&from) = avail.get(&e.src) {
                    if from < here {
                        carry_forward(&mut st, &mut avail, e.src, here);
                    }
                } else if let Some(&cu) = chunk_of.get(&e.src) {
                    if cu < here {
                        avail.insert(e.src, cu);
                        carry_forward(&mut st, &mut avail, e.src, here);
                    }
                }
            }
            avail.entry(n).or_insert(here);
        }
        for o in ctx.pg.output_ids() {
            let PgNodeKind::Output { values, .. } = &ctx.pg.node(o).kind else {
                unreachable!()
            };
            // Unary fan-in: one feeder — the latest chunk any value sits in.
            let feeder = values
                .iter()
                .filter_map(|v| avail.get(v).copied().or_else(|| chunk_of.get(v).copied()))
                .max()
                .unwrap_or(0);
            for &v in values {
                let known = avail.contains_key(&v) || chunk_of.contains_key(&v);
                if !known {
                    continue; // value never arrives; constraints::check will flag it
                }
                avail.entry(v).or_insert_with(|| chunk_of[&v]);
                carry_forward(&mut st, &mut avail, v, feeder);
                st.add_copy(ctx, v, chain[feeder], o, None, false);
                if ctx.pg.input_carrying(v).is_some() && !chunk_of.contains_key(&v) {
                    st.charge_issue(ctx, chain[feeder], 1);
                    st.push_forward(v, chain[feeder]);
                }
            }
        }

        st.cost = crate::cost::objective(&self.ctx, &st);
        let cost = st.cost;
        let est_mii = st.estimated_mii(&self.ctx);
        let (mii_issue, mii_arc) = (st.mii_issue, st.mii_arc);
        let routed_hops = st.routed_hops;
        Some(SeeOutcome {
            assigned: st.into_assigned(ctx.pg),
            cost,
            est_mii,
            mii_issue,
            mii_arc,
            stats: SeeStats {
                states_explored: 1,
                // One state built, one state kept: keeps the documented
                // `explored == pruned + occupancy` split exact for
                // fallback outcomes too.
                steps: 1,
                beam_occupancy_sum: 1,
                beam_occupancy: vec![1],
                routed_nodes: ws.len(),
                routed_hops,
                route_table_bytes: self.rt.approx_bytes(),
                arc_table_bytes: ctx.statics.arc_table_bytes(),
                ..SeeStats::default()
            },
        })
    }

    /// Deterministic *chain fallback* — the completion backstop behind the
    /// beam search. Binds the consumed glue-in wires along a relay chain of
    /// clusters (`c0 → c1 → … → host`), places the **entire** working set on
    /// the final `host` cluster and feeds every output wire from there:
    ///
    /// * each cluster spends at most one input port on its chain
    ///   predecessor, the rest on glue wires, so the layout is always
    ///   port-feasible when the consumed wires fit `max_in + (A−1)·(max_in−1)`;
    /// * wire pressure and host issue load are terrible — this is a
    ///   *legality* device for the rare sub-problem the search cannot crack,
    ///   priced accordingly by the caller.
    pub fn chain_fallback(&self, working_set: Option<&[NodeId]>) -> Option<SeeOutcome> {
        use hca_pg::PgNodeKind;
        let ctx = &self.ctx;
        let ws: Vec<NodeId> = match working_set {
            Some(w) => w.to_vec(),
            None => ctx.ddg.node_ids().collect(),
        };
        let clusters: Vec<PgNodeId> = ctx.pg.cluster_ids().collect();
        let host = *clusters.iter().rev().find(|&&c| {
            ws.iter()
                .all(|&n| ctx.pg.node(c).rt.can_execute(ctx.ddg.node(n).op))
        })?;
        let mut chain: Vec<PgNodeId> = clusters.iter().copied().filter(|&c| c != host).collect();
        chain.push(host);
        if chain
            .windows(2)
            .any(|w| !ctx.statics.is_potential(w[0], w[1]))
        {
            return None;
        }

        // Which externally produced values must actually arrive?
        let ws_set: rustc_hash::FxHashSet<NodeId> = ws.iter().copied().collect();
        let mut bindings: Vec<(PgNodeId, Vec<NodeId>)> = Vec::new();
        for inp in ctx.pg.input_ids() {
            let PgNodeKind::Input { values, .. } = &ctx.pg.node(inp).kind else {
                unreachable!()
            };
            let needed: Vec<NodeId> = values
                .iter()
                .copied()
                .filter(|&v| {
                    if ws_set.contains(&v) {
                        return false; // produced here — never sourced from a wire
                    }
                    let consumed = ctx.ddg.succ_edges(v).any(|(_, e)| ws_set.contains(&e.dst));
                    let pass_through = !ctx.statics.outputs_carrying(v).is_empty();
                    consumed || pass_through
                })
                .collect();
            if !needed.is_empty() {
                bindings.push((inp, needed));
            }
        }

        // Seat the consumed wires along the chain: the head may fill all its
        // ports with glue; everyone else keeps one port for the chain.
        let max_in = ctx.constraints.max_in_neighbors as usize;
        if max_in == 0 && !bindings.is_empty() {
            return None;
        }
        let mut st = PartialState::initial(ctx, &ws);
        let mut next_binding = 0usize;
        for (ci, &cluster) in chain.iter().enumerate() {
            let capacity = if ci == 0 { max_in } else { max_in - 1 };
            for _ in 0..capacity {
                let Some((inp, values)) = bindings.get(next_binding) else {
                    break;
                };
                next_binding += 1;
                for &v in values {
                    st.add_copy(ctx, v, *inp, cluster, None, false);
                    for hop in chain.windows(2).skip(ci) {
                        st.add_copy(ctx, v, hop[0], hop[1], None, false);
                        st.routed_hops += 1;
                    }
                }
            }
        }
        if next_binding < bindings.len() {
            return None; // more consumed wires than the chain can seat
        }

        // All the work on the host; outputs fed from there.
        for &n in &ws {
            st.place(ctx, n, host);
            if ctx.ddg.node(n).op != hca_ddg::Opcode::Const {
                for &o in ctx.statics.outputs_carrying(n) {
                    st.add_copy(ctx, n, host, o, None, false);
                }
            }
        }
        for o in ctx.pg.output_ids() {
            if let PgNodeKind::Output { values, .. } = &ctx.pg.node(o).kind {
                for &v in values {
                    if ctx.pg.input_carrying(v).is_some() && !ws_set.contains(&v) {
                        st.add_copy(ctx, v, host, o, None, false);
                        st.charge_issue(ctx, host, 1);
                        st.push_forward(v, host);
                    }
                }
            }
        }
        st.cost = crate::cost::objective(&self.ctx, &st);
        let cost = st.cost;
        let est_mii = st.estimated_mii(&self.ctx);
        let (mii_issue, mii_arc) = (st.mii_issue, st.mii_arc);
        let routed_hops = st.routed_hops;
        Some(SeeOutcome {
            assigned: st.into_assigned(ctx.pg),
            cost,
            est_mii,
            mii_issue,
            mii_arc,
            stats: SeeStats {
                states_explored: 1,
                // One state built, one state kept: keeps the documented
                // `explored == pruned + occupancy` split exact for
                // fallback outcomes too.
                steps: 1,
                beam_occupancy_sum: 1,
                beam_occupancy: vec![1],
                routed_nodes: ws.len(),
                routed_hops,
                route_table_bytes: self.rt.approx_bytes(),
                arc_table_bytes: ctx.statics.arc_table_bytes(),
                ..SeeStats::default()
            },
        })
    }

    /// Resolve pass-through values: an output special node may list a value
    /// that is produced *outside* this sub-problem (it arrived on a glue-in
    /// wire and must leave on a glue-out wire). Hardware-wise some cluster
    /// must receive it and re-emit it — a `Route` op costing one issue slot
    /// plus the receive. Pick the cheapest admissible forwarding cluster per
    /// frontier state; states with no admissible cluster are dropped.
    pub(crate) fn resolve_forwards(
        &self,
        mut frontier: Vec<PartialState>,
        pool: &mut StatePool,
    ) -> Result<Vec<PartialState>, SeeError> {
        // Collect (output node, value) tasks whose producer is external.
        let mut tasks: Vec<(PgNodeId, NodeId)> = Vec::new();
        for o in self.ctx.pg.output_ids() {
            if let hca_pg::PgNodeKind::Output { values, .. } = &self.ctx.pg.node(o).kind {
                for &v in values {
                    if self.ctx.pg.input_carrying(v).is_some() {
                        tasks.push((o, v));
                    }
                }
            }
        }
        if tasks.is_empty() {
            return Ok(frontier);
        }
        // Group tasks per output node: all its pass-through values must be
        // emitted by one feeder cluster (unary fan-in), so they are planned
        // together — otherwise early values bind the feeder's input ports
        // directly and leave later ones unroutable.
        let mut grouped: Vec<(PgNodeId, Vec<NodeId>)> = Vec::new();
        for (o, v) in tasks {
            match grouped.iter_mut().find(|(go, _)| *go == o) {
                Some((_, vs)) => vs.push(v),
                None => grouped.push((o, vec![v])),
            }
        }
        let node_filter = NodeFilter {
            beam_width: self.config.beam_width,
        };
        for (o, values) in grouped {
            // Frontier states are independent; trial each one's candidate
            // feeders *in place* (journalled + rolled back — no clone per
            // trial) in parallel, keeping only the winning feeder ids.
            let kept: Vec<Vec<PgNodeId>> = hca_par::par_map_mut(&mut frontier, |st| {
                // Unary fan-in: if the wire already has a feeder, it is the
                // only admissible forwarder; otherwise fork over the best
                // few choices for beam diversity.
                let candidates: Vec<PgNodeId> = if st.in_neighbors.is_empty(o.index()) {
                    self.ctx.pg.cluster_ids().collect()
                } else {
                    st.in_neighbors.iter(o.index()).collect()
                };
                let mut trials: Vec<(PgNodeId, f64)> = Vec::new();
                for c in candidates {
                    if !self.ctx.pg.node(c).kind.is_cluster() {
                        continue;
                    }
                    if let Some(cost) = self.forward_values_via(st, o, &values, c, true) {
                        trials.push((c, cost));
                    }
                }
                trials.sort_by(|a, b| a.1.total_cmp(&b.1));
                trials.truncate(self.config.branch_factor.max(1));
                trials.into_iter().map(|(c, _)| c).collect()
            });
            // Materialise in (frontier order, per-state cost order) — the
            // exact concatenation order the cloned trials arrived in. The
            // last kept feeder takes the parent by move; earlier ones copy
            // onto recycled arena states and replay their trial (the trial
            // logic is deterministic, so the replay is bit-exact).
            let mut next: Vec<PartialState> = Vec::new();
            let old = std::mem::take(&mut frontier);
            for (mut st, ks) in old.into_iter().zip(kept) {
                let Some((&last, rest)) = ks.split_last() else {
                    pool.put(st); // no admissible feeder in this state
                    continue;
                };
                for &c in rest {
                    let mut child = pool.take_clone_of(&st);
                    self.forward_values_via(&mut child, o, &values, c, false)
                        .expect("kept feeder replays deterministically");
                    next.push(child);
                }
                self.forward_values_via(&mut st, o, &values, last, false)
                    .expect("kept feeder replays deterministically");
                next.push(st);
            }
            if next.is_empty() {
                return Err(SeeError::NoCandidates { node: values[0] });
            }
            node_filter.apply(&mut next);
            frontier = next;
        }
        Ok(frontier)
    }

    /// Deliver every external `value` of output node `o` to feeder `c` and
    /// emit them on the glue wire. Direct routes first; once `c` is down to
    /// its last input port the remaining values share one relay cluster
    /// (whose single output wire carries them all into `c`).
    ///
    /// Runs in place on `st` under one journal. With `evaluate` set the
    /// whole attempt is rolled back and only its objective value returned
    /// (the caller re-applies the winners); otherwise the mutations stay
    /// committed. `None` means no admissible forwarding exists — `st` is
    /// rolled back either way. Within one attempt the journal is
    /// deliberately *not* rolled back when a direct route fails and the
    /// relay branch takes over: the failed route's partial copies stay, as
    /// they always have (the cost function prices them, and the historical
    /// search trajectory depends on it).
    fn forward_values_via(
        &self,
        st: &mut PartialState,
        o: PgNodeId,
        values: &[NodeId],
        c: PgNodeId,
        evaluate: bool,
    ) -> Option<f64> {
        let ctx = &self.ctx;
        let max_in = ctx.constraints.max_in_neighbors as usize;
        let mut txn = st.txn_begin();
        let mut relay: Option<PgNodeId> = None;
        for &v in values {
            let Some(inp) = st.cluster_of(v) else {
                continue; // produced internally after all
            };
            if ctx.pg.node(inp).kind.is_cluster() {
                continue; // internal producer feeds o itself
            }
            let ports_left = max_in.saturating_sub(st.in_neighbors.len(c.index()));
            let more_after_this = values.iter().skip_while(|&&x| x != v).count() > 1;
            let direct_ok = st.in_neighbors.contains(c.index(), inp)
                || ports_left > usize::from(more_after_this && relay.is_none());
            if direct_ok
                && crate::route::route_value(
                    ctx,
                    &self.rt,
                    st,
                    v,
                    inp,
                    c,
                    self.config.max_route_hops,
                    &mut txn,
                )
                .is_some()
            {
                // delivered directly (or over an already-open path)
            } else {
                // Funnel through the shared relay.
                let r = match relay {
                    Some(r) => r,
                    None => {
                        let found = ctx.pg.cluster_ids().find(|&r| {
                            r != c
                                && ctx.statics.is_potential(r, c)
                                && (st.in_neighbors.contains(c.index(), r)
                                    || st.in_neighbors.len(c.index()) < max_in)
                        });
                        let Some(r) = found else {
                            st.txn_rollback(ctx, txn);
                            return None;
                        };
                        relay = Some(r);
                        r
                    }
                };
                if crate::route::route_value(
                    ctx,
                    &self.rt,
                    st,
                    v,
                    inp,
                    r,
                    self.config.max_route_hops,
                    &mut txn,
                )
                .is_none()
                {
                    st.txn_rollback(ctx, txn);
                    return None;
                }
                st.add_copy_txn(ctx, v, r, c, None, false, &mut txn);
                st.routed_hops += 1;
            }
            st.add_copy_txn(ctx, v, c, o, None, false, &mut txn);
            // The Route op itself costs an issue slot.
            st.charge_issue_txn(ctx, c, 1, &mut txn);
            st.push_forward(v, c);
        }
        st.cost = crate::cost::objective(ctx, st);
        let cost = st.cost;
        if evaluate {
            st.txn_rollback(ctx, txn);
        }
        Some(cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hca_arch::{Rcp, ResourceTable};
    use hca_ddg::{DdgBuilder, Opcode};
    use hca_pg::{Ili, IliWire};

    fn constraints(max_in: u32) -> ArchConstraints {
        ArchConstraints {
            max_in_neighbors: max_in,
            max_out_neighbors: None,
            out_node_max_in: 1,
            copy_latency: 1,
        }
    }

    #[test]
    fn chain_stays_on_one_cluster() {
        let mut b = DdgBuilder::default();
        let mut prev = b.node(Opcode::Load);
        for _ in 0..5 {
            let nxt = b.node(Opcode::Add);
            b.flow(prev, nxt);
            prev = nxt;
        }
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(4, ResourceTable::of_cns(4));
        let see = See::new(&ddg, &an, &pg, constraints(4), SeeConfig::default());
        let out = see.run(None).unwrap();
        // Modulo scheduling overlaps iterations, so splitting a serial chain
        // can still lower the resource MII — but the copy terms keep the
        // splits rare, and the estimated MII must reach the ideal 1–2.
        assert!(
            out.assigned.total_copies() <= 2,
            "{}",
            out.assigned.total_copies()
        );
        assert!(out.est_mii <= 2, "MII {}", out.est_mii);
        for n in ddg.node_ids() {
            assert!(out.assigned.cluster_of(n).is_some());
        }
        let _ = NodeId(0);
    }

    #[test]
    fn wide_parallel_work_spreads_for_ii() {
        // 8 independent 2-op chains on 4 single-issue clusters: the pressure
        // term forces spreading (perfect split: 4 ops per cluster → MII 4;
        // everything on one cluster would be MII 16).
        let mut b = DdgBuilder::default();
        for _ in 0..8 {
            let x = b.node(Opcode::Add);
            let y = b.node(Opcode::Add);
            b.flow(x, y);
        }
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(4, ResourceTable::of_cns(1));
        let see = See::new(&ddg, &an, &pg, constraints(4), SeeConfig::default());
        let out = see.run(None).unwrap();
        assert!(out.est_mii <= 5, "MII {} too high", out.est_mii);
    }

    #[test]
    fn working_set_only_assigns_requested_nodes() {
        let mut b = DdgBuilder::default();
        let x = b.node(Opcode::Add);
        let y = b.node(Opcode::Add);
        let z = b.node(Opcode::Add);
        b.flow(x, y);
        b.flow(y, z);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(2, ResourceTable::of_cns(4));
        let see = See::new(&ddg, &an, &pg, constraints(4), SeeConfig::default());
        let out = see.run(Some(&[x, y])).unwrap();
        assert!(out.assigned.cluster_of(x).is_some());
        assert!(out.assigned.cluster_of(y).is_some());
        assert_eq!(out.assigned.cluster_of(z), None);
    }

    #[test]
    fn unknown_node_rejected() {
        let mut b = DdgBuilder::default();
        let _ = b.node(Opcode::Add);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(2, ResourceTable::of_cns(4));
        let see = See::new(&ddg, &an, &pg, constraints(4), SeeConfig::default());
        assert_eq!(
            see.run(Some(&[NodeId(9)])).unwrap_err(),
            SeeError::UnknownNode { node: NodeId(9) }
        );
    }

    #[test]
    fn ili_values_consumed_from_input_nodes() {
        // External value ext arrives on an input wire; consumer must receive
        // it from the input node (one copy input-node → cluster).
        let mut b = DdgBuilder::default();
        let ext = b.node(Opcode::Load);
        let use1 = b.node(Opcode::Add);
        b.flow(ext, use1);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let mut pg = Pg::complete(2, ResourceTable::of_cns(4));
        pg.attach_ili(&Ili {
            inputs: vec![IliWire::new(vec![ext])],
            outputs: vec![],
        });
        let see = See::new(&ddg, &an, &pg, constraints(4), SeeConfig::default());
        let out = see.run(Some(&[use1])).unwrap();
        let inp = pg.input_ids().next().unwrap();
        let c = out.assigned.cluster_of(use1).unwrap();
        assert_eq!(out.assigned.cpy(inp, c), &[ext]);
    }

    #[test]
    fn output_values_forced_to_wire() {
        let mut b = DdgBuilder::default();
        let k = b.node(Opcode::Add);
        let h = b.node(Opcode::Add);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let mut pg = Pg::complete(2, ResourceTable::of_cns(4));
        pg.attach_ili(&Ili {
            inputs: vec![],
            outputs: vec![IliWire::new(vec![k, h])],
        });
        let see = See::new(&ddg, &an, &pg, constraints(4), SeeConfig::default());
        let out = see.run(None).unwrap();
        // Unary fan-in forces k and h onto the same cluster (Figure 10c).
        assert_eq!(out.assigned.cluster_of(k), out.assigned.cluster_of(h));
        let o = pg.output_ids().next().unwrap();
        let c = out.assigned.cluster_of(k).unwrap();
        let mut vals = out.assigned.cpy(c, o).to_vec();
        vals.sort_unstable();
        assert_eq!(vals, vec![k, h]);
    }

    #[test]
    fn router_rescues_ring_assignment() {
        // RCP reach-1 ring: a node with operands on opposite sides needs the
        // route allocator.
        let rcp = Rcp::new(6, 1, 1, |_| true);
        let pg = Pg::from_rcp(&rcp);
        let mut b = DdgBuilder::default();
        // A wide fan-in tree that cannot avoid long-distance flows on a
        // 1-port ring.
        let leaves: Vec<_> = (0..6).map(|_| b.node(Opcode::Add)).collect();
        let root = b.reduce_tree(Opcode::Add, &leaves);
        let _ = root;
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let see = See::new(&ddg, &an, &pg, constraints(1), SeeConfig::default());
        let out = see.run(None).expect("router should rescue the search");
        // Every node assigned.
        for n in ddg.node_ids() {
            assert!(out.assigned.cluster_of(n).is_some(), "{n} unassigned");
        }
    }

    #[test]
    fn disabled_router_reports_no_candidates() {
        let rcp = Rcp::new(6, 1, 1, |_| true);
        let pg = Pg::from_rcp(&rcp);
        let mut b = DdgBuilder::default();
        let leaves: Vec<_> = (0..6).map(|_| b.node(Opcode::Add)).collect();
        let _root = b.reduce_tree(Opcode::Add, &leaves);
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let cfg = SeeConfig {
            enable_router: false,
            // Tight beam to make the impasse deterministic.
            beam_width: 1,
            branch_factor: 1,
            ..SeeConfig::default()
        };
        let see = See::new(&ddg, &an, &pg, constraints(1), cfg);
        match see.run(None) {
            Err(SeeError::NoCandidates { .. }) => {}
            Ok(out) => {
                // With some orders the greedy search may still squeak
                // through; then at least it must be a legal assignment.
                assert!(out.assigned.total_copies() > 0);
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn pass_through_value_gets_forwarded() {
        // ext arrives on a glue-in wire and must leave on a glue-out wire;
        // nothing inside consumes it. Some cluster must spend an issue slot
        // forwarding it.
        let mut b = DdgBuilder::default();
        let ext = b.node(Opcode::Load);
        let local = b.node(Opcode::Add);
        let _ = local;
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let mut pg = Pg::complete(2, ResourceTable::of_cns(4));
        pg.attach_ili(&Ili {
            inputs: vec![IliWire::new(vec![ext])],
            outputs: vec![IliWire::new(vec![ext])],
        });
        let see = See::new(&ddg, &an, &pg, constraints(4), SeeConfig::default());
        let out = see.run(Some(&[local])).unwrap();
        assert_eq!(out.assigned.forwards.len(), 1);
        let (v, c) = out.assigned.forwards[0];
        assert_eq!(v, ext);
        let inp = pg.input_ids().next().unwrap();
        let o = pg.output_ids().next().unwrap();
        assert_eq!(out.assigned.cpy(inp, c), &[ext]);
        assert_eq!(out.assigned.cpy(c, o), &[ext]);
    }

    #[test]
    fn pass_through_shares_feeder_cluster_with_internal_value() {
        // Output wire carries an internal value k and a pass-through ext:
        // unary fan-in forces the forward onto k's cluster.
        let mut b = DdgBuilder::default();
        let ext = b.node(Opcode::Load);
        let k = b.node(Opcode::Add);
        let _ = k;
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let mut pg = Pg::complete(2, ResourceTable::of_cns(4));
        pg.attach_ili(&Ili {
            inputs: vec![IliWire::new(vec![ext])],
            outputs: vec![IliWire::new(vec![k, ext])],
        });
        let see = See::new(&ddg, &an, &pg, constraints(4), SeeConfig::default());
        let out = see.run(Some(&[k])).unwrap();
        let ck = out.assigned.cluster_of(k).unwrap();
        assert_eq!(out.assigned.forwards, vec![(ext, ck)]);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut b = DdgBuilder::default();
        for i in 0..12 {
            let x = b.node(Opcode::Add);
            let y = b.node(if i % 3 == 0 { Opcode::Mul } else { Opcode::Add });
            b.flow(x, y);
        }
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(4, ResourceTable::of_cns(2));
        let see = See::new(&ddg, &an, &pg, constraints(4), SeeConfig::default());
        let a = see.run(None).unwrap();
        let b2 = see.run(None).unwrap();
        assert_eq!(a.cost, b2.cost);
        assert_eq!(a.assigned.assignment, b2.assigned.assignment);
    }
}
