//! Exact branch-and-bound assignment — the portfolio's second backend.
//!
//! [`See::run_exact`] explores the *complete* direct-assignment space of one
//! sub-problem by depth-first branch and bound over the same
//! [`PriorityOrder`] the beam consumes, reusing the beam's own screens
//! ([`crate::assignable::node_view`] / `score_if_assignable`) and the
//! journalled apply/undo state machinery — zero state clones except when a
//! new incumbent is recorded.
//!
//! Pruning, in the order it fires:
//!
//! 1. **Incumbent bound** (admissible): the solution score is
//!    `16·MII + copies`; every aggregate it reads (`mii_issue`, `mii_arc`,
//!    copy count) only grows as nodes are placed, so
//!    `16·max(partial MII, floor) + partial copies` never exceeds any
//!    completion's score. Branches at or above the incumbent die.
//! 2. **Lookahead** (admissible): every unplaced node will charge at least
//!    one issue slot somewhere, so the final issue MII is at least
//!    `ceil((current Σ issue load + remaining) / Σ issue slots)`.
//! 3. **Slot symmetry** (a dominance argument): two *pristine* clusters
//!    (no load, no neighbours) that the Pattern Graph cannot tell apart
//!    (equal resource tables, identical potential-arc rows under the swap)
//!    generate isomorphic subtrees — only the lowest-id one is branched.
//!
//! The search stops the instant an incumbent hits the shared lower-bound
//! floor (`16·floor + 0` — an absolute optimality proof), and
//! cooperatively at branch points via [`hca_par::CancelToken`] or the
//! deterministic node budget. Determinism: with no deadline on the token,
//! the visit order and cut point are fixed, so results are reproducible.
//!
//! Completeness caveat (reported via [`ExactOutcome::exhausted`]): the
//! search never invokes the Route Allocator, so it covers *direct*
//! assignments only — routed solutions could in principle score better.
//! `exhausted` therefore proves optimality among direct assignments;
//! absolute proofs come from hitting the floor. Pass-through feeder
//! choices are enumerated through
//! [`resolve_forwards`](See::run)'s planner, which truncates to
//! `branch_factor`/`beam_width` — use [`crate::SeeConfig::exhaustive`] so
//! the enumeration is complete.

use crate::engine::{See, SeeError, SeeOutcome, SeeStats, StatePool};
use crate::state::PartialState;
use hca_ddg::{NodeId, PriorityOrder};
use hca_par::CancelToken;
use hca_pg::PgNodeId;

/// Driver-facing knobs of one exact run.
#[derive(Clone, Debug)]
pub struct ExactConfig {
    /// Deterministic branch-node budget: the search stops (unproven) after
    /// visiting this many branch points. The primary budget — unlike a
    /// deadline it cuts at a machine-independent point.
    pub node_budget: u64,
    /// Cooperative cancellation, checked at branch points. Defaults to a
    /// token that never fires; pass [`CancelToken::with_deadline`] for a
    /// wall-clock safety net (at the price of run-to-run determinism).
    pub cancel: CancelToken,
    /// Incumbent seed, usually the beam winner's `16·MII + copies` score.
    /// Only *strictly better* solutions are recorded, so a seeded search
    /// that finds nothing proves nothing new but also costs little.
    pub incumbent_score: Option<u64>,
    /// Admissible MII floor shared with the beam
    /// ([`crate::bounds::mii_lower_bound`]); used for pruning and the
    /// proven-optimal early exit. Use 1 when no tighter floor is known.
    pub floor: u32,
    /// Cap on the pass-through feeder combinations taken as search roots;
    /// beyond it the enumeration is truncated (and `exhausted` cleared).
    pub max_roots: usize,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            node_budget: 200_000,
            cancel: CancelToken::new(),
            incumbent_score: None,
            floor: 1,
            max_roots: 256,
        }
    }
}

/// What one exact run established.
#[derive(Debug)]
pub struct ExactOutcome {
    /// The best solution found that beats the incumbent seed, shaped
    /// exactly like a beam outcome (same downstream Mapper/validation
    /// path). `None` when the seed was never beaten.
    pub outcome: Option<SeeOutcome>,
    /// Score (`16·MII + copies`) of `outcome`.
    pub score: Option<u64>,
    /// The best solution's MII equals the admissible floor — absolute
    /// optimality proof for the MII.
    pub mii_proven: bool,
    /// The direct-assignment space was fully explored (no budget or
    /// cancellation cut, root enumeration complete): whatever the best
    /// known solution is — found here or the incumbent seed — it is
    /// optimal among direct assignments.
    pub exhausted: bool,
    /// Branch points visited.
    pub nodes_visited: u64,
    /// The cancellation token fired (deadline or external cancel).
    pub cancelled: bool,
}

/// The solution score both portfolio backends optimise: MII dominates,
/// copies tie-break. Must mirror the driver's tier-selection score.
#[inline]
pub fn solution_score(est_mii: u32, total_copies: u32) -> u64 {
    16 * u64::from(est_mii) + u64::from(total_copies)
}

struct Dfs<'s, 'a> {
    see: &'s See<'a>,
    order: Vec<NodeId>,
    /// Exclusive cutoff: only scores `< cutoff` are recorded.
    cutoff: u64,
    floor: u32,
    floor_score: u64,
    best: Option<PartialState>,
    nodes: u64,
    budget: u64,
    cancel: CancelToken,
    cancel_count: u32,
    /// Budget or cancellation cut the search.
    stopped: bool,
    cancelled: bool,
    /// An incumbent reached the absolute floor — nothing can beat it.
    done: bool,
    /// `sym[a.index() * pg_nodes + b.index()]`: the PG has an automorphism
    /// swapping clusters `a` and `b` and fixing everything else.
    sym: Vec<bool>,
    pg_nodes: usize,
    /// Σ issue slots across clusters, for the lookahead floor.
    issue_slots: u32,
}

impl<'s, 'a> Dfs<'s, 'a> {
    /// Cluster `c` carries nothing in `st`: no load (hence no placements,
    /// receives or forwards) and no copy arcs in either direction.
    fn pristine(&self, st: &PartialState, c: PgNodeId) -> bool {
        st.loads.issue(c.index()) == 0
            && st.in_neighbors.len(c.index()) == 0
            && st.out_neighbors.len(c.index()) == 0
    }

    fn dfs(&mut self, depth: usize, st: &mut PartialState) {
        self.nodes += 1;
        if self.nodes > self.budget {
            self.stopped = true;
            return;
        }
        if self.cancel.check_stride(&mut self.cancel_count) {
            self.stopped = true;
            self.cancelled = true;
            return;
        }
        let ctx = &self.see.ctx;
        // Admissible lower bound on any completion of `st` (the aggregates
        // it reads only grow), tightened by the issue-slot lookahead.
        let mut est = st.estimated_mii(ctx).max(self.floor);
        let remaining = (self.order.len() - depth) as u32;
        if remaining > 0 && self.issue_slots > 0 {
            let issue_now: u32 = st.loads.issue_all().iter().sum();
            est = est.max((issue_now + remaining).div_ceil(self.issue_slots));
        }
        let lb = 16 * u64::from(est) + u64::from(st.total_copies);
        if lb >= self.cutoff {
            return;
        }
        if depth == self.order.len() {
            let score = solution_score(st.estimated_mii(ctx), st.total_copies);
            if score < self.cutoff {
                self.cutoff = score;
                self.best = Some(st.clone());
                if score <= self.floor_score {
                    self.done = true;
                }
            }
            return;
        }
        let n = self.order[depth];
        let view = crate::assignable::node_view(ctx, st, n);
        let mut cands: Vec<(PgNodeId, f64)> = Vec::new();
        for c in view.candidates() {
            if let Some(cost) = crate::assignable::score_if_assignable(ctx, st, &view, n, c) {
                cands.push((c, cost));
            }
        }
        // Cheapest-looking candidate first: good incumbents early make the
        // bound bite sooner. Cluster id tie-breaks for determinism.
        cands.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let mut taken: Vec<PgNodeId> = Vec::with_capacity(cands.len());
        for (c, _) in cands {
            // Slot symmetry: a pristine cluster interchangeable with an
            // already-branched pristine sibling explores an isomorphic
            // subtree — skip it.
            if self.pristine(st, c)
                && taken.iter().any(|&t| {
                    self.sym[t.index() * self.pg_nodes + c.index()] && self.pristine(st, t)
                })
            {
                continue;
            }
            taken.push(c);
            let undo = st.apply_assign_logged(ctx, n, c);
            self.dfs(depth + 1, st);
            st.undo_assign(ctx, undo);
            if self.done || self.stopped {
                return;
            }
        }
    }
}

impl<'a> See<'a> {
    /// True when swapping clusters `a` and `b` (fixing every other PG node)
    /// is an automorphism of the Pattern Graph: equal resource tables and
    /// identical potential-arc rows/columns under the swap.
    fn clusters_interchangeable(&self, a: PgNodeId, b: PgNodeId) -> bool {
        let pg = self.ctx.pg;
        if pg.node(a).rt != pg.node(b).rt {
            return false;
        }
        let st = &self.ctx.statics;
        if st.is_potential(a, b) != st.is_potential(b, a)
            || st.is_potential(a, a) != st.is_potential(b, b)
        {
            return false;
        }
        pg.node_ids().filter(|&x| x != a && x != b).all(|x| {
            st.is_potential(a, x) == st.is_potential(b, x)
                && st.is_potential(x, a) == st.is_potential(x, b)
        })
    }

    /// Exact branch-and-bound over `working_set` (the whole DDG when
    /// `None`). See the module docs for the search design and the meaning
    /// of the returned flags.
    ///
    /// Build the [`See`] with [`crate::SeeConfig::exhaustive`] so the
    /// pass-through planner enumerates every feeder choice; a default
    /// config still searches correctly but `exhausted` stays `false`.
    pub fn run_exact(
        &self,
        working_set: Option<&[NodeId]>,
        cfg: &ExactConfig,
    ) -> Result<ExactOutcome, SeeError> {
        if let Some(ws) = working_set {
            for &n in ws {
                if n.index() >= self.ctx.ddg.num_nodes() {
                    return Err(SeeError::UnknownNode { node: n });
                }
            }
        }
        let order = PriorityOrder::compute(
            self.ctx.ddg,
            self.ctx.analysis,
            working_set,
            self.config.priority,
        );
        let ws_nodes: Vec<NodeId> = order.nodes().to_vec();
        let mut pool = StatePool::default();
        let initial = vec![PartialState::initial(&self.ctx, &ws_nodes)];
        let mut roots = self.resolve_forwards(initial, &mut pool)?;
        // Cheapest pass-through plan first (same rationale as candidate
        // ordering); stable on cost ties, so the order is deterministic.
        roots.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        let num_clusters = self.ctx.pg.cluster_ids().count();
        // Conservative: the planner truncates per-wire forks to
        // `branch_factor` and the frontier to `beam_width`; only a config
        // that provably never truncated may claim a complete enumeration.
        let roots_complete = roots.len() <= cfg.max_roots
            && self.config.branch_factor >= num_clusters
            && roots.len() < self.config.beam_width;
        roots.truncate(cfg.max_roots.max(1));

        let pg_nodes = self.ctx.pg.num_nodes();
        let mut sym = vec![false; pg_nodes * pg_nodes];
        let clusters: Vec<PgNodeId> = self.ctx.pg.cluster_ids().collect();
        for (i, &a) in clusters.iter().enumerate() {
            for &b in &clusters[i + 1..] {
                if self.clusters_interchangeable(a, b) {
                    sym[a.index() * pg_nodes + b.index()] = true;
                    sym[b.index() * pg_nodes + a.index()] = true;
                }
            }
        }
        let issue_slots = clusters.iter().map(|&c| self.ctx.pg.node(c).rt.issue).sum();

        let mut dfs = Dfs {
            see: self,
            order: ws_nodes,
            cutoff: cfg.incumbent_score.unwrap_or(u64::MAX),
            floor: cfg.floor,
            floor_score: 16 * u64::from(cfg.floor),
            best: None,
            nodes: 0,
            budget: cfg.node_budget.max(1),
            cancel: cfg.cancel.clone(),
            cancel_count: 0,
            stopped: false,
            cancelled: false,
            done: false,
            sym,
            pg_nodes,
            issue_slots,
        };
        for mut root in roots {
            dfs.dfs(0, &mut root);
            if dfs.done || dfs.stopped {
                break;
            }
        }

        let exhausted = !dfs.stopped && roots_complete;
        let nodes_visited = dfs.nodes;
        let cancelled = dfs.cancelled;
        let (outcome, score, mii_proven) = match dfs.best {
            Some(best) => {
                let est_mii = best.estimated_mii(&self.ctx);
                let score = solution_score(est_mii, best.total_copies);
                let (mii_issue, mii_arc) = (best.mii_issue, best.mii_arc);
                let cost = best.cost;
                let steps = order.nodes().len();
                let outcome = SeeOutcome {
                    assigned: best.into_assigned(self.ctx.pg),
                    cost,
                    est_mii,
                    mii_issue,
                    mii_arc,
                    stats: SeeStats {
                        // One branch point ≈ one materialised state; the
                        // winner is the single survivor, so the documented
                        // `explored == pruned + occupancy` split holds.
                        states_explored: nodes_visited as usize,
                        states_pruned: (nodes_visited as usize).saturating_sub(1),
                        steps: steps.max(1),
                        beam_occupancy_sum: 1,
                        beam_occupancy: vec![1],
                        route_table_bytes: self.rt.approx_bytes(),
                        arc_table_bytes: self.ctx.statics.arc_table_bytes(),
                        ..SeeStats::default()
                    },
                };
                (Some(outcome), Some(score), est_mii <= cfg.floor)
            }
            None => (None, None, false),
        };
        Ok(ExactOutcome {
            outcome,
            score,
            mii_proven,
            exhausted,
            nodes_visited,
            cancelled,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeeConfig;
    use hca_arch::ResourceTable;
    use hca_ddg::{Ddg, DdgAnalysis, DdgBuilder, LatencyModel, Opcode};
    use hca_pg::{ArchConstraints, Pg};

    fn constraints(max_in: u32) -> ArchConstraints {
        ArchConstraints {
            max_in_neighbors: max_in,
            max_out_neighbors: None,
            out_node_max_in: 1,
            copy_latency: 1,
        }
    }

    /// A small dependent kernel: two loads feeding a multiply-add chain
    /// into a store.
    fn small_kernel() -> Ddg {
        let mut b = DdgBuilder::new(LatencyModel::unit());
        let l0 = b.node(Opcode::Load);
        let l1 = b.node(Opcode::Load);
        let m = b.node(Opcode::Mul);
        let a = b.node(Opcode::Add);
        let s = b.node(Opcode::Store);
        b.flow(l0, m);
        b.flow(l1, m);
        b.flow(m, a);
        b.flow(a, s);
        b.finish()
    }

    #[test]
    fn exact_never_loses_to_the_beam_and_passes_strict_checks() {
        let ddg = small_kernel();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(2, ResourceTable::of_cns(1));
        let cons = constraints(2);
        let beam = crate::See::new(&ddg, &an, &pg, cons, SeeConfig::default())
            .run(None)
            .expect("beam solves the fixture");
        let beam_score = solution_score(beam.est_mii, beam.assigned.total_copies() as u32);
        let see = crate::See::new(&ddg, &an, &pg, cons, SeeConfig::exhaustive());
        let floor = crate::bounds::mii_lower_bound(&ddg, &an, &pg, &cons, None).overall();
        let res = see
            .run_exact(
                None,
                &ExactConfig {
                    incumbent_score: Some(beam_score),
                    floor,
                    ..ExactConfig::default()
                },
            )
            .expect("exact run succeeds");
        assert!(res.exhausted, "tiny space must be fully explored");
        assert!(!res.cancelled);
        if let Some(out) = &res.outcome {
            // Anything recorded must strictly beat the seed and clear the
            // same legality gate beam results clear.
            assert!(res.score.unwrap() < beam_score);
            assert!(out.est_mii <= beam.est_mii);
            assert!(out.est_mii >= floor, "floor must stay admissible");
            cons.check(&out.assigned).expect("exact output is legal");
        }
    }

    #[test]
    fn exact_proves_the_floor_on_independent_ops() {
        // 4 independent adds on 4 clusters: MII 1 with zero copies is the
        // provable optimum and the search must stop on it.
        let mut b = DdgBuilder::new(LatencyModel::unit());
        for _ in 0..4 {
            b.node(Opcode::Add);
        }
        let ddg = b.finish();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(4, ResourceTable::of_cns(1));
        let cons = constraints(2);
        let floor = crate::bounds::mii_lower_bound(&ddg, &an, &pg, &cons, None).overall();
        assert_eq!(floor, 1);
        let see = crate::See::new(&ddg, &an, &pg, cons, SeeConfig::exhaustive());
        let res = see
            .run_exact(
                None,
                &ExactConfig {
                    floor,
                    ..ExactConfig::default()
                },
            )
            .unwrap();
        let out = res.outcome.expect("unseeded search records a solution");
        assert_eq!(out.est_mii, 1);
        assert_eq!(out.assigned.total_copies(), 0);
        assert!(res.mii_proven, "floor hit must be reported as proven");
        // Slot symmetry: the 4 clusters are interchangeable while pristine,
        // so the proof needs only a handful of branch points, not 4^4.
        assert!(
            res.nodes_visited <= 32,
            "symmetry pruning missing: {} branch points",
            res.nodes_visited
        );
    }

    #[test]
    fn node_budget_cuts_deterministically() {
        let ddg = small_kernel();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(2, ResourceTable::of_cns(1));
        let cons = constraints(2);
        let see = crate::See::new(&ddg, &an, &pg, cons, SeeConfig::exhaustive());
        let cfg = ExactConfig {
            node_budget: 2,
            ..ExactConfig::default()
        };
        let a = see.run_exact(None, &cfg).unwrap();
        let b = see.run_exact(None, &cfg).unwrap();
        assert!(!a.exhausted, "budget cut must clear the exhausted proof");
        assert!(!a.cancelled);
        assert_eq!(a.nodes_visited, b.nodes_visited, "cut point is fixed");
        assert_eq!(a.score, b.score, "budget-cut result is deterministic");
    }

    #[test]
    fn cancellation_token_stops_the_search() {
        let ddg = small_kernel();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(2, ResourceTable::of_cns(1));
        let cons = constraints(2);
        let see = crate::See::new(&ddg, &an, &pg, cons, SeeConfig::exhaustive());
        let cancel = hca_par::CancelToken::new();
        cancel.cancel();
        let res = see
            .run_exact(
                None,
                &ExactConfig {
                    cancel,
                    ..ExactConfig::default()
                },
            )
            .unwrap();
        assert!(res.cancelled);
        assert!(!res.exhausted);
        assert!(res.outcome.is_none());
    }

    #[test]
    fn tampered_exact_output_fails_the_strict_gate() {
        // The exact backend's outputs go through the *same*
        // `ArchConstraints::check` gate as beam outputs: corrupting the
        // assigned PG must be caught.
        let ddg = small_kernel();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(2, ResourceTable::of_cns(1));
        let cons = constraints(2);
        let see = crate::See::new(&ddg, &an, &pg, cons, SeeConfig::exhaustive());
        let res = see.run_exact(None, &ExactConfig::default()).unwrap();
        let mut out = res.outcome.expect("unseeded search records a solution");
        cons.check(&out.assigned)
            .expect("untampered output is legal");
        // Forge a copy on a non-potential pattern (output nodes have no
        // outgoing arcs; with no ILI attached, any special id is absent —
        // use a reversed self-arc instead: cluster -> itself).
        let c0 = out.assigned.pg.cluster_ids().next().unwrap();
        out.assigned
            .copies
            .insert((c0, c0), vec![hca_ddg::NodeId(0)]);
        assert!(
            cons.check(&out.assigned).is_err(),
            "forged non-potential copy must fail the gate"
        );
    }

    #[test]
    fn unknown_working_set_node_is_rejected() {
        let ddg = small_kernel();
        let an = DdgAnalysis::compute(&ddg).unwrap();
        let pg = Pg::complete(2, ResourceTable::of_cns(1));
        let cons = constraints(2);
        let see = crate::See::new(&ddg, &an, &pg, cons, SeeConfig::exhaustive());
        let bogus = [hca_ddg::NodeId(999)];
        let err = see
            .run_exact(Some(&bogus), &ExactConfig::default())
            .unwrap_err();
        assert_eq!(err, SeeError::UnknownNode { node: bogus[0] });
    }
}
